"""Shared fixtures for the METAPREP test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.registry import build_dataset
from repro.seqio.records import FastqRecord, ReadBatch


@pytest.fixture(scope="session")
def data_root(tmp_path_factory):
    return tmp_path_factory.mktemp("metaprep_data")


@pytest.fixture(scope="session")
def tiny_hg(data_root):
    """A ~300-pair HG analogue (cached for the whole session)."""
    return build_dataset("HG", data_root / "hg", seed=7, scale=0.12)


@pytest.fixture(scope="session")
def tiny_ll(data_root):
    return build_dataset("LL", data_root / "ll", seed=7, scale=0.10)


@pytest.fixture(scope="session")
def tiny_hg_batch(tiny_hg):
    """All reads of the tiny HG analogue as one batch with pair-shared ids."""
    from repro.seqio.fastq import read_fastq

    r1 = read_fastq(tiny_hg.r1_path)
    r2 = read_fastq(tiny_hg.r2_path)
    records, ids = [], []
    for i, (a, b) in enumerate(zip(r1, r2)):
        records.extend((a, b))
        ids.extend((i, i))
    return ReadBatch.from_records(records, ids, keep_metadata=False)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


def random_reads(
    rng: np.random.Generator,
    n: int,
    length: int = 40,
    alphabet: str = "ACGT",
    n_prob: float = 0.0,
) -> list:
    """Random read strings (helper importable from conftest)."""
    out = []
    for _ in range(n):
        chars = rng.choice(list(alphabet), size=length)
        if n_prob > 0:
            mask = rng.random(length) < n_prob
            chars[mask] = "N"
        out.append("".join(chars))
    return out


@pytest.fixture()
def small_batch(rng) -> ReadBatch:
    """12 random 40 bp reads, ids 0..11."""
    return ReadBatch.from_sequences(random_reads(rng, 12, 40))


def make_records(seqs):
    return [FastqRecord(f"r{i}", s, "I" * len(s)) for i, s in enumerate(seqs)]
