import numpy as np
import pytest

from repro.runtime.comm import all_to_all_schedule, broadcast, custom_all_to_all


class TestSchedule:
    def test_stage_structure(self):
        sched = all_to_all_schedule(4)
        assert len(sched) == 4
        # stage i: p -> (p+i) mod P
        assert sched[1] == [(0, 1), (1, 2), (2, 3), (3, 0)]

    def test_each_stage_contention_free(self):
        """In every stage each task sends exactly once and receives exactly
        once — the property that makes the custom all-to-all bandwidth-
        optimal on a full-duplex network."""
        for p in [1, 2, 5, 8, 16]:
            for pairs in all_to_all_schedule(p):
                senders = [s for s, _ in pairs]
                receivers = [r for _, r in pairs]
                assert sorted(senders) == list(range(p))
                assert sorted(receivers) == list(range(p))

    def test_all_pairs_covered_once(self):
        p = 6
        seen = set()
        for pairs in all_to_all_schedule(p):
            seen.update(pairs)
        assert len(seen) == p * p

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            all_to_all_schedule(0)


class TestCustomAllToAll:
    def _blocks(self, p, rng):
        return [
            [rng.integers(0, 100, size=int(rng.integers(0, 20))) for _ in range(p)]
            for _ in range(p)
        ]

    def test_delivery_complete_and_ordered(self, rng):
        p = 4
        blocks = self._blocks(p, rng)
        recv, stats = custom_all_to_all(blocks, nbytes_of=lambda a: a.nbytes)
        for d in range(p):
            for s in range(p):
                assert np.array_equal(recv[d][s], blocks[s][d])

    def test_stats_byte_matrix(self, rng):
        p = 3
        blocks = self._blocks(p, rng)
        _, stats = custom_all_to_all(blocks, nbytes_of=lambda a: a.nbytes)
        for s in range(p):
            for d in range(p):
                assert stats.bytes_matrix[s, d] == blocks[s][d].nbytes

    def test_wire_bytes_exclude_self(self, rng):
        p = 3
        blocks = self._blocks(p, rng)
        _, stats = custom_all_to_all(blocks, nbytes_of=lambda a: a.nbytes)
        expected = sum(
            blocks[s][d].nbytes for s in range(p) for d in range(p) if s != d
        )
        assert stats.wire_bytes_total == expected

    def test_message_count(self, rng):
        p = 4
        blocks = self._blocks(p, rng)
        _, stats = custom_all_to_all(blocks, nbytes_of=lambda a: a.nbytes)
        assert stats.n_messages == p * (p - 1)
        assert stats.n_stages == p

    def test_stage_max_bytes(self, rng):
        p = 3
        blocks = self._blocks(p, rng)
        _, stats = custom_all_to_all(blocks, nbytes_of=lambda a: a.nbytes)
        assert len(stats.max_message_bytes_per_stage) == p
        assert stats.max_message_bytes_per_stage[0] == 0  # self-sends only

    def test_single_task(self):
        blocks = [[np.arange(5)]]
        recv, stats = custom_all_to_all(blocks, nbytes_of=lambda a: a.nbytes)
        assert np.array_equal(recv[0][0], np.arange(5))
        assert stats.wire_bytes_total == 0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            custom_all_to_all([[1, 2], [1]], nbytes_of=lambda x: 0)

    def test_max_bytes_sent_by_task(self, rng):
        p = 3
        blocks = self._blocks(p, rng)
        _, stats = custom_all_to_all(blocks, nbytes_of=lambda a: a.nbytes)
        per_task = [
            sum(blocks[s][d].nbytes for d in range(p) if d != s)
            for s in range(p)
        ]
        assert stats.max_bytes_sent_by_task == max(per_task)


class TestBroadcast:
    def test_everyone_receives(self):
        copies, wire = broadcast("payload", 5, nbytes_of=lambda s: len(s))
        assert len(copies) == 5
        assert all(c == "payload" for c in copies)

    def test_binomial_tree_bytes(self):
        # P=8: rounds send 1, 2, 4 copies -> 7 transmissions
        _, wire = broadcast(b"x" * 10, 8, nbytes_of=len)
        assert wire == 7 * 10

    def test_single_task_no_wire(self):
        _, wire = broadcast("x", 1, nbytes_of=len)
        assert wire == 0
