import json

import pytest

from repro.runtime.machines import EDISON
from repro.runtime.timing import TimingModel
from repro.runtime.trace import projection_to_trace_events, write_chrome_trace
from repro.runtime.work import RunWork, StepNames


@pytest.fixture()
def projection():
    work = RunWork(n_tasks=3, n_threads=2, n_passes=1, n_reads=1000, k=27, tuple_bytes=12)
    work.kmergen_tuples += 10_000_000
    work.kmergen_positions_scanned += 10_000_000
    work.kmergen_io_bytes += 10_000_000
    work.fastq_parse_bytes += 10_000_000
    work.sort_tuple_passes += 80_000_000
    work.cc_edges_first_pass += 3_000_000
    work.ccio_bytes += 10_000_000
    return TimingModel(EDISON).project(work)


class TestTraceEvents:
    def test_one_event_per_task_step(self, projection):
        events = projection_to_trace_events(projection)
        names = {e["name"] for e in events}
        assert StepNames.KMERGEN in names
        assert StepNames.LOCALSORT in names
        # three tasks for each emitted step
        kmergen = [e for e in events if e["name"] == StepNames.KMERGEN]
        assert len(kmergen) == 3
        assert {e["tid"] for e in kmergen} == {0, 1, 2}

    def test_barrier_alignment(self, projection):
        """Each step starts at the max end time of the previous step."""
        events = projection_to_trace_events(projection)
        by_step = {}
        for e in events:
            by_step.setdefault(e["name"], []).append(e)
        prev_end = 0.0
        for step in StepNames.ORDER:
            if step not in by_step:
                continue
            starts = {e["ts"] for e in by_step[step]}
            assert len(starts) == 1  # all tasks start together
            (start,) = starts
            assert start == pytest.approx(prev_end, abs=1e-6)
            prev_end = start + max(e["dur"] for e in by_step[step])

    def test_durations_match_projection(self, projection):
        events = projection_to_trace_events(projection)
        for e in events:
            step, task = e["name"], e["tid"]
            assert e["dur"] == pytest.approx(
                float(projection.per_task[step][task]) * 1e6
            )

    def test_zero_steps_skipped(self, projection):
        events = projection_to_trace_events(projection)
        # single-task comm steps are zero for P... here P=3 but no comm
        # volumes were set: KmerGen-Comm has zero duration -> no events
        assert all(e["dur"] > 0 for e in events)


class TestWriteChromeTrace:
    def test_valid_json_with_metadata(self, projection, tmp_path):
        path = tmp_path / "trace.json"
        n = write_chrome_trace(projection, path)
        payload = json.loads(path.read_text())
        assert "traceEvents" in payload
        thread_names = [
            e for e in payload["traceEvents"] if e["name"] == "thread_name"
        ]
        assert len(thread_names) == 3
        duration_events = [
            e for e in payload["traceEvents"] if e.get("ph") == "X"
        ]
        assert len(duration_events) == n

    def test_creates_parent_dirs(self, projection, tmp_path):
        path = tmp_path / "deep" / "trace.json"
        write_chrome_trace(projection, path)
        assert path.exists()
