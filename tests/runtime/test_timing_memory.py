"""Memory-estimate plumbing between RunWork and the timing model."""

import numpy as np
import pytest

from repro.runtime.machines import EDISON
from repro.runtime.timing import TimingModel
from repro.runtime.work import RunWork, StepNames


def work_with_memory(P=4, T=8, S=1, tuples=10**9, reads=10**7):
    w = RunWork(n_tasks=P, n_threads=T, n_passes=S, n_reads=reads, k=27, tuple_bytes=12)
    w.kmergen_tuples += tuples // (P * T)
    w.kmergen_positions_scanned[:] = w.kmergen_tuples
    w.fastq_chunk_bytes = 10**8
    w.table_bytes = 10**7
    if P > 1:
        w.comm_stage_max_bytes = [[0] + [10**8] * (P - 1)]
    return w


class TestEstimatedMemory:
    def test_components_add_up(self):
        model = TimingModel(EDISON)
        w = work_with_memory()
        est = model.estimated_memory_per_task(w)
        tuples_per_task_pass = int(np.ceil(w.kmergen_tuples.sum() / (w.n_passes * w.n_tasks)))
        expected = (
            w.table_bytes
            + w.n_threads * w.fastq_chunk_bytes
            + 2 * 12 * tuples_per_task_pass
            + 8 * w.n_reads
        )
        assert est == expected

    def test_more_passes_less_memory(self):
        model = TimingModel(EDISON)
        assert model.estimated_memory_per_task(
            work_with_memory(S=8)
        ) < model.estimated_memory_per_task(work_with_memory(S=1))

    def test_k63_tuples_cost_more(self):
        model = TimingModel(EDISON)
        w = work_with_memory()
        w20 = work_with_memory()
        w20.tuple_bytes = 20
        assert model.estimated_memory_per_task(w20) > model.estimated_memory_per_task(w)


class TestMemoryPressureComm:
    def _comm_seconds(self, tuples):
        model = TimingModel(EDISON)
        w = work_with_memory(tuples=tuples)
        return model.project(w).step_seconds(StepNames.KMERGEN_COMM)

    def test_pressure_slows_comm(self):
        # ~58 GB/task of tuple buffers: util ~0.9 -> heavy pressure
        heavy = self._comm_seconds(tuples=15 * 10**9)
        light = self._comm_seconds(tuples=10**8)
        # identical wire volume (stage maxes fixed); only pressure differs
        assert heavy > light

    def test_no_pressure_below_floor(self):
        model = TimingModel(EDISON)
        a = work_with_memory(tuples=10**6)
        b = work_with_memory(tuples=10**7)
        ta = model.project(a).step_seconds(StepNames.KMERGEN_COMM)
        tb = model.project(b).step_seconds(StepNames.KMERGEN_COMM)
        assert ta == pytest.approx(tb)

    def test_single_task_no_comm_regardless(self):
        model = TimingModel(EDISON)
        w = work_with_memory(P=1, tuples=15 * 10**9)
        assert model.project(w).step_seconds(StepNames.KMERGEN_COMM) == 0.0


class TestScaledMemoryFields:
    def test_chunk_scales_table_does_not(self):
        w = work_with_memory()
        s = w.scaled(10.0)
        assert s.fastq_chunk_bytes == 10 * w.fastq_chunk_bytes
        assert s.table_bytes == w.table_bytes
