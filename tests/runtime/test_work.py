import numpy as np
import pytest

from repro.runtime.work import RunWork, StepNames


def make_work(P=2, T=2, S=1, R=100):
    w = RunWork(n_tasks=P, n_threads=T, n_passes=S, n_reads=R, k=27, tuple_bytes=12)
    w.kmergen_tuples += 50
    w.kmergen_io_bytes += 1000
    w.cc_edges_first_pass += 10
    w.comm_bytes_matrix += 600
    w.comm_stage_max_bytes = [[0, 600]]
    w.merge_bytes_per_send = 4 * R
    w.broadcast_bytes = 4 * R
    w.merge_rounds = [[(1, 0)]]
    return w


class TestStepNames:
    def test_order_covers_all_figure_steps(self):
        assert StepNames.ORDER[0] == "KmerGen-I/O"
        assert StepNames.ORDER[-1] == "CC-I/O"
        assert len(StepNames.ORDER) == 8
        assert len(set(StepNames.ORDER)) == 8


class TestRunWork:
    def test_arrays_default_zeroed(self):
        w = RunWork(2, 3, 1, 10, 27, 12)
        assert w.kmergen_tuples.shape == (2, 3)
        assert w.comm_bytes_matrix.shape == (2, 2)
        assert w.total_tuples == 0

    def test_totals(self):
        w = make_work()
        assert w.total_tuples == 50 * 4
        assert w.total_edges == 10 * 4

    def test_wire_bytes_excludes_diagonal(self):
        w = RunWork(2, 1, 1, 10, 27, 12)
        w.comm_bytes_matrix = np.array([[5, 7], [11, 13]], dtype=np.int64)
        assert w.wire_bytes == 18

    def test_imbalance_balanced(self):
        w = make_work()
        assert w.imbalance(w.kmergen_tuples) == pytest.approx(1.0)

    def test_imbalance_skewed(self):
        w = RunWork(2, 1, 1, 10, 27, 12)
        w.kmergen_tuples = np.array([[30], [10]], dtype=np.int64)
        assert w.imbalance(w.kmergen_tuples) == pytest.approx(1.5)


class TestScaled:
    def test_volumes_scale_linearly(self):
        w = make_work()
        s = w.scaled(10.0)
        assert s.total_tuples == 10 * w.total_tuples
        assert s.n_reads == 10 * w.n_reads
        assert s.merge_bytes_per_send == 10 * w.merge_bytes_per_send
        assert s.comm_stage_max_bytes == [[0, 6000]]

    def test_structure_preserved(self):
        w = make_work(P=3, T=2)
        w.kmergen_tuples[1, 0] = 999  # imbalance
        s = w.scaled(7.0)
        assert s.imbalance(s.kmergen_tuples) == pytest.approx(
            w.imbalance(w.kmergen_tuples), rel=1e-3
        )
        assert s.merge_rounds == w.merge_rounds

    def test_original_unchanged(self):
        w = make_work()
        before = w.kmergen_tuples.copy()
        w.scaled(5.0)
        assert np.array_equal(w.kmergen_tuples, before)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            make_work().scaled(0)
