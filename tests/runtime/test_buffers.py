"""Unit tests for the zero-copy columnar dataplane.

Both backings get the same block-semantics battery (write/view/permute
aliasing), the descriptor is pinned as a constant-size wire format, and
the shared-memory pool's lifecycle guarantees — reuse, unlink-on-close,
finalizer sweep — are asserted against ``/dev/shm`` directly.
"""

import gc
import pickle
from pathlib import Path

import numpy as np
import pytest

from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.runtime.buffers import (
    BlockDescriptor,
    HeapBufferPool,
    SharedMemoryBufferPool,
    TupleBlock,
    attach_block,
    block_nbytes,
    create_buffer_pool,
    open_block,
)


def random_tuples(rng, k, n):
    lo = rng.integers(0, 2**63, size=n, dtype=np.uint64)
    hi = rng.integers(0, 2**63, size=n, dtype=np.uint64) if k > 31 else None
    ids = rng.integers(0, 2**31, size=n, dtype=np.uint32)
    return KmerTuples(KmerArray(k, lo, hi), ids)


def assert_tuples_equal(a, b):
    assert np.array_equal(a.kmers.lo, b.kmers.lo)
    assert (a.kmers.hi is None) == (b.kmers.hi is None)
    if a.kmers.hi is not None:
        assert np.array_equal(a.kmers.hi, b.kmers.hi)
    assert np.array_equal(a.read_ids, b.read_ids)


@pytest.fixture(params=["heap", "shared"])
def pool(request):
    p = HeapBufferPool() if request.param == "heap" else SharedMemoryBufferPool()
    yield p
    p.close()


class TestBlockSemantics:
    @pytest.mark.parametrize("k", [15, 31, 33])
    def test_write_view_roundtrip(self, pool, k):
        rng = np.random.default_rng(0)
        tuples = random_tuples(rng, k, 50)
        block = pool.allocate(k, 50)
        assert block.write(0, tuples) == 50
        assert_tuples_equal(block.view(0, 50), tuples)

    def test_partial_writes_compose(self, pool):
        rng = np.random.default_rng(1)
        a, b = random_tuples(rng, 21, 10), random_tuples(rng, 21, 7)
        block = pool.allocate(21, 17)
        assert block.write(0, a) == 10
        assert block.write(10, b) == 17
        assert_tuples_equal(block.view(0, 10), a)
        assert_tuples_equal(block.view(10, 17), b)

    def test_view_aliases_backing(self, pool):
        rng = np.random.default_rng(2)
        block = pool.allocate(21, 5)
        block.write(0, random_tuples(rng, 21, 5))
        view = block.view(0, 5)
        view.read_ids[2] = 99
        assert block.view(2, 3).read_ids[0] == 99

    def test_permute_matches_take(self, pool):
        rng = np.random.default_rng(3)
        tuples = random_tuples(rng, 33, 20)
        block = pool.allocate(33, 20)
        block.write(0, tuples)
        order = rng.permutation(20)
        block.permute(order, 20)
        assert_tuples_equal(block.view(0, 20), tuples.take(order))

    def test_permute_prefix_only(self, pool):
        rng = np.random.default_rng(4)
        tuples = random_tuples(rng, 21, 10)
        block = pool.allocate(21, 10)
        block.write(0, tuples)
        block.permute(np.array([2, 0, 1]), 3)
        assert_tuples_equal(block.view(0, 3), tuples.take([2, 0, 1]))
        assert_tuples_equal(block.view(3, 10), tuples.take(range(3, 10)))

    def test_write_out_of_range_rejected(self, pool):
        rng = np.random.default_rng(5)
        block = pool.allocate(21, 4)
        with pytest.raises(ValueError, match="out of range"):
            block.write(2, random_tuples(rng, 21, 3))

    def test_k_mismatch_rejected(self, pool):
        rng = np.random.default_rng(6)
        block = pool.allocate(21, 4)
        with pytest.raises(ValueError, match="k mismatch"):
            block.write(0, random_tuples(rng, 15, 2))

    def test_capacity_zero_block(self, pool):
        block = pool.allocate(21, 0)
        assert len(block) == 0
        assert len(block.view(0, 0)) == 0
        # empty blocks always have a descriptor (no backing to name)
        assert block.descriptor().segment == ""


class TestDescriptor:
    def test_heap_block_has_no_descriptor(self):
        block = HeapBufferPool().allocate(21, 4)
        with pytest.raises(ValueError, match="no cross-process descriptor"):
            block.descriptor()
        assert block.handle() is block

    def test_shared_handle_is_descriptor(self):
        pool = SharedMemoryBufferPool()
        try:
            block = pool.allocate(21, 4)
            handle = block.handle()
            assert isinstance(handle, BlockDescriptor)
            assert handle.segment == block.segment
        finally:
            pool.close()

    def test_descriptor_size_independent_of_capacity(self):
        pool = SharedMemoryBufferPool()
        try:
            small = pool.allocate(33, 1).descriptor()
            large = pool.allocate(33, 100_000).descriptor()
            # a few extra bytes for the wider ints, never the payload
            assert len(pickle.dumps(large)) <= len(pickle.dumps(small)) + 32
            assert len(pickle.dumps(large)) < 512
        finally:
            pool.close()

    @pytest.mark.parametrize("k", [15, 33])
    def test_attach_sees_creator_bytes(self, k):
        rng = np.random.default_rng(7)
        pool = SharedMemoryBufferPool()
        try:
            tuples = random_tuples(rng, k, 30)
            block = pool.allocate(k, 30)
            block.write(0, tuples)
            attached = attach_block(block.descriptor())
            assert_tuples_equal(attached.view(0, 30), tuples)
            # and writes flow back: it is the same memory
            attached.ids[0] = 12345
            assert block.ids[0] == 12345
        finally:
            pool.close()

    def test_retained_view_outlives_attachment_wrapper(self):
        """Mapping ownership belongs to the views: a view taken from a
        temporary attachment must stay readable after the wrapper (and a
        GC pass) are gone — dangling here is a segfault, not an error."""
        rng = np.random.default_rng(9)
        pool = SharedMemoryBufferPool()
        try:
            tuples = random_tuples(rng, 21, 1000)
            block = pool.allocate(21, 1000)
            block.write(0, tuples)
            view = attach_block(block.descriptor()).view(0, 1000)
            gc.collect()
            assert_tuples_equal(view, tuples)
        finally:
            pool.close()

    def test_open_block_passes_heap_through(self):
        block = HeapBufferPool().allocate(21, 4)
        with open_block(block) as opened:
            assert opened is block

    def test_open_block_attaches_descriptor(self):
        rng = np.random.default_rng(8)
        pool = SharedMemoryBufferPool()
        try:
            tuples = random_tuples(rng, 21, 6)
            block = pool.allocate(21, 6)
            block.write(0, tuples)
            with open_block(block.descriptor()) as opened:
                assert opened is not block
                assert_tuples_equal(opened.view(0, 6), tuples)
            assert opened.lo is None  # columns dropped on exit
        finally:
            pool.close()


def _shm_names():
    shm = Path("/dev/shm")
    if not shm.is_dir():
        pytest.skip("no /dev/shm on this platform")
    return {p.name for p in shm.iterdir() if p.name.startswith("metaprep-")}


class TestSharedMemoryPool:
    def test_size_class_is_power_of_two(self):
        for nbytes in [1, 4095, 4096, 4097, 100_000]:
            size = SharedMemoryBufferPool._size_class(nbytes)
            assert size >= max(nbytes, SharedMemoryBufferPool.MIN_SEGMENT_BYTES)
            assert size & (size - 1) == 0

    def test_release_reuses_segment(self):
        pool = SharedMemoryBufferPool()
        try:
            a = pool.allocate(21, 100)
            name = a.segment
            pool.release(a)
            b = pool.allocate(21, 90)  # same size class
            assert b.segment == name
            assert pool.segments_created == 1
            assert pool.segments_reused == 1
            assert pool.live_segments == 1
        finally:
            pool.close()

    def test_close_unlinks_everything(self):
        pool = SharedMemoryBufferPool()
        blocks = [pool.allocate(21, 50) for _ in range(3)]
        names = {b.segment for b in blocks}
        assert names <= _shm_names()
        for b in blocks:
            pool.release(b)
        pool.close()
        assert not (names & _shm_names())
        assert pool.live_segments == 0
        pool.close()  # idempotent

    def test_close_with_live_views_still_unlinks(self):
        pool = SharedMemoryBufferPool()
        block = pool.allocate(21, 50)
        name = block.segment
        view = block.view(0, 10)  # keeps the mapping alive through close
        pool.close()
        assert name not in _shm_names()
        assert view.read_ids.shape == (10,)  # mapping survives unlink

    def test_abandoned_pool_swept_by_finalizer(self):
        pool = SharedMemoryBufferPool()
        name = pool.allocate(21, 50).segment
        assert name in _shm_names()
        del pool
        gc.collect()
        assert name not in _shm_names()


class TestCreateBufferPool:
    def test_auto_resolves_by_engine(self):
        assert create_buffer_pool("auto", prefer_shared=False).kind == "heap"
        with create_buffer_pool("auto", prefer_shared=True) as p:
            assert p.kind == "shared"

    def test_shared_forced_anywhere(self):
        with create_buffer_pool("shared", prefer_shared=False) as p:
            assert p.kind == "shared"

    def test_heap_with_process_engine_rejected(self):
        with pytest.raises(ValueError, match="process boundary"):
            create_buffer_pool("heap", prefer_shared=True)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataplane"):
            create_buffer_pool("mmap")


class TestBlockNbytes:
    def test_paper_tuple_accounting(self):
        # 12 bytes one-limb (8 key + 4 id), 20 bytes two-limb (16 + 4)
        assert block_nbytes(27, 10) == 120
        assert block_nbytes(33, 10) == 200

    def test_block_reports_nbytes(self):
        assert HeapBufferPool().allocate(27, 10).nbytes == 120


class TestConstruction:
    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            TupleBlock(
                21,
                -1,
                np.empty(0, np.uint64),
                None,
                np.empty(0, np.uint32),
            )


class TestPoolStats:
    """Public occupancy/HWM accounting — identical across backings."""

    @pytest.fixture(params=["heap", "shared"])
    def fresh_pool(self, request):
        p = (
            HeapBufferPool()
            if request.param == "heap"
            else SharedMemoryBufferPool()
        )
        yield p
        close = getattr(p, "close", None)
        if close:
            close()

    def test_starts_empty(self, fresh_pool):
        s = fresh_pool.stats()
        assert (s.in_use_blocks, s.in_use_bytes) == (0, 0)
        assert (s.hwm_blocks, s.hwm_bytes) == (0, 0)
        assert (s.allocated_blocks, s.allocated_bytes) == (0, 0)
        assert s.kind == fresh_pool.kind

    def test_hwm_tracks_peak_not_current(self, fresh_pool):
        a = fresh_pool.allocate(27, 10)
        b = fresh_pool.allocate(27, 10)
        peak = fresh_pool.stats()
        assert peak.in_use_blocks == 2
        assert peak.hwm_bytes == 2 * block_nbytes(27, 10)
        fresh_pool.release(a)
        fresh_pool.release(b)
        after = fresh_pool.stats()
        assert (after.in_use_blocks, after.in_use_bytes) == (0, 0)
        assert after.hwm_blocks == 2  # peak survives the releases
        assert after.hwm_bytes == peak.hwm_bytes
        assert after.allocated_blocks == 2

    def test_empty_blocks_do_not_count(self, fresh_pool):
        block = fresh_pool.allocate(27, 0)
        assert fresh_pool.stats().in_use_blocks == 0
        fresh_pool.release(block)
        assert fresh_pool.stats().allocated_blocks == 0

    def test_double_release_does_not_underflow(self, fresh_pool):
        block = fresh_pool.allocate(27, 4)
        fresh_pool.release(block)
        fresh_pool.release(block)  # views already nulled: guarded no-op
        s = fresh_pool.stats()
        assert (s.in_use_blocks, s.in_use_bytes) == (0, 0)

    def test_allocate_emits_telemetry_gauges(self, fresh_pool, tmp_path):
        from repro import telemetry
        from repro.telemetry.collect import TelemetryCollector

        collector = TelemetryCollector(tmp_path)
        telemetry.activate(collector.settings)
        try:
            block = fresh_pool.allocate(27, 10)
            fresh_pool.release(block)
        finally:
            telemetry.deactivate()
        run = collector.finalize(n_tasks=1)
        collector.close()
        nbytes = block_nbytes(27, 10)
        assert run.counter_total("buffers.bytes_allocated") == nbytes
        assert run.gauge_max("buffers.pool_hwm_bytes") == nbytes
        assert run.gauge_max("buffers.pool_in_use_blocks") == 1
