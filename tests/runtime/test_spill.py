"""Out-of-core spill module: wire format, torn-write behavior, region
writes, residency accounting, and spill-directory hygiene."""

import os
import struct
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.runtime.buffers import HeapBufferPool, SharedMemoryBufferPool
from repro.runtime.spill import (
    SpillCorruption,
    SpillLayout,
    SpillManager,
    SpillTarget,
    consume_spill,
    create_spill_file,
    read_spill,
    resident_spill,
    resident_tuple_bytes,
    rewrite_spill_ids,
    sweep_stale_spill_dirs,
    write_spill,
    write_spill_region,
)


def make_tuples(k, n, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.integers(0, 2**63, n, dtype=np.uint64)
    hi = rng.integers(0, 2**63, n, dtype=np.uint64) if k > 31 else None
    ids = rng.integers(0, 2**32, n, dtype=np.uint32)
    return KmerTuples(KmerArray(k, lo, hi), ids)


def make_block(pool, k, n, seed=0):
    tuples = make_tuples(k, n, seed)
    block = pool.allocate(k, n)
    block.write(0, tuples)
    return block, tuples


@pytest.fixture
def pool():
    p = HeapBufferPool()
    yield p
    p.close()


class TestRoundTrip:
    @pytest.mark.parametrize("k", [15, 31, 33])
    def test_write_read_bit_identical(self, pool, tmp_path, k):
        block, tuples = make_block(pool, k, 123)
        path = tmp_path / "a.spill"
        write_spill(path, block)
        got = read_spill(path, pool)
        view = got.view(0, 123)
        assert np.array_equal(view.kmers.lo, tuples.kmers.lo)
        if k > 31:
            assert np.array_equal(view.kmers.hi, tuples.kmers.hi)
        assert np.array_equal(view.read_ids, tuples.read_ids)
        pool.release(block)
        pool.release(got)

    def test_partial_length_spills_live_prefix(self, pool, tmp_path):
        block, tuples = make_block(pool, 21, 100)
        path = tmp_path / "a.spill"
        write_spill(path, block, length=40)
        got = read_spill(path, pool)
        assert got.capacity == 40
        assert np.array_equal(
            got.view(0, 40).kmers.lo, tuples.kmers.lo[:40]
        )
        pool.release(block)
        pool.release(got)

    def test_zero_tuple_block(self, pool, tmp_path):
        block = pool.allocate(27, 0)
        path = tmp_path / "empty.spill"
        write_spill(path, block)
        got = read_spill(path, pool)
        assert got.capacity == 0
        pool.release(block)
        pool.release(got)

    def test_restores_into_shared_pool(self, pool, tmp_path):
        """Backing is the loader's choice: heap-written spill restores
        into a shared-memory segment with identical bytes."""
        block, tuples = make_block(pool, 33, 64)
        path = tmp_path / "a.spill"
        write_spill(path, block)
        shared = SharedMemoryBufferPool()
        try:
            got = read_spill(path, shared)
            view = got.view(0, 64)
            assert np.array_equal(view.kmers.lo, tuples.kmers.lo)
            assert np.array_equal(view.kmers.hi, tuples.kmers.hi)
            assert np.array_equal(view.read_ids, tuples.read_ids)
            shared.release(got)
        finally:
            shared.close()
        pool.release(block)

    def test_no_tmp_file_left_after_publish(self, pool, tmp_path):
        block, _ = make_block(pool, 21, 10)
        write_spill(tmp_path / "a.spill", block)
        assert [p.name for p in tmp_path.iterdir()] == ["a.spill"]
        pool.release(block)


class TestRegionWrites:
    @pytest.mark.parametrize("k", [15, 33])
    def test_region_filled_equals_single_shot(self, pool, tmp_path, k):
        """The load-bearing layout property: a preallocated file filled
        region by region is byte-identical to one written in one shot."""
        n = 97
        block, tuples = make_block(pool, k, n)
        one_shot = tmp_path / "one.spill"
        write_spill(one_shot, block)

        regioned = tmp_path / "regioned.spill"
        create_spill_file(regioned, k, n)
        target = SpillTarget(str(regioned), k, n)
        at = 0
        for cut in (0, 13, 13, 60, n):  # includes an empty region
            part = tuples.take(np.arange(at, cut))
            assert write_spill_region(target, at, part) == cut
            at = cut
        assert one_shot.read_bytes() == regioned.read_bytes()
        pool.release(block)

    def test_out_of_range_region_rejected(self, tmp_path):
        create_spill_file(tmp_path / "a.spill", 21, 10)
        target = SpillTarget(str(tmp_path / "a.spill"), 21, 10)
        with pytest.raises(ValueError, match="out of range"):
            write_spill_region(target, 5, make_tuples(21, 6))

    def test_k_mismatch_rejected(self, tmp_path):
        create_spill_file(tmp_path / "a.spill", 21, 10)
        target = SpillTarget(str(tmp_path / "a.spill"), 21, 10)
        with pytest.raises(ValueError, match="k mismatch"):
            write_spill_region(target, 0, make_tuples(27, 5))

    def test_rewrite_ids_region(self, pool, tmp_path):
        block, tuples = make_block(pool, 21, 50)
        path = tmp_path / "a.spill"
        write_spill(path, block)
        target = SpillTarget(str(path), 21, 50)
        rewrite_spill_ids(target, 10, 30, lambda ids: ids * np.uint32(2))
        got = read_spill(path, pool)
        view = got.view(0, 50)
        expect = tuples.read_ids.copy()
        expect[10:30] *= np.uint32(2)
        assert np.array_equal(view.read_ids, expect)
        # the k-mer columns are untouched
        assert np.array_equal(view.kmers.lo, tuples.kmers.lo)
        pool.release(block)
        pool.release(got)

    def test_rewrite_ids_length_change_rejected(self, pool, tmp_path):
        block, _ = make_block(pool, 21, 20)
        path = tmp_path / "a.spill"
        write_spill(path, block)
        target = SpillTarget(str(path), 21, 20)
        with pytest.raises(ValueError, match="length"):
            rewrite_spill_ids(target, 0, 10, lambda ids: ids[:-1])
        pool.release(block)


class TestTornWrites:
    """Corruption must raise the typed error; a partial block is never
    returned."""

    def _spill(self, pool, tmp_path, k=21, n=40):
        block, _ = make_block(pool, k, n)
        path = tmp_path / "a.spill"
        write_spill(path, block)
        pool.release(block)
        return path

    def test_truncated_mid_magic(self, pool, tmp_path):
        path = self._spill(pool, tmp_path)
        path.write_bytes(path.read_bytes()[:4])
        with pytest.raises(SpillCorruption):
            read_spill(path, pool)

    def test_truncated_header(self, pool, tmp_path):
        path = self._spill(pool, tmp_path)
        path.write_bytes(path.read_bytes()[:20])
        with pytest.raises(SpillCorruption):
            read_spill(path, pool)

    def test_truncated_payload(self, pool, tmp_path):
        path = self._spill(pool, tmp_path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 7])
        with pytest.raises(SpillCorruption):
            read_spill(path, pool)

    def test_bad_magic(self, pool, tmp_path):
        path = self._spill(pool, tmp_path)
        data = bytearray(path.read_bytes())
        data[:8] = b"NOTATABL"
        path.write_bytes(bytes(data))
        with pytest.raises(SpillCorruption):
            read_spill(path, pool)

    def test_version_skew(self, pool, tmp_path):
        path = self._spill(pool, tmp_path)
        data = bytearray(path.read_bytes())
        # the <II (version, hlen) prolog sits right after the magic
        data[8:12] = struct.pack("<I", 999)
        path.write_bytes(bytes(data))
        with pytest.raises(SpillCorruption):
            read_spill(path, pool)

    def test_wrong_schema(self, pool, tmp_path):
        from repro.seqio.tables import write_table

        path = tmp_path / "a.spill"
        write_table(
            path, "metaprep/other", {"k": 21}, {"lo": np.zeros(3, np.uint64)}
        )
        with pytest.raises(SpillCorruption):
            read_spill(path, pool)

    def test_contradictory_two_limb_flag(self, pool, tmp_path):
        from repro.seqio.tables import write_table

        path = tmp_path / "a.spill"
        write_table(
            path,
            "metaprep/tupleblock",
            {"k": 21, "length": 3, "two_limb": True},
            {
                "lo": np.zeros(3, np.uint64),
                "ids": np.zeros(3, np.uint32),
                "hi": np.zeros(3, np.uint64),
            },
        )
        with pytest.raises(SpillCorruption, match="contradicts"):
            read_spill(path, pool)

    def test_missing_file_stays_file_not_found(self, pool, tmp_path):
        with pytest.raises(FileNotFoundError):
            read_spill(tmp_path / "absent.spill", pool)


class TestResidency:
    def test_resident_spill_accounts_and_releases(self, pool, tmp_path):
        block, tuples = make_block(pool, 21, 64)
        path = tmp_path / "a.spill"
        write_spill(path, block)
        target = SpillTarget(str(path), 21, 64)
        base = resident_tuple_bytes()
        with resident_spill(target) as got:
            assert resident_tuple_bytes() == base + got.nbytes
            assert np.array_equal(got.view(0, 64).read_ids, tuples.read_ids)
        assert resident_tuple_bytes() == base
        assert path.exists()
        pool.release(block)

    def test_consume_deletes_after_exit(self, pool, tmp_path):
        block, _ = make_block(pool, 21, 8)
        path = tmp_path / "a.spill"
        write_spill(path, block)
        with resident_spill(SpillTarget(str(path), 21, 8), consume=True):
            assert path.exists()
        assert not path.exists()
        pool.release(block)

    def test_consume_is_idempotent(self, tmp_path):
        consume_spill(tmp_path / "never-existed.spill")


class TestSpillLayout:
    def test_layout_matches_file(self, pool, tmp_path):
        block, tuples = make_block(pool, 33, 17)
        path = tmp_path / "a.spill"
        write_spill(path, block)
        layout = SpillLayout.for_block(33, 17)
        data = path.read_bytes()
        assert len(data) == layout.file_bytes
        lo = np.frombuffer(
            data[layout.lo_offset : layout.lo_offset + 8 * 17], np.uint64
        )
        assert np.array_equal(lo, tuples.kmers.lo)
        ids = np.frombuffer(
            data[layout.ids_offset : layout.ids_offset + 4 * 17], np.uint32
        )
        assert np.array_equal(ids, tuples.read_ids)
        hi = np.frombuffer(
            data[layout.hi_offset : layout.hi_offset + 8 * 17], np.uint64
        )
        assert np.array_equal(hi, tuples.kmers.hi)
        pool.release(block)

    def test_one_limb_has_no_hi_offset(self):
        assert SpillLayout.for_block(21, 5).hi_offset == -1

    def test_negative_length_rejected(self):
        with pytest.raises(ValueError):
            SpillLayout.for_block(21, -1)


class TestSpillManager:
    def test_create_publish_consume_cycle(self, pool, tmp_path):
        with SpillManager(tmp_path) as mgr:
            targets = mgr.create_pass_targets(0, 21, [10, 0, 5])
            assert all(t.path.endswith(".tmp") for t in targets)
            for t in targets:
                write_spill_region(t, 0, make_tuples(21, t.capacity))
            published = mgr.publish(targets)
            assert all(p.path.endswith(".spill") for p in published)
            for p in published:
                with resident_spill(p, consume=True) as block:
                    assert block.capacity == p.capacity
            assert mgr.sweep_pass(0) == 0  # consumers already cleaned up
        assert not Path(mgr.directory).exists()

    def test_close_removes_unconsumed_files(self, tmp_path):
        mgr = SpillManager(tmp_path)
        mgr.create_pass_targets(0, 21, [4, 4])
        directory = Path(mgr.directory)
        assert len(list(directory.iterdir())) == 2
        mgr.close()
        assert not directory.exists()
        assert mgr.closed

    def test_sweep_pass_covers_failure_paths(self, tmp_path):
        with SpillManager(tmp_path) as mgr:
            targets = mgr.create_pass_targets(1, 21, [4, 4])
            mgr.publish(targets[:1])  # one published, one still .tmp
            assert mgr.sweep_pass(1) == 2
            assert list(Path(mgr.directory).iterdir()) == []

    def test_publish_is_idempotent_for_final_names(self, tmp_path):
        with SpillManager(tmp_path) as mgr:
            targets = mgr.create_pass_targets(0, 21, [3])
            once = mgr.publish(targets)
            twice = mgr.publish(once)
            assert once == twice

    def test_finalizer_sweeps_on_gc(self, tmp_path):
        mgr = SpillManager(tmp_path)
        directory = Path(mgr.directory)
        mgr.create_pass_targets(0, 21, [4])
        del mgr
        import gc

        gc.collect()
        assert not directory.exists()


class TestStaleSweep:
    def test_dead_pid_dir_swept(self, tmp_path):
        # a pid that existed and is now certainly dead
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        dead_pid = int(proc.stdout.strip())
        stale = tmp_path / f"metaprep-spill-{dead_pid}-abc123"
        stale.mkdir()
        (stale / "pass0-task0.spill").write_bytes(b"junk")
        removed = sweep_stale_spill_dirs(tmp_path)
        assert stale in removed
        assert not stale.exists()

    def test_live_pid_dir_kept(self, tmp_path):
        live = tmp_path / f"metaprep-spill-{os.getpid()}-abc123"
        live.mkdir()
        assert sweep_stale_spill_dirs(tmp_path) == []
        assert live.exists()

    def test_unparseable_names_left_alone(self, tmp_path):
        odd = tmp_path / "metaprep-spill-notapid"
        odd.mkdir()
        assert sweep_stale_spill_dirs(tmp_path) == []
        assert odd.exists()

    def test_manager_sweeps_stale_on_startup(self, tmp_path):
        proc = subprocess.run(
            [sys.executable, "-c", "import os; print(os.getpid())"],
            capture_output=True,
            text=True,
            check=True,
        )
        stale = tmp_path / f"metaprep-spill-{int(proc.stdout)}-dead"
        stale.mkdir()
        with SpillManager(tmp_path):
            assert not stale.exists()


class TestCheckpointDelegation:
    def test_checkpoint_aliases_round_trip(self, pool, tmp_path):
        """The historical checkpoint entry points stay byte-compatible:
        they are thin aliases of the spill module now."""
        from repro.core.checkpoint import load_block_spill, save_block_spill

        block, tuples = make_block(pool, 33, 29)
        path = tmp_path / "ckpt.bin"
        save_block_spill(path, block)
        got = load_block_spill(path, pool)
        view = got.view(0, 29)
        assert np.array_equal(view.kmers.lo, tuples.kmers.lo)
        assert np.array_equal(view.kmers.hi, tuples.kmers.hi)
        assert np.array_equal(view.read_ids, tuples.read_ids)
        pool.release(block)
        pool.release(got)
