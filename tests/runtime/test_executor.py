"""Unit tests for the pluggable execution backends.

The backends' two contracts — result order == submission order, and loud
failure instead of hangs — are what the pipeline's bit-identity guarantee
rests on; both are exercised here directly, below the pipeline.
"""

import multiprocessing as mp
import os

import pytest

from repro.runtime.executor import (
    ENGINES,
    EXECUTOR_NAMES,
    DistributedExecutor,
    ExecutorError,
    ProcessExecutor,
    SerialExecutor,
    create_engine,
    create_executor,
    worker_shared,
)

HAS_FORK = "fork" in mp.get_all_start_methods()


# ---- module-level job functions (picklable for the process engine) ----
def _square(x):
    return x * x


def _raise_on_three(x):
    if x == 3:
        raise ValueError(f"injected job failure on {x}")
    return x


def _exit_on_two(x):
    if x == 2:
        os._exit(17)  # simulate a segfault/OOM-kill: no exception, no result
    return x


def _shared_plus(x):
    return worker_shared() + x


class TestFactory:
    def test_names(self):
        assert create_executor("serial").name == "serial"
        assert create_executor("process").name == "process"
        assert set(EXECUTOR_NAMES) == {"serial", "process", "distributed"}

    def test_registry_drives_names(self):
        # EXECUTOR_NAMES is derived from the registry dict, not a
        # parallel literal that could drift out of sync
        assert EXECUTOR_NAMES == tuple(ENGINES)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            create_executor("mpi")

    def test_unknown_name_lists_registered_engines(self):
        with pytest.raises(
            ValueError, match="distributed, process, serial"
        ):
            create_engine("mpi")

    def test_create_engine_is_create_executor(self):
        assert create_engine is create_executor

    def test_distributed_needs_workers(self):
        with pytest.raises(ValueError, match="at least one worker"):
            create_engine("distributed")
        with pytest.raises(ValueError, match="at least one worker"):
            DistributedExecutor(())

    def test_distributed_rejects_malformed_address(self):
        with pytest.raises(ValueError, match="host:port"):
            DistributedExecutor(("localhost",))

    def test_bad_worker_count_rejected(self):
        with pytest.raises(ValueError, match="max_workers"):
            ProcessExecutor(max_workers=0)

    def test_default_worker_count(self):
        ex = ProcessExecutor()
        assert ex.max_workers >= 1


class TestSerialExecutor:
    def test_map_order_and_values(self):
        with SerialExecutor() as ex:
            assert ex.map(_square, [3, 1, 2]) == [9, 1, 4]

    def test_empty_jobs(self):
        with SerialExecutor() as ex:
            assert ex.map(_square, []) == []

    def test_shared_state(self):
        ex = SerialExecutor()
        ex.set_shared(100)
        assert ex.map(_shared_plus, [1, 2]) == [101, 102]
        ex.close()
        assert worker_shared() is None

    def test_job_exception_propagates(self):
        with SerialExecutor() as ex:
            with pytest.raises(ValueError, match="injected job failure"):
                ex.map(_raise_on_three, [1, 2, 3, 4])


class TestProcessExecutor:
    def test_map_order_and_values(self):
        with ProcessExecutor(max_workers=2) as ex:
            assert ex.map(_square, list(range(10))) == [
                x * x for x in range(10)
            ]

    def test_empty_jobs_do_not_spawn(self):
        ex = ProcessExecutor(max_workers=2)
        assert ex.map(_square, []) == []
        assert ex._pool is None  # no pool was ever created
        ex.close()

    def test_pool_reused_across_maps(self):
        with ProcessExecutor(max_workers=2) as ex:
            ex.map(_square, [1])
            pool = ex._pool
            ex.map(_square, [2])
            assert ex._pool is pool

    def test_shared_state_reaches_workers(self):
        with ProcessExecutor(max_workers=2) as ex:
            ex.set_shared(100)
            assert ex.map(_shared_plus, [1, 2, 3]) == [101, 102, 103]

    def test_set_shared_recycles_pool(self):
        with ProcessExecutor(max_workers=2) as ex:
            ex.set_shared(10)
            assert ex.map(_shared_plus, [0]) == [10]
            ex.set_shared(20)
            assert ex.map(_shared_plus, [0]) == [20]

    def test_job_exception_propagates_as_itself(self):
        with ProcessExecutor(max_workers=2) as ex:
            with pytest.raises(ValueError, match="injected job failure"):
                ex.map(_raise_on_three, [1, 2, 3, 4])

    @pytest.mark.skipif(not HAS_FORK, reason="requires fork start method")
    def test_dead_worker_raises_not_hangs(self):
        with ProcessExecutor(max_workers=2) as ex:
            with pytest.raises(ExecutorError, match="worker died"):
                ex.map(_exit_on_two, [1, 2, 3])
        # the executor is reusable after the failure: a fresh pool spawns
        with ProcessExecutor(max_workers=2) as ex2:
            assert ex2.map(_square, [2]) == [4]

    def test_close_idempotent(self):
        ex = ProcessExecutor(max_workers=1)
        ex.map(_square, [1])
        ex.close()
        ex.close()


class TestDistributedExecutor:
    """Against in-process loopback daemons — the wire is real TCP, the
    workers just live in this interpreter for speed and cleanup."""

    @pytest.fixture()
    def daemons(self):
        from repro.runtime.worker import WorkerDaemon

        started = [WorkerDaemon(), WorkerDaemon()]
        for d in started:
            d.start()
        yield started
        for d in started:
            d.stop()

    def _engine(self, daemons):
        return DistributedExecutor(tuple(d.address for d in daemons))

    def test_map_order_and_values(self, daemons):
        with self._engine(daemons) as ex:
            assert ex.map(_square, list(range(10))) == [
                x * x for x in range(10)
            ]

    def test_empty_jobs(self, daemons):
        with self._engine(daemons) as ex:
            assert ex.map(_square, []) == []

    def test_shared_state_reaches_workers(self, daemons):
        with self._engine(daemons) as ex:
            ex.set_shared(100)
            assert ex.map(_shared_plus, [1, 2, 3]) == [101, 102, 103]

    def test_job_exception_propagates_as_itself(self, daemons):
        with self._engine(daemons) as ex:
            with pytest.raises(ValueError, match="injected job failure"):
                ex.map(_raise_on_three, [1, 2, 3, 4])

    def test_unreachable_worker_fails_at_set_shared(self):
        # a registry pointing at a port nobody listens on must fail
        # loudly when run state is installed, not hang in map()
        ex = DistributedExecutor(("127.0.0.1:9",), timeout=0.2, retries=1)
        with pytest.raises(ExecutorError, match="unreachable"):
            ex.set_shared(0)

    @pytest.mark.skipif(not HAS_FORK, reason="requires fork start method")
    def test_dead_worker_raises_not_hangs(self, daemons):
        import multiprocessing as _mp

        from repro.runtime.worker import WorkerDaemon

        def _doomed(q):
            d = WorkerDaemon(_exit_after_jobs=0)
            q.put(d.address)
            d.serve_forever()

        ctx = _mp.get_context("fork")
        q = ctx.Queue()
        proc = ctx.Process(target=_doomed, args=(q,), daemon=True)
        proc.start()
        doomed_address = q.get(timeout=10)
        try:
            ex = DistributedExecutor((daemons[0].address, doomed_address))
            with ex:
                with pytest.raises(ExecutorError, match="died"):
                    ex.map(_square, [1, 2, 3, 4])
        finally:
            proc.join(timeout=10)

    def test_close_idempotent(self, daemons):
        ex = self._engine(daemons)
        ex.map(_square, [1])
        ex.close()
        ex.close()


class TestAvailableCpuCount:
    def test_at_least_one(self):
        from repro.runtime.executor import available_cpu_count

        assert available_cpu_count() >= 1

    def test_prefers_affinity_mask(self, monkeypatch):
        import repro.runtime.executor as executor_mod
        from repro.runtime.executor import available_cpu_count

        monkeypatch.setattr(
            executor_mod.os, "sched_getaffinity", lambda pid: {0, 1, 5},
            raising=False,
        )
        assert available_cpu_count() == 3

    def test_falls_back_to_cpu_count(self, monkeypatch):
        import repro.runtime.executor as executor_mod
        from repro.runtime.executor import available_cpu_count

        monkeypatch.delattr(
            executor_mod.os, "sched_getaffinity", raising=False
        )
        monkeypatch.setattr(executor_mod.os, "cpu_count", lambda: 7)
        assert available_cpu_count() == 7

    def test_default_pool_size_uses_it(self, monkeypatch):
        import repro.runtime.executor as executor_mod

        monkeypatch.setattr(
            executor_mod, "available_cpu_count", lambda: 5
        )
        assert ProcessExecutor().max_workers == 5


class TestSharedStateThreadConfinement:
    """Concurrent in-process runs (the job service) must not clobber each
    other's shared context: worker_shared() is per-thread."""

    def test_threads_see_their_own_shared(self):
        import threading

        seen = {}
        barrier = threading.Barrier(2)

        def run(tag, value):
            ex = SerialExecutor()
            ex.set_shared(value)
            barrier.wait()  # both threads have installed their state
            seen[tag] = ex.map(_shared_plus, [0, 1])
            ex.close()

        threads = [
            threading.Thread(target=run, args=("a", 100)),
            threading.Thread(target=run, args=("b", 200)),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert seen == {"a": [100, 101], "b": [200, 201]}

    def test_close_on_one_thread_leaves_others_alone(self):
        import threading

        ex = SerialExecutor()
        ex.set_shared(42)

        def other_thread_close():
            SerialExecutor().close()  # installs None on *that* thread only

        t = threading.Thread(target=other_thread_close)
        t.start()
        t.join()
        assert worker_shared() == 42
        ex.close()
