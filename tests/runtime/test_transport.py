"""Unit tests for the transport-agnostic block plane.

Three layers, bottom up: the framed wire protocol (checksummed
length-prefixed frames over a socketpair — corruption must be *typed*,
never a silent mis-parse), the worker-side :class:`BlockStore`, and the
:class:`BlockTransport` implementations against a live loopback
:class:`~repro.runtime.worker.WorkerDaemon`.
"""

import pickle
import socket
import struct

import numpy as np
import pytest

from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.runtime.transport import (
    FRAME_HEADER,
    FRAME_OK,
    BlockStore,
    PoolBlockTransport,
    SocketBlockRef,
    SocketBlockTransport,
    TransportClosed,
    TransportCorruption,
    TransportError,
    connect_with_retry,
    create_block_transport,
    parse_address,
    recv_frame,
    resolve_block,
    send_frame,
    tuples_from_columns,
    write_block_region,
)
from repro.runtime.buffers import HeapBufferPool


def make_tuples(k, lo, ids):
    return KmerTuples(
        KmerArray(k, np.asarray(lo, dtype=np.uint64)),
        np.asarray(ids, dtype=np.uint32),
    )


class TestParseAddress:
    def test_host_port(self):
        assert parse_address("127.0.0.1:9201") == ("127.0.0.1", 9201)

    def test_rejects_bare_host(self):
        with pytest.raises(ValueError, match="host:port"):
            parse_address("localhost")


class TestFrameProtocol:
    def roundtrip(self, kind, payload):
        a, b = socket.socketpair()
        try:
            send_frame(a, kind, payload)
            return recv_frame(b)
        finally:
            a.close()
            b.close()

    def test_roundtrip(self):
        payload = bytes(range(256)) * 17
        assert self.roundtrip(FRAME_OK, payload) == (FRAME_OK, payload)

    def test_roundtrip_empty_payload(self):
        assert self.roundtrip(7, b"") == (7, b"")

    def test_clean_eof_is_transport_closed(self):
        a, b = socket.socketpair()
        a.close()
        try:
            with pytest.raises(TransportClosed):
                recv_frame(b)
        finally:
            b.close()

    def test_eof_mid_frame_is_corruption(self):
        a, b = socket.socketpair()
        try:
            # half a header, then EOF: a torn frame, not a clean close
            a.sendall(b"MPNT\x01\x00")
        finally:
            a.close()
        try:
            with pytest.raises(TransportCorruption, match="torn frame"):
                recv_frame(b)
        finally:
            b.close()

    def test_corrupt_payload_detected(self):
        a, b = socket.socketpair()
        try:
            send_frame(a, FRAME_OK, b"payload-bytes")
        finally:
            a.close()
        try:
            raw = bytearray()
            while True:
                chunk = b.recv(4096)
                if not chunk:
                    break
                raw.extend(chunk)
        finally:
            b.close()
        raw[-1] ^= 0xFF  # flip one payload bit
        a2, b2 = socket.socketpair()
        try:
            a2.sendall(bytes(raw))
            a2.close()
            with pytest.raises(TransportCorruption, match="payload checksum"):
                recv_frame(b2)
        finally:
            b2.close()

    def test_corrupt_header_detected(self):
        a, b = socket.socketpair()
        try:
            # valid-looking header with a wrong header checksum
            head = FRAME_HEADER.pack(b"MPNT", 1, FRAME_OK, 0, 0, 0)
            head = head[:-4] + struct.pack("<I", 0xDEADBEEF)
            a.sendall(head)
            a.close()
            with pytest.raises(TransportCorruption, match="header checksum"):
                recv_frame(b)
        finally:
            b.close()

    def test_bad_magic_detected(self):
        import zlib

        a, b = socket.socketpair()
        try:
            head = FRAME_HEADER.pack(b"XXXX", 1, FRAME_OK, 0, 0, 0)
            head = head[:-4] + struct.pack("<I", zlib.crc32(head[:-4]))
            a.sendall(head)
            a.close()
            with pytest.raises(TransportCorruption, match="magic"):
                recv_frame(b)
        finally:
            b.close()


class TestConnectWithRetry:
    def test_unreachable_raises_transport_error(self):
        with pytest.raises(TransportError, match="could not connect"):
            connect_with_retry("127.0.0.1:9", timeout=0.2, retries=2,
                               delay=0.01)

    def test_connects_and_is_context_managed(self):
        server = socket.socket()
        server.bind(("127.0.0.1", 0))
        server.listen(1)
        host, port = server.getsockname()
        try:
            with connect_with_retry(f"{host}:{port}", timeout=2.0) as sock:
                assert sock.getpeername() == (host, port)
        finally:
            server.close()


class TestBlockStore:
    def test_allocate_get_free(self):
        store = BlockStore()
        bid = store.allocate(21, 8)
        assert len(store) == 1
        block = store.get(bid)
        assert block.capacity == 8
        store.free(bid)
        assert len(store) == 0
        with pytest.raises(TransportError, match="unknown block id"):
            store.get(bid)

    def test_free_is_idempotent(self):
        store = BlockStore()
        bid = store.allocate(21, 4)
        store.free(bid)
        store.free(bid)

    def test_sweep_counts_live_blocks(self):
        store = BlockStore()
        store.allocate(21, 4)
        store.allocate(21, 4)
        assert store.sweep() == 2
        assert store.sweep() == 0

    def test_ids_never_reused(self):
        store = BlockStore()
        a = store.allocate(21, 4)
        store.free(a)
        b = store.allocate(21, 4)
        assert b != a


class TestPoolBlockTransport:
    def test_heap_plane_roundtrip(self):
        with PoolBlockTransport(HeapBufferPool()) as plane:
            assert plane.name == "heap"
            handle = plane.publish(21, 6, owner=0)
            write_block_region(
                handle, 0, make_tuples(21, [5, 3, 9], [1, 2, 3]), sender=0
            )
            with resolve_block(handle) as block:
                assert list(block.view(0, 3).read_ids) == [1, 2, 3]
            plane.write_ids(handle, 0, 3, np.array([7, 8, 9], np.uint32))
            assert list(plane.read_ids(handle, 0, 3)) == [7, 8, 9]
            plane.release(handle)


class TestSocketBlockTransport:
    @pytest.fixture()
    def daemon(self):
        from repro.runtime.worker import WorkerDaemon

        d = WorkerDaemon()
        d.start()
        yield d
        d.stop()

    def test_publish_write_read_release(self, daemon):
        with SocketBlockTransport((daemon.address,)) as plane:
            handle = plane.publish(21, 6, owner=0)
            assert isinstance(handle, SocketBlockRef)
            assert handle.address == daemon.address
            # a remote write (sender != owner) travels over the wire
            write_block_region(
                handle, 0, make_tuples(21, [5, 3, 9], [1, 2, 3]), sender=1
            )
            assert list(plane.read_ids(handle, 0, 3)) == [1, 2, 3]
            plane.write_ids(handle, 1, 3, np.array([8, 9], np.uint32))
            assert list(plane.read_ids(handle, 0, 3)) == [1, 8, 9]
            plane.release(handle)
            with pytest.raises(TransportError, match="unknown block id"):
                plane.read_ids(handle, 0, 3)

    def test_local_store_resolves_zero_copy(self, daemon):
        with SocketBlockTransport((daemon.address,)) as plane:
            handle = plane.publish(21, 4, owner=0)
            # this process hosts the daemon, so the diagonal write and
            # the resolve both go through the local store directly
            write_block_region(
                handle, 0, make_tuples(21, [1, 2], [4, 5]), sender=0
            )
            with resolve_block(handle) as block:
                assert block is daemon.store.get(handle.block_id)
                assert list(block.view(0, 2).read_ids) == [4, 5]
            plane.release(handle)

    def test_remote_resolve_fetches_copy(self, daemon):
        from repro.runtime import transport as tp

        with SocketBlockTransport((daemon.address,)) as plane:
            handle = plane.publish(21, 2, owner=0)
            write_block_region(
                handle, 0, make_tuples(21, [1, 2], [4, 5]), sender=0
            )
            # simulate a non-hosting process: hide the local store
            saved = tp._LOCAL_STORES.pop(daemon.address)
            try:
                with resolve_block(handle) as block:
                    assert block is not daemon.store.get(handle.block_id)
                    assert list(block.view(0, 2).read_ids) == [4, 5]
            finally:
                tp._LOCAL_STORES[daemon.address] = saved
            plane.release(handle)

    def test_placement_follows_owner_modulo(self, daemon):
        from repro.runtime.worker import WorkerDaemon

        second = WorkerDaemon()
        second.start()
        try:
            with SocketBlockTransport(
                (daemon.address, second.address)
            ) as plane:
                h0 = plane.publish(21, 2, owner=0)
                h1 = plane.publish(21, 2, owner=1)
                h2 = plane.publish(21, 2, owner=2)
                assert h0.address == daemon.address
                assert h1.address == second.address
                assert h2.address == daemon.address
                for h in (h0, h1, h2):
                    plane.release(h)
        finally:
            second.stop()

    def test_close_sweeps_unreleased_blocks(self, daemon):
        plane = SocketBlockTransport((daemon.address,))
        plane.publish(21, 4, owner=0)
        plane.publish(21, 4, owner=1)
        assert len(daemon.store) == 2
        plane.close()
        assert len(daemon.store) == 0

    def test_release_tolerates_dead_worker(self, daemon):
        plane = SocketBlockTransport((daemon.address,), timeout=0.2)
        handle = plane.publish(21, 4, owner=0)
        daemon.stop()
        plane.release(handle)  # must not raise: cleanup is best-effort
        plane.close()


class TestCreateBlockTransport:
    def test_serial_engine_gets_heap_plane(self):
        from repro.runtime.executor import create_engine

        with create_engine("serial") as ex:
            with create_block_transport("auto", ex) as plane:
                assert isinstance(plane, PoolBlockTransport)
                assert plane.name == "heap"

    def test_distributed_engine_gets_socket_plane(self):
        from repro.runtime.executor import DistributedExecutor
        from repro.runtime.worker import WorkerDaemon

        d = WorkerDaemon()
        d.start()
        try:
            ex = DistributedExecutor((d.address,))
            with create_block_transport("auto", ex) as plane:
                assert isinstance(plane, SocketBlockTransport)
                assert plane.workers == (d.address,)
            ex.close()
        finally:
            d.stop()


class TestColumnCodec:
    def test_two_limb_roundtrip(self):
        # k = 33 needs the hi limb; the codec must carry it
        lo = np.array([1, 2, 3], np.uint64)
        hi = np.array([9, 8, 7], np.uint64)
        tuples = KmerTuples(
            KmerArray(33, lo, hi), np.array([4, 5, 6], np.uint32)
        )
        from repro.runtime.transport import _tuple_columns

        lo_b, hi_b, ids_b = _tuple_columns(tuples)
        back = tuples_from_columns(33, 3, lo_b, hi_b, ids_b)
        assert np.array_equal(back.kmers.lo, lo)
        assert np.array_equal(back.kmers.hi, hi)
        assert np.array_equal(back.read_ids, np.array([4, 5, 6], np.uint32))

    def test_single_limb_roundtrip(self):
        tuples = make_tuples(21, [1, 2], [3, 4])
        from repro.runtime.transport import _tuple_columns

        lo_b, hi_b, ids_b = _tuple_columns(tuples)
        assert hi_b == b""
        back = tuples_from_columns(21, 2, lo_b, hi_b, ids_b)
        assert back.kmers.hi is None
        assert np.array_equal(back.kmers.lo, tuples.kmers.lo)


def test_pickled_handle_roundtrips():
    ref = SocketBlockRef("127.0.0.1:9201", 3, 21, 100, owner=1)
    assert pickle.loads(pickle.dumps(ref)) == ref
