import pytest

from repro.runtime.machines import EDISON, GANGA, get_machine


class TestRegistry:
    def test_lookup(self):
        assert get_machine("edison") is EDISON
        assert get_machine("GANGA") is GANGA

    def test_unknown_rejected(self):
        with pytest.raises(KeyError, match="unknown machine"):
            get_machine("summit")


class TestEdisonSpec:
    def test_paper_constants(self):
        assert EDISON.cores_per_node == 24
        assert EDISON.stream_bw == pytest.approx(99e9)
        assert EDISON.link_bw == pytest.approx(8e9)
        assert EDISON.io_scales_with_nodes

    def test_ganga_slower_and_smaller(self):
        assert GANGA.cores_per_node == 12
        assert GANGA.kmer_rate < EDISON.kmer_rate
        assert not GANGA.io_scales_with_nodes


class TestBandwidthModels:
    def test_read_bw_splits_across_tasks(self):
        bw1 = EDISON.task_io_read_bw(1)
        bw16 = EDISON.task_io_read_bw(16)
        assert bw16 <= bw1
        assert bw16 > 0

    def test_node_injection_cap(self):
        # one task cannot exceed the node injection cap
        assert EDISON.task_io_read_bw(1) <= EDISON.node_io_bw

    def test_saturation_bends_thread_scaling(self):
        r1 = EDISON.core_rate_with_saturation(EDISON.kmer_rate, 1)
        r24 = EDISON.core_rate_with_saturation(EDISON.kmer_rate, 24)
        assert r1 == EDISON.kmer_rate
        assert r24 <= r1
        # aggregate throughput still grows with threads
        assert 24 * r24 > 1 * r1

    def test_saturation_respects_stream_bw(self):
        t = 24
        r = EDISON.core_rate_with_saturation(
            EDISON.sort_rate, t, EDISON.sort_bytes_touched
        )
        assert r * t * EDISON.sort_bytes_touched <= EDISON.stream_bw * 1.001

    def test_random_scatter_kernels_saturate_first(self):
        t = 24
        kmer = EDISON.core_rate_with_saturation(
            EDISON.kmer_rate, t, EDISON.kmer_bytes_touched
        )
        sort = EDISON.core_rate_with_saturation(
            EDISON.sort_rate, t, EDISON.sort_bytes_touched
        )
        # streaming kernel keeps full rate; scatter kernel is capped
        assert kmer == EDISON.kmer_rate
        assert sort < EDISON.sort_rate

    def test_hyperthreads_add_no_throughput(self):
        r12 = GANGA.core_rate_with_saturation(GANGA.kmer_rate, 12)
        r24 = GANGA.core_rate_with_saturation(GANGA.kmer_rate, 24)
        # 24 threads on 12 cores: per-thread rate halves, aggregate flat
        assert 24 * r24 <= 12 * r12 * 1.001
