"""Timing-model behaviour: the *shapes* the projections must show."""

import numpy as np
import pytest

from repro.runtime.machines import EDISON, GANGA
from repro.runtime.timing import TimingModel
from repro.runtime.work import RunWork, StepNames


def uniform_work(P, T, S=1, tuples_total=2_200_000_000, reads=12_700_000, k=27):
    # defaults are HG-scale (paper Table 2): realistic volumes keep fixed
    # per-pass overheads in proportion, as on the real machine
    """A perfectly balanced workload of fixed total size."""
    w = RunWork(n_tasks=P, n_threads=T, n_passes=S, n_reads=reads, k=k, tuple_bytes=12)
    per_slot = tuples_total // (P * T)
    w.kmergen_tuples += per_slot
    w.kmergen_positions_scanned += per_slot * S
    w.kmergen_io_bytes += (tuples_total * 2 // (P * T)) * S
    w.fastq_parse_bytes[:] = w.kmergen_io_bytes
    w.partition_tuples += per_slot
    w.sort_tuple_passes += per_slot * 8
    w.cc_edges_first_pass += per_slot // 3
    w.ccio_bytes += tuples_total * 2 // (P * T)
    if P > 1:
        per_msg = tuples_total * 12 // (P * P)
        w.comm_bytes_matrix += per_msg
        w.comm_stage_max_bytes = [
            [0] + [per_msg] * (P - 1) for _ in range(S)
        ]
        from repro.cc.mergecc import tree_merge_schedule

        w.merge_rounds = tree_merge_schedule(P)
        w.merge_bytes_per_send = 4 * reads
        w.broadcast_bytes = 4 * reads
        w.merge_entries_by_task = np.zeros(P, dtype=np.int64)
    return w


class TestSingleNodeScaling:
    def test_more_threads_faster(self):
        model = TimingModel(EDISON)
        t1 = model.project(uniform_work(1, 1)).total_seconds
        t24 = model.project(uniform_work(1, 24)).total_seconds
        assert t24 < t1

    def test_speedup_sublinear_at_high_threads(self):
        """Fig 5: 14.5x on 24 cores, not 24x (bandwidth saturation)."""
        model = TimingModel(EDISON)
        t1 = model.project(uniform_work(1, 1)).total_seconds
        t24 = model.project(uniform_work(1, 24)).total_seconds
        speedup = t1 / t24
        assert 6 < speedup < 23

    def test_ganga_writes_do_not_scale(self):
        """Fig 5: CC-I/O does not improve with threads on the shared FS —
        contention makes it flat-to-worse."""
        model = TimingModel(GANGA)
        io1 = model.project(uniform_work(1, 1)).step_seconds(StepNames.CC_IO)
        io12 = model.project(uniform_work(1, 12)).step_seconds(StepNames.CC_IO)
        assert io12 >= io1 * 0.99

    def test_ganga_hyperthreads_regress(self):
        """Fig 5 Ganga: past the physical cores, more threads hurt."""
        model = TimingModel(GANGA)
        t12 = model.project(uniform_work(1, 12)).total_seconds
        t24 = model.project(uniform_work(1, 24)).total_seconds
        assert t24 >= t12

    def test_edison_writes_scale_with_threads(self):
        model = TimingModel(EDISON)
        io1 = model.project(uniform_work(1, 1)).step_seconds(StepNames.CC_IO)
        io24 = model.project(uniform_work(1, 24)).step_seconds(StepNames.CC_IO)
        assert io24 < io1

    def test_edison_node_faster_than_ganga(self):
        """Paper: 'A single Edison node is nearly 5 times faster'."""
        te = TimingModel(EDISON).project(uniform_work(1, 24)).total_seconds
        tg = TimingModel(GANGA).project(uniform_work(1, 12)).total_seconds
        assert 2.5 < tg / te < 9


class TestMultiNode:
    def test_no_comm_single_task(self):
        proj = TimingModel(EDISON).project(uniform_work(1, 8))
        assert proj.step_seconds(StepNames.KMERGEN_COMM) == 0.0
        assert proj.step_seconds(StepNames.MERGE_COMM) == 0.0

    def test_comm_appears_with_tasks(self):
        proj = TimingModel(EDISON).project(uniform_work(4, 8))
        assert proj.step_seconds(StepNames.KMERGEN_COMM) > 0
        assert proj.step_seconds(StepNames.MERGECC) > 0

    def test_multi_node_speedup_below_ideal(self):
        """Fig 6: 16-node speedup well below 16x."""
        model = TimingModel(EDISON)
        t1 = model.project(uniform_work(1, 24)).total_seconds
        t16 = model.project(uniform_work(16, 24)).total_seconds
        speedup = t1 / t16
        assert 1.5 < speedup < 16

    def test_mergecc_grows_with_tasks(self):
        """MergeCC cost rises with P (the paper's noted scalability limit)."""
        model = TimingModel(EDISON)
        m4 = model.project(uniform_work(4, 24)).step_seconds(StepNames.MERGECC)
        m16 = model.project(uniform_work(16, 24)).step_seconds(StepNames.MERGECC)
        assert m16 > m4

    def test_rank0_busiest_in_merge(self):
        proj = TimingModel(EDISON).project(uniform_work(8, 4))
        merge = proj.per_task[StepNames.MERGECC]
        assert merge[0] == merge.max()
        assert merge[0] > merge[1]


class TestMultipassTradeoffs:
    """Table 3's directions: more passes -> KmerGen up, per-pass comm down."""

    def test_kmergen_grows_with_passes(self):
        model = TimingModel(EDISON)
        one = model.project(uniform_work(4, 6, S=1))
        eight = model.project(uniform_work(4, 6, S=8))
        assert eight.step_seconds(StepNames.KMERGEN_IO) > one.step_seconds(
            StepNames.KMERGEN_IO
        )
        assert eight.step_seconds(StepNames.KMERGEN) > one.step_seconds(
            StepNames.KMERGEN
        )

    def test_localsort_unchanged_by_passes(self):
        model = TimingModel(EDISON)
        one = model.project(uniform_work(4, 6, S=1))
        eight = model.project(uniform_work(4, 6, S=8))
        assert eight.step_seconds(StepNames.LOCALSORT) == pytest.approx(
            one.step_seconds(StepNames.LOCALSORT), rel=0.05
        )

    def test_later_pass_edges_cheaper(self):
        """LocalCC-Opt: component-id enumeration speeds later passes."""
        model = TimingModel(EDISON)
        w_first = uniform_work(1, 4)
        w_later = uniform_work(1, 4)
        w_later.cc_edges_later_passes = w_later.cc_edges_first_pass.copy()
        w_later.cc_edges_first_pass[:] = 0
        t_first = model.project(w_first).step_seconds(StepNames.LOCALCC)
        t_later = model.project(w_later).step_seconds(StepNames.LOCALCC)
        assert t_later < t_first


class TestProjectedTimes:
    def test_breakdown_ordered(self):
        proj = TimingModel(EDISON).project(uniform_work(2, 4))
        steps = [k for k, _ in proj.breakdown().items()]
        assert steps == [s for s in StepNames.ORDER if s in steps]

    def test_spread(self):
        proj = TimingModel(EDISON).project(uniform_work(4, 4))
        s = proj.spread(StepNames.MERGECC)
        assert s["min"] <= s["median"] <= s["max"]

    def test_task_totals_shape(self):
        proj = TimingModel(EDISON).project(uniform_work(4, 4))
        assert proj.task_totals().shape == (4,)

    def test_load_imbalance_propagates(self):
        w = uniform_work(2, 2)
        w.kmergen_tuples[1, :] *= 3
        proj = TimingModel(EDISON).project(w)
        gen = proj.per_task[StepNames.KMERGEN]
        assert gen[1] > gen[0]
