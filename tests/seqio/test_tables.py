import numpy as np
import pytest

from repro.seqio.tables import BinaryTableError, read_table, write_table


class TestRoundtrip:
    def test_meta_and_arrays(self, tmp_path):
        path = tmp_path / "t.bin"
        arrays = {
            "counts": np.arange(16, dtype=np.uint32),
            "hist": np.ones((3, 4), dtype=np.int64),
        }
        write_table(path, "test/schema", {"k": 27, "name": "x"}, arrays)
        meta, back = read_table(path, expect_schema="test/schema")
        assert meta == {"k": 27, "name": "x"}
        assert np.array_equal(back["counts"], arrays["counts"])
        assert np.array_equal(back["hist"], arrays["hist"])
        assert back["hist"].shape == (3, 4)

    def test_returns_bytes_written(self, tmp_path):
        path = tmp_path / "t.bin"
        n = write_table(path, "s", {}, {"a": np.zeros(10, dtype=np.float64)})
        assert n == path.stat().st_size

    def test_empty_arrays(self, tmp_path):
        path = tmp_path / "t.bin"
        write_table(path, "s", {}, {"a": np.empty(0, dtype=np.uint64)})
        _, back = read_table(path)
        assert len(back["a"]) == 0

    def test_dtype_preserved(self, tmp_path):
        path = tmp_path / "t.bin"
        write_table(path, "s", {}, {"a": np.array([1], dtype=np.uint32)})
        _, back = read_table(path)
        assert back["a"].dtype == np.uint32


class TestErrors:
    def test_bad_magic(self, tmp_path):
        path = tmp_path / "t.bin"
        path.write_bytes(b"NOTATABLE" * 4)
        with pytest.raises(BinaryTableError, match="magic"):
            read_table(path)

    def test_schema_mismatch(self, tmp_path):
        path = tmp_path / "t.bin"
        write_table(path, "schema/a", {}, {})
        with pytest.raises(BinaryTableError, match="schema"):
            read_table(path, expect_schema="schema/b")

    def test_truncated_array(self, tmp_path):
        path = tmp_path / "t.bin"
        write_table(path, "s", {}, {"a": np.zeros(100, dtype=np.int64)})
        data = path.read_bytes()
        path.write_bytes(data[:-50])
        with pytest.raises(BinaryTableError, match="truncated"):
            read_table(path)

    def test_no_schema_check_when_not_requested(self, tmp_path):
        path = tmp_path / "t.bin"
        write_table(path, "whatever", {}, {})
        meta, arrays = read_table(path)  # no expect_schema
        assert arrays == {}
