import numpy as np
import pytest

from repro.seqio.records import FastqRecord, ReadBatch


class TestFastqRecord:
    def test_basic(self):
        rec = FastqRecord("r1", "ACGT", "IIII")
        assert len(rec) == 4
        assert rec.to_fastq() == "@r1\nACGT\n+\nIIII\n"

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            FastqRecord("r1", "ACGT", "II")


class TestReadBatchConstruction:
    def test_from_sequences(self):
        batch = ReadBatch.from_sequences(["ACGT", "GG", "TTTTT"])
        assert batch.n_reads == 3
        assert batch.n_bases == 11
        assert batch.lengths.tolist() == [4, 2, 5]
        assert batch.sequence(0) == "ACGT"
        assert batch.sequence(2) == "TTTTT"

    def test_from_records_keeps_metadata(self):
        recs = [FastqRecord("a", "ACGT", "!!!!"), FastqRecord("b", "GG", "II")]
        batch = ReadBatch.from_records(recs)
        assert batch.record(0).name == "a"
        assert batch.record(0).quality == "!!!!"

    def test_custom_read_ids_with_duplicates(self):
        # paired-end: both mates share a global id
        batch = ReadBatch.from_sequences(["ACGT", "ACGT"], read_ids=[5, 5])
        assert batch.read_ids.tolist() == [5, 5]

    def test_empty(self):
        batch = ReadBatch.empty()
        assert batch.n_reads == 0
        assert batch.n_bases == 0

    def test_invalid_offsets_rejected(self):
        with pytest.raises(ValueError):
            ReadBatch(
                np.zeros(4, dtype=np.uint8),
                np.array([0, 2], dtype=np.int64),  # doesn't end at 4
                np.array([0], dtype=np.int64),
            )

    def test_metadata_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ReadBatch(
                np.zeros(4, dtype=np.uint8),
                np.array([0, 4], dtype=np.int64),
                np.array([0], dtype=np.int64),
                names=["a", "b"],
            )


class TestReadBatchOps:
    def test_iteration(self):
        batch = ReadBatch.from_sequences(["ACGT", "GGCC"])
        seqs = [r.sequence for r in batch]
        assert seqs == ["ACGT", "GGCC"]

    def test_select_gathers(self):
        batch = ReadBatch.from_sequences(["AAAA", "CCCC", "GGGG"])
        sub = batch.select(np.array([2, 0]))
        assert sub.n_reads == 2
        assert sub.sequence(0) == "GGGG"
        assert sub.sequence(1) == "AAAA"
        assert sub.read_ids.tolist() == [2, 0]

    def test_concatenate(self):
        a = ReadBatch.from_sequences(["ACGT"], read_ids=[0])
        b = ReadBatch.from_sequences(["GG", "TT"], read_ids=[1, 2])
        merged = ReadBatch.concatenate([a, b])
        assert merged.n_reads == 3
        assert merged.sequence(1) == "GG"
        assert merged.read_ids.tolist() == [0, 1, 2]

    def test_concatenate_empty_list(self):
        assert ReadBatch.concatenate([]).n_reads == 0

    def test_concatenate_skips_empty_batches(self):
        a = ReadBatch.empty()
        b = ReadBatch.from_sequences(["ACGT"])
        assert ReadBatch.concatenate([a, b]).n_reads == 1

    def test_n_symbol_preserved(self):
        batch = ReadBatch.from_sequences(["ACNGT"])
        assert batch.sequence(0) == "ACNGT"

    def test_record_synthesizes_metadata(self):
        batch = ReadBatch.from_sequences(["ACGT"], read_ids=[42])
        rec = batch.record(0)
        assert "42" in rec.name
        assert len(rec.quality) == 4
