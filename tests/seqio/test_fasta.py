import pytest

from repro.seqio.fasta import (
    FastaParseError,
    iter_fasta,
    read_fasta,
    write_contigs,
    write_fasta,
)


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "x.fasta"
        records = [("seq1 desc", "ACGT" * 30), ("seq2", "TTTT")]
        assert write_fasta(path, records) == 2
        assert read_fasta(path) == records

    def test_line_wrapping(self, tmp_path):
        path = tmp_path / "x.fasta"
        write_fasta(path, [("a", "A" * 205)], line_width=80)
        lines = path.read_text().splitlines()
        assert lines[0] == ">a"
        assert [len(x) for x in lines[1:]] == [80, 80, 45]
        assert read_fasta(path) == [("a", "A" * 205)]

    def test_empty_file(self, tmp_path):
        path = tmp_path / "x.fasta"
        write_fasta(path, [])
        assert read_fasta(path) == []

    def test_invalid_line_width(self, tmp_path):
        with pytest.raises(ValueError):
            write_fasta(tmp_path / "x.fasta", [], line_width=0)


class TestWriteContigs:
    def test_headers_carry_lengths(self, tmp_path):
        path = tmp_path / "c.fasta"
        write_contigs(path, ["ACGTACGT", "TT"])
        back = read_fasta(path)
        assert back[0][0] == "contig_0 len=8"
        assert back[1][1] == "TT"


class TestParsing:
    def test_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "x.fasta"
        path.write_text(">a\nACGT\n\n>b\n\nGG\n")
        assert read_fasta(path) == [("a", "ACGT"), ("b", "GG")]

    def test_multiline_sequence_joined(self, tmp_path):
        path = tmp_path / "x.fasta"
        path.write_text(">a\nAC\nGT\nTT\n")
        assert read_fasta(path) == [("a", "ACGTTT")]

    def test_sequence_before_header_rejected(self, tmp_path):
        path = tmp_path / "x.fasta"
        path.write_text("ACGT\n>a\nGG\n")
        with pytest.raises(FastaParseError):
            list(iter_fasta(path))
