import pytest

from repro.seqio.fastq import (
    FastqParseError,
    count_reads,
    read_fastq,
    read_fastq_region,
    record_boundaries,
    write_fastq,
)
from repro.seqio.records import FastqRecord


def _recs(n=5):
    return [FastqRecord(f"r{i}", "ACGTACGT", "IIIIIIII") for i in range(n)]


class TestGzipRoundtrip:
    def test_write_read_gz(self, tmp_path):
        path = tmp_path / "x.fastq.gz"
        write_fastq(path, _recs(5))
        assert read_fastq(path) == _recs(5)
        # file really is gzip
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_append_gz(self, tmp_path):
        path = tmp_path / "x.fastq.gz"
        write_fastq(path, _recs(2))
        write_fastq(path, _recs(3), append=True)
        assert count_reads(path) == 5

    def test_plain_unaffected(self, tmp_path):
        path = tmp_path / "x.fastq"
        write_fastq(path, _recs(2))
        assert path.read_bytes()[:1] == b"@"


class TestGzipChunkedAccessRejected:
    def test_region_rejected(self, tmp_path):
        path = tmp_path / "x.fastq.gz"
        write_fastq(path, _recs(2))
        with pytest.raises(FastqParseError, match="decompress"):
            read_fastq_region(path, 0, 10)

    def test_boundaries_rejected(self, tmp_path):
        path = tmp_path / "x.fastq.gz"
        write_fastq(path, _recs(2))
        with pytest.raises(FastqParseError, match="decompress"):
            record_boundaries(path)
