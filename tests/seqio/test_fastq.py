import pytest

from repro.seqio.fastq import (
    FastqParseError,
    count_reads,
    interleave_paired,
    iter_fastq,
    read_fastq,
    read_fastq_region,
    record_boundaries,
    write_fastq,
)
from repro.seqio.records import FastqRecord


def _recs(n=5, length=8):
    return [
        FastqRecord(f"read{i}", "ACGT" * (length // 4), "I" * length)
        for i in range(n)
    ]


class TestRoundtrip:
    def test_write_then_read(self, tmp_path):
        path = tmp_path / "x.fastq"
        recs = _recs(5)
        assert write_fastq(path, recs) == 5
        back = read_fastq(path)
        assert back == recs

    def test_append(self, tmp_path):
        path = tmp_path / "x.fastq"
        write_fastq(path, _recs(2))
        write_fastq(path, _recs(3), append=True)
        assert count_reads(path) == 5

    def test_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "dir" / "x.fastq"
        write_fastq(path, _recs(1))
        assert path.exists()

    def test_count_reads(self, tmp_path):
        path = tmp_path / "x.fastq"
        write_fastq(path, _recs(7))
        assert count_reads(path) == 7


class TestParseErrors:
    def test_missing_at_header(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("read1\nACGT\n+\nIIII\n")
        with pytest.raises(FastqParseError, match="'@'"):
            read_fastq(path)

    def test_missing_plus(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@read1\nACGT\nIIII\nACGT\n")
        with pytest.raises(FastqParseError, match=r"\+"):
            read_fastq(path)

    def test_length_mismatch(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@read1\nACGT\n+\nII\n")
        with pytest.raises(FastqParseError, match="mismatch"):
            read_fastq(path)

    def test_truncated(self, tmp_path):
        path = tmp_path / "bad.fastq"
        path.write_text("@read1\n")
        with pytest.raises(FastqParseError):
            read_fastq(path)

    def test_trailing_blank_lines_tolerated(self, tmp_path):
        path = tmp_path / "ok.fastq"
        path.write_text("@r\nACGT\n+\nIIII\n\n\n")
        assert len(read_fastq(path)) == 1


class TestRegions:
    def test_boundaries_cover_file(self, tmp_path):
        path = tmp_path / "x.fastq"
        recs = _recs(4)
        write_fastq(path, recs)
        bounds = record_boundaries(path)
        assert len(bounds) == 5
        assert bounds[0] == 0
        assert bounds[-1] == path.stat().st_size

    def test_region_reads_exact_records(self, tmp_path):
        path = tmp_path / "x.fastq"
        recs = _recs(6)
        write_fastq(path, recs)
        bounds = record_boundaries(path)
        # middle region: records 2..4
        region = read_fastq_region(path, bounds[2], bounds[5] - bounds[2])
        assert region == recs[2:5]

    def test_regions_tile_file(self, tmp_path):
        path = tmp_path / "x.fastq"
        recs = _recs(9)
        write_fastq(path, recs)
        bounds = record_boundaries(path)
        collected = []
        for lo, hi in [(0, 3), (3, 7), (7, 9)]:
            collected.extend(
                read_fastq_region(path, bounds[lo], bounds[hi] - bounds[lo])
            )
        assert collected == recs


class TestInterleave:
    def test_interleaves(self):
        r1 = _recs(2)
        r2 = [FastqRecord(f"m{i}", "GGGG", "IIII") for i in range(2)]
        out = interleave_paired(r1, r2)
        assert [r.name for r in out] == ["read0", "m0", "read1", "m1"]

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            interleave_paired(_recs(2), _recs(3))


class TestIterFastq:
    def test_streaming_matches_eager(self, tmp_path):
        path = tmp_path / "x.fastq"
        recs = _recs(4)
        write_fastq(path, recs)
        assert list(iter_fastq(path)) == recs
