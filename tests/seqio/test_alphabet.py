import numpy as np
import pytest

from repro.seqio.alphabet import (
    CODE_INVALID,
    complement_codes,
    decode_sequence,
    encode_sequence,
    is_valid_dna,
    reverse_complement,
)


class TestEncodeDecode:
    def test_canonical_codes(self):
        assert encode_sequence("ACGT").tolist() == [0, 1, 2, 3]

    def test_case_insensitive(self):
        assert np.array_equal(encode_sequence("acgt"), encode_sequence("ACGT"))

    def test_n_and_garbage_invalid(self):
        codes = encode_sequence("NXZ@")
        assert (codes == CODE_INVALID).all()

    def test_roundtrip(self):
        seq = "ACGTACGTNNACGT"
        assert decode_sequence(encode_sequence(seq)) == seq

    def test_empty(self):
        assert len(encode_sequence("")) == 0
        assert decode_sequence(np.empty(0, dtype=np.uint8)) == ""

    def test_bytes_input(self):
        assert np.array_equal(encode_sequence(b"ACGT"), encode_sequence("ACGT"))

    def test_invalid_codes_decode_to_n(self):
        assert decode_sequence(np.array([7, 200], dtype=np.uint8)) == "NN"


class TestComplement:
    def test_complement_pairs(self):
        codes = encode_sequence("ACGT")
        assert decode_sequence(complement_codes(codes)) == "TGCA"

    def test_invalid_stays_invalid(self):
        codes = encode_sequence("N")
        assert complement_codes(codes)[0] == CODE_INVALID

    def test_involution(self):
        codes = encode_sequence("ACGTACGT")
        assert np.array_equal(complement_codes(complement_codes(codes)), codes)


class TestReverseComplement:
    @pytest.mark.parametrize(
        "seq,expected",
        [("A", "T"), ("ACGT", "ACGT"), ("AAACC", "GGTTT"), ("ACGTN", "NACGT")],
    )
    def test_known_values(self, seq, expected):
        assert reverse_complement(seq) == expected

    def test_involution(self):
        seq = "ACCGTTGAAACGT"
        assert reverse_complement(reverse_complement(seq)) == seq


class TestIsValidDna:
    def test_valid(self):
        assert is_valid_dna("ACGTacgt")
        assert is_valid_dna("")

    @pytest.mark.parametrize("bad", ["ACGN", "X", "AC GT"])
    def test_invalid(self, bad):
        assert not is_valid_dna(bad)
