import pytest

from repro.seqio.quality import (
    decode_phred,
    encode_phred,
    error_probability,
    mean_quality,
    quality_filter,
    trim_tail,
)
from repro.seqio.records import FastqRecord


class TestPhredCodec:
    def test_roundtrip(self):
        scores = [0, 20, 40, 93]
        assert decode_phred(encode_phred(scores)).tolist() == scores

    def test_known_values(self):
        assert decode_phred("!").tolist() == [0]
        assert decode_phred("I").tolist() == [40]

    def test_below_offset_rejected(self):
        with pytest.raises(ValueError):
            decode_phred("\x1f")

    def test_out_of_range_scores_rejected(self):
        with pytest.raises(ValueError):
            encode_phred([94])
        with pytest.raises(ValueError):
            encode_phred([-1])


class TestMeanAndError:
    def test_mean(self):
        rec = FastqRecord("r", "ACGT", encode_phred([10, 20, 30, 40]))
        assert mean_quality(rec) == pytest.approx(25.0)

    def test_error_probability(self):
        rec = FastqRecord("r", "AC", encode_phred([10, 20]))
        # 10^-1 and 10^-2 -> mean 0.055
        assert error_probability(rec) == pytest.approx(0.055)

    def test_empty(self):
        rec = FastqRecord("r", "", "")
        assert mean_quality(rec) == 0.0
        assert error_probability(rec) == 0.0


class TestTrimTail:
    def test_bad_tail_removed(self):
        scores = [38] * 20 + [2] * 10
        rec = FastqRecord("r", "A" * 30, encode_phred(scores))
        out = trim_tail(rec, threshold=20)
        assert len(out) == 20
        assert out.sequence == "A" * 20

    def test_good_read_untouched(self):
        rec = FastqRecord("r", "ACGT" * 5, encode_phred([38] * 20))
        assert trim_tail(rec, threshold=20) == rec

    def test_internal_dip_tolerated(self):
        # one mid-read low base should not trigger a huge trim
        scores = [38] * 10 + [5] + [38] * 10
        rec = FastqRecord("r", "A" * 21, encode_phred(scores))
        out = trim_tail(rec, threshold=20)
        assert len(out) == 21

    def test_all_bad_trims_everything(self):
        rec = FastqRecord("r", "ACGT", encode_phred([2, 2, 2, 2]))
        out = trim_tail(rec, threshold=20)
        assert len(out) == 0


class TestQualityFilter:
    def _rec(self, q, length=40):
        return FastqRecord("r", "A" * length, encode_phred([q] * length))

    def test_low_quality_dropped(self):
        kept, stats = quality_filter(
            [self._rec(35), self._rec(10)], min_mean_quality=20
        )
        assert len(kept) == 1
        assert stats.n_dropped_quality == 1
        assert stats.keep_fraction == pytest.approx(0.5)

    def test_short_after_trim_dropped(self):
        bad_tail = FastqRecord(
            "r", "A" * 40, encode_phred([38] * 10 + [2] * 30)
        )
        kept, stats = quality_filter(
            [bad_tail], trim_threshold=20, min_length=30
        )
        assert kept == []
        assert stats.n_dropped_length == 1
        assert stats.bases_trimmed == 30

    def test_trimming_accounted(self):
        rec = FastqRecord("r", "A" * 40, encode_phred([38] * 35 + [2] * 5))
        kept, stats = quality_filter([rec], trim_threshold=20, min_length=30)
        assert len(kept) == 1
        assert len(kept[0]) == 35
        assert stats.bases_trimmed == 5

    def test_empty_input(self):
        kept, stats = quality_filter([])
        assert kept == []
        assert stats.keep_fraction == 0.0
