"""End-to-end gateway tests over real TCP sockets.

Two server fixtures with different lifetimes:

* ``live`` (module scope) — gateway + background spool daemon against
  one spool; jobs really run the pipeline on the tiny HG analogue.
* ``idle`` (function scope) — gateway with *no* daemon ticking, so
  submissions stay queued forever: the fixture for admission-control
  tests (quotas, rate limits, backpressure) and for handcrafted result
  documents (large-artifact streaming) without pipeline runs.
"""

import json
import socket

import numpy as np
import pytest

from repro.gateway.app import GatewayApp
from repro.gateway.client import GatewayClient, GatewayError
from repro.gateway.server import GatewayServer
from repro.gateway.tenants import Tenant, TenantRegistry
from repro.service.client import ServiceClient
from repro.service.daemon import RESULTS_DIR, ServeDaemon
from repro.service.jobs import JobStateError

CFG = {"k": 21, "m": 5, "n_tasks": 2, "n_threads": 2, "n_passes": 2}


def two_tenant_registry(**overrides):
    tenants = {
        "lab-a": Tenant(name="lab-a", token="tok-a", **overrides),
        "lab-b": Tenant(name="lab-b", token="tok-b", **overrides),
    }
    return TenantRegistry(tenants)


# ----------------------------------------------------------------------
# fixtures
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def live(tmp_path_factory):
    spool = tmp_path_factory.mktemp("gateway-spool")
    daemon = ServeDaemon(spool)
    app = GatewayApp(spool, registry=two_tenant_registry(), daemon=daemon)
    daemon.extra_counters = app.counters.snapshot
    server = GatewayServer(app)
    daemon.start_background()
    address = server.start()
    yield {"spool": spool, "app": app, "address": address, "daemon": daemon}
    server.stop()
    daemon.stop_background()


@pytest.fixture()
def idle(tmp_path):
    spool = tmp_path / "spool"
    app = GatewayApp(
        spool,
        registry=two_tenant_registry(max_queued_jobs=1, max_result_bytes=100),
    )
    server = GatewayServer(app, max_inflight=64)
    address = server.start()
    yield {"spool": spool, "app": app, "address": address}
    server.stop()


def client_of(env, token="tok-a"):
    return GatewayClient(env["address"], token=token)


# ----------------------------------------------------------------------
# E2E over the real pipeline
# ----------------------------------------------------------------------
class TestEndToEnd:
    def test_healthz_unauthenticated(self, live):
        assert GatewayClient(live["address"]).healthz() == {"status": "ok"}

    def test_submit_wait_stream_byte_identical(self, live, tiny_hg):
        client = client_of(live)
        job_id = client.submit(tiny_hg.units, config=CFG)
        status = client.wait(job_id, timeout=120)
        assert status["state"] == "succeeded"

        labels_http, info = client.result(job_id)
        labels_spool, info_spool = ServiceClient(live["spool"]).result(job_id)
        assert np.array_equal(labels_http, labels_spool)
        assert info["artifact_key"] == info_spool["artifact_key"]

        # the streamed bytes are exactly the artifact on disk
        raw = b"".join(client.stream_result(job_id))
        assert raw == open(info_spool["artifact_path"], "rb").read()
        assert live["app"].counters.bytes_streamed >= len(raw)

    def test_identical_submissions_coalesce_to_one_run(self, live, tiny_hg):
        a, b = client_of(live, "tok-a"), client_of(live, "tok-b")
        before = live["app"].counters.coalesced
        config = dict(CFG, n_passes=1)  # distinct work from other tests
        job_a = a.submit(tiny_hg.units, config=config)
        job_b = b.submit(tiny_hg.units, config=config)
        assert job_a == job_b
        assert live["app"].counters.coalesced == before + 1

        # both tenants see it and can fetch the result independently
        assert a.wait(job_a, timeout=120)["state"] == "succeeded"

        # one queue entry: the event log records exactly one submission
        events = [
            json.loads(line)
            for line in (live["spool"] / "events.jsonl").read_text().splitlines()
        ]
        submitted = [
            e for e in events
            if e["type"] == "submitted" and e["job_id"] == job_a
        ]
        assert len(submitted) == 1
        labels_a, _ = a.result(job_a)
        labels_b, _ = b.result(job_b)
        assert np.array_equal(labels_a, labels_b)

    def test_cross_tenant_job_is_404(self, live, tiny_hg):
        a, b = client_of(live, "tok-a"), client_of(live, "tok-b")
        job_id = a.submit(tiny_hg.units, config=dict(CFG, k=23))
        a.wait(job_id, timeout=120)
        for probe in (b.status, b.cancel):
            with pytest.raises(JobStateError):
                probe(job_id)
        with pytest.raises(JobStateError):
            b.result(job_id)
        assert job_id not in {j["job_id"] for j in b.list_jobs()}
        assert job_id in {j["job_id"] for j in a.list_jobs()}

    def test_cancel_through_gateway(self, live, tiny_hg):
        client = client_of(live)
        job_id = client.submit(tiny_hg.units, config=dict(CFG, k=25))
        client.cancel(job_id)
        status = client.wait(job_id, timeout=120)
        assert status["state"] in ("cancelled", "succeeded")

    def test_metrics_exposition(self, live):
        text = GatewayClient(live["address"]).metrics_text()
        assert "metaprep_gateway_requests" in text
        assert "metaprep_gateway_coalesced" in text
        assert "metaprep_service_queue_depth" in text

    def test_result_of_unfinished_job_is_conflict(self, live, tiny_hg):
        client = client_of(live)
        job_id = client.submit(
            tiny_hg.units, config=dict(CFG, k=19, n_passes=1)
        )
        try:
            with pytest.raises(JobStateError):
                next(client.stream_result(job_id))
        finally:
            client.wait(job_id, timeout=120)


# ----------------------------------------------------------------------
# admission control (no daemon: jobs stay queued)
# ----------------------------------------------------------------------
class TestAdmission:
    def test_queued_job_quota_exhaustion_is_429(self, idle, tiny_hg):
        client = client_of(idle)
        client.submit(tiny_hg.units, config=CFG)  # fills the quota of 1
        with pytest.raises(GatewayError) as err:
            client.submit(tiny_hg.units, config=dict(CFG, n_passes=1))
        assert err.value.status == 429
        assert err.value.retry_after is not None

    def test_result_bytes_quota_exhaustion_is_429(self, idle, tiny_hg, tmp_path):
        app = idle["app"]
        artifact = tmp_path / "big.bin"
        artifact.write_bytes(b"\x00" * 4096)  # over the 100-byte quota
        fake = "j-feedc0ffee99"
        (idle["spool"] / RESULTS_DIR / f"{fake}.json").write_text(
            json.dumps(
                {
                    "job_id": fake,
                    "state": "succeeded",
                    "attempt": 1,
                    "error": None,
                    "result": {"artifact_path": str(artifact)},
                    "metrics": {},
                    "submitted_at": 1.0,
                    "started_at": 2.0,
                    "finished_at": 3.0,
                }
            )
        )
        tenant = app.registry.authenticate("tok-a")
        app._record_owner(fake, tenant, "fp-fake")
        with pytest.raises(GatewayError) as err:
            client_of(idle).submit(tiny_hg.units, config=CFG)
        assert err.value.status == 429

    def test_rate_limit_is_429_with_retry_after(self, tmp_path, tiny_hg):
        registry = TenantRegistry(
            {"slow": Tenant(name="slow", token="tok-s", rate=0.5, burst=2)}
        )
        app = GatewayApp(tmp_path / "spool", registry=registry)
        server = GatewayServer(app)
        address = server.start()
        try:
            client = GatewayClient(address, token="tok-s")
            client.healthz()  # unauthenticated: does not consume tokens
            assert client.list_jobs() == []
            client.list_jobs()  # burst of 2 spent
            with pytest.raises(GatewayError) as err:
                client.list_jobs()
            assert err.value.status == 429
            assert err.value.retry_after == pytest.approx(2.0, abs=0.5)
        finally:
            server.stop()

    def test_saturated_queue_is_503(self, tmp_path, tiny_hg):
        app = GatewayApp(
            tmp_path / "spool", registry=two_tenant_registry(), max_queue_depth=0
        )
        server = GatewayServer(app)
        address = server.start()
        try:
            with pytest.raises(GatewayError) as err:
                GatewayClient(address, token="tok-a").submit(
                    tiny_hg.units, config=CFG
                )
            assert err.value.status == 503
            assert app.counters.rejected == 1
        finally:
            server.stop()

    def test_unknown_token_is_401(self, idle):
        with pytest.raises(GatewayError) as err:
            GatewayClient(idle["address"], token="who-dis").list_jobs()
        assert err.value.status == 401

    def test_invalid_job_spec_is_400(self, idle):
        with pytest.raises(GatewayError) as err:
            client_of(idle).submit(["/nonexistent/file.fastq"], config=CFG)
        assert err.value.status == 400


# ----------------------------------------------------------------------
# framing abuse: the server must answer 400, never die
# ----------------------------------------------------------------------
class TestFramingRobustness:
    def _raw(self, env, payload: bytes) -> bytes:
        host, _, port = env["address"].rpartition(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                data = sock.recv(65536)
                if not data:
                    return b"".join(chunks)
                chunks.append(data)

    def test_garbage_bytes_get_400_and_server_survives(self, idle):
        reply = self._raw(idle, b"\x89PNG\r\n\x1a\n not http at all\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 400 ")
        assert client_of(idle).healthz() == {"status": "ok"}

    def test_torn_request_drops_connection_not_server(self, idle):
        host, _, port = idle["address"].rpartition(":")
        sock = socket.create_connection((host, int(port)), timeout=10)
        sock.sendall(b"POST /v1/jobs HTTP/1.1\r\nContent-Length: 500\r\n\r\npartial")
        sock.close()  # tear mid-body
        assert client_of(idle).healthz() == {"status": "ok"}

    def test_oversized_declared_body_is_400(self, idle):
        reply = self._raw(
            idle,
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Content-Length: 999999999\r\n\r\n",
        )
        assert reply.startswith(b"HTTP/1.1 400 ")
        assert b"exceeds" in reply
        assert client_of(idle).healthz() == {"status": "ok"}

    def test_rejected_counter_tracks_abuse(self, idle):
        before = idle["app"].counters.rejected
        self._raw(idle, b"complete garbage\r\n\r\n")
        assert idle["app"].counters.rejected == before + 1


# ----------------------------------------------------------------------
# large-artifact chunked streaming (multi-gigabyte analogue)
# ----------------------------------------------------------------------
class TestLargeStreaming:
    def test_chunked_download_is_byte_identical(self, idle, tmp_path):
        app = idle["app"]
        rng = np.random.default_rng(99)
        blob = rng.integers(0, 256, size=8 * 1024 * 1024, dtype=np.uint8)
        artifact = tmp_path / "huge.partition.bin"
        artifact.write_bytes(blob.tobytes())

        fake = "j-b1gda7a00001"
        (idle["spool"] / RESULTS_DIR / f"{fake}.json").write_text(
            json.dumps(
                {
                    "job_id": fake,
                    "state": "succeeded",
                    "attempt": 1,
                    "error": None,
                    "result": {"artifact_path": str(artifact)},
                    "metrics": {},
                    "submitted_at": 1.0,
                    "started_at": 2.0,
                    "finished_at": 3.0,
                }
            )
        )
        app._record_owner(fake, app.registry.authenticate("tok-a"), "fp-big")

        client = client_of(idle)
        streamed = b"".join(client.stream_result(fake))
        assert streamed == blob.tobytes()
        assert app.counters.bytes_streamed >= len(streamed)

    def test_acl_survives_gateway_restart(self, idle):
        # a second app over the same spool replays the ownership ledger
        reloaded = GatewayApp(
            idle["spool"], registry=two_tenant_registry()
        )
        assert reloaded._owners == idle["app"]._owners
