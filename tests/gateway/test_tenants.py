"""Unit tests of tenant auth, quotas metadata, and the token bucket."""

import json

import pytest

from repro.gateway.tenants import (
    DEFAULT_MAX_QUEUED_JOBS,
    Tenant,
    TenantAuthError,
    TenantRegistry,
    TokenBucket,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestTokenBucket:
    def test_burst_then_deterministic_retry_after(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3, clock=clock)
        assert [bucket.admit() for _ in range(3)] == [0.0, 0.0, 0.0]
        # empty: next token arrives in exactly 1/rate seconds
        assert bucket.admit() == pytest.approx(0.5)
        clock.now += 0.5
        assert bucket.admit() == 0.0

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2, clock=clock)
        bucket.admit()
        bucket.admit()
        clock.now += 100.0
        assert [bucket.admit() for _ in range(2)] == [0.0, 0.0]
        assert bucket.admit() > 0.0


class TestRegistry:
    def test_open_mode_maps_everything_to_public(self):
        registry = TenantRegistry()
        tenant = registry.authenticate(None)
        assert tenant.name == "public"
        assert registry.authenticate("any-token").name == "public"

    def test_tokens_resolve_and_unknown_rejected(self):
        registry = TenantRegistry(
            {"a": Tenant(name="a", token="tok-a")}
        )
        assert registry.authenticate("tok-a").name == "a"
        with pytest.raises(TenantAuthError):
            registry.authenticate("tok-b")
        with pytest.raises(TenantAuthError):
            registry.authenticate(None)

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(
            json.dumps(
                {
                    "tenants": [
                        {
                            "name": "lab",
                            "token": "s3cret",
                            "max_queued_jobs": 7,
                            "max_result_bytes": 1234,
                            "rate": 5.0,
                            "burst": 9,
                        },
                        {"name": "other", "token": "t2"},
                    ]
                }
            )
        )
        registry = TenantRegistry.load(path)
        lab = registry.authenticate("s3cret")
        assert (lab.max_queued_jobs, lab.max_result_bytes) == (7, 1234)
        assert (lab.rate, lab.burst) == (5.0, 9)
        other = registry.authenticate("t2")
        assert other.max_queued_jobs == DEFAULT_MAX_QUEUED_JOBS
        assert registry.tenant_names() == ["lab", "other"]

    def test_empty_tenants_file_rejected(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"tenants": []}))
        with pytest.raises(ValueError):
            TenantRegistry.load(path)

    def test_per_tenant_buckets_are_independent(self):
        clock = FakeClock()
        registry = TenantRegistry(
            {
                "a": Tenant(name="a", token="ta", rate=1.0, burst=1),
                "b": Tenant(name="b", token="tb", rate=1.0, burst=1),
            },
            clock=clock,
        )
        a, b = registry.authenticate("ta"), registry.authenticate("tb")
        assert registry.admit(a) == 0.0
        assert registry.admit(a) > 0.0  # a exhausted...
        assert registry.admit(b) == 0.0  # ...b unaffected
