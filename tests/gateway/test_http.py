"""Unit tests of the hand-rolled HTTP/1.1 framing layer."""

import asyncio
import json

import pytest

from repro.gateway.http import (
    MAX_BODY_BYTES,
    BadRequest,
    ConnectionClosed,
    read_request,
    send_chunked,
    send_json,
    send_response,
)


def run(coro):
    return asyncio.run(coro)


def parse(payload: bytes):
    """Parse one request from a pre-fed stream (loop-local reader)."""

    async def _parse():
        reader = asyncio.StreamReader()
        reader.feed_data(payload)
        reader.feed_eof()
        return await read_request(reader)

    return run(_parse())


class CollectingWriter:
    """Just enough of a StreamWriter for the response helpers."""

    def __init__(self):
        self.buffer = bytearray()

    def write(self, data: bytes) -> None:
        self.buffer.extend(data)

    async def drain(self) -> None:
        pass


# ----------------------------------------------------------------------
# request parsing
# ----------------------------------------------------------------------
class TestReadRequest:
    def test_parses_request_line_headers_and_body(self):
        payload = (
            b"POST /v1/jobs?dry=1 HTTP/1.1\r\n"
            b"Host: localhost\r\n"
            b"Authorization: Bearer tok-a\r\n"
            b"Content-Length: 14\r\n"
            b"\r\n"
            b'{"units": []}\n'
        )
        request = parse(payload)
        assert request.method == "POST"
        assert request.path == "/v1/jobs"
        assert request.query == {"dry": "1"}
        assert request.headers["host"] == "localhost"
        assert request.bearer_token() == "tok-a"
        assert request.json() == {"units": []}

    def test_clean_eof_at_boundary_is_connection_closed(self):
        with pytest.raises(ConnectionClosed):
            parse(b"")

    def test_torn_request_line_is_bad_request(self):
        with pytest.raises(BadRequest):
            parse(b"GET /healthz HT")

    def test_torn_body_is_bad_request(self):
        payload = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            b"Content-Length: 100\r\n\r\n"
            b"only twenty bytes..."
        )
        with pytest.raises(BadRequest):
            parse(payload)

    def test_garbage_is_bad_request(self):
        with pytest.raises(BadRequest):
            parse(b"\x00\x01\x02 binary trash\r\n\r\n")

    def test_oversized_body_is_bad_request(self):
        payload = (
            b"POST /v1/jobs HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(BadRequest, match="exceeds"):
            parse(payload)

    def test_oversized_request_line_is_bad_request(self):
        payload = b"GET /" + b"x" * 70_000 + b" HTTP/1.1\r\n\r\n"
        with pytest.raises(BadRequest):
            parse(payload)

    def test_unsupported_version_is_bad_request(self):
        with pytest.raises(BadRequest, match="version"):
            parse(b"GET / HTTP/0.9\r\n\r\n")

    def test_non_json_body_raises_on_decode(self):
        payload = (
            b"POST / HTTP/1.1\r\nContent-Length: 3\r\n\r\nxyz"
        )
        request = parse(payload)
        with pytest.raises(BadRequest):
            request.json()


# ----------------------------------------------------------------------
# response writing
# ----------------------------------------------------------------------
class TestResponses:
    def test_send_json_frames_with_content_length(self):
        writer = CollectingWriter()
        run(send_json(writer, 200, {"ok": True}))
        raw = bytes(writer.buffer)
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert f"Content-Length: {len(body)}".encode() in head
        assert json.loads(body) == {"ok": True}

    def test_send_response_carries_extra_headers(self):
        writer = CollectingWriter()
        run(
            send_response(
                writer, 429, b"{}", extra_headers={"Retry-After": "0.250"}
            )
        )
        assert b"Retry-After: 0.250\r\n" in bytes(writer.buffer)

    def test_chunked_round_trip(self):
        writer = CollectingWriter()

        async def chunks():
            yield b"abc"
            yield b""
            yield b"defgh"

        body, wire = run(send_chunked(writer, 200, chunks()))
        raw = bytes(writer.buffer)
        assert body == 8
        assert wire == len(raw)
        head, _, tail = raw.partition(b"\r\n\r\n")
        assert b"Transfer-Encoding: chunked" in head
        assert tail == b"3\r\nabc\r\n5\r\ndefgh\r\n0\r\n\r\n"
