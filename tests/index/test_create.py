import numpy as np

from repro.index.create import index_create
from repro.index.fastqpart import FastqPartTable
from repro.index.merhist import MerHist


class TestIndexCreate:
    def test_builds_both_tables(self, tiny_hg):
        result = index_create(tiny_hg.units, k=27, m=5, n_chunks=6)
        assert result.fastqpart.n_chunks == 6
        assert result.fastqpart.total_reads == tiny_hg.n_pairs
        assert result.merhist.total_tuples > 0
        assert result.fastqpart_seconds >= 0
        assert result.merhist_seconds >= 0
        assert result.total_seconds > 0

    def test_merhist_consistent_with_fastqpart(self, tiny_hg):
        result = index_create(tiny_hg.units, k=27, m=5, n_chunks=4)
        assert np.array_equal(
            result.merhist.counts.astype(np.int64),
            result.fastqpart.global_histogram(),
        )

    def test_persists_tables(self, tiny_hg, tmp_path):
        result = index_create(
            tiny_hg.units, k=27, m=5, n_chunks=4, output_dir=tmp_path
        )
        assert result.merhist_path is not None
        back_h = MerHist.load(result.merhist_path)
        back_t = FastqPartTable.load(result.fastqpart_path)
        assert back_h.total_tuples == result.merhist.total_tuples
        assert back_t.n_chunks == 4

    def test_tables_reusable_across_configs(self, tiny_hg):
        """The point of IndexCreate: one index serves many parallel runs."""
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import MetaPrep

        index = index_create(tiny_hg.units, k=27, m=5, n_chunks=8)
        r1 = MetaPrep(
            PipelineConfig(k=27, m=5, n_tasks=1, n_threads=2, write_outputs=False)
        ).run(tiny_hg.units, index=index)
        r2 = MetaPrep(
            PipelineConfig(k=27, m=5, n_tasks=2, n_threads=2, write_outputs=False)
        ).run(tiny_hg.units, index=index)
        assert np.array_equal(
            r1.partition.labels, r2.partition.labels
        )
