import numpy as np
import pytest

from repro.index.merhist import MerHist
from repro.index.passplan import (
    balanced_boundaries,
    passes_for_memory_budget,
    plan_passes,
    spill_schedule,
)


def hist_of(counts, k=9):
    counts = np.asarray(counts, dtype=np.uint32)
    m = int(np.log2(len(counts)) / 2)
    assert 4**m == len(counts)
    return MerHist(k=k, m=m, counts=counts)


@pytest.fixture()
def skewed_hist(rng):
    counts = rng.integers(0, 50, size=256).astype(np.uint32)
    counts[3] = 5000  # heavy bin
    return MerHist(k=9, m=4, counts=counts)


class TestBalancedBoundaries:
    def test_spans_range(self):
        counts = np.ones(64, dtype=np.int64)
        edges = balanced_boundaries(counts, 4)
        assert edges[0] == 0 and edges[-1] == 64
        assert len(edges) == 5

    def test_uniform_counts_equal_split(self):
        counts = np.ones(64, dtype=np.int64)
        edges = balanced_boundaries(counts, 4)
        assert edges.tolist() == [0, 16, 32, 48, 64]

    def test_skewed_counts_balance_mass(self, skewed_hist):
        counts = skewed_hist.counts.astype(np.int64)
        edges = balanced_boundaries(counts, 4)
        masses = [counts[edges[i]:edges[i+1]].sum() for i in range(4)]
        # the heavy bin cannot be split, so one part dominates; the others
        # must not contain more than ~2x the fair share of the remainder
        fair = counts.sum() / 4
        light = sorted(masses)[:-1]
        assert all(mass <= 2 * fair for mass in light)

    def test_empty_range(self):
        counts = np.zeros(16, dtype=np.int64)
        edges = balanced_boundaries(counts, 4)
        assert edges[0] == 0 and edges[-1] == 16
        assert np.all(np.diff(edges) >= 0)

    def test_subrange(self):
        counts = np.ones(64, dtype=np.int64)
        edges = balanced_boundaries(counts, 2, lo=10, hi=30)
        assert edges[0] == 10 and edges[-1] == 30
        assert edges[1] == 20

    def test_monotone(self, skewed_hist):
        edges = balanced_boundaries(skewed_hist.counts.astype(np.int64), 8)
        assert np.all(np.diff(edges) >= 0)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            balanced_boundaries(np.ones(8, dtype=np.int64), 2, lo=5, hi=3)


class TestPlanPasses:
    def test_passes_tile_bins(self, skewed_hist):
        plan = plan_passes(skewed_hist, n_passes=3, n_tasks=2, n_threads=2)
        assert plan.n_passes == 3
        plan.validate_disjoint(skewed_hist.n_bins)  # no exception

    def test_nesting_task_within_pass(self, skewed_hist):
        plan = plan_passes(skewed_hist, 2, 4, 2)
        for spec in plan.passes:
            assert spec.task_edges[0] == spec.bin_lo
            assert spec.task_edges[-1] == spec.bin_hi
            for p in range(4):
                te = spec.thread_edges[p]
                assert te[0] == spec.task_edges[p]
                assert te[-1] == spec.task_edges[p + 1]

    def test_total_tuples_conserved(self, skewed_hist):
        plan = plan_passes(skewed_hist, 4, 2, 2)
        assert plan.total_tuples == skewed_hist.total_tuples

    def test_single_pass_single_task(self, skewed_hist):
        plan = plan_passes(skewed_hist, 1, 1, 1)
        spec = plan.passes[0]
        assert spec.bin_lo == 0
        assert spec.bin_hi == skewed_hist.n_bins
        assert spec.tuples == skewed_hist.total_tuples

    def test_tuples_per_task(self, skewed_hist):
        plan = plan_passes(skewed_hist, 1, 4, 1)
        per_task = plan.passes[0].tuples_per_task(skewed_hist)
        assert per_task.sum() == skewed_hist.total_tuples


class TestPassesForMemoryBudget:
    def test_one_pass_when_budget_large(self):
        hist = hist_of(np.full(256, 100))
        s = passes_for_memory_budget(
            hist, n_tasks=1, tuple_bytes=12, memory_budget_per_task=10**9
        )
        assert s == 1

    def test_more_passes_when_budget_tight(self):
        hist = hist_of(np.full(256, 1000))
        total = hist.total_tuples
        # budget fits half the tuples' buffers
        budget = 2 * 12 * total // 2
        s = passes_for_memory_budget(hist, 1, 12, budget)
        assert s >= 2
        # and the chosen s actually fits
        worst_per_pass = int(np.ceil(total / s))
        assert 2 * 12 * worst_per_pass <= budget

    def test_more_tasks_fewer_passes(self):
        hist = hist_of(np.full(256, 1000))
        budget = 2 * 12 * hist.total_tuples // 3
        s1 = passes_for_memory_budget(hist, 1, 12, budget)
        s4 = passes_for_memory_budget(hist, 4, 12, budget)
        assert s4 <= s1

    def test_reserved_bytes_reduce_budget(self):
        hist = hist_of(np.full(256, 1000))
        budget = 2 * 12 * hist.total_tuples
        s_clean = passes_for_memory_budget(hist, 1, 12, budget)
        s_reserved = passes_for_memory_budget(
            hist, 1, 12, budget, reserved_bytes_per_task=budget // 2
        )
        assert s_reserved >= s_clean

    def test_impossible_budget_rejected(self):
        hist = hist_of(np.full(256, 1000))
        with pytest.raises(ValueError):
            passes_for_memory_budget(
                hist, 1, 12, 100, reserved_bytes_per_task=200
            )

    def test_heavy_single_bin_bounds_passes(self):
        # one bin holds everything: more passes cannot help
        counts = np.zeros(256, dtype=np.uint32)
        counts[7] = 10_000
        hist = hist_of(counts)
        need = 2 * 12 * 10_000
        s = passes_for_memory_budget(hist, 1, 12, need)
        assert s == 1
        with pytest.raises(ValueError):
            passes_for_memory_budget(hist, 1, 12, need // 2)

    @pytest.mark.parametrize("budget", [0, -1, -(1 << 30)])
    def test_zero_or_negative_budget_rejected(self, budget):
        """Regression: a nonsensical budget must raise a clear error up
        front, not surface downstream as a division artifact."""
        hist = hist_of(np.full(256, 1000))
        with pytest.raises(ValueError, match="memory_budget_per_task"):
            passes_for_memory_budget(hist, 1, 12, budget)

    def test_nonpositive_tuple_bytes_rejected(self):
        hist = hist_of(np.full(256, 1000))
        with pytest.raises(ValueError, match="tuple_bytes"):
            passes_for_memory_budget(hist, 1, 0, 1 << 20)

    def test_negative_reserved_bytes_rejected(self):
        hist = hist_of(np.full(256, 1000))
        with pytest.raises(ValueError, match="reserved_bytes_per_task"):
            passes_for_memory_budget(
                hist, 1, 12, 1 << 20, reserved_bytes_per_task=-1
            )


class TestSpillSchedule:
    def _plan(self, counts, n_passes=2):
        return plan_passes(hist_of(counts), n_passes, 2, 2)

    def test_never_is_all_false(self):
        plan = self._plan(np.full(256, 100))
        assert spill_schedule(plan, 12, 1, "never") == [False, False]

    def test_always_is_all_true(self):
        plan = self._plan(np.full(256, 100))
        assert spill_schedule(plan, 12, None, "always") == [True, True]

    def test_auto_without_budget_never_spills(self):
        plan = self._plan(np.full(256, 100))
        assert spill_schedule(plan, 12, None, "auto") == [False, False]

    def test_auto_spills_only_overbudget_passes(self):
        # pass 0 carries the heavy bin; pass 1 is light
        counts = np.ones(256, dtype=np.uint32)
        counts[0] = 10_000
        plan = self._plan(counts)
        heavy, light = (p.tuples for p in plan.passes)
        assert heavy > light
        budget = 12 * (light + 1)
        assert spill_schedule(plan, 12, budget, "auto") == [True, False]

    def test_auto_compares_whole_pass_residency(self):
        """The decision quantity is the pass's full in-memory footprint
        (every owner block at once), not one task's share."""
        plan = self._plan(np.full(256, 100))
        volume = 12 * plan.passes[0].tuples
        assert spill_schedule(plan, 12, volume, "auto") == [False, False]
        assert spill_schedule(plan, 12, volume - 1, "auto") == [True, True]

    def test_unknown_mode_rejected(self):
        plan = self._plan(np.full(256, 100))
        with pytest.raises(ValueError, match="spill"):
            spill_schedule(plan, 12, None, "sometimes")

    def test_nonpositive_budget_rejected(self):
        plan = self._plan(np.full(256, 100))
        with pytest.raises(ValueError, match="memory_budget_per_task"):
            spill_schedule(plan, 12, 0, "auto")
