import numpy as np
import pytest

from repro.index.fastqpart import (
    FastqPartTable,
    FastqUnit,
    build_fastqpart,
    load_chunk_reads,
)
from repro.index.merhist import build_merhist
from repro.seqio.fastq import write_fastq
from repro.seqio.records import FastqRecord


@pytest.fixture()
def paired_files(tmp_path, rng):
    from tests.conftest import random_reads

    n = 23
    r1 = [FastqRecord(f"p{i}/1", s, "I" * len(s)) for i, s in enumerate(random_reads(rng, n, 30))]
    r2 = [FastqRecord(f"p{i}/2", s, "I" * len(s)) for i, s in enumerate(random_reads(rng, n, 30))]
    p1, p2 = tmp_path / "a_R1.fastq", tmp_path / "a_R2.fastq"
    write_fastq(p1, r1)
    write_fastq(p2, r2)
    return str(p1), str(p2), r1, r2


@pytest.fixture()
def single_file(tmp_path, rng):
    from tests.conftest import random_reads

    recs = [
        FastqRecord(f"s{i}", s, "I" * len(s))
        for i, s in enumerate(random_reads(rng, 11, 25))
    ]
    p = tmp_path / "single.fastq"
    write_fastq(p, recs)
    return str(p), recs


class TestFastqUnit:
    def test_wrap_forms(self):
        assert FastqUnit.wrap("a.fastq") == FastqUnit("a.fastq")
        assert FastqUnit.wrap(("a", "b")) == FastqUnit("a", "b")
        u = FastqUnit("x")
        assert FastqUnit.wrap(u) is u

    def test_wrap_rejects_garbage(self):
        with pytest.raises(TypeError):
            FastqUnit.wrap(123)

    def test_paired_property(self):
        assert FastqUnit("a", "b").paired
        assert not FastqUnit("a").paired
        assert FastqUnit("a", "b").files == ["a", "b"]


class TestBuildPaired:
    def test_chunks_tile_reads(self, paired_files):
        p1, p2, r1, _ = paired_files
        table = build_fastqpart([(p1, p2)], k=9, m=4, n_chunks=5)
        assert table.n_chunks == 5
        assert table.total_reads == len(r1)
        assert table.read_lo[0] == 0
        assert table.read_hi[-1] == len(r1)
        assert np.array_equal(table.read_lo[1:], table.read_hi[:-1])

    def test_chunk_reads_pair_interleaved_with_shared_ids(self, paired_files):
        p1, p2, r1, r2 = paired_files
        table = build_fastqpart([(p1, p2)], k=9, m=4, n_chunks=4)
        batch = load_chunk_reads(table, 1)
        lo, hi = int(table.read_lo[1]), int(table.read_hi[1])
        assert batch.n_reads == 2 * (hi - lo)
        # ids repeat pairwise
        ids = batch.read_ids.tolist()
        assert ids == [i for g in range(lo, hi) for i in (g, g)]
        # sequences interleave R1, R2
        assert batch.sequence(0) == r1[lo].sequence
        assert batch.sequence(1) == r2[lo].sequence

    def test_all_chunks_reconstruct_input(self, paired_files):
        p1, p2, r1, r2 = paired_files
        table = build_fastqpart([(p1, p2)], k=9, m=4, n_chunks=6)
        seqs = []
        for c in range(table.n_chunks):
            batch = load_chunk_reads(table, c)
            seqs.extend(batch.sequence(i) for i in range(batch.n_reads))
        want = [s for a, b in zip(r1, r2) for s in (a.sequence, b.sequence)]
        assert seqs == want

    def test_chunk_histograms_sum_to_merhist(self, paired_files):
        p1, p2, r1, r2 = paired_files
        k, m = 9, 4
        table = build_fastqpart([(p1, p2)], k=k, m=m, n_chunks=5)
        batches = [load_chunk_reads(table, c) for c in range(table.n_chunks)]
        global_hist = build_merhist(batches, k, m)
        assert np.array_equal(
            table.global_histogram(), global_hist.counts.astype(np.int64)
        )

    def test_mate_count_mismatch_rejected(self, tmp_path, paired_files):
        p1, p2, r1, _ = paired_files
        # truncate mate file
        short = tmp_path / "short_R2.fastq"
        write_fastq(short, [FastqRecord("x", "ACGT", "IIII")])
        with pytest.raises(ValueError, match="mate counts differ"):
            build_fastqpart([(p1, str(short))], k=9, m=4, n_chunks=2)


class TestBuildSingle:
    def test_single_end(self, single_file):
        p, recs = single_file
        table = build_fastqpart([p], k=9, m=4, n_chunks=3)
        assert table.total_reads == len(recs)
        batch = load_chunk_reads(table, 0)
        assert batch.sequence(0) == recs[0].sequence
        assert (table.size2 == 0).all()

    def test_mixed_units(self, single_file, paired_files):
        p, recs = single_file
        p1, p2, r1, _ = paired_files
        table = build_fastqpart([p, (p1, p2)], k=9, m=4, n_chunks=6)
        assert table.total_reads == len(recs) + len(r1)
        # read ids of the second unit start after the first
        second_unit_chunks = np.flatnonzero(table.unit == 1)
        assert table.read_lo[second_unit_chunks[0]] == len(recs)

    def test_more_chunks_than_reads_capped(self, tmp_path):
        recs = [FastqRecord("a", "ACGTACGT", "IIIIIIII")]
        p = tmp_path / "one.fastq"
        write_fastq(p, recs)
        table = build_fastqpart([str(p)], k=4, m=2, n_chunks=4)
        assert table.n_chunks == 1

    def test_empty_input_rejected(self, tmp_path):
        p = tmp_path / "empty.fastq"
        p.write_text("")
        with pytest.raises(ValueError, match="no reads"):
            build_fastqpart([str(p)], k=4, m=2, n_chunks=2)

    def test_no_units_rejected(self):
        with pytest.raises(ValueError):
            build_fastqpart([], k=4, m=2, n_chunks=2)


class TestPersistence:
    def test_save_load_roundtrip(self, paired_files, tmp_path):
        p1, p2, _, _ = paired_files
        table = build_fastqpart([(p1, p2)], k=9, m=4, n_chunks=4)
        path = tmp_path / "fastqpart.bin"
        table.save(path)
        back = FastqPartTable.load(path)
        assert back.k == table.k
        assert back.total_reads == table.total_reads
        assert np.array_equal(back.hist, table.hist)
        assert np.array_equal(back.offset1, table.offset1)
        assert back.units[0].r1 == p1
        # loaded table is fully functional
        batch = load_chunk_reads(back, 0)
        assert batch.n_reads > 0

    def test_nbytes_dominated_by_hist(self, paired_files):
        p1, p2, _, _ = paired_files
        table = build_fastqpart([(p1, p2)], k=9, m=4, n_chunks=4)
        assert table.nbytes >= table.hist.nbytes
