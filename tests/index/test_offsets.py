import numpy as np
import pytest

from repro.index.fastqpart import build_fastqpart, load_chunk_reads
from repro.index.offsets import (
    chunk_assignment,
    recv_counts_matrix,
    send_counts_matrix,
    thread_write_offsets,
)
from repro.index.passplan import balanced_boundaries
from repro.kmers.engine import enumerate_canonical_kmers
from repro.seqio.fastq import write_fastq
from repro.seqio.records import FastqRecord


K, M = 9, 4


@pytest.fixture()
def table(tmp_path, rng):
    from tests.conftest import random_reads

    recs = [
        FastqRecord(f"r{i}", s, "I" * len(s))
        for i, s in enumerate(random_reads(rng, 40, 30))
    ]
    p = tmp_path / "reads.fastq"
    write_fastq(p, recs)
    return build_fastqpart([str(p)], k=K, m=M, n_chunks=8)


class TestChunkAssignment:
    def test_round_robin(self):
        a = chunk_assignment(10, 2, 2)
        assert a.tolist() == [0, 1, 2, 3, 0, 1, 2, 3, 0, 1]

    def test_every_slot_used_when_enough_chunks(self):
        a = chunk_assignment(16, 2, 4)
        assert set(a.tolist()) == set(range(8))

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            chunk_assignment(4, 0, 2)


class TestSendCounts:
    def _actual_counts(self, table, assignment, edges, P, T, lo=0, hi=None):
        """Ground truth by running the actual enumeration."""
        hi = hi if hi is not None else table.n_bins
        actual = np.zeros((P, T, P), dtype=np.int64)
        for c in range(table.n_chunks):
            p, t = divmod(int(assignment[c]), T)
            batch = load_chunk_reads(table, c, keep_metadata=False)
            tuples = enumerate_canonical_kmers(batch, K)
            bins = tuples.kmers.mmer_prefix(M).astype(np.int64)
            bins = bins[(bins >= lo) & (bins < hi)]
            dest = np.clip(np.searchsorted(edges, bins, side="right") - 1, 0, P - 1)
            for d in range(P):
                actual[p, t, d] += int((dest == d).sum())
        return actual

    def test_exactly_predicts_production(self, table):
        P, T = 2, 2
        assignment = chunk_assignment(table.n_chunks, P, T)
        edges = balanced_boundaries(table.global_histogram(), P)
        predicted = send_counts_matrix(table, assignment, edges, P, T)
        actual = self._actual_counts(table, assignment, edges, P, T)
        assert np.array_equal(predicted, actual)

    def test_with_pass_range_restriction(self, table):
        P, T = 2, 2
        assignment = chunk_assignment(table.n_chunks, P, T)
        hist = table.global_histogram()
        lo, hi = 30, 200
        edges = balanced_boundaries(hist, P, lo, hi)
        predicted = send_counts_matrix(
            table, assignment, edges, P, T, pass_lo=lo, pass_hi=hi
        )
        actual = self._actual_counts(table, assignment, edges, P, T, lo, hi)
        assert np.array_equal(predicted, actual)

    def test_total_preserved(self, table):
        P, T = 3, 2
        assignment = chunk_assignment(table.n_chunks, P, T)
        edges = balanced_boundaries(table.global_histogram(), P)
        counts = send_counts_matrix(table, assignment, edges, P, T)
        assert counts.sum() == table.global_histogram().sum()

    def test_wrong_edge_count_rejected(self, table):
        with pytest.raises(ValueError):
            send_counts_matrix(
                table,
                chunk_assignment(table.n_chunks, 2, 2),
                np.array([0, table.n_bins]),
                2,
                2,
            )


class TestRecvCounts:
    def test_transpose_relation(self, table):
        P, T = 2, 2
        assignment = chunk_assignment(table.n_chunks, P, T)
        edges = balanced_boundaries(table.global_histogram(), P)
        send = send_counts_matrix(table, assignment, edges, P, T)
        recv = recv_counts_matrix(send)
        for p in range(P):
            for q in range(P):
                assert recv[p, q] == send[q, :, p].sum()

    def test_conservation(self, table):
        P, T = 4, 1
        assignment = chunk_assignment(table.n_chunks, P, T)
        edges = balanced_boundaries(table.global_histogram(), P)
        send = send_counts_matrix(table, assignment, edges, P, T)
        recv = recv_counts_matrix(send)
        assert recv.sum() == send.sum()


class TestThreadWriteOffsets:
    def test_layout_destination_major_thread_minor(self, table):
        P, T = 2, 2
        assignment = chunk_assignment(table.n_chunks, P, T)
        edges = balanced_boundaries(table.global_histogram(), P)
        send = send_counts_matrix(table, assignment, edges, P, T)
        offsets = thread_write_offsets(send)
        assert len(offsets) == P
        for p in range(P):
            off = offsets[p]
            assert off.shape == (T + 1, P)
            # block d starts where block d-1 ends
            for d in range(1, P):
                assert off[0, d] == off[T, d - 1]
            # within a block, thread t's region is exactly its count
            for d in range(P):
                for t in range(T):
                    assert off[t + 1, d] - off[t, d] == send[p, t, d]
            # final end == total tuples of task p
            assert off[T, P - 1] == send[p].sum()

    def test_offsets_start_at_zero(self, table):
        P, T = 2, 3
        assignment = chunk_assignment(table.n_chunks, P, T)
        edges = balanced_boundaries(table.global_histogram(), P)
        offsets = thread_write_offsets(
            send_counts_matrix(table, assignment, edges, P, T)
        )
        for p in range(P):
            assert offsets[p][0, 0] == 0
