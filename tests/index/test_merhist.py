import numpy as np
import pytest

from repro.index.merhist import MerHist, build_merhist, histogram_batch
from repro.kmers.engine import enumerate_canonical_kmers
from repro.seqio.records import ReadBatch


@pytest.fixture()
def batch(rng):
    from tests.conftest import random_reads

    return ReadBatch.from_sequences(random_reads(rng, 15, 35, n_prob=0.02))


class TestHistogramBatch:
    def test_total_equals_tuple_count(self, batch):
        hist = histogram_batch(batch, k=9, m=4)
        tuples = enumerate_canonical_kmers(batch, 9)
        assert hist.sum() == len(tuples)

    def test_bins_match_prefixes(self, batch):
        k, m = 9, 4
        hist = histogram_batch(batch, k, m)
        tuples = enumerate_canonical_kmers(batch, k)
        prefixes = tuples.kmers.mmer_prefix(m).astype(np.int64)
        want = np.bincount(prefixes, minlength=4**m)
        assert np.array_equal(hist, want)

    def test_empty_batch(self):
        hist = histogram_batch(ReadBatch.empty(), 9, 4)
        assert hist.sum() == 0
        assert len(hist) == 4**4


class TestMerHist:
    def test_build_accumulates(self, batch):
        h1 = build_merhist([batch], 9, 4)
        h2 = build_merhist([batch, batch], 9, 4)
        assert np.array_equal(h2.counts, 2 * h1.counts.astype(np.int64))

    def test_bin_count(self):
        h = MerHist(k=9, m=4, counts=np.zeros(256, dtype=np.uint32))
        assert h.n_bins == 256
        assert h.nbytes == 1024

    def test_wrong_bin_count_rejected(self):
        with pytest.raises(ValueError):
            MerHist(k=9, m=4, counts=np.zeros(100, dtype=np.uint32))

    def test_m_must_be_less_than_k(self):
        with pytest.raises(ValueError):
            MerHist(k=3, m=5, counts=np.zeros(4**5, dtype=np.uint32))

    def test_cumulative(self, batch):
        h = build_merhist([batch], 9, 4)
        cum = h.cumulative()
        assert cum[0] == 0
        assert cum[-1] == h.total_tuples
        assert np.all(np.diff(cum) >= 0)

    def test_count_in_bin_range(self, batch):
        h = build_merhist([batch], 9, 4)
        total = h.count_in_bin_range(0, h.n_bins)
        assert total == h.total_tuples
        mid = h.n_bins // 2
        assert (
            h.count_in_bin_range(0, mid) + h.count_in_bin_range(mid, h.n_bins)
            == total
        )

    def test_save_load_roundtrip(self, batch, tmp_path):
        h = build_merhist([batch], 9, 4)
        path = tmp_path / "merhist.bin"
        h.save(path)
        back = MerHist.load(path)
        assert back.k == 9
        assert back.m == 4
        assert np.array_equal(back.counts, h.counts)
