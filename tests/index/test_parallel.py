import numpy as np
import pytest

from repro.index.create import index_create
from repro.index.parallel import parallel_index_create


class TestParallelIndexCreate:
    @pytest.mark.parametrize("P,T", [(1, 1), (2, 3), (4, 2)])
    def test_identical_tables_to_sequential(self, tiny_hg, P, T):
        seq = index_create(tiny_hg.units, k=27, m=5, n_chunks=8)
        par, stats = parallel_index_create(
            tiny_hg.units, k=27, m=5, n_chunks=8, n_tasks=P, n_threads=T
        )
        assert np.array_equal(par.merhist.counts, seq.merhist.counts)
        assert np.array_equal(par.fastqpart.hist, seq.fastqpart.hist)
        assert np.array_equal(par.fastqpart.offset1, seq.fastqpart.offset1)

    def test_work_accounted_per_slot(self, tiny_hg):
        _, stats = parallel_index_create(
            tiny_hg.units, k=27, m=5, n_chunks=8, n_tasks=2, n_threads=2
        )
        assert stats.bases_scanned.shape == (2, 2)
        # every base of every read scanned exactly once: n_pairs pairs,
        # two 100 bp mates each
        assert stats.bases_scanned.sum() == tiny_hg.n_pairs * 2 * 100

    def test_balance_reasonable(self, tiny_hg):
        _, stats = parallel_index_create(
            tiny_hg.units, k=27, m=5, n_chunks=16, n_tasks=2, n_threads=2
        )
        assert stats.imbalance() < 1.3

    def test_projection_speedup(self, tiny_hg):
        _, s1 = parallel_index_create(
            tiny_hg.units, k=27, m=5, n_chunks=16, n_tasks=1, n_threads=1
        )
        _, s8 = parallel_index_create(
            tiny_hg.units, k=27, m=5, n_chunks=16, n_tasks=2, n_threads=4
        )
        rate = 10e6
        assert s8.projected_seconds(rate) < s1.projected_seconds(rate)

    def test_result_drives_pipeline(self, tiny_hg):
        from repro.core.config import PipelineConfig
        from repro.core.pipeline import MetaPrep

        par, _ = parallel_index_create(
            tiny_hg.units, k=27, m=5, n_chunks=8, n_tasks=2, n_threads=2
        )
        seq = index_create(tiny_hg.units, k=27, m=5, n_chunks=8)
        cfg = PipelineConfig(k=27, m=5, n_threads=2, write_outputs=False)
        a = MetaPrep(cfg).run(tiny_hg.units, index=par)
        b = MetaPrep(cfg).run(tiny_hg.units, index=seq)
        assert np.array_equal(a.partition.labels, b.partition.labels)

    def test_invalid_decomposition_rejected(self, tiny_hg):
        with pytest.raises(ValueError):
            parallel_index_create(
                tiny_hg.units, k=27, m=5, n_chunks=8, n_tasks=0
            )
