import pytest

from repro.util.validation import (
    check_in_range,
    check_positive,
    check_power_of_two,
    check_type,
    require,
)


class TestRequire:
    def test_passes(self):
        require(True, "never")

    def test_raises_with_message(self):
        with pytest.raises(ValueError, match="broken"):
            require(False, "broken")


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 1)
        check_positive("x", 0.001)

    @pytest.mark.parametrize("bad", [0, -1, -0.5])
    def test_rejects(self, bad):
        with pytest.raises(ValueError, match="x"):
            check_positive("x", bad)


class TestCheckInRange:
    def test_inclusive_bounds(self):
        check_in_range("k", 1, 1, 63)
        check_in_range("k", 63, 1, 63)

    @pytest.mark.parametrize("bad", [0, 64])
    def test_rejects_outside(self, bad):
        with pytest.raises(ValueError):
            check_in_range("k", bad, 1, 63)


class TestCheckPowerOfTwo:
    @pytest.mark.parametrize("ok", [1, 2, 4, 1024])
    def test_accepts(self, ok):
        check_power_of_two("n", ok)

    @pytest.mark.parametrize("bad", [0, 3, 6, -4])
    def test_rejects(self, bad):
        with pytest.raises(ValueError):
            check_power_of_two("n", bad)


class TestCheckType:
    def test_accepts(self):
        check_type("s", "abc", str)

    def test_rejects(self):
        with pytest.raises(TypeError, match="s must be str"):
            check_type("s", 5, str)
