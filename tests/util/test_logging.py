import io
import logging

from repro.util.logging import get_logger, set_verbosity


class TestGetLogger:
    def test_namespacing(self):
        assert get_logger("kmers").name == "repro.kmers"
        assert get_logger("repro.kmers").name == "repro.kmers"
        assert get_logger().name == "repro"


class TestSetVerbosity:
    def test_emits_to_stream(self):
        stream = io.StringIO()
        set_verbosity(logging.INFO, stream=stream)
        get_logger("test").info("hello world")
        assert "hello world" in stream.getvalue()
        # cleanup
        logger = get_logger()
        for h in list(logger.handlers):
            logger.removeHandler(h)

    def test_repeated_calls_single_handler(self):
        stream = io.StringIO()
        set_verbosity("INFO", stream=stream)
        set_verbosity("INFO", stream=stream)
        get_logger("test").info("once")
        assert stream.getvalue().count("once") == 1
        logger = get_logger()
        for h in list(logger.handlers):
            logger.removeHandler(h)

    def test_unknown_level_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            set_verbosity("NOTALEVEL")
