import numpy as np

from repro.util.rng import derive_seed, rng_for


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)

    def test_labels_matter(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_base_seed_matters(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_label_order_matters(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")

    def test_no_concatenation_collision(self):
        # ("ab",) vs ("a", "b") must differ thanks to the separator byte
        assert derive_seed(1, "ab") != derive_seed(1, "a", "b")

    def test_seed_in_64bit_range(self):
        s = derive_seed(123, "x")
        assert 0 <= s < 2**64


class TestRngFor:
    def test_streams_reproducible(self):
        a = rng_for(5, "reads", 10).random(4)
        b = rng_for(5, "reads", 10).random(4)
        assert np.array_equal(a, b)

    def test_streams_independent(self):
        a = rng_for(5, "reads", 10).random(4)
        b = rng_for(5, "reads", 11).random(4)
        assert not np.array_equal(a, b)
