import time

import pytest

from repro.util.timers import StepTimer, Stopwatch, TimeBreakdown


class TestStopwatch:
    def test_accumulates_across_intervals(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        first = sw.elapsed
        with sw:
            time.sleep(0.01)
        assert sw.elapsed > first

    def test_elapsed_while_running(self):
        sw = Stopwatch().start()
        time.sleep(0.005)
        assert sw.elapsed > 0
        assert sw.running
        sw.stop()
        assert not sw.running

    def test_double_start_raises(self):
        sw = Stopwatch().start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.002)
        sw.reset()
        assert sw.elapsed == 0.0


class TestTimeBreakdown:
    def test_add_and_total(self):
        bd = TimeBreakdown()
        bd.add("a", 1.0)
        bd.add("b", 2.0)
        bd.add("a", 0.5)
        assert bd.get("a") == pytest.approx(1.5)
        assert bd.total == pytest.approx(3.5)

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            TimeBreakdown().add("a", -1.0)

    def test_merge(self):
        a = TimeBreakdown({"x": 1.0})
        b = TimeBreakdown({"x": 2.0, "y": 3.0})
        a.merge(b)
        assert a.get("x") == pytest.approx(3.0)
        assert a.get("y") == pytest.approx(3.0)

    def test_scaled(self):
        bd = TimeBreakdown({"x": 2.0}).scaled(0.5)
        assert bd.get("x") == pytest.approx(1.0)

    def test_insertion_order_preserved(self):
        bd = TimeBreakdown()
        for name in ["c", "a", "b"]:
            bd.add(name, 1.0)
        assert [k for k, _ in bd.items()] == ["c", "a", "b"]

    def test_get_missing_is_zero(self):
        assert TimeBreakdown().get("nope") == 0.0


class TestStepTimer:
    def test_step_context_records(self):
        timer = StepTimer()
        with timer.step("work"):
            time.sleep(0.002)
        assert timer.breakdown.get("work") >= 0.002

    def test_record_direct(self):
        timer = StepTimer()
        timer.record("x", 1.25)
        timer.record("x", 0.75)
        assert timer.breakdown.get("x") == pytest.approx(2.0)

    def test_exception_still_records(self):
        timer = StepTimer()
        with pytest.raises(RuntimeError):
            with timer.step("failing"):
                raise RuntimeError("boom")
        assert timer.breakdown.get("failing") >= 0.0
        assert "failing" in timer.breakdown.seconds
