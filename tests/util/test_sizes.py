import pytest

from repro.util.sizes import human_bytes, human_count, parse_bytes


class TestHumanBytes:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0 B"),
            (512, "512 B"),
            (1024, "1.00 KB"),
            (49 * 2**30, "49.00 GB"),
            (int(1.5 * 2**20), "1.50 MB"),
        ],
    )
    def test_formatting(self, value, expected):
        assert human_bytes(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            human_bytes(-1)


class TestHumanCount:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0, "0"),
            (999, "999"),
            (1_130_000_000, "1.13B"),
            (12_700_000, "12.70M"),
            (21_300, "21.30K"),
        ],
    )
    def test_formatting(self, value, expected):
        assert human_count(value) == expected

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            human_count(-5)


class TestParseBytes:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("1024", 1024),
            ("64GB", 64 * 2**30),
            ("64 gb", 64 * 2**30),
            ("512 mb", 512 * 2**20),
            ("1.5k", int(1.5 * 1024)),
            ("10b", 10),
        ],
    )
    def test_parsing(self, text, expected):
        assert parse_bytes(text) == expected

    def test_roundtrip_with_human(self):
        assert parse_bytes("49 GB") == 49 * 2**30

    @pytest.mark.parametrize("bad", ["", "GB", "12xyz", "1..2k"])
    def test_rejects_garbage(self, bad):
        with pytest.raises(ValueError):
            parse_bytes(bad)
