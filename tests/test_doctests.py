"""Run the doctests embedded in public docstrings."""

import doctest

import pytest

import repro.assembly.stats
import repro.cc.mergecc
import repro.seqio.alphabet
import repro.util.sizes
import repro.util.timers

MODULES = [
    repro.seqio.alphabet,
    repro.util.sizes,
    repro.util.timers,
    repro.assembly.stats,
    repro.cc.mergecc,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failures in {module.__name__}"
    assert result.attempted > 0, f"no doctests found in {module.__name__}"
