import numpy as np
import pytest

from repro.cc.components import (
    partition_as_frozensets,
    reference_components_networkx,
)
from repro.cc.incremental import IncrementalPartitioner
from repro.seqio.records import ReadBatch


def batch_chunks(batch: ReadBatch, n_chunks: int):
    idx = np.array_split(np.arange(batch.n_reads), n_chunks)
    return [batch.select(part) for part in idx if len(part)]


class TestIncrementalEqualsBatch:
    @pytest.mark.parametrize("n_chunks", [1, 2, 5])
    def test_matches_oracle(self, tiny_hg_batch, n_chunks):
        inc = IncrementalPartitioner(k=27)
        for chunk in batch_chunks(tiny_hg_batch, n_chunks):
            inc.add_batch(chunk)
        got = partition_as_frozensets(
            inc.parent_array(), tiny_hg_batch.read_ids
        )
        ref = reference_components_networkx(tiny_hg_batch, 27)
        assert got == ref

    def test_arrival_order_invariant(self, tiny_hg_batch, rng):
        chunks = batch_chunks(tiny_hg_batch, 6)
        a = IncrementalPartitioner(k=27)
        for c in chunks:
            a.add_batch(c)
        b = IncrementalPartitioner(k=27)
        for i in rng.permutation(len(chunks)):
            b.add_batch(chunks[int(i)])
        pa = partition_as_frozensets(a.parent_array(), tiny_hg_batch.read_ids)
        pb = partition_as_frozensets(b.parent_array(), tiny_hg_batch.read_ids)
        assert pa == pb

    def test_duplicate_batches_idempotent(self, small_batch):
        inc = IncrementalPartitioner(k=7)
        inc.add_batch(small_batch)
        before = inc.summary().n_components
        inc.add_batch(small_batch)  # same reads again
        assert inc.summary().n_components == before


class TestQueries:
    def test_connected_updates_live(self):
        inc = IncrementalPartitioner(k=5)
        inc.add_batch(ReadBatch.from_sequences(["AACCGGT"], read_ids=[0]))
        inc.add_batch(ReadBatch.from_sequences(["TTTTAAA"], read_ids=[1]))
        assert not inc.connected(0, 1)
        # a bridging read sharing k-mers with both
        inc.add_batch(ReadBatch.from_sequences(["AACCGTTTTA"], read_ids=[2]))
        # read 2 shares AACCG with read 0 and TTTTA with read 1
        assert inc.connected(0, 2)
        assert inc.connected(0, 1)

    def test_unknown_reads_not_connected(self):
        inc = IncrementalPartitioner(k=5)
        assert not inc.connected(0, 5)

    def test_stats_accumulate(self, small_batch):
        inc = IncrementalPartitioner(k=7)
        inc.add_batch(small_batch)
        s = inc.stats
        assert s.n_batches == 1
        assert s.n_tuples_processed > 0
        assert s.n_distinct_kmers > 0
        assert inc.memory_estimate_bytes() > 0

    def test_sparse_read_ids(self):
        inc = IncrementalPartitioner(k=5)
        inc.add_batch(
            ReadBatch.from_sequences(["ACGTACG", "ACGTACG"], read_ids=[3, 90])
        )
        assert inc.n_reads == 91
        assert inc.connected(3, 90)

    def test_k_limit(self):
        with pytest.raises(ValueError):
            IncrementalPartitioner(k=45)

    def test_empty_batch_noop(self):
        inc = IncrementalPartitioner(k=5)
        inc.add_batch(ReadBatch.empty())
        assert inc.n_reads == 0
