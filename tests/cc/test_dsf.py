import numpy as np
import pytest

from repro.cc.dsf import DisjointSetForest


class TestBasicOps:
    def test_initial_singletons(self):
        f = DisjointSetForest(5)
        assert f.n_components() == 5
        for v in range(5):
            assert f.find(v) == v

    def test_union_by_index_lower_under_higher(self):
        f = DisjointSetForest(4)
        survivor = f.union(1, 3)
        assert survivor == 3
        assert f.parent[1] == 3
        assert f.find(1) == 3

    def test_union_same_root_noop(self):
        f = DisjointSetForest(3)
        assert f.union(2, 2) == 2
        assert f.n_components() == 3

    def test_connected(self):
        f = DisjointSetForest(4)
        f.process_edges(np.array([0]), np.array([1]))
        assert f.connected(0, 1)
        assert not f.connected(0, 2)

    def test_zero_vertices(self):
        f = DisjointSetForest(0)
        assert f.n_components() == 0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            DisjointSetForest(-1)


class TestPathSplitting:
    def test_find_shortens_paths(self):
        f = DisjointSetForest(5)
        # hand-build a chain 0 -> 1 -> 2 -> 3 -> 4
        f.parent[:] = [1, 2, 3, 4, 4]
        root = f.find(0)
        assert root == 4
        # path splitting: 0 and 1 now point at their grandparents
        assert f.parent[0] >= 2
        assert f.parent[1] >= 3


class TestProcessEdges:
    def test_matches_reference_components(self, rng):
        n = 60
        edges = rng.integers(0, n, size=(120, 2))
        f = DisjointSetForest(n)
        f.process_edges(edges[:, 0], edges[:, 1])

        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(map(tuple, edges))
        ref = {frozenset(c) for c in nx.connected_components(g)}
        got = {}
        for v in range(n):
            got.setdefault(f.find(v), set()).add(v)
        assert {frozenset(c) for c in got.values()} == ref

    def test_converges_in_two_iterations_uncontended(self):
        f = DisjointSetForest(10)
        us = np.arange(9)
        vs = np.arange(1, 10)
        unions, _, iterations = f.process_edges(us, vs)
        assert unions == 9
        assert iterations <= 2

    def test_union_count(self):
        f = DisjointSetForest(4)
        unions, _, _ = f.process_edges(
            np.array([0, 1, 0]), np.array([1, 2, 2])
        )
        assert unions == 2  # third edge redundant

    def test_mismatched_arrays_rejected(self):
        f = DisjointSetForest(4)
        with pytest.raises(ValueError):
            f.process_edges(np.array([0, 1]), np.array([1]))

    def test_empty_edge_list(self):
        f = DisjointSetForest(4)
        assert f.process_edges(np.array([]), np.array([])) == (0, 0, 0)

    def test_no_cycles_created(self, rng):
        """Union-by-index guarantees acyclic parent chains."""
        n = 40
        f = DisjointSetForest(n)
        edges = rng.integers(0, n, size=(100, 2))
        f.process_edges(edges[:, 0], edges[:, 1])
        # every chain must terminate within n steps
        for v in range(n):
            x, steps = v, 0
            while f.parent[x] != x:
                x = int(f.parent[x])
                steps += 1
                assert steps <= n, "cycle detected"


class TestVectorizedFind:
    def test_find_many_matches_scalar(self, rng):
        n = 50
        f = DisjointSetForest(n)
        edges = rng.integers(0, n, size=(80, 2))
        f.process_edges(edges[:, 0], edges[:, 1])
        xs = np.arange(n)
        vec = f.find_many(xs)
        scalar = np.array([f.find(int(v)) for v in xs])
        assert np.array_equal(vec, scalar)

    def test_find_many_compress(self):
        f = DisjointSetForest(4)
        f.parent[:] = [1, 2, 3, 3]
        roots = f.find_many(np.array([0]), compress=True)
        assert roots[0] == 3
        assert f.parent[0] == 3

    def test_roots_idempotent(self, rng):
        n = 30
        f = DisjointSetForest(n)
        edges = rng.integers(0, n, size=(40, 2))
        f.process_edges(edges[:, 0], edges[:, 1])
        r1 = f.roots()
        assert np.array_equal(f.parent[r1], r1)  # roots are self-parents


class TestParentArrayAdoption:
    def test_roundtrip(self):
        f = DisjointSetForest(5)
        f.process_edges(np.array([0, 2]), np.array([1, 3]))
        g = DisjointSetForest.from_parent_array(f.parent)
        assert g.n_components() == f.n_components()

    def test_cycle_rejected(self):
        with pytest.raises(ValueError, match="cycle"):
            DisjointSetForest.from_parent_array(np.array([1, 0], dtype=np.int64))

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="range"):
            DisjointSetForest.from_parent_array(np.array([5], dtype=np.int64))

    def test_absorb_parent_array(self):
        a = DisjointSetForest(6)
        a.process_edges(np.array([0]), np.array([1]))
        b = DisjointSetForest(6)
        b.process_edges(np.array([1, 4]), np.array([2, 5]))
        unions = a.absorb_parent_array(b.parent)
        assert unions >= 2
        assert a.connected(0, 2)
        assert a.connected(4, 5)
        assert not a.connected(0, 4)

    def test_absorb_wrong_length_rejected(self):
        a = DisjointSetForest(3)
        with pytest.raises(ValueError):
            a.absorb_parent_array(np.arange(4))


class TestAdversarialInterleaving:
    def test_interleaved_blocks_same_partition(self, rng):
        """Simulate 'threads' processing edge blocks in shuffled order: the
        final partition must not depend on the interleaving (the property
        Algorithm 1's deferred verification protects on real hardware)."""
        n = 50
        edges = rng.integers(0, n, size=(200, 2))
        ref = DisjointSetForest(n)
        ref.process_edges(edges[:, 0], edges[:, 1])
        ref_labels = ref.roots()

        for trial in range(5):
            order = rng.permutation(len(edges))
            shuffled = edges[order]
            f = DisjointSetForest(n)
            for blk in np.array_split(np.arange(len(edges)), 7):
                f.process_edges(shuffled[blk, 0], shuffled[blk, 1])
            # same partition (labels may differ; compare co-membership)
            got = f.roots()
            assert np.array_equal(
                ref_labels[:, None] == ref_labels[None, :],
                got[:, None] == got[None, :],
            )
