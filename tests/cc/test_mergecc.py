import numpy as np
import pytest

from repro.cc.dsf import DisjointSetForest
from repro.cc.mergecc import merge_component_arrays, tree_merge_schedule


class TestSchedule:
    def test_eight_tasks_matches_figure4(self):
        rounds = tree_merge_schedule(8)
        assert rounds == [
            [(1, 0), (3, 2), (5, 4), (7, 6)],
            [(2, 0), (6, 4)],
            [(4, 0)],
        ]

    def test_round_count_is_ceil_log2(self):
        import math

        for p in [1, 2, 3, 4, 5, 7, 8, 16, 17]:
            rounds = tree_merge_schedule(p)
            expected = math.ceil(math.log2(p)) if p > 1 else 0
            assert len(rounds) == expected, f"P={p}"

    def test_every_nonzero_task_sends_exactly_once(self):
        for p in [2, 5, 8, 13]:
            senders = [s for rnd in tree_merge_schedule(p) for s, _ in rnd]
            assert sorted(senders) == list(range(1, p))

    def test_rank0_never_sends(self):
        for p in [2, 4, 9]:
            for rnd in tree_merge_schedule(p):
                assert all(s != 0 for s, _ in rnd)

    def test_single_task_empty(self):
        assert tree_merge_schedule(1) == []

    def test_invalid_rejected(self):
        with pytest.raises(ValueError):
            tree_merge_schedule(0)


class TestMerge:
    def _forest_with_edges(self, n, edges):
        f = DisjointSetForest(n)
        if edges:
            us, vs = zip(*edges)
            f.process_edges(np.array(us), np.array(vs))
        return f

    def test_merges_disjoint_knowledge(self):
        n = 8
        a = self._forest_with_edges(n, [(0, 1), (2, 3)])
        b = self._forest_with_edges(n, [(1, 2), (5, 6)])
        merged, stats = merge_component_arrays([a.parent, b.parent])
        result = DisjointSetForest.from_parent_array(merged)
        assert result.connected(0, 3)
        assert result.connected(5, 6)
        assert not result.connected(0, 5)
        assert stats.n_rounds == 1

    def test_matches_union_of_all_edges(self, rng):
        n = 40
        all_edges = [tuple(e) for e in rng.integers(0, n, size=(60, 2))]
        # split edges across 5 tasks
        chunks = np.array_split(np.arange(len(all_edges)), 5)
        parents = []
        for chunk in chunks:
            f = self._forest_with_edges(n, [all_edges[i] for i in chunk])
            parents.append(f.parent)
        merged, _ = merge_component_arrays(parents)

        ref = self._forest_with_edges(n, all_edges)
        ra = DisjointSetForest.from_parent_array(merged).roots()
        rb = ref.roots()
        assert np.array_equal(
            ra[:, None] == ra[None, :], rb[:, None] == rb[None, :]
        )

    def test_single_task_identity(self):
        f = self._forest_with_edges(5, [(0, 4)])
        merged, stats = merge_component_arrays([f.parent])
        assert np.array_equal(merged, f.parent)
        assert stats.n_rounds == 0
        assert stats.bytes_communicated == 0

    def test_bytes_accounting_4r_per_send(self):
        n = 100
        parents = [DisjointSetForest(n).parent for _ in range(4)]
        _, stats = merge_component_arrays(parents)
        # 3 sends (tasks 1,2,3), 4 bytes per read each
        assert stats.bytes_communicated == 3 * 4 * n

    def test_rank0_receives_most_merges(self):
        n = 10
        parents = [DisjointSetForest(n).parent for _ in range(8)]
        _, stats = merge_component_arrays(parents)
        assert stats.merges_by_task[0] == 3  # log2(8) rounds
        assert stats.merges_by_task[1] == 0

    def test_inputs_not_mutated(self):
        f = self._forest_with_edges(6, [(0, 1)])
        g = self._forest_with_edges(6, [(2, 3)])
        fp, gp = f.parent.copy(), g.parent.copy()
        merge_component_arrays([f.parent, g.parent])
        assert np.array_equal(f.parent, fp)
        assert np.array_equal(g.parent, gp)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merge_component_arrays([np.arange(3), np.arange(4)])

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            merge_component_arrays([])

    def test_non_power_of_two_tasks(self, rng):
        n = 20
        edges = [tuple(e) for e in rng.integers(0, n, size=(30, 2))]
        chunks = np.array_split(np.arange(len(edges)), 5)
        parents = [
            self._forest_with_edges(n, [edges[i] for i in c]).parent
            for c in chunks
        ]
        merged, stats = merge_component_arrays(parents)
        ref = self._forest_with_edges(n, edges)
        ra = DisjointSetForest.from_parent_array(merged).roots()
        rb = ref.roots()
        assert np.array_equal(
            ra[:, None] == ra[None, :], rb[:, None] == rb[None, :]
        )
        assert stats.n_rounds == 3  # ceil(log2 5)
