import numpy as np
import pytest

from repro.cc.components import (
    build_read_graph,
    compact_labels,
    component_sizes,
    partition_as_frozensets,
    reference_components_networkx,
    summarize_components,
)
from repro.cc.dsf import DisjointSetForest
from repro.kmers.filter import FrequencyFilter
from repro.seqio.records import ReadBatch


def forest_parent(n, edges):
    f = DisjointSetForest(n)
    if edges:
        us, vs = zip(*edges)
        f.process_edges(np.array(us), np.array(vs))
    return f.parent


class TestCompactLabels:
    def test_dense_labels(self):
        parent = forest_parent(6, [(0, 1), (3, 4)])
        labels = compact_labels(parent)
        assert labels.min() == 0
        assert labels.max() == 3  # {0,1}, {2}, {3,4}, {5}
        assert labels[0] == labels[1]
        assert labels[3] == labels[4]
        assert labels[0] != labels[3]

    def test_canonical_form(self):
        # two different parent arrays describing the same partition
        a = forest_parent(4, [(0, 1)])
        b = forest_parent(4, [(1, 0)])
        assert np.array_equal(compact_labels(a), compact_labels(b))


class TestComponentSizes:
    def test_descending(self):
        parent = forest_parent(7, [(0, 1), (0, 2), (4, 5)])
        assert component_sizes(parent).tolist() == [3, 2, 1, 1]

    def test_summary(self):
        parent = forest_parent(10, [(0, i) for i in range(1, 8)])
        s = summarize_components(parent)
        assert s.n_reads == 10
        assert s.n_components == 3
        assert s.largest_component_size == 8
        assert s.largest_component_percent == pytest.approx(80.0)
        assert s.singleton_components == 2
        assert s.size_histogram == {8: 1, 1: 2}

    def test_empty(self):
        s = summarize_components(np.empty(0, dtype=np.int64))
        assert s.n_reads == 0
        assert s.largest_component_fraction == 0.0


class TestReadGraphOracle:
    def test_two_clusters(self):
        # reads 0,1 share CCCC; read 2 (GTGT...) shares no canonical 4-mer
        # with either (note: canonical forms matter — e.g. TTTT would
        # canonicalize to AAAA and join read 0)
        batch = ReadBatch.from_sequences(
            ["AAAACCCC", "CCCCGGGG", "GTGTGTGT"], read_ids=[0, 1, 2]
        )
        comps = reference_components_networkx(batch, 4)
        assert comps == [frozenset({0, 1}), frozenset({2})]
        graph = build_read_graph(batch, 4)
        assert graph.has_edge(0, 1)
        assert not graph.has_edge(0, 2)

    def test_canonical_join_via_revcomp_kmer(self):
        # TTTT canonicalizes to AAAA, joining a read containing AAAA
        batch = ReadBatch.from_sequences(
            ["AAAAC", "GTTTT"], read_ids=[0, 1]
        )
        comps = reference_components_networkx(batch, 4)
        assert comps == [frozenset({0, 1})]

    def test_strand_symmetric(self):
        from repro.seqio.alphabet import reverse_complement

        seq = "ACGGTTACGGTA"
        batch = ReadBatch.from_sequences(
            [seq, reverse_complement(seq)], read_ids=[0, 1]
        )
        comps = reference_components_networkx(batch, 5)
        assert comps == [frozenset({0, 1})]

    def test_filter_respected(self):
        # k-mer "AAAA" occurs 6 times; filter KF < 4 removes it
        batch = ReadBatch.from_sequences(
            ["AAAAA", "AAAAC", "AAAAG"], read_ids=[0, 1, 2]
        )
        no_filter = reference_components_networkx(batch, 4)
        assert no_filter[0] == frozenset({0, 1, 2})
        filtered = reference_components_networkx(
            batch, 4, FrequencyFilter(max_freq=4)
        )
        assert all(len(c) == 1 for c in filtered)

    def test_partition_as_frozensets_matches(self):
        parent = forest_parent(5, [(0, 1), (2, 3)])
        got = partition_as_frozensets(parent, np.arange(5))
        assert got == [
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({4}),
        ]

    def test_partition_restricted_to_active(self):
        parent = forest_parent(6, [(0, 1), (2, 3)])
        got = partition_as_frozensets(parent, np.array([0, 1, 5]))
        assert got == [frozenset({0, 1}), frozenset({5})]
