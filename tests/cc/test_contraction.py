import numpy as np
import pytest

from repro.cc.contraction import (
    expected_contracted_bytes,
    merge_component_arrays_contracted,
    nontrivial_pairs,
)
from repro.cc.dsf import DisjointSetForest
from repro.cc.mergecc import merge_component_arrays


def forests_from_split_edges(n, edges, n_tasks, rng=None):
    chunks = [edges[i::n_tasks] for i in range(n_tasks)]
    parents = []
    for chunk in chunks:
        f = DisjointSetForest(n)
        if len(chunk):
            us, vs = zip(*chunk)
            f.process_edges(np.array(us), np.array(vs))
        parents.append(f.parent)
    return parents


class TestNontrivialPairs:
    def test_identity_array_empty(self):
        us, vs = nontrivial_pairs(np.arange(10))
        assert len(us) == 0

    def test_pairs_reconstruct_forest(self):
        f = DisjointSetForest(8)
        f.process_edges(np.array([0, 4]), np.array([1, 5]))
        us, vs = nontrivial_pairs(f.parent)
        g = DisjointSetForest(8)
        g.process_edges(us, vs)
        assert np.array_equal(g.roots(), f.roots())


class TestContractedMerge:
    @pytest.mark.parametrize("n_tasks", [1, 2, 3, 5, 8])
    def test_same_partition_as_baseline(self, rng, n_tasks):
        n = 60
        edges = [tuple(e) for e in rng.integers(0, n, size=(90, 2))]
        parents = forests_from_split_edges(n, edges, n_tasks)
        baseline, _ = merge_component_arrays(parents)
        contracted, _ = merge_component_arrays_contracted(parents)
        fa = DisjointSetForest.from_parent_array(baseline).roots()
        fb = DisjointSetForest.from_parent_array(contracted).roots()
        assert np.array_equal(
            fa[:, None] == fa[None, :], fb[:, None] == fb[None, :]
        )

    def test_byte_savings_for_sparse_forests(self, rng):
        """Sparse local knowledge (the multi-task regime): the contracted
        exchange moves fewer bytes than 4R per message."""
        n = 1000
        edges = [tuple(e) for e in rng.integers(0, n, size=(60, 2))]
        parents = forests_from_split_edges(n, edges, 8)
        _, stats = merge_component_arrays_contracted(parents)
        assert stats.bytes_communicated < stats.baseline_bytes
        assert stats.compression_ratio < 0.5

    def test_no_savings_for_dense_forests(self, rng):
        """Fully-merged forests: nearly all entries non-trivial, 8-byte
        pairs cost more than the 4-byte array — the documented taper."""
        n = 100
        edges = [(i, i + 1) for i in range(n - 1)]
        parents = forests_from_split_edges(n, edges, 2)
        # give both tasks the full chain so every vertex is non-trivial
        f = DisjointSetForest(n)
        us, vs = zip(*edges)
        f.process_edges(np.array(us), np.array(vs))
        _, stats = merge_component_arrays_contracted([f.parent, f.parent.copy()])
        assert stats.compression_ratio > 1.0

    def test_stats_rounds(self, rng):
        n = 40
        parents = [DisjointSetForest(n).parent for _ in range(8)]
        _, stats = merge_component_arrays_contracted(parents)
        assert stats.n_rounds == 3
        assert stats.bytes_communicated == 0  # all-identity arrays
        assert len(stats.pairs_per_round) == 3

    def test_single_task(self):
        f = DisjointSetForest(5)
        merged, stats = merge_component_arrays_contracted([f.parent])
        assert np.array_equal(merged, f.parent)
        assert stats.n_rounds == 0

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            merge_component_arrays_contracted([np.arange(3), np.arange(4)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            merge_component_arrays_contracted([])


class TestPredictor:
    def test_first_round_estimate(self, rng):
        n = 200
        edges = [tuple(e) for e in rng.integers(0, n, size=(50, 2))]
        parents = forests_from_split_edges(n, edges, 4)
        contracted, baseline = expected_contracted_bytes(parents)
        assert baseline == 2 * 4 * n  # two first-round senders
        assert 0 <= contracted <= 8 * n * 2

    def test_single_task_zero(self):
        assert expected_contracted_bytes([np.arange(5)]) == (0, 0)
