import numpy as np
import pytest

from repro.cc.dsf import DisjointSetForest
from repro.cc.localcc import (
    edges_from_sorted_runs,
    local_connected_components,
    map_ids_to_components,
)
from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.kmers.filter import FrequencyFilter


def sorted_tuples(lo_keys, ids, k=5):
    order = np.argsort(lo_keys, kind="stable")
    return KmerTuples(
        KmerArray(k, np.asarray(lo_keys, dtype=np.uint64)[order]),
        np.asarray(ids, dtype=np.uint32)[order],
    )


class TestEdgesFromRuns:
    def test_star_edges_per_run(self):
        # k-mer 3 shared by reads {0,1,2}; k-mer 7 by {4,5}
        t = sorted_tuples([3, 3, 3, 7, 7], [0, 1, 2, 4, 5])
        us, vs, stats = edges_from_sorted_runs(t)
        assert sorted(zip(us.tolist(), vs.tolist())) == [(0, 1), (0, 2), (4, 5)]
        assert stats.n_runs == 2
        assert stats.n_edges == 3

    def test_singleton_runs_no_edges(self):
        t = sorted_tuples([1, 2, 3], [0, 1, 2])
        us, vs, stats = edges_from_sorted_runs(t)
        assert len(us) == 0
        assert stats.n_runs == 3

    def test_self_edges_removed(self):
        # read 4 contains k-mer twice (palindromic repeat within read)
        t = sorted_tuples([9, 9, 9], [4, 4, 6])
        us, vs, _ = edges_from_sorted_runs(t)
        pairs = set(zip(us.tolist(), vs.tolist()))
        assert pairs == {(4, 6)}

    def test_requires_sorted(self):
        t = KmerTuples(
            KmerArray(5, np.array([9, 3], dtype=np.uint64)),
            np.array([0, 1], dtype=np.uint32),
        )
        with pytest.raises(ValueError, match="sorted"):
            edges_from_sorted_runs(t)

    def test_empty(self):
        us, vs, stats = edges_from_sorted_runs(KmerTuples.empty(5))
        assert len(us) == 0
        assert stats.n_tuples == 0

    def test_frequency_filter_drops_runs(self):
        # run of 4 (k-mer 3) and run of 2 (k-mer 7)
        t = sorted_tuples([3, 3, 3, 3, 7, 7], [0, 1, 2, 3, 8, 9])
        f = FrequencyFilter(max_freq=3)  # KF < 3: drops the run of 4
        us, vs, stats = edges_from_sorted_runs(t, f)
        assert set(zip(us.tolist(), vs.tolist())) == {(8, 9)}
        assert stats.n_runs_filtered == 1

    def test_band_filter(self):
        t = sorted_tuples([1, 1, 2, 2, 2, 5], [0, 1, 2, 3, 4, 5])
        f = FrequencyFilter(3, 4)  # only the run of exactly 3 passes
        us, vs, _ = edges_from_sorted_runs(t, f)
        assert set(us.tolist()) | set(vs.tolist()) == {2, 3, 4}

    def test_identity_filter_equals_no_filter(self):
        t = sorted_tuples([3, 3, 7, 7, 7], [0, 1, 2, 3, 4])
        a = edges_from_sorted_runs(t, None)[0:2]
        b = edges_from_sorted_runs(t, FrequencyFilter())[0:2]
        assert np.array_equal(a[0], b[0]) and np.array_equal(a[1], b[1])


class TestLocalCC:
    def test_components_formed(self):
        t = sorted_tuples([3, 3, 3, 7, 7], [0, 1, 2, 4, 5])
        forest = DisjointSetForest(6)
        stats = local_connected_components(t, forest)
        assert stats.n_unions == 3
        assert forest.connected(0, 2)
        assert forest.connected(4, 5)
        assert not forest.connected(0, 4)

    def test_stats_accumulation(self):
        t = sorted_tuples([3, 3], [0, 1])
        forest = DisjointSetForest(2)
        s1 = local_connected_components(t, forest)
        s2 = local_connected_components(t, forest)  # all redundant now
        merged = s1.merge(s2)
        assert merged.n_tuples == 4
        assert merged.n_edges == 2
        assert merged.n_unions == 1  # second call unions nothing

    def test_empty_tuples_no_change(self):
        forest = DisjointSetForest(3)
        stats = local_connected_components(KmerTuples.empty(5), forest)
        assert stats.n_edges == 0
        assert forest.n_components() == 3


class TestLocalCCOpt:
    def test_map_ids_to_components_preserves_partition(self):
        forest = DisjointSetForest(6)
        forest.process_edges(np.array([0, 1]), np.array([1, 2]))
        ids = np.array([0, 1, 2, 3], dtype=np.uint32)
        mapped = map_ids_to_components(ids, forest)
        # all of 0,1,2 map to one root; 3 maps to itself
        assert len(set(mapped[:3].tolist())) == 1
        assert mapped[3] == 3

    def test_unions_on_mapped_ids_equivalent(self):
        """Unioning component ids (LocalCC-Opt) must yield the same final
        partition as unioning raw read ids."""
        forest_a = DisjointSetForest(8)
        forest_a.process_edges(np.array([0, 4]), np.array([1, 5]))
        forest_b = forest_a.copy()

        # new pass edges: (1,4) connects the two groups; (6,7) separate
        us = np.array([1, 6])
        vs = np.array([4, 7])
        forest_a.process_edges(us, vs)

        mu = map_ids_to_components(us, forest_b)
        mv = map_ids_to_components(vs, forest_b)
        forest_b.process_edges(mu.astype(np.int64), mv.astype(np.int64))

        ra = forest_a.roots()
        rb = forest_b.roots()
        assert np.array_equal(
            ra[:, None] == ra[None, :], rb[:, None] == rb[None, :]
        )
