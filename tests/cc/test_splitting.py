import pytest

from repro.cc.splitting import hub_kmer_split, split_to_target, sweep_filters
from repro.seqio.records import ReadBatch
from repro.util.rng import rng_for


@pytest.fixture(scope="module")
def glued_batch():
    """Two species glued by a shared high-frequency segment."""
    rng = rng_for(91, "splitting")
    a = "".join(rng.choice(list("ACGT"), size=300))
    b = "".join(rng.choice(list("ACGT"), size=300))
    hub = "".join(rng.choice(list("ACGT"), size=40))
    a = a[:150] + hub + a[150:]
    b = b[:150] + hub + b[150:]
    reads = []
    for genome in (a, b):
        for _ in range(6):  # 6x coverage -> hub k-mers at ~12x
            reads.extend(
                genome[i : i + 50] for i in range(0, len(genome) - 49, 25)
            )
    return ReadBatch.from_sequences(reads)


K = 15


class TestSweepFilters:
    def test_lc_monotone_in_cutoff(self, glued_batch):
        outcomes = sweep_filters(glued_batch, K, max_freqs=[3, 6, 12, 24, 48])
        fractions = [o.lc_fraction for o in outcomes]
        assert fractions == sorted(fractions)

    def test_loose_filter_keeps_giant(self, glued_batch):
        outcomes = sweep_filters(glued_batch, K, max_freqs=[1000])
        assert outcomes[0].lc_fraction > 0.9

    def test_tight_filter_splits(self, glued_batch):
        outcomes = sweep_filters(glued_batch, K, max_freqs=[9])
        # the 12x hub k-mers are cut; the two species separate
        assert outcomes[0].lc_fraction < 0.8


class TestSplitToTarget:
    def test_meets_target(self, glued_batch):
        outcome = split_to_target(glued_batch, K, target_fraction=0.7)
        assert outcome.lc_fraction <= 0.7

    def test_returns_gentlest_filter(self, glued_batch):
        outcome = split_to_target(glued_batch, K, target_fraction=0.7)
        # one cutoff higher must exceed the target (maximality)
        higher = sweep_filters(
            glued_batch, K, max_freqs=[outcome.kfilter.max_freq + 1]
        )[0]
        assert higher.lc_fraction > 0.7 or (
            higher.lc_fraction == outcome.lc_fraction
        )

    def test_trivial_target(self, glued_batch):
        outcome = split_to_target(glued_batch, K, target_fraction=1.0)
        # everything satisfies a 100% target; gentlest filter wins
        assert outcome.lc_fraction <= 1.0

    def test_impossible_target_returns_most_aggressive(self, glued_batch):
        outcome = split_to_target(glued_batch, K, target_fraction=0.0001)
        assert outcome.kfilter.max_freq == 2

    def test_invalid_target_rejected(self, glued_batch):
        with pytest.raises(ValueError):
            split_to_target(glued_batch, K, target_fraction=1.5)


class TestHubKmerSplit:
    def test_reduces_giant_component(self, glued_batch):
        baseline = sweep_filters(glued_batch, K, max_freqs=[10**6])[0]
        outcome = hub_kmer_split(glued_batch, K, target_fraction=0.7)
        assert outcome.lc_fraction <= baseline.lc_fraction
        assert outcome.lc_fraction <= 0.8

    def test_empty_batch(self):
        outcome = hub_kmer_split(ReadBatch.empty(), K, target_fraction=0.5)
        assert outcome.summary.n_reads == 0

    def test_filter_reported(self, glued_batch):
        outcome = hub_kmer_split(glued_batch, K, target_fraction=0.7)
        assert outcome.kfilter.max_freq is not None
