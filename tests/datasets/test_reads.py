import numpy as np
import pytest

from repro.datasets.community import CommunitySpec, build_community
from repro.datasets.reads import ReadSimulator
from repro.seqio.alphabet import reverse_complement


@pytest.fixture(scope="module")
def community():
    spec = CommunitySpec(
        n_species=3, genome_length=2000, abundance_sigma=0.3, length_jitter=0.0
    )
    return build_community(spec, seed=5)


def make_sim(community, **kw):
    defaults = dict(read_length=50, insert_mean=120, insert_sd=10, seed=3)
    defaults.update(kw)
    return ReadSimulator(community=community, **defaults)


class TestSimulatePair:
    def test_deterministic(self, community):
        sim = make_sim(community)
        a = sim.simulate_pair(7)
        b = sim.simulate_pair(7)
        assert a.r1.sequence == b.r1.sequence
        assert a.r2.sequence == b.r2.sequence
        assert a.species == b.species

    def test_read_lengths(self, community):
        sim = make_sim(community)
        p = sim.simulate_pair(0)
        assert len(p.r1) == 50
        assert len(p.r2) == 50

    def test_mate_orientation_error_free(self, community):
        """With zero errors, R2 is the revcomp of the fragment tail."""
        sim = make_sim(community, error_rate=0.0, n_rate=0.0)
        for i in range(10):
            p = sim.simulate_pair(i)
            genome = community.genomes[p.species].codes
            from repro.seqio.alphabet import decode_sequence

            # locate the fragment in the declared orientation
            r1 = p.r1.sequence
            if p.forward:
                frag_start = genome[p.position : p.position + 50]
                assert r1 == decode_sequence(frag_start)
            else:
                # read comes from the reverse strand; its revcomp appears
                # at the *end* of the forward-strand fragment window
                assert reverse_complement(r1) in decode_sequence(
                    genome[p.position : p.position + 400]
                )

    def test_species_follow_abundance(self, community):
        sim = make_sim(community)
        species = [sim.simulate_pair(i).species for i in range(600)]
        freqs = np.bincount(species, minlength=3) / 600
        assert np.allclose(freqs, community.abundances, atol=0.08)

    def test_error_rate_applied(self, community):
        clean = make_sim(community, error_rate=0.0, n_rate=0.0)
        noisy = make_sim(community, error_rate=0.2, n_rate=0.0)
        diffs = 0
        for i in range(20):
            a = clean.simulate_pair(i).r1.sequence
            b = noisy.simulate_pair(i).r1.sequence
            diffs += sum(x != y for x, y in zip(a, b))
        assert 0.1 < diffs / (20 * 50) < 0.3

    def test_n_rate_produces_ns(self, community):
        sim = make_sim(community, n_rate=0.1)
        text = "".join(sim.simulate_pair(i).r1.sequence for i in range(20))
        assert 0.05 < text.count("N") / len(text) < 0.2

    def test_zero_noise_is_clean(self, community):
        sim = make_sim(community, error_rate=0.0, n_rate=0.0)
        for i in range(10):
            assert "N" not in sim.simulate_pair(i).r1.sequence

    def test_names_carry_pair_id(self, community):
        sim = make_sim(community)
        p = sim.simulate_pair(42)
        assert p.r1.name.endswith("/1")
        assert p.r2.name.endswith("/2")
        assert "pair42" in p.r1.name


class TestValidation:
    def test_insert_below_read_rejected(self, community):
        with pytest.raises(ValueError):
            make_sim(community, insert_mean=30)

    def test_bad_error_rate_rejected(self, community):
        with pytest.raises(ValueError):
            make_sim(community, error_rate=0.9)


class TestSimulate:
    def test_aligned_outputs(self, community):
        sim = make_sim(community)
        r1s, r2s = sim.simulate(25)
        assert len(r1s) == len(r2s) == 25
        assert r1s[3].name.rsplit("/", 1)[0] == r2s[3].name.rsplit("/", 1)[0]
