import os

import pytest

from repro.datasets.registry import DATASETS, build_dataset
from repro.seqio.fastq import count_reads


class TestRegistry:
    def test_table2_roster(self):
        assert set(DATASETS) == {"HG", "LL", "MM", "IS"}

    def test_size_ordering_follows_table2(self):
        """Table 2: HG < LL < MM < IS in read count."""
        sizes = [DATASETS[n].n_pairs for n in ("HG", "LL", "MM", "IS")]
        assert sizes == sorted(sizes)

    def test_mm_higher_coverage_than_ll(self):
        """MM is a mock community: fewer genomes, far deeper coverage."""
        mm, ll = DATASETS["MM"], DATASETS["LL"]
        mm_cov = mm.total_bases / (
            mm.community.n_species * mm.community.genome_length
        )
        ll_cov = ll.total_bases / (
            ll.community.n_species * ll.community.genome_length
        )
        assert mm_cov > 2 * ll_cov

    def test_is_most_diverse(self):
        assert DATASETS["IS"].community.n_species == max(
            d.community.n_species for d in DATASETS.values()
        )

    def test_scaled(self):
        spec = DATASETS["HG"].scaled(0.1)
        assert spec.n_pairs == DATASETS["HG"].n_pairs // 10
        with pytest.raises(ValueError):
            DATASETS["HG"].scaled(0)


class TestBuildDataset:
    def test_materializes_files(self, tiny_hg):
        assert os.path.exists(tiny_hg.r1_path)
        assert os.path.exists(tiny_hg.r2_path)
        assert count_reads(tiny_hg.r1_path) == tiny_hg.n_pairs
        assert count_reads(tiny_hg.r2_path) == tiny_hg.n_pairs

    def test_cached_on_second_call(self, tiny_hg, data_root):
        mtime = os.path.getmtime(tiny_hg.r1_path)
        again = build_dataset("HG", str(data_root) + "/hg", seed=7, scale=0.12)
        assert os.path.getmtime(again.r1_path) == mtime
        assert again.species_of_pair == tiny_hg.species_of_pair

    def test_ground_truth_species(self, tiny_hg):
        assert len(tiny_hg.species_of_pair) == tiny_hg.n_pairs
        assert max(tiny_hg.species_of_pair) < tiny_hg.community.n_species

    def test_unknown_name_rejected(self, tmp_path):
        with pytest.raises(KeyError):
            build_dataset("XX", tmp_path)

    def test_different_seeds_different_data(self, tmp_path):
        a = build_dataset("HG", tmp_path, seed=1, scale=0.02)
        b = build_dataset("HG", tmp_path, seed=2, scale=0.02)
        from repro.seqio.fastq import read_fastq

        sa = [r.sequence for r in read_fastq(a.r1_path)]
        sb = [r.sequence for r in read_fastq(b.r1_path)]
        assert sa != sb

    def test_units_paired(self, tiny_hg):
        assert len(tiny_hg.units) == 1
        assert tiny_hg.units[0].paired
        assert tiny_hg.file_bytes > 0
