import numpy as np
import pytest

from repro.datasets.community import CommunitySpec, build_community


class TestBuildCommunity:
    def test_shape(self):
        spec = CommunitySpec(n_species=5, genome_length=800)
        comm = build_community(spec, seed=1)
        assert comm.n_species == 5
        assert len(comm.abundances) == 5
        assert comm.abundances.sum() == pytest.approx(1.0)

    def test_deterministic(self):
        spec = CommunitySpec(n_species=3, genome_length=500)
        a = build_community(spec, seed=9)
        b = build_community(spec, seed=9)
        assert np.array_equal(a.abundances, b.abundances)
        assert np.array_equal(a.genomes[0].codes, b.genomes[0].codes)

    def test_even_community(self):
        spec = CommunitySpec(n_species=4, genome_length=500, abundance_sigma=0)
        comm = build_community(spec, seed=1)
        assert np.allclose(comm.abundances, 0.25)

    def test_skewed_community(self):
        spec = CommunitySpec(
            n_species=12, genome_length=500, abundance_sigma=1.3
        )
        comm = build_community(spec, seed=1)
        assert comm.abundances.max() / comm.abundances.min() > 5

    def test_conserved_segments_shared_across_genomes(self):
        spec = CommunitySpec(
            n_species=4,
            genome_length=2000,
            n_conserved=1,
            conserved_length=100,
            conserved_probability=1.0,
            n_repeats=0,
        )
        comm = build_community(spec, seed=2)
        seg = comm.library.conserved[0]
        carriers = 0
        for g in comm.genomes:
            for kind, si, pos in g.planted_segments:
                if kind == "conserved" and np.array_equal(
                    g.codes[pos : pos + len(seg)], seg
                ):
                    carriers += 1
                    break
        assert carriers == 4

    def test_expected_coverage(self):
        spec = CommunitySpec(n_species=2, genome_length=1000, abundance_sigma=0,
                             length_jitter=0.0)
        comm = build_community(spec, seed=1)
        cov = comm.expected_coverage(total_sequenced_bases=40_000)
        assert np.allclose(cov, 20.0)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            CommunitySpec(n_species=0, genome_length=100)
