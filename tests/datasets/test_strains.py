import numpy as np
import pytest

from repro.datasets.genomes import synthesize_genome
from repro.datasets.strains import (
    StrainSpec,
    derive_strain,
    expected_shared_kmer_fraction,
    make_strain_family,
    strain_kmer_similarity,
)
from repro.util.rng import rng_for


@pytest.fixture()
def base():
    rng = rng_for(161, "strains")
    return synthesize_genome("sp0", 3000, rng)


class TestDeriveStrain:
    def test_deterministic(self, base):
        a = derive_strain(base, StrainSpec(), seed=5)
        b = derive_strain(base, StrainSpec(), seed=5)
        assert np.array_equal(a.codes, b.codes)

    def test_different_seeds_differ(self, base):
        a = derive_strain(base, StrainSpec(), seed=5)
        b = derive_strain(base, StrainSpec(), seed=6)
        assert not np.array_equal(a.codes, b.codes)

    def test_snp_rate_realized(self, base):
        spec = StrainSpec(snp_rate=0.05, indel_rate=0.0)
        strain = derive_strain(base, spec, seed=1)
        assert len(strain) == len(base)
        diff = (strain.codes != base.codes).mean()
        assert diff == pytest.approx(0.05, rel=0.35)

    def test_indels_change_length(self, base):
        spec = StrainSpec(snp_rate=0.0, indel_rate=0.01)
        strain = derive_strain(base, spec, seed=2)
        assert len(strain) != len(base)

    def test_zero_divergence_identical(self, base):
        spec = StrainSpec(snp_rate=0.0, indel_rate=0.0)
        strain = derive_strain(base, spec, seed=3)
        assert np.array_equal(strain.codes, base.codes)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            StrainSpec(snp_rate=0.5)


class TestFamily:
    def test_family_size(self, base):
        family = make_strain_family(base, 3, StrainSpec(), seed=1)
        assert len(family) == 4
        assert family[0] is base
        names = {g.name for g in family}
        assert len(names) == 4


class TestSimilarity:
    def test_identical_genomes(self, base):
        assert strain_kmer_similarity(base, base) == pytest.approx(1.0)

    def test_similarity_tracks_analytic_expectation(self, base):
        """Challenge (i) quantified: shared-k-mer fraction ~ (1-p)^k."""
        k = 27
        for rate in (0.002, 0.01):
            strain = derive_strain(
                base, StrainSpec(snp_rate=rate, indel_rate=0.0), seed=7
            )
            sim = strain_kmer_similarity(base, strain, k=k)
            expected = expected_shared_kmer_fraction(rate, k)
            # Jaccard vs shared-fraction differ slightly; wide band
            assert sim == pytest.approx(
                expected / (2 - expected), rel=0.25
            ), rate

    def test_unrelated_genomes_near_zero(self, base):
        rng = rng_for(162, "strains2")
        other = synthesize_genome("spX", 3000, rng)
        assert strain_kmer_similarity(base, other) < 0.01


class TestStrainsCoPartition:
    def test_strains_land_in_one_component(self, base):
        """The paper's challenge (i) consequence: read-graph partitioning
        cannot separate 1%-divergent strains — they share ~76% of 27-mers
        and every shared k-mer is an edge."""
        from repro.cc.components import reference_components_networkx
        from repro.seqio.records import ReadBatch

        strain = derive_strain(
            base, StrainSpec(snp_rate=0.01, indel_rate=0.0), seed=9
        )
        rng = rng_for(163, "strains3")
        reads, ids = [], []
        rid = 0
        for genome in (base, strain):
            text = genome.sequence
            # ~8x coverage so reads within each strain surely chain
            for _ in range(240):
                pos = int(rng.integers(0, len(text) - 100))
                reads.append(text[pos : pos + 100])
                ids.append(rid)
                rid += 1
        batch = ReadBatch.from_sequences(reads, read_ids=ids)
        comps = reference_components_networkx(batch, 27)
        assert len(comps[0]) > 0.95 * len(reads)
