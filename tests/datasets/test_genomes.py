import numpy as np
import pytest

from repro.datasets.genomes import (
    Genome,
    SegmentLibrary,
    make_genome_set,
    random_sequence,
    synthesize_genome,
)


class TestRandomSequence:
    def test_codes_valid(self, rng):
        codes = random_sequence(rng, 500)
        assert codes.dtype == np.uint8
        assert codes.max() <= 3

    def test_roughly_uniform(self, rng):
        codes = random_sequence(rng, 20_000)
        freqs = np.bincount(codes, minlength=4) / len(codes)
        assert np.allclose(freqs, 0.25, atol=0.02)

    def test_zero_length_rejected(self, rng):
        with pytest.raises(ValueError):
            random_sequence(rng, 0)


class TestSegmentLibrary:
    def test_generation(self, rng):
        lib = SegmentLibrary.generate(rng, 2, 100, 3, 45)
        assert len(lib.conserved) == 2
        assert len(lib.repeats) == 3
        assert all(len(s) == 100 for s in lib.conserved)
        assert all(len(s) == 45 for s in lib.repeats)


class TestSynthesizeGenome:
    def test_plants_conserved_segments(self, rng):
        lib = SegmentLibrary.generate(rng, 1, 50, 0, 10)
        g = synthesize_genome("x", 1000, rng, lib, conserved_probability=1.0)
        kinds = [k for k, _, _ in g.planted_segments]
        assert "conserved" in kinds
        # segment really present in the sequence
        _, si, pos = g.planted_segments[0]
        assert np.array_equal(g.codes[pos : pos + 50], lib.conserved[si])

    def test_repeat_copies(self, rng):
        lib = SegmentLibrary.generate(rng, 0, 10, 1, 30)
        g = synthesize_genome("x", 2000, rng, lib, repeat_copies=4)
        repeats = [p for p in g.planted_segments if p[0] == "repeat"]
        assert len(repeats) == 4

    def test_zero_probability_no_conserved(self, rng):
        lib = SegmentLibrary.generate(rng, 3, 50, 0, 10)
        g = synthesize_genome("x", 1000, rng, lib, conserved_probability=0.0)
        assert all(k != "conserved" for k, _, _ in g.planted_segments)

    def test_oversized_segment_skipped(self, rng):
        lib = SegmentLibrary.generate(rng, 1, 500, 0, 10)
        g = synthesize_genome("x", 100, rng, lib, conserved_probability=1.0)
        assert len(g.planted_segments) == 0

    def test_gc_content_reasonable(self, rng):
        g = synthesize_genome("x", 10_000, rng)
        assert 0.4 < g.gc_content() < 0.6

    def test_sequence_decodes(self, rng):
        g = synthesize_genome("x", 64, rng)
        assert len(g.sequence) == 64
        assert set(g.sequence) <= set("ACGT")


class TestMakeGenomeSet:
    def test_deterministic(self):
        a = make_genome_set(1, 4, 500)
        b = make_genome_set(1, 4, 500)
        assert all(
            np.array_equal(x.codes, y.codes) for x, y in zip(a, b)
        )

    def test_seed_changes_genomes(self):
        a = make_genome_set(1, 2, 500)
        b = make_genome_set(2, 2, 500)
        assert not np.array_equal(a[0].codes, b[0].codes)

    def test_length_jitter(self):
        gs = make_genome_set(3, 8, 1000, length_jitter=0.3)
        lengths = {len(g) for g in gs}
        assert len(lengths) > 1
        assert all(700 <= length <= 1300 for length in lengths)
