import numpy as np

from repro.index.passplan import balanced_boundaries
from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.sort.sampling import measure_partition_balance, sampled_boundaries


def tuples_with_bins(rng, n, m, skew=False):
    n_bins = 1 << (2 * m)
    if skew:
        # zipf-ish: most mass in a few bins
        bins = (rng.zipf(1.5, size=n) - 1) % n_bins
    else:
        bins = rng.integers(0, n_bins, size=n)
    k = 13
    lo = (bins.astype(np.uint64) << np.uint64(2 * (k - m))) | rng.integers(
        0, 1 << (2 * (k - m)), size=n, dtype=np.uint64
    )
    ids = rng.integers(0, n, size=n, dtype=np.uint32)
    return KmerTuples(KmerArray(k, lo), ids)


class TestSampledBoundaries:
    def test_edges_span(self, rng):
        t = tuples_with_bins(rng, 5000, m=4)
        edges = sampled_boundaries(t, 4, 8, seed=0)
        assert edges[0] == 0
        assert edges[-1] == 4**4
        assert np.all(np.diff(edges) >= 0)

    def test_uniform_keys_decent_balance(self, rng):
        t = tuples_with_bins(rng, 20_000, m=4)
        edges = sampled_boundaries(t, 4, 8, sample_size=2048, seed=0)
        stats = measure_partition_balance(t, 4, edges)
        assert stats.imbalance < 1.6

    def test_bigger_sample_no_worse(self, rng):
        t = tuples_with_bins(rng, 20_000, m=4, skew=True)
        small = measure_partition_balance(
            t, 4, sampled_boundaries(t, 4, 8, sample_size=64, seed=0)
        )
        big = measure_partition_balance(
            t, 4, sampled_boundaries(t, 4, 8, sample_size=8192, seed=0)
        )
        assert big.imbalance <= small.imbalance * 1.3

    def test_histogram_beats_sampling(self, rng):
        """The ablation's claim: exact (merHist) boundaries are at least
        as balanced as sampled splitters."""
        t = tuples_with_bins(rng, 30_000, m=4, skew=True)
        counts = np.bincount(
            t.kmers.mmer_prefix(4).astype(np.int64), minlength=4**4
        )
        exact = measure_partition_balance(
            t, 4, balanced_boundaries(counts, 8)
        )
        sampled = measure_partition_balance(
            t, 4, sampled_boundaries(t, 4, 8, sample_size=256, seed=0)
        )
        assert exact.imbalance <= sampled.imbalance * 1.05

    def test_deterministic_given_seed(self, rng):
        t = tuples_with_bins(rng, 5000, m=4)
        a = sampled_boundaries(t, 4, 4, seed=9)
        b = sampled_boundaries(t, 4, 4, seed=9)
        assert np.array_equal(a, b)

    def test_empty_tuples(self):
        t = KmerTuples.empty(13)
        edges = sampled_boundaries(t, 4, 4, seed=0)
        assert edges[0] == 0 and edges[-1] == 4**4

    def test_partition_counts_sum(self, rng):
        t = tuples_with_bins(rng, 7000, m=4)
        edges = sampled_boundaries(t, 4, 5, seed=0)
        stats = measure_partition_balance(t, 4, edges)
        assert stats.counts.sum() == len(t)
        assert stats.n_parts == 5
