import numpy as np
import pytest

from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.sort.validate import is_sorted_kmers, verify_sort


def _tuples(lo, ids, k=5, hi=None):
    return KmerTuples(
        KmerArray(k, np.asarray(lo, dtype=np.uint64),
                  np.asarray(hi, dtype=np.uint64) if hi is not None else None),
        np.asarray(ids, dtype=np.uint32),
    )


class TestIsSorted:
    def test_sorted(self):
        assert is_sorted_kmers(KmerArray(5, np.array([1, 2, 2, 9], dtype=np.uint64)))

    def test_unsorted(self):
        assert not is_sorted_kmers(KmerArray(5, np.array([3, 1], dtype=np.uint64)))

    def test_two_limb_hi_priority(self):
        arr = KmerArray(
            40,
            lo=np.array([9, 0], dtype=np.uint64),
            hi=np.array([1, 2], dtype=np.uint64),
        )
        assert is_sorted_kmers(arr)
        arr2 = KmerArray(
            40,
            lo=np.array([0, 9], dtype=np.uint64),
            hi=np.array([2, 1], dtype=np.uint64),
        )
        assert not is_sorted_kmers(arr2)

    def test_trivial(self):
        assert is_sorted_kmers(KmerArray.empty(5))
        assert is_sorted_kmers(KmerArray(5, np.array([3], dtype=np.uint64)))


class TestVerifySort:
    def test_accepts_valid(self):
        before = _tuples([3, 1, 2], [0, 1, 2])
        after = _tuples([1, 2, 3], [1, 2, 0])
        verify_sort(before, after)

    def test_rejects_unsorted(self):
        before = _tuples([3, 1], [0, 1])
        after = _tuples([3, 1], [0, 1])
        with pytest.raises(AssertionError, match="not sorted"):
            verify_sort(before, after)

    def test_rejects_non_permutation(self):
        before = _tuples([3, 1], [0, 1])
        after = _tuples([1, 1], [1, 1])
        with pytest.raises(AssertionError, match="permutation"):
            verify_sort(before, after)

    def test_rejects_payload_swap(self):
        # same sorted keys, but payloads swapped between distinct keys
        before = _tuples([1, 2], [7, 8])
        after = _tuples([1, 2], [8, 7])
        with pytest.raises(AssertionError, match="permutation"):
            verify_sort(before, after)

    def test_rejects_length_change(self):
        with pytest.raises(AssertionError, match="count"):
            verify_sort(_tuples([1, 2], [0, 1]), _tuples([1], [0]))

    def test_empty_ok(self):
        verify_sort(KmerTuples.empty(5), KmerTuples.empty(5))
