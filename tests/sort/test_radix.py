import numpy as np
import pytest

from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples, enumerate_canonical_kmers
from repro.sort.radix import (
    RADIX_BUCKETS,
    counting_sort_by_digit,
    radix_passes_for,
    radix_sort_tuples,
)
from repro.sort.validate import is_sorted_kmers, verify_sort


def make_tuples(rng, n, k=27):
    if k <= 31:
        lo = rng.integers(0, 1 << (2 * k), size=n, dtype=np.uint64)
        kmers = KmerArray(k, lo)
    else:
        lo = rng.integers(0, 2**63, size=n, dtype=np.uint64)
        hi = rng.integers(0, 1 << (2 * k - 64), size=n, dtype=np.uint64)
        kmers = KmerArray(k, lo, hi)
    ids = rng.integers(0, n, size=n, dtype=np.uint32)
    return KmerTuples(kmers, ids)


class TestRadixPassesFor:
    def test_paper_pass_counts(self):
        assert radix_passes_for(27) == 8
        assert radix_passes_for(31) == 8
        assert radix_passes_for(32) == 16
        assert radix_passes_for(63) == 16


class TestCountingSort:
    def test_sorted_and_stable(self, rng):
        digits = rng.integers(0, RADIX_BUCKETS, size=500).astype(np.uint8)
        order = counting_sort_by_digit(digits)
        out = digits[order]
        assert np.all(out[:-1] <= out[1:])
        # stability: equal digits keep original relative order
        for d in np.unique(digits):
            positions = order[out == d]
            assert np.all(np.diff(positions) > 0)


class TestRadixSort:
    @pytest.mark.parametrize("k", [27, 31])
    def test_one_limb_sorted_permutation(self, rng, k):
        tuples = make_tuples(rng, 2000, k)
        out, stats = radix_sort_tuples(tuples)
        verify_sort(tuples, out)
        assert stats.n_tuples == 2000
        assert stats.passes_nominal == 8

    @pytest.mark.parametrize("k", [35, 63])
    def test_two_limb_sorted_permutation(self, rng, k):
        tuples = make_tuples(rng, 1500, k)
        out, stats = radix_sort_tuples(tuples)
        verify_sort(tuples, out)
        assert stats.passes_nominal == 16

    def test_matches_numpy_reference(self, rng):
        tuples = make_tuples(rng, 1000, 27)
        out, _ = radix_sort_tuples(tuples)
        assert np.array_equal(out.kmers.lo, np.sort(tuples.kmers.lo))

    def test_stability_on_payload(self):
        # equal keys: payload order must be preserved
        lo = np.array([5, 5, 5, 2, 2], dtype=np.uint64)
        ids = np.array([10, 11, 12, 20, 21], dtype=np.uint32)
        tuples = KmerTuples(KmerArray(5, lo), ids)
        out, _ = radix_sort_tuples(tuples)
        assert out.read_ids.tolist() == [20, 21, 10, 11, 12]

    def test_skip_constant_digit_optimization(self, rng):
        # keys confined to one byte: 7 of 8 passes skippable
        lo = rng.integers(0, 256, size=300, dtype=np.uint64)
        tuples = KmerTuples(
            KmerArray(27, lo), np.arange(300, dtype=np.uint32)
        )
        out, stats = radix_sort_tuples(tuples, skip_constant=True)
        assert is_sorted_kmers(out.kmers)
        assert stats.passes_skipped >= 7

    def test_no_skip_runs_all_passes(self, rng):
        tuples = make_tuples(rng, 300, 27)
        _, stats = radix_sort_tuples(tuples, skip_constant=False)
        assert stats.passes_executed == 8
        assert stats.passes_skipped == 0

    def test_empty_and_singleton(self):
        empty = KmerTuples.empty(27)
        out, stats = radix_sort_tuples(empty)
        assert len(out) == 0
        single = KmerTuples(
            KmerArray(27, np.array([7], dtype=np.uint64)),
            np.array([1], dtype=np.uint32),
        )
        out, _ = radix_sort_tuples(single)
        assert out.kmers.lo.tolist() == [7]

    def test_real_enumeration_sorts(self, tiny_hg_batch):
        tuples = enumerate_canonical_kmers(tiny_hg_batch, 27)
        out, _ = radix_sort_tuples(tuples)
        verify_sort(tuples, out)

    def test_input_not_mutated(self, rng):
        tuples = make_tuples(rng, 100, 27)
        before = tuples.kmers.lo.copy()
        radix_sort_tuples(tuples)
        assert np.array_equal(tuples.kmers.lo, before)

    def test_stats_merge(self, rng):
        a = make_tuples(rng, 50, 27)
        _, s1 = radix_sort_tuples(a)
        _, s2 = radix_sort_tuples(make_tuples(rng, 70, 27))
        total = s1.merge(s2)
        assert total.n_tuples == 120
