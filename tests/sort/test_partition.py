import numpy as np
import pytest

from repro.kmers.engine import KmerTuples, enumerate_canonical_kmers
from repro.seqio.records import ReadBatch
from repro.sort.partition import partition_boundaries_equal, range_partition


@pytest.fixture()
def tuples(rng):
    from tests.conftest import random_reads

    batch = ReadBatch.from_sequences(random_reads(rng, 20, 40))
    return enumerate_canonical_kmers(batch, 9)


class TestBoundaries:
    def test_equal_boundaries_span(self):
        edges = partition_boundaries_equal(256, 4)
        assert edges[0] == 0
        assert edges[-1] == 256
        assert len(edges) == 5
        assert np.all(np.diff(edges) >= 0)

    def test_single_part(self):
        assert partition_boundaries_equal(64, 1).tolist() == [0, 64]

    def test_invalid_parts_rejected(self):
        with pytest.raises(ValueError):
            partition_boundaries_equal(64, 0)


class TestRangePartition:
    def test_partitions_disjoint_and_complete(self, tuples):
        m = 4
        edges = partition_boundaries_equal(4**m, 3)
        parts, counts = range_partition(tuples, m, edges)
        assert len(parts) == 3
        assert sum(len(p) for p in parts) == len(tuples)
        assert counts.tolist() == [len(p) for p in parts]

    def test_membership_respects_edges(self, tuples):
        m = 4
        edges = partition_boundaries_equal(4**m, 4)
        parts, _ = range_partition(tuples, m, edges)
        for i, part in enumerate(parts):
            if len(part) == 0:
                continue
            bins = part.kmers.mmer_prefix(m).astype(np.int64)
            assert bins.min() >= edges[i]
            assert bins.max() < edges[i + 1]

    def test_order_within_partition_stable(self, tuples):
        m = 4
        edges = np.array([0, 4**m], dtype=np.int64)
        parts, _ = range_partition(tuples, m, edges)
        # single partition: must be exactly the input order
        assert np.array_equal(parts[0].kmers.lo, tuples.kmers.lo)
        assert np.array_equal(parts[0].read_ids, tuples.read_ids)

    def test_subrange_span(self, tuples):
        m = 4
        bins = tuples.kmers.mmer_prefix(m).astype(np.int64)
        lo, hi = 10, 200
        mask = (bins >= lo) & (bins < hi)
        sub = tuples.take(np.flatnonzero(mask))
        edges = np.array([lo, 100, hi], dtype=np.int64)
        parts, counts = range_partition(sub, m, edges, span=(lo, hi))
        assert sum(counts) == len(sub)

    def test_empty_tuples(self):
        t = KmerTuples.empty(9)
        parts, counts = range_partition(
            t, 4, np.array([0, 128, 256], dtype=np.int64)
        )
        assert len(parts) == 2
        assert counts.tolist() == [0, 0]

    def test_bad_span_rejected(self, tuples):
        with pytest.raises(ValueError, match="span"):
            range_partition(tuples, 4, np.array([1, 4**4], dtype=np.int64))

    def test_decreasing_edges_rejected(self, tuples):
        with pytest.raises(ValueError, match="non-decreasing"):
            range_partition(
                tuples, 4, np.array([0, 200, 100, 4**4], dtype=np.int64)
            )

    def test_empty_partitions_allowed(self, tuples):
        m = 4
        n = 4**m
        edges = np.array([0, 0, n, n], dtype=np.int64)
        parts, counts = range_partition(tuples, m, edges)
        assert counts[0] == 0
        assert counts[2] == 0
        assert counts[1] == len(tuples)
