"""Public-API integrity: every ``__all__`` name resolves, every public
callable has a docstring, lazy top-level exports work."""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro.util",
    "repro.seqio",
    "repro.kmers",
    "repro.sort",
    "repro.cc",
    "repro.index",
    "repro.runtime",
    "repro.core",
    "repro.service",
    "repro.datasets",
    "repro.assembly",
    "repro.baselines",
    "repro.perf",
    "repro.analysis",
]


@pytest.mark.parametrize("name", PACKAGES)
def test_all_names_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), name
    for export in module.__all__:
        assert hasattr(module, export), f"{name}.{export} missing"


@pytest.mark.parametrize("name", PACKAGES)
def test_public_callables_documented(name):
    module = importlib.import_module(name)
    for export in module.__all__:
        obj = getattr(module, export)
        if inspect.isfunction(obj) or inspect.isclass(obj):
            assert obj.__doc__, f"{name}.{export} lacks a docstring"


@pytest.mark.parametrize("name", PACKAGES)
def test_package_docstring(name):
    module = importlib.import_module(name)
    assert module.__doc__ and len(module.__doc__.strip()) > 20, name


class TestTopLevelLazyExports:
    def test_lazy_names(self):
        import repro

        assert repro.MetaPrep is not None
        assert repro.PipelineConfig is not None
        assert callable(repro.build_dataset)
        assert "HG" in repro.DATASETS

    def test_unknown_attribute_raises(self):
        import repro

        with pytest.raises(AttributeError):
            repro.not_a_real_symbol

    def test_dir_lists_lazy_names(self):
        import repro

        listing = dir(repro)
        assert "MetaPrep" in listing
        assert "build_dataset" in listing

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"
