import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ["dataset", "index", "run", "assemble"]:
            args = {
                "dataset": ["dataset", "--list"],
                "index": ["index", "--r1", "x.fastq"],
                "run": ["run", "--r1", "x.fastq"],
                "assemble": ["assemble", "--fastq", "x.fastq"],
            }[cmd]
            ns = parser.parse_args(args)
            assert ns.command == cmd

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDatasetCommand:
    def test_list(self, capsys):
        assert main(["dataset", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("HG", "LL", "MM", "IS"):
            assert name in out

    def test_build(self, tmp_path, capsys):
        rc = main(
            ["dataset", "--name", "HG", "--workdir", str(tmp_path), "--scale", "0.02"]
        )
        assert rc == 0
        assert "built HG" in capsys.readouterr().out


class TestIndexAndRun:
    @pytest.fixture()
    def files(self, tiny_hg):
        return tiny_hg.r1_path, tiny_hg.r2_path

    def test_index(self, files, tmp_path, capsys):
        r1, r2 = files
        rc = main(
            [
                "index",
                "--r1", r1, "--r2", r2,
                "--k", "27", "--m", "5", "--chunks", "4",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "IndexCreate" in out
        assert "tables:" in out

    def test_run_without_output(self, files, capsys):
        r1, r2 = files
        rc = main(
            [
                "run",
                "--r1", r1, "--r2", r2,
                "--k", "27", "--m", "5",
                "--tasks", "2", "--threads", "2", "--passes", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "largest component" in out
        assert "projected step times" in out

    def test_run_executor_flags_parsed(self):
        ns = build_parser().parse_args(
            ["run", "--r1", "x.fastq", "--executor", "process", "--workers", "3"]
        )
        assert ns.executor == "process"
        assert ns.workers == 3
        # defaults
        ns = build_parser().parse_args(["run", "--r1", "x.fastq"])
        assert ns.executor == "serial"
        assert ns.workers is None

    def test_run_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--r1", "x.fastq", "--executor", "mpi"]
            )

    def test_run_with_process_executor(self, files, capsys):
        r1, r2 = files
        rc = main(
            [
                "run",
                "--r1", r1, "--r2", r2,
                "--k", "27", "--m", "5",
                "--tasks", "2", "--threads", "2",
                "--executor", "process", "--workers", "2",
            ]
        )
        assert rc == 0
        assert "largest component" in capsys.readouterr().out

    def test_run_with_filter_and_output(self, files, tmp_path, capsys):
        r1, r2 = files
        rc = main(
            [
                "run",
                "--r1", r1, "--r2", r2,
                "--k", "27", "--m", "5",
                "--filter", "<15",
                "--out", str(tmp_path / "parts"),
            ]
        )
        assert rc == 0
        assert "partitions written" in capsys.readouterr().out

    def test_spectrum(self, files, capsys):
        r1, r2 = files
        rc = main(["spectrum", "--fastq", r1, r2, "--k", "17"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "coverage peak" in out
        assert "suggested --filter" in out

    def test_normalize(self, files, tmp_path, capsys):
        r1, _ = files
        out_path = tmp_path / "norm.fastq"
        rc = main(
            [
                "normalize",
                "--fastq", r1,
                "--k", "17", "--coverage", "5",
                "--out", str(out_path),
            ]
        )
        assert rc == 0
        assert "kept" in capsys.readouterr().out
        assert out_path.exists()

    def test_trim(self, files, tmp_path, capsys):
        r1, _ = files
        out_path = tmp_path / "trimmed.fastq"
        rc = main(
            ["trim", "--fastq", r1, "--min-quality", "5", "--out", str(out_path)]
        )
        assert rc == 0
        assert "kept" in capsys.readouterr().out
        assert out_path.exists()

    def test_calibrate(self, capsys):
        rc = main(["calibrate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kmer_rate" in out
        assert "model" in out

    def test_assemble(self, files, tmp_path, capsys):
        r1, r2 = files
        rc = main(
            [
                "assemble",
                "--fastq", r1, r2,
                "--k", "20",
                "--out", str(tmp_path / "contigs.fasta"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "contigs" in out
        assert (tmp_path / "contigs.fasta").exists()


class TestServiceVerbs:
    def test_parsers(self):
        parser = build_parser()
        ns = parser.parse_args(["serve", "--spool", "/tmp/s", "--once"])
        assert ns.command == "serve" and ns.once
        ns = parser.parse_args(
            ["submit", "--spool", "/tmp/s", "--r1", "x.fastq", "--wait", "30"]
        )
        assert ns.command == "submit" and ns.wait == 30.0
        ns = parser.parse_args(["status", "--spool", "/tmp/s"])
        assert ns.command == "status" and ns.job is None
        ns = parser.parse_args(["result", "--spool", "/tmp/s", "--job", "j-1"])
        assert ns.command == "result" and ns.job == "j-1"
        ns = parser.parse_args(["cancel", "--spool", "/tmp/s", "--job", "j-1"])
        assert ns.command == "cancel"

    def test_spool_required(self):
        for verb in ("serve", "status", "cancel"):
            with pytest.raises(SystemExit):
                build_parser().parse_args([verb])

    def test_submit_serve_status_result_loop(self, tiny_hg, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        common = ["--k", "21", "--m", "5", "--tasks", "2", "--threads", "2"]
        rc = main(
            ["submit", "--spool", spool,
             "--r1", tiny_hg.r1_path, "--r2", tiny_hg.r2_path, *common]
        )
        assert rc == 0
        job_id = capsys.readouterr().out.strip().splitlines()[-1]
        assert job_id.startswith("j-")

        assert main(["status", "--spool", spool]) == 0
        assert job_id in capsys.readouterr().out

        assert main(["serve", "--spool", spool, "--once"]) == 0
        assert "spool drained" in capsys.readouterr().out

        assert main(["status", "--spool", spool, "--job", job_id]) == 0
        out = capsys.readouterr().out
        assert "succeeded" in out
        assert "measured step times" in out

        labels_path = tmp_path / "labels.txt"
        rc = main(
            ["result", "--spool", spool, "--job", job_id,
             "--out", str(labels_path)]
        )
        assert rc == 0
        assert "components" in capsys.readouterr().out
        labels = labels_path.read_text().splitlines()
        assert len(labels) == tiny_hg.n_pairs
        assert all(line.lstrip("-").isdigit() for line in labels)

    def test_submit_wait_drives_to_terminal_state(
        self, tiny_hg, tmp_path, capsys
    ):
        import threading

        spool = str(tmp_path / "spool")
        server = threading.Thread(
            target=main,
            args=(["serve", "--spool", spool, "--once",
                   "--drain-timeout", "120"],),
        )
        rc_holder = {}

        def submit():
            rc_holder["rc"] = main(
                ["submit", "--spool", spool,
                 "--r1", tiny_hg.r1_path, "--r2", tiny_hg.r2_path,
                 "--k", "21", "--m", "5", "--wait", "120"]
            )

        client = threading.Thread(target=submit)
        client.start()
        import time

        time.sleep(0.3)  # let the submission land before the drain starts
        server.start()
        client.join(timeout=150)
        server.join(timeout=150)
        assert rc_holder["rc"] == 0
        assert "succeeded" in capsys.readouterr().out

    def test_cancel_queued_job(self, tiny_hg, tmp_path, capsys):
        spool = str(tmp_path / "spool")
        main(
            ["submit", "--spool", spool,
             "--r1", tiny_hg.r1_path, "--k", "21", "--m", "5"]
        )
        job_id = capsys.readouterr().out.strip().splitlines()[-1]
        assert main(["cancel", "--spool", spool, "--job", job_id]) == 0
        assert main(["serve", "--spool", spool, "--once"]) == 0
        assert main(["status", "--spool", spool]) == 0
        assert "cancelled" in capsys.readouterr().out.splitlines()[-1]

    def test_status_empty_spool(self, tmp_path, capsys):
        assert main(["status", "--spool", str(tmp_path / "empty")]) == 0
        assert "no jobs" in capsys.readouterr().out
