import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_subcommands_exist(self):
        parser = build_parser()
        for cmd in ["dataset", "index", "run", "assemble"]:
            args = {
                "dataset": ["dataset", "--list"],
                "index": ["index", "--r1", "x.fastq"],
                "run": ["run", "--r1", "x.fastq"],
                "assemble": ["assemble", "--fastq", "x.fastq"],
            }[cmd]
            ns = parser.parse_args(args)
            assert ns.command == cmd

    def test_missing_subcommand_errors(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestDatasetCommand:
    def test_list(self, capsys):
        assert main(["dataset", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("HG", "LL", "MM", "IS"):
            assert name in out

    def test_build(self, tmp_path, capsys):
        rc = main(
            ["dataset", "--name", "HG", "--workdir", str(tmp_path), "--scale", "0.02"]
        )
        assert rc == 0
        assert "built HG" in capsys.readouterr().out


class TestIndexAndRun:
    @pytest.fixture()
    def files(self, tiny_hg):
        return tiny_hg.r1_path, tiny_hg.r2_path

    def test_index(self, files, tmp_path, capsys):
        r1, r2 = files
        rc = main(
            [
                "index",
                "--r1", r1, "--r2", r2,
                "--k", "27", "--m", "5", "--chunks", "4",
                "--out", str(tmp_path),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "IndexCreate" in out
        assert "tables:" in out

    def test_run_without_output(self, files, capsys):
        r1, r2 = files
        rc = main(
            [
                "run",
                "--r1", r1, "--r2", r2,
                "--k", "27", "--m", "5",
                "--tasks", "2", "--threads", "2", "--passes", "2",
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "largest component" in out
        assert "projected step times" in out

    def test_run_executor_flags_parsed(self):
        ns = build_parser().parse_args(
            ["run", "--r1", "x.fastq", "--executor", "process", "--workers", "3"]
        )
        assert ns.executor == "process"
        assert ns.workers == 3
        # defaults
        ns = build_parser().parse_args(["run", "--r1", "x.fastq"])
        assert ns.executor == "serial"
        assert ns.workers is None

    def test_run_unknown_executor_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "--r1", "x.fastq", "--executor", "mpi"]
            )

    def test_run_with_process_executor(self, files, capsys):
        r1, r2 = files
        rc = main(
            [
                "run",
                "--r1", r1, "--r2", r2,
                "--k", "27", "--m", "5",
                "--tasks", "2", "--threads", "2",
                "--executor", "process", "--workers", "2",
            ]
        )
        assert rc == 0
        assert "largest component" in capsys.readouterr().out

    def test_run_with_filter_and_output(self, files, tmp_path, capsys):
        r1, r2 = files
        rc = main(
            [
                "run",
                "--r1", r1, "--r2", r2,
                "--k", "27", "--m", "5",
                "--filter", "<15",
                "--out", str(tmp_path / "parts"),
            ]
        )
        assert rc == 0
        assert "partitions written" in capsys.readouterr().out

    def test_spectrum(self, files, capsys):
        r1, r2 = files
        rc = main(["spectrum", "--fastq", r1, r2, "--k", "17"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "coverage peak" in out
        assert "suggested --filter" in out

    def test_normalize(self, files, tmp_path, capsys):
        r1, _ = files
        out_path = tmp_path / "norm.fastq"
        rc = main(
            [
                "normalize",
                "--fastq", r1,
                "--k", "17", "--coverage", "5",
                "--out", str(out_path),
            ]
        )
        assert rc == 0
        assert "kept" in capsys.readouterr().out
        assert out_path.exists()

    def test_trim(self, files, tmp_path, capsys):
        r1, _ = files
        out_path = tmp_path / "trimmed.fastq"
        rc = main(
            ["trim", "--fastq", r1, "--min-quality", "5", "--out", str(out_path)]
        )
        assert rc == 0
        assert "kept" in capsys.readouterr().out
        assert out_path.exists()

    def test_calibrate(self, capsys):
        rc = main(["calibrate"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "kmer_rate" in out
        assert "model" in out

    def test_assemble(self, files, tmp_path, capsys):
        r1, r2 = files
        rc = main(
            [
                "assemble",
                "--fastq", r1, r2,
                "--k", "20",
                "--out", str(tmp_path / "contigs.fasta"),
            ]
        )
        assert rc == 0
        out = capsys.readouterr().out
        assert "contigs" in out
        assert (tmp_path / "contigs.fasta").exists()
