"""The deterministic wait() poll schedule (shared by both clients)."""

import itertools

from repro.service.client import poll_schedule


class TestPollSchedule:
    def test_deterministic_exponential_with_cap(self):
        delays = list(itertools.islice(poll_schedule(), 10))
        assert delays == [
            0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.5, 0.5, 0.5, 0.5
        ]

    def test_two_instances_agree(self):
        # jitterless: every schedule is the same schedule
        a = list(itertools.islice(poll_schedule(), 50))
        b = list(itertools.islice(poll_schedule(), 50))
        assert a == b

    def test_custom_cap(self):
        delays = list(itertools.islice(poll_schedule(cap=0.05), 6))
        assert delays == [0.01, 0.02, 0.04, 0.05, 0.05, 0.05]

    def test_sum_grows_slowly_early(self):
        # a job finishing within 100 ms is observed after at most ~70 ms
        # of cumulative sleep (4 polls), not the 2 s a 0.5 s fixed
        # interval would cost
        early = list(itertools.islice(poll_schedule(), 4))
        assert sum(early) < 0.2


class TestWaitUsesSchedule:
    def test_wait_sleeps_on_the_schedule(self, tmp_path, monkeypatch):
        from repro.service.client import ServiceClient

        client = ServiceClient(tmp_path)
        states = iter(["queued", "queued", "queued", "succeeded"])
        monkeypatch.setattr(
            client, "status", lambda job_id: {"state": next(states)}
        )
        slept = []
        monkeypatch.setattr(
            "repro.service.client.time.sleep", lambda s: slept.append(s)
        )
        status = client.wait("j-x", timeout=60.0)
        assert status["state"] == "succeeded"
        assert slept == [0.01, 0.02, 0.04]
