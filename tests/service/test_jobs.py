"""Job specs, the state machine, and event/record serialization."""

import pytest

from repro.kmers.filter import FrequencyFilter
from repro.service.jobs import (
    JobEvent,
    JobRecord,
    JobState,
    JobStateError,
    PartitionJob,
    new_job_id,
)


@pytest.fixture()
def fastq(tmp_path):
    path = tmp_path / "reads.fastq"
    path.write_text("@r0\nACGTACGT\n+\nIIIIIIII\n")
    return str(path)


class TestJobState:
    def test_legal_transitions(self):
        JobState.check(JobState.QUEUED, JobState.RUNNING)
        JobState.check(JobState.RUNNING, JobState.SUCCEEDED)
        JobState.check(JobState.RUNNING, JobState.QUEUED)  # retry/recovery
        JobState.check(JobState.QUEUED, JobState.CANCELLED)

    @pytest.mark.parametrize(
        "old,new",
        [
            (JobState.QUEUED, JobState.SUCCEEDED),
            (JobState.SUCCEEDED, JobState.RUNNING),
            (JobState.FAILED, JobState.QUEUED),
            (JobState.CANCELLED, JobState.RUNNING),
        ],
    )
    def test_illegal_transitions_raise(self, old, new):
        with pytest.raises(JobStateError, match="illegal"):
            JobState.check(old, new)

    def test_terminal_states(self):
        assert set(JobState.TERMINAL) == {
            JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED,
        }


class TestPartitionJob:
    def test_ids_are_unique(self):
        assert new_job_id() != new_job_id()

    def test_unit_normalization(self, fastq, tmp_path):
        r2 = tmp_path / "r2.fastq"
        r2.write_text("@r0\nTTTTAAAA\n+\nIIIIIIII\n")
        job = PartitionJob(units=[fastq, (fastq, str(r2)), [fastq]])
        assert job.units[0] == [fastq]
        assert job.units[1] == [fastq, str(r2)]
        assert job.units[2] == [fastq]  # 1-element list = single-end
        assert job.pipeline_units() == [fastq, (fastq, str(r2)), fastq]

    def test_empty_units_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            PartitionJob(units=[])

    def test_bad_config_rejected_at_submission(self, fastq):
        with pytest.raises(TypeError):
            PartitionJob(units=[fastq], config={"not_a_field": 1})

    def test_bad_retry_and_timeout_rejected(self, fastq):
        with pytest.raises(ValueError, match="max_retries"):
            PartitionJob(units=[fastq], max_retries=-1)
        with pytest.raises(ValueError, match="timeout_seconds"):
            PartitionJob(units=[fastq], timeout_seconds=-2.0)

    def test_filter_string_materializes(self, fastq):
        job = PartitionJob(units=[fastq], config={"k": 21, "kmer_filter": "10:30"})
        cfg = job.pipeline_config()
        assert cfg.kmer_filter == FrequencyFilter(min_freq=10, max_freq=30)
        assert cfg.k == 21

    def test_dict_roundtrip(self, fastq):
        job = PartitionJob(
            units=[fastq],
            config={"k": 23},
            max_retries=5,
            timeout_seconds=9.0,
        )
        back = PartitionJob.from_dict(job.to_dict())
        assert back.job_id == job.job_id
        assert back.units == job.units
        assert back.config == {"k": 23}
        assert back.max_retries == 5
        assert back.timeout_seconds == 9.0


class TestJobEvent:
    def test_json_roundtrip(self):
        event = JobEvent(
            job_id="j-1",
            type="started",
            state=JobState.RUNNING,
            attempt=2,
            payload={"queue_wait_seconds": 1.5},
        )
        back = JobEvent.from_json(event.to_json())
        assert back == event

    def test_progress_event_has_no_state(self):
        event = JobEvent(job_id="j-1", type="pass_complete", payload={"pass_index": 0})
        assert JobEvent.from_json(event.to_json()).state is None


class TestJobRecord:
    def _record(self, fastq):
        return JobRecord(job=PartitionJob(units=[fastq]))

    def test_replay_to_success(self, fastq):
        record = self._record(fastq)
        record.apply_event(
            JobEvent(job_id=record.job_id, type="started",
                     state=JobState.RUNNING, attempt=1, time=5.0)
        )
        assert record.state == JobState.RUNNING
        assert record.started_at == 5.0
        record.apply_event(
            JobEvent(
                job_id=record.job_id,
                type="succeeded",
                state=JobState.SUCCEEDED,
                attempt=1,
                time=9.0,
                payload={"result": {"n_components": 4}, "metrics": {"x": 1}},
            )
        )
        assert record.terminal
        assert record.finished_at == 9.0
        assert record.result == {"n_components": 4}
        assert record.metrics == {"x": 1}

    def test_replay_failure_keeps_error(self, fastq):
        record = self._record(fastq)
        record.apply_event(
            JobEvent(job_id=record.job_id, type="started",
                     state=JobState.RUNNING, attempt=1)
        )
        record.apply_event(
            JobEvent(job_id=record.job_id, type="failed",
                     state=JobState.FAILED, attempt=1,
                     payload={"error": "boom"})
        )
        assert record.state == JobState.FAILED
        assert record.error == "boom"

    def test_status_dict_shape(self, fastq):
        status = self._record(fastq).status_dict()
        assert status["state"] == JobState.QUEUED
        for key in ("job_id", "attempt", "error", "result", "metrics",
                    "submitted_at", "started_at", "finished_at"):
            assert key in status
