"""Content-addressed artifact store: fingerprints, atomic publication,
manifests, LRU eviction, and the typed index/partition helpers."""

import json
import shutil

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.index.create import index_create
from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.runtime.buffers import HeapBufferPool
from repro.service.store import (
    ArtifactStore,
    ArtifactStoreError,
    KIND_BLOCK,
    KIND_INDEX,
    KIND_PARTITION,
    dataset_fingerprint,
    index_key,
    partition_key,
)


@pytest.fixture()
def unit(tmp_path):
    path = tmp_path / "reads.fastq"
    path.write_text("@r0\nACGTACGTACGTACGTACGTACGTACGT\n+\n" + "I" * 28 + "\n")
    return str(path)


class FakeClock:
    def __init__(self, t=1000.0):
        self.t = t

    def __call__(self):
        return self.t

    def advance(self, dt):
        self.t += dt


class TestFingerprints:
    def test_dataset_fingerprint_is_content_addressed(self, tmp_path, unit):
        moved = tmp_path / "renamed.fastq"
        shutil.copy(unit, moved)
        assert dataset_fingerprint([unit]) == dataset_fingerprint([str(moved)])

    def test_dataset_fingerprint_sensitive_to_content(self, tmp_path, unit):
        edited = tmp_path / "edited.fastq"
        edited.write_text(
            "@r0\nTCGTACGTACGTACGTACGTACGTACGT\n+\n" + "I" * 28 + "\n"
        )
        assert dataset_fingerprint([unit]) != dataset_fingerprint([str(edited)])

    def test_index_key_ignores_partition_only_knobs(self, unit):
        a = index_key([unit], PipelineConfig(k=21, m=4, n_passes=1))
        b = index_key([unit], PipelineConfig(k=21, m=4, n_passes=3))
        assert a == b
        assert a != index_key([unit], PipelineConfig(k=23, m=4))

    def test_partition_key_tracks_partition_knobs(self, unit):
        base = PipelineConfig(k=21, m=4, n_passes=1)
        assert partition_key([unit], base) != partition_key(
            [unit], PipelineConfig(k=21, m=4, n_passes=3)
        )
        assert partition_key([unit], base) != partition_key(
            [unit], PipelineConfig(k=23, m=4, n_passes=1)
        )

    def test_partition_key_ignores_executor_knobs(self, unit):
        serial = PipelineConfig(k=21, m=4, executor="serial")
        pool = PipelineConfig(k=21, m=4, executor="process", max_workers=3)
        assert partition_key([unit], serial) == partition_key([unit], pool)


class TestStorePrimitives:
    def _put(self, store, key="k1", payload=b"hello", **kw):
        return store.put(
            key,
            "blob",
            {"data.bin": lambda p: p.write_bytes(payload)},
            **kw,
        )

    def test_put_get_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        self._put(store, meta={"note": "x"})
        entry = store.get("k1")
        assert entry is not None
        assert entry.kind == "blob"
        assert entry.meta == {"note": "x"}
        assert entry.file("data.bin").read_bytes() == b"hello"
        assert entry.size_bytes == 5
        assert store.stats.as_dict() == {
            "hits": 1, "misses": 0, "puts": 1, "evictions": 0,
        }

    def test_miss_counts_and_returns_none(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        assert store.get("nope") is None
        assert store.stats.misses == 1

    def test_manifest_contents(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        self._put(store)
        manifest = json.loads((store.root / "k1" / "manifest.json").read_text())
        assert manifest["kind"] == "blob"
        assert manifest["files"] == {"data.bin": 5}
        assert manifest["size_bytes"] == 5

    def test_failed_writer_publishes_nothing(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")

        def explode(path):
            raise RuntimeError("disk on fire")

        with pytest.raises(RuntimeError, match="disk on fire"):
            store.put("k1", "blob", {"data.bin": explode})
        assert not store.has("k1")
        assert store.keys() == []
        assert not any((store.root / ".tmp").iterdir())

    def test_invalid_keys_rejected(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for bad in ("", "a/b", ".hidden"):
            with pytest.raises(ValueError, match="invalid artifact key"):
                store.has(bad)

    def test_delete(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        self._put(store)
        assert store.delete("k1")
        assert not store.has("k1")
        assert not store.delete("k1")

    def test_missing_payload_file_named_in_error(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        self._put(store)
        with pytest.raises(ArtifactStoreError, match="no payload file"):
            store.get("k1").file("other.bin")


class TestLruEviction:
    def _store(self, tmp_path, budget):
        clock = FakeClock()
        return ArtifactStore(
            tmp_path / "store", size_budget_bytes=budget, clock=clock
        ), clock

    def _put(self, store, key, nbytes=10):
        store.put(key, "blob", {"d": lambda p: p.write_bytes(b"x" * nbytes)})

    def test_least_recently_accessed_goes_first(self, tmp_path):
        store, clock = self._store(tmp_path, budget=25)
        for key in ("a", "b"):
            self._put(store, key)
            clock.advance(10)
        store.get("a")  # refresh a's LRU clock: b is now the oldest
        clock.advance(10)
        self._put(store, "c")  # 30 bytes total > 25: evict down to budget
        assert store.keys() == ["a", "c"]
        assert store.stats.evictions == 1

    def test_no_budget_never_evicts(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        for key in ("a", "b", "c"):
            self._put(store, key)
        assert store.evict() == []
        assert len(store.keys()) == 3

    def test_eviction_keeps_store_under_budget(self, tmp_path):
        store, clock = self._store(tmp_path, budget=15)
        for key in ("a", "b", "c"):
            self._put(store, key)
            clock.advance(1)
        assert store.total_bytes() <= 15
        assert store.keys() == ["c"]


class TestTypedHelpers:
    CFG = PipelineConfig(k=21, m=4, n_chunks=4)

    def test_index_for_miss_then_hit(self, tmp_path, unit):
        store = ArtifactStore(tmp_path / "store")
        index, hit = store.index_for([unit], self.CFG)
        assert not hit
        again, hit = store.index_for([unit], self.CFG)
        assert hit
        assert again.merhist.k == index.merhist.k
        assert np.array_equal(again.merhist.counts, index.merhist.counts)
        assert again.fastqpart.total_reads == index.fastqpart.total_reads

    def test_partition_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        labels = np.array([0, 0, 1, 2, 1], dtype=np.int64)
        entry = store.put_partition("pk", labels, {"n_components": 3})
        assert entry.kind == KIND_PARTITION
        assert entry.meta == {"n_components": 3}
        assert np.array_equal(store.load_partition(entry), labels)

    def test_kind_mismatch_rejected(self, tmp_path, unit):
        store = ArtifactStore(tmp_path / "store")
        index = index_create([unit], k=21, m=4, n_chunks=4)
        store.put_index("ik", index)
        entry = store.get("ik")
        assert entry.kind == KIND_INDEX
        with pytest.raises(ArtifactStoreError, match="expected partition"):
            store.load_partition(entry)
        part = store.put_partition("pk", np.zeros(3, dtype=np.int64), {})
        with pytest.raises(ArtifactStoreError, match="expected index"):
            store.load_index(part)

    def test_block_roundtrip(self, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        pool = HeapBufferPool()
        rng = np.random.default_rng(0)
        block = pool.allocate(21, 20)
        block.write(
            0,
            KmerTuples(
                KmerArray(
                    21,
                    rng.integers(0, 2**42, size=20, dtype=np.uint64),
                    None,
                ),
                rng.integers(0, 2**31, size=20, dtype=np.uint32),
            ),
        )
        entry = store.put_block("bk", block)
        assert entry.kind == KIND_BLOCK
        assert entry.meta == {"k": 21, "length": 20, "two_limb": False}
        back = store.load_block(entry, pool)
        assert np.array_equal(back.view().kmers.lo, block.view().kmers.lo)
        assert np.array_equal(back.view().read_ids, block.view().read_ids)
        with pytest.raises(ArtifactStoreError, match="expected tupleblock"):
            store.load_block(store.put_partition("pk2", np.zeros(2), {}), pool)
