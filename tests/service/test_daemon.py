"""End-to-end service tests: the spool protocol, content-addressed cache
hits, crash-retry-resume, and daemon restart recovery.

These are the acceptance tests of the job service subsystem: everything
runs the real pipeline on the tiny HG analogue through a real
:class:`ServeDaemon` over a real spool directory.
"""

import json
import multiprocessing as mp
import os

import numpy as np
import pytest

import repro.core.pipeline as pipeline_mod
import repro.index.create as create_mod
from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.service.client import ServiceClient
from repro.service.daemon import CHECKPOINTS_DIR, ServeDaemon
from repro.service.jobs import JobState, PartitionJob
from repro.service.queue import JobQueue, RetryPolicy

HAS_FORK = "fork" in mp.get_all_start_methods()

CFG = {"k": 21, "m": 5, "n_tasks": 2, "n_threads": 2, "n_passes": 2}


def events_of(spool, job_id, type_=None):
    events = JobQueue(spool).events.replay()
    return [
        e for e in events
        if e.job_id == job_id and (type_ is None or e.type == type_)
    ]


class TestEndToEndCache:
    def test_second_identical_submit_is_a_cache_hit(
        self, tiny_hg, tmp_path, monkeypatch
    ):
        index_calls = []
        original_index_create = create_mod.index_create

        def counting(*args, **kwargs):
            index_calls.append(args)
            return original_index_create(*args, **kwargs)

        monkeypatch.setattr(create_mod, "index_create", counting)

        spool = tmp_path / "spool"
        client = ServiceClient(spool)
        j1 = client.submit(tiny_hg.units, config=CFG)
        j2 = client.submit(tiny_hg.units, config=CFG)  # identical
        j3 = client.submit(tiny_hg.units, config=dict(CFG, k=23))  # distinct

        daemon = ServeDaemon(spool, max_concurrent=2)
        daemon.run_until_idle()

        s1, s2, s3 = (client.status(j) for j in (j1, j2, j3))
        assert [s["state"] for s in (s1, s2, s3)] == [JobState.SUCCEEDED] * 3
        assert [s["attempt"] for s in (s1, s2, s3)] == [1, 1, 1]

        # the identical resubmission hit the partition cache: no
        # IndexCreate, no passes — only j1 and j3 computed anything
        assert s1["result"]["cache_hit"] is False
        assert s2["result"]["cache_hit"] is True
        assert s3["result"]["cache_hit"] is False
        assert s2["metrics"]["partition_cache"] == "hit"
        assert len(index_calls) == 2
        assert daemon.store.stats.hits >= 1
        assert events_of(spool, j2, "pass_complete") == []
        assert len(events_of(spool, j1, "pass_complete")) == CFG["n_passes"]

        # cached result is bit-identical to the computed one and to a
        # direct in-process MetaPrep run
        labels1, info1 = client.result(j1)
        labels2, info2 = client.result(j2)
        assert np.array_equal(labels1, labels2)
        assert info1["artifact_key"] == info2["artifact_key"]
        direct = MetaPrep(
            PipelineConfig(write_outputs=False, **CFG)
        ).run(tiny_hg.units)
        assert np.array_equal(labels1, direct.partition.labels)
        assert info1["n_components"] == direct.partition.summary.n_components

    def test_queue_wait_and_run_metrics_published(self, tiny_hg, tmp_path):
        spool = tmp_path / "spool"
        client = ServiceClient(spool)
        job_id = client.submit(tiny_hg.units, config=CFG)
        ServeDaemon(spool).run_until_idle()
        status = client.status(job_id)
        assert status["metrics"]["partition_cache"] == "miss"
        assert status["metrics"]["index_cache"] == "miss"
        assert status["metrics"]["run_seconds"] > 0
        assert status["metrics"]["total_tuples"] > 0
        assert set(status["metrics"]["measured_seconds"])  # per-step times
        assert status["started_at"] >= status["submitted_at"]
        assert status["finished_at"] >= status["started_at"]


# ---- crash injection --------------------------------------------------
# Module-level stand-in for the pipeline's chunk worker (the PR-1 crash
# seam): under the fork start method the pool's children inherit the
# parent's monkeypatched module state, so the kill happens *inside a
# worker process*, mid-multipass.

_ORIGINAL_CHUNK_TASK = pipeline_mod._kmergen_chunk_task
_FAULT = {"marker": None}


def _die_once_in_second_pass(job):
    if job.bin_lo > 0 and _FAULT["marker"]:
        try:
            with open(_FAULT["marker"], "x"):
                pass
        except FileExistsError:
            pass  # already crashed once: run clean this time
        else:
            os._exit(23)  # simulates segfault/OOM-kill, no exception
    return _ORIGINAL_CHUNK_TASK(job)


@pytest.mark.skipif(not HAS_FORK, reason="requires fork start method")
class TestCrashRetryResume:
    def test_killed_worker_retries_and_resumes_from_checkpoint(
        self, tiny_hg, tmp_path, monkeypatch
    ):
        cfg = dict(CFG, n_passes=3)
        reference = MetaPrep(
            PipelineConfig(write_outputs=False, **cfg)
        ).run(tiny_hg.units)

        _FAULT["marker"] = str(tmp_path / "crashed-once")
        monkeypatch.setattr(
            pipeline_mod, "_kmergen_chunk_task", _die_once_in_second_pass
        )
        try:
            spool = tmp_path / "spool"
            client = ServiceClient(spool)
            job_id = client.submit(tiny_hg.units, config=cfg)
            daemon = ServeDaemon(
                spool,
                executor="process",
                max_workers=2,
                retry=RetryPolicy(base_delay=0.01),
            )
            daemon.run_until_idle()
        finally:
            _FAULT["marker"] = None

        status = client.status(job_id)
        assert status["state"] == JobState.SUCCEEDED
        assert status["attempt"] == 2  # one kill, one clean retry

        retries = events_of(spool, job_id, "retry_scheduled")
        assert len(retries) == 1
        assert "worker died" in retries[0].payload["error"]

        # attempt 1 checkpointed pass 0 before dying in pass 1; the retry
        # resumed mid-multipass instead of starting over
        completed = {
            e.attempt: [] for e in events_of(spool, job_id, "pass_complete")
        }
        for e in events_of(spool, job_id, "pass_complete"):
            completed[e.attempt].append(e.payload["pass_index"])
        assert completed[1] == [0]
        assert completed[2] == [1, 2]

        # and the final partition equals the uninterrupted run exactly
        labels, _ = client.result(job_id)
        assert np.array_equal(labels, reference.partition.labels)


class TestDaemonRestart:
    def test_queue_drains_after_restart_without_dup_or_loss(
        self, tiny_hg, tmp_path
    ):
        spool = tmp_path / "spool"
        for sub in ("submit", "cancel", "results", "checkpoints"):
            (spool / sub).mkdir(parents=True)
        cfg = dict(CFG, n_passes=1)

        # simulate a daemon that ingested three jobs and was killed while
        # the second was running
        queue = JobQueue(spool)
        jobs = [
            PartitionJob(units=list(tiny_hg.units), config=cfg)
            for _ in range(3)
        ]
        records = [queue.submit(job) for job in jobs]
        records[1].attempt = 1
        queue.transition(records[1], JobState.RUNNING, type="started")

        daemon = ServeDaemon(spool)  # restart: replays the event log
        demoted = [
            e for e in queue.events.replay() if e.type == "recovered"
        ]
        assert [e.job_id for e in demoted] == [jobs[1].job_id]
        daemon.run_until_idle()

        client = ServiceClient(spool)
        assert len(daemon.queue.records) == 3  # nothing lost, nothing duped
        for job in jobs:
            assert client.status(job.job_id)["state"] == JobState.SUCCEEDED
            assert len(events_of(spool, job.job_id, "submitted")) == 1
            terminal = [
                e for e in events_of(spool, job.job_id)
                if e.state in JobState.TERMINAL
            ]
            assert len(terminal) == 1
            assert (spool / "results" / f"{job.job_id}.json").exists()

    def test_restarted_daemon_serves_status_of_old_jobs(
        self, tiny_hg, tmp_path
    ):
        spool = tmp_path / "spool"
        client = ServiceClient(spool)
        job_id = client.submit(tiny_hg.units, config=dict(CFG, n_passes=1))
        ServeDaemon(spool).run_until_idle()

        fresh = ServeDaemon(spool)  # no submissions this lifetime
        assert fresh.queue.get(job_id).state == JobState.SUCCEEDED
        assert fresh.idle()


class TestCancellationAndSpool:
    def test_cancel_before_daemon_runs(self, tiny_hg, tmp_path):
        spool = tmp_path / "spool"
        client = ServiceClient(spool)
        job_id = client.submit(tiny_hg.units, config=CFG)
        client.cancel(job_id)
        daemon = ServeDaemon(spool)
        daemon.run_until_idle()
        assert client.status(job_id)["state"] == JobState.CANCELLED
        assert len(events_of(spool, job_id, "pass_complete")) == 0

    def test_malformed_submission_rejected_not_fatal(self, tiny_hg, tmp_path):
        spool = tmp_path / "spool"
        client = ServiceClient(spool)
        (spool / "submit" / "00-garbage.json").write_text("{not json")
        (spool / "submit" / "01-bad-spec.json").write_text(
            json.dumps({"job_id": "j-bad", "units": []})
        )
        good = client.submit(tiny_hg.units, config=dict(CFG, n_passes=1))
        daemon = ServeDaemon(spool)
        daemon.run_until_idle()
        assert client.status(good)["state"] == JobState.SUCCEEDED
        rejected = sorted(p.name for p in (spool / "submit").iterdir())
        assert rejected == ["00-garbage.rejected", "01-bad-spec.rejected"]

    def test_checkpoints_pruned_after_success(self, tiny_hg, tmp_path):
        spool = tmp_path / "spool"
        client = ServiceClient(spool)
        # a stale checkpoint left behind by some long-dead job
        stale = spool / CHECKPOINTS_DIR / "j-dead" / "metaprep_checkpoint.bin"
        stale.parent.mkdir(parents=True)
        stale.write_bytes(b"stale")
        job_id = client.submit(tiny_hg.units, config=dict(CFG, n_passes=2))
        ServeDaemon(spool, keep_checkpoints=0).run_until_idle()
        assert client.status(job_id)["state"] == JobState.SUCCEEDED
        leftovers = list(
            (spool / CHECKPOINTS_DIR).rglob("metaprep_checkpoint.bin")
        )
        assert leftovers == []
        assert not stale.parent.exists()  # emptied job dir removed too


class TestServiceMetrics:
    """``metaprep serve`` publishes scrape-ready metrics under
    ``<spool>/metrics/`` — a JSON snapshot plus a Prometheus textfile."""

    def test_fresh_daemon_publishes_zeroed_snapshot(self, tmp_path):
        from repro.service.daemon import METRICS_DIR

        daemon = ServeDaemon(tmp_path / "spool")
        doc = daemon.metrics()
        assert doc["queue_depth"] == 0
        assert doc["running"] == 0
        assert set(doc["jobs_by_state"]) == set(JobState.ALL)
        metrics_dir = tmp_path / "spool" / METRICS_DIR
        assert (metrics_dir / "metrics.json").exists()  # written at boot
        prom = (metrics_dir / "metaprep.prom").read_text()
        assert "# TYPE metaprep_service_queue_depth gauge" in prom
        assert "metaprep_service_queue_depth 0" in prom
        assert "# TYPE metaprep_store_hits counter" in prom

    def test_metrics_track_jobs_through_lifecycle(self, tiny_hg, tmp_path):
        from repro.service.daemon import METRICS_DIR

        spool = tmp_path / "spool"
        client = ServiceClient(spool)
        client.submit(tiny_hg.units, config=CFG)
        client.submit(tiny_hg.units, config=CFG)  # cache-hit twin
        daemon = ServeDaemon(spool)
        daemon.tick()  # ingest
        assert sum(daemon.metrics()["jobs_by_state"].values()) == 2
        daemon.run_until_idle()

        doc = json.loads(
            (spool / METRICS_DIR / "metrics.json").read_text()
        )
        assert doc["jobs_by_state"][JobState.SUCCEEDED] == 2
        assert doc["queue_depth"] == 0
        assert doc["running"] == 0
        assert doc["store"]["hits"] >= 1  # the twin hit the artifact store
        prom = (spool / METRICS_DIR / "metaprep.prom").read_text()
        assert "metaprep_service_jobs_succeeded 2" in prom
        assert f"metaprep_store_hits {doc['store']['hits']}" in prom

    def test_no_torn_files_in_metrics_dir(self, tiny_hg, tmp_path):
        from repro.service.daemon import METRICS_DIR

        spool = tmp_path / "spool"
        client = ServiceClient(spool)
        client.submit(tiny_hg.units, config=CFG)
        ServeDaemon(spool).run_until_idle()
        names = sorted(p.name for p in (spool / METRICS_DIR).iterdir())
        assert names == ["metaprep.prom", "metrics.json"]  # no .tmp litter
