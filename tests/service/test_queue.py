"""Durable queue: event-log replay, recovery, and the scheduler's
retry/backoff/timeout/cancel/coalescing behavior with fake runners."""

import threading
import time

import pytest

from repro.service.jobs import (
    JobCancelled,
    JobEvent,
    JobState,
    JobStateError,
    JobTimeout,
    PartitionJob,
)
from repro.service.queue import (
    EventLog,
    JobControl,
    JobQueue,
    RetryPolicy,
    Scheduler,
    replay_records,
)


@pytest.fixture()
def fastq(tmp_path):
    path = tmp_path / "reads.fastq"
    path.write_text("@r0\nACGTACGT\n+\nIIIIIIII\n")
    return str(path)


def make_job(fastq, **kw):
    return PartitionJob(units=[fastq], **kw)


class FakeClock:
    def __init__(self, t=0.0):
        self.t = t

    def __call__(self):
        return self.t

    def sleep(self, dt):
        # scheduler "sleeps" by advancing virtual time; give the job
        # threads (which are real) a moment to finish
        self.t += max(dt, 0.05)
        time.sleep(0.002)


class TestEventLog:
    def test_append_replay(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.append(JobEvent(job_id="j-1", type="submitted", state="queued"))
        log.append(JobEvent(job_id="j-1", type="started", state="running"))
        events = log.replay()
        assert [e.type for e in events] == ["submitted", "started"]

    def test_missing_file_is_empty(self, tmp_path):
        assert EventLog(tmp_path / "none.jsonl").replay() == []

    def test_torn_trailing_line_skipped(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.append(JobEvent(job_id="j-1", type="submitted", state="queued"))
        with open(log.path, "a") as fh:
            fh.write('{"job_id": "j-2", "ty')  # daemon killed mid-write
        events = log.replay()
        assert len(events) == 1
        assert events[0].job_id == "j-1"

    def test_replay_records_ignores_unknown_job_events(self, tmp_path):
        log = EventLog(tmp_path / "events.jsonl")
        log.append(JobEvent(job_id="j-ghost", type="started", state="running"))
        assert replay_records(log) == {}


class TestJobQueue:
    def test_submit_and_order(self, tmp_path, fastq):
        queue = JobQueue(tmp_path)
        jobs = [make_job(fastq) for _ in range(3)]
        for job in jobs:
            queue.submit(job)
        assert [r.job_id for r in queue.pending()] == [j.job_id for j in jobs]
        assert queue.active() == []

    def test_duplicate_submit_rejected(self, tmp_path, fastq):
        queue = JobQueue(tmp_path)
        job = make_job(fastq)
        queue.submit(job)
        with pytest.raises(JobStateError, match="already submitted"):
            queue.submit(job)

    def test_unknown_job_raises(self, tmp_path):
        with pytest.raises(JobStateError, match="unknown job"):
            JobQueue(tmp_path).get("j-nope")

    def test_cancel_queued_is_immediate(self, tmp_path, fastq):
        queue = JobQueue(tmp_path)
        record = queue.submit(make_job(fastq))
        assert queue.cancel(record.job_id)
        assert record.state == JobState.CANCELLED
        assert not queue.cancel(record.job_id)  # already terminal

    def test_cancel_running_sets_flag(self, tmp_path, fastq):
        queue = JobQueue(tmp_path)
        record = queue.submit(make_job(fastq))
        record.attempt = 1
        queue.transition(record, JobState.RUNNING, type="started")
        assert queue.cancel(record.job_id)
        assert record.state == JobState.RUNNING
        assert record.metrics["cancel_requested"]

    def test_recover_demotes_running(self, tmp_path, fastq):
        queue = JobQueue(tmp_path)
        done = queue.submit(make_job(fastq))
        orphan = queue.submit(make_job(fastq))
        waiting = queue.submit(make_job(fastq))
        queue.transition(done, JobState.RUNNING, type="started")
        queue.transition(done, JobState.SUCCEEDED, type="succeeded",
                         result={"ok": True})
        queue.transition(orphan, JobState.RUNNING, type="started")

        fresh = JobQueue(tmp_path)  # simulated daemon restart
        assert fresh.recover() == 1
        states = {j: fresh.get(j).state for j in fresh.records}
        assert states[done.job_id] == JobState.SUCCEEDED
        assert states[orphan.job_id] == JobState.QUEUED
        assert states[waiting.job_id] == JobState.QUEUED
        assert len(fresh.records) == 3
        types = [e.type for e in fresh.events.replay()
                 if e.job_id == orphan.job_id]
        assert types[-1] == "recovered"


class TestRetryPolicy:
    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(base_delay=1.0, max_delay=5.0)
        assert [policy.delay(n) for n in (1, 2, 3, 4)] == [1.0, 2.0, 4.0, 5.0]

    def test_attempts_are_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().delay(0)


class TestJobControl:
    def test_cancel_raises(self):
        control = JobControl()
        control.check()  # clean
        control.cancel_event.set()
        with pytest.raises(JobCancelled):
            control.check()

    def test_deadline_raises(self):
        clock = FakeClock(t=10.0)
        control = JobControl(deadline=12.0, clock=clock)
        control.check()
        clock.t = 12.5
        with pytest.raises(JobTimeout):
            control.check()


class SchedulerHarness:
    """A queue + scheduler over a scripted runner and a virtual clock."""

    def __init__(self, tmp_path, runner, **sched_kw):
        self.clock = FakeClock()
        self.queue = JobQueue(tmp_path)
        self.terminal = []
        self.scheduler = Scheduler(
            self.queue,
            runner=runner,
            clock=self.clock,
            sleep=self.clock.sleep,
            on_terminal=self.terminal.append,
            **sched_kw,
        )

    def drain(self, timeout=100.0):
        self.scheduler.run_until_idle(timeout=timeout)


class TestScheduler:
    def test_success_path(self, tmp_path, fastq):
        h = SchedulerHarness(tmp_path, lambda r, c: {"answer": 42})
        record = h.queue.submit(make_job(fastq))
        h.drain()
        assert record.state == JobState.SUCCEEDED
        assert record.attempt == 1
        assert record.result == {"answer": 42}
        assert [r.job_id for r in h.terminal] == [record.job_id]

    def test_failure_retried_with_backoff_then_succeeds(self, tmp_path, fastq):
        attempts = []

        def flaky(record, control):
            attempts.append(record.attempt)
            if len(attempts) < 3:
                raise RuntimeError("transient")
            return {"ok": True}

        h = SchedulerHarness(
            tmp_path, flaky, retry=RetryPolicy(base_delay=2.0, max_delay=60.0)
        )
        record = h.queue.submit(make_job(fastq, max_retries=3))
        h.drain()
        assert record.state == JobState.SUCCEEDED
        assert attempts == [1, 2, 3]
        delays = [
            e.payload["retry_in_seconds"]
            for e in h.queue.events.replay()
            if e.type == "retry_scheduled"
        ]
        assert delays == [2.0, 4.0]

    def test_backoff_actually_delays_restart(self, tmp_path, fastq):
        def failing(record, control):
            raise RuntimeError("nope")

        h = SchedulerHarness(
            tmp_path, failing, retry=RetryPolicy(base_delay=10.0)
        )
        record = h.queue.submit(make_job(fastq, max_retries=1))
        h.scheduler.tick()  # starts attempt 1
        deadline = time.monotonic() + 5.0
        # first attempt fails; the retry must not start before the backoff
        while record.state != JobState.QUEUED or h.scheduler.running:
            assert time.monotonic() < deadline, "attempt 1 never settled"
            time.sleep(0.002)
            h.scheduler.tick()
        assert record.state == JobState.QUEUED
        assert record.not_before == pytest.approx(h.clock.t + 10.0)
        assert h.scheduler.tick() is False  # still backing off
        h.clock.t += 11.0
        h.scheduler.tick()
        assert record.attempt == 2

    def test_retries_exhausted_fails(self, tmp_path, fastq):
        def failing(record, control):
            raise ValueError("permanent")

        h = SchedulerHarness(tmp_path, failing,
                             retry=RetryPolicy(base_delay=0.01))
        record = h.queue.submit(make_job(fastq, max_retries=2))
        h.drain()
        assert record.state == JobState.FAILED
        assert record.attempt == 3  # 1 initial + 2 retries
        assert "ValueError: permanent" in record.error

    def test_timeout_is_terminal_not_retried(self, tmp_path, fastq):
        def slow(record, control):
            raise JobTimeout("job exceeded its time limit")

        h = SchedulerHarness(tmp_path, slow)
        record = h.queue.submit(make_job(fastq, max_retries=5))
        h.drain()
        assert record.state == JobState.FAILED
        assert record.attempt == 1
        assert "time limit" in record.error

    def test_running_job_cancelled_cooperatively(self, tmp_path, fastq):
        started = threading.Event()

        def waits_for_cancel(record, control):
            started.set()
            for _ in range(2000):
                control.check()
                time.sleep(0.002)
            raise AssertionError("cancel flag never observed")

        h = SchedulerHarness(tmp_path, waits_for_cancel)
        record = h.queue.submit(make_job(fastq))
        h.scheduler.tick()
        assert started.wait(5.0)
        h.queue.cancel(record.job_id)
        h.drain()
        assert record.state == JobState.CANCELLED

    def test_cancelled_before_start_never_runs(self, tmp_path, fastq):
        ran = []
        h = SchedulerHarness(tmp_path, lambda r, c: ran.append(r.job_id))
        record = h.queue.submit(make_job(fastq))
        record.metrics["cancel_requested"] = True
        h.drain()
        assert record.state == JobState.CANCELLED
        assert ran == []

    def test_concurrency_cap_respected(self, tmp_path, fastq):
        gate = threading.Event()
        peak = []

        def blocked(record, control):
            peak.append(record.job_id)
            gate.wait(5.0)
            return {}

        h = SchedulerHarness(tmp_path, blocked, max_concurrent=2)
        for _ in range(4):
            h.queue.submit(make_job(fastq))
        h.scheduler.tick()
        assert len(h.scheduler.running) == 2
        gate.set()
        h.drain()
        assert all(r.state == JobState.SUCCEEDED
                   for r in h.queue.records.values())

    def test_identical_inflight_work_coalesces(self, tmp_path, fastq):
        gate = threading.Event()
        running_same_key = []

        def blocked(record, control):
            running_same_key.append(record.job_id)
            gate.wait(5.0)
            return {}

        h = SchedulerHarness(
            tmp_path, blocked, max_concurrent=4,
        )
        h.scheduler.coalesce = lambda record: "same-work"
        for _ in range(3):
            h.queue.submit(make_job(fastq))
        h.scheduler.tick()
        # identical work: only one of the three may run at a time
        assert len(h.scheduler.running) == 1
        gate.set()
        h.drain()
        assert all(r.state == JobState.SUCCEEDED
                   for r in h.queue.records.values())
