"""Fixtures for the static-analysis tests.

``make_project`` builds a throwaway checkout (``<tmp>/src/repro/...``)
from a mapping of package-relative paths to source text, so each checker
test states exactly the tree it analyzes.
"""

import textwrap
from pathlib import Path

import pytest

from repro.analysis.project import Project


@pytest.fixture
def make_project(tmp_path):
    """Build a fake checkout and load it as a :class:`Project`."""

    def build(files: dict) -> Project:
        package = tmp_path / "src" / "repro"
        for pkgpath, text in files.items():
            path = package / pkgpath
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text))
        return Project.load(tmp_path)

    return build


@pytest.fixture
def project_root(tmp_path):
    """The root path ``make_project`` builds under."""
    return Path(tmp_path)
