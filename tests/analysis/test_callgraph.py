"""Call-graph resolution and transitive taint propagation."""

import ast
import textwrap
from pathlib import Path

from repro.analysis.callgraph import CallGraph, format_chain
from repro.analysis.dataflow import summarize_module
from repro.analysis.project import SourceModule
from repro.analysis.suppress import parse_suppressions


def graph_of(files: dict) -> CallGraph:
    summaries = {}
    for pkgpath, source in files.items():
        text = textwrap.dedent(source)
        module = SourceModule(
            path=Path(pkgpath),
            relpath=f"src/repro/{pkgpath}",
            pkgpath=pkgpath,
            text=text,
            tree=ast.parse(text),
            suppressions=parse_suppressions(text),
        )
        summaries[pkgpath] = summarize_module(module)
    return CallGraph(summaries)


class TestResolution:
    def test_local_name_resolves_same_module(self):
        graph = graph_of(
            {
                "core/a.py": """
                    def helper():
                        return 1

                    def f():
                        return helper()
                """
            }
        )
        assert (("core/a.py", "helper"), 3) in [
            (t, _l) for t, _l in graph.edges[("core/a.py", "f")]
        ] or graph.edges[("core/a.py", "f")][0][0] == ("core/a.py", "helper")

    def test_dotted_import_resolves_across_modules(self):
        graph = graph_of(
            {
                "util/t.py": """
                    def tick():
                        return 0
                """,
                "core/b.py": """
                    from repro.util.t import tick

                    def f():
                        return tick()
                """,
            }
        )
        targets = [t for t, _l in graph.edges[("core/b.py", "f")]]
        assert ("util/t.py", "tick") in targets

    def test_self_method_resolves_within_class(self):
        graph = graph_of(
            {
                "core/c.py": """
                    class Stage:
                        def run(self):
                            return self.step()

                        def step(self):
                            return 1
                """
            }
        )
        targets = [t for t, _l in graph.edges[("core/c.py", "Stage.run")]]
        assert ("core/c.py", "Stage.step") in targets

    def test_class_constructor_resolves_to_init(self):
        graph = graph_of(
            {
                "telemetry/spool.py": """
                    class SpoolWriter:
                        def __init__(self, path):
                            self.path = path
                """,
                "core/d.py": """
                    from repro.telemetry.spool import SpoolWriter

                    def f(path):
                        w = SpoolWriter(path)
                        w.close()
                        return 1
                """,
            }
        )
        targets = [t for t, _l in graph.edges[("core/d.py", "f")]]
        assert ("telemetry/spool.py", "SpoolWriter.__init__") in targets

    def test_unresolvable_attribute_call_is_dropped(self):
        graph = graph_of(
            {
                "core/e.py": """
                    def f(store):
                        return store.get("x")
                """
            }
        )
        assert graph.edges[("core/e.py", "f")] == []


class TestTaint:
    FILES = {
        "util/clockish.py": """
            import time

            def now():
                return time.time()

            def indirect():
                return now()
        """,
        "core/user.py": """
            from repro.util.clockish import indirect

            def consume():
                return indirect()

            def clean():
                return 1
        """,
    }

    def test_direct_and_transitive_taint(self):
        graph = graph_of(self.FILES)
        taints = graph.tainted("wall_clock")
        assert taints[("util/clockish.py", "now")].depth == 0
        assert taints[("util/clockish.py", "indirect")].depth == 1
        assert taints[("core/user.py", "consume")].depth == 2
        assert ("core/user.py", "clean") not in taints

    def test_witness_chain_is_shortest_and_deterministic(self):
        graph = graph_of(self.FILES)
        chain = format_chain(graph, ("core/user.py", "consume"), "wall_clock")
        assert chain == "consume -> indirect -> now"

    def test_job_roots_resolved(self):
        graph = graph_of(
            {
                "core/drive.py": """
                    def job(x):
                        return x

                    def drive(executor, items):
                        return list(executor.map(job, items))
                """
            }
        )
        (root,) = graph.job_roots
        assert root.target == ("core/drive.py", "job")
        assert root.local
