"""Acceptance: ``metaprep check`` on the real tree, and on deliberately
broken copies of it (the ISSUE's three sabotage scenarios)."""

import shutil
from pathlib import Path

from repro.analysis.runner import run_checks
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def broken_copy(tmp_path: Path) -> Path:
    """Copy the real ``src/repro`` tree into a scratch root."""
    root = tmp_path / "checkout"
    shutil.copytree(
        REPO_ROOT / "src" / "repro",
        root / "src" / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    return root


class TestRealTreeIsClean:
    def test_strict_run_is_green(self):
        report = run_checks(REPO_ROOT)
        assert report.ok, [f.format() for f in report.new]

    def test_cli_strict_exit_zero(self, capsys):
        rc = cli_main(["check", "--root", str(REPO_ROOT), "--strict"])
        assert rc == 0
        assert "0 new" in capsys.readouterr().out


class TestBrokenInvariantsGate:
    def test_removed_payload_field_trips_mp101(self, tmp_path, capsys):
        root = broken_copy(tmp_path)
        checkpoint = root / "src" / "repro" / "core" / "checkpoint.py"
        text = checkpoint.read_text()
        assert '"m": config.m,' in text
        checkpoint.write_text(text.replace('"m": config.m,\n        ', ""))

        report = run_checks(root)
        assert {"MP101", "MP104"} <= {f.rule for f in report.new}
        assert any(
            f.rule == "MP101" and "PipelineConfig.m" in f.message
            for f in report.new
        )
        rc = cli_main(["check", "--root", str(root), "--strict"])
        assert rc == 1
        assert "MP101" in capsys.readouterr().out

    def test_unseeded_rng_in_localcc_trips_mp202(self, tmp_path, capsys):
        root = broken_copy(tmp_path)
        localcc = root / "src" / "repro" / "cc" / "localcc.py"
        localcc.write_text(
            localcc.read_text()
            + "\n\ndef _jitter():\n"
            + "    return np.random.default_rng().random()\n"
        )

        report = run_checks(root)
        assert any(
            f.rule == "MP202" and f.path == "src/repro/cc/localcc.py"
            for f in report.new
        )
        rc = cli_main(["check", "--root", str(root), "--strict"])
        assert rc == 1
        assert "MP202" in capsys.readouterr().out

    def test_lambda_submission_trips_mp301(self, tmp_path, capsys):
        root = broken_copy(tmp_path)
        pipeline = root / "src" / "repro" / "core" / "pipeline.py"
        pipeline.write_text(
            pipeline.read_text()
            + "\n\ndef _broken(executor, jobs):\n"
            + "    return executor.map(lambda job: job, jobs)\n"
        )

        report = run_checks(root)
        assert any(
            f.rule == "MP301" and f.path == "src/repro/core/pipeline.py"
            for f in report.new
        )
        rc = cli_main(["check", "--root", str(root), "--strict"])
        assert rc == 1
        assert "MP301" in capsys.readouterr().out


class TestSamplingSeedFingerprinted:
    def test_seed_in_config_payload(self):
        from repro.core.checkpoint import config_payload
        from repro.core.config import PipelineConfig

        payload = config_payload(PipelineConfig(sampling_seed=7))
        assert payload["sampling_seed"] == 7

    def test_seed_changes_fingerprint(self):
        from repro.core.checkpoint import config_payload, payload_fingerprint
        from repro.core.config import PipelineConfig

        a = payload_fingerprint(config_payload(PipelineConfig(sampling_seed=0)))
        b = payload_fingerprint(config_payload(PipelineConfig(sampling_seed=1)))
        assert a != b

    def test_every_field_classified(self):
        import dataclasses

        from repro.core.checkpoint import (
            PARTITION_IRRELEVANT_FIELDS,
            config_payload,
        )
        from repro.core.config import PipelineConfig

        config = PipelineConfig()
        fields = {f.name for f in dataclasses.fields(PipelineConfig)}
        payload_keys = set(config_payload(config))
        assert payload_keys | PARTITION_IRRELEVANT_FIELDS == fields
        assert payload_keys & PARTITION_IRRELEVANT_FIELDS == set()

    def test_config_sampled_boundaries_uses_config_seed(self):
        import numpy as np

        from repro.core.config import PipelineConfig
        from repro.kmers.engine import KmerTuples
        from repro.sort.sampling import (
            config_sampled_boundaries,
            sampled_boundaries,
        )
        from tests.sort.test_sampling import tuples_with_bins

        rng = np.random.default_rng(5)
        t = tuples_with_bins(rng, 4000, m=4)
        cfg = PipelineConfig(k=13, m=4, sampling_seed=9)
        via_config = config_sampled_boundaries(t, cfg, 4)
        direct = sampled_boundaries(t, 4, 4, seed=9)
        assert np.array_equal(via_config, direct)
        assert isinstance(KmerTuples.empty(13), KmerTuples)
