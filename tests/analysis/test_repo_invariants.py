"""Acceptance: ``metaprep check`` on the real tree, and on deliberately
broken copies of it (the ISSUE's three sabotage scenarios)."""

import shutil
from pathlib import Path

from repro.analysis.runner import run_checks
from repro.cli import main as cli_main

REPO_ROOT = Path(__file__).resolve().parents[2]


def broken_copy(tmp_path: Path) -> Path:
    """Copy the real ``src/repro`` tree into a scratch root."""
    root = tmp_path / "checkout"
    shutil.copytree(
        REPO_ROOT / "src" / "repro",
        root / "src" / "repro",
        ignore=shutil.ignore_patterns("__pycache__"),
    )
    return root


class TestRealTreeIsClean:
    def test_strict_run_is_green(self):
        report = run_checks(REPO_ROOT)
        assert report.ok, [f.format() for f in report.new]

    def test_cli_strict_exit_zero(self, capsys):
        rc = cli_main(["check", "--root", str(REPO_ROOT), "--strict"])
        assert rc == 0
        assert "0 new" in capsys.readouterr().out


class TestBrokenInvariantsGate:
    def test_removed_payload_field_trips_mp101(self, tmp_path, capsys):
        root = broken_copy(tmp_path)
        checkpoint = root / "src" / "repro" / "core" / "checkpoint.py"
        text = checkpoint.read_text()
        assert '"m": config.m,' in text
        checkpoint.write_text(text.replace('"m": config.m,\n        ', ""))

        report = run_checks(root)
        assert {"MP101", "MP104"} <= {f.rule for f in report.new}
        assert any(
            f.rule == "MP101" and "PipelineConfig.m" in f.message
            for f in report.new
        )
        rc = cli_main(["check", "--root", str(root), "--strict"])
        assert rc == 1
        assert "MP101" in capsys.readouterr().out

    def test_unseeded_rng_in_localcc_trips_mp202(self, tmp_path, capsys):
        root = broken_copy(tmp_path)
        localcc = root / "src" / "repro" / "cc" / "localcc.py"
        localcc.write_text(
            localcc.read_text()
            + "\n\ndef _jitter():\n"
            + "    return np.random.default_rng().random()\n"
        )

        report = run_checks(root)
        assert any(
            f.rule == "MP202" and f.path == "src/repro/cc/localcc.py"
            for f in report.new
        )
        rc = cli_main(["check", "--root", str(root), "--strict"])
        assert rc == 1
        assert "MP202" in capsys.readouterr().out

    def test_lambda_submission_trips_mp301(self, tmp_path, capsys):
        root = broken_copy(tmp_path)
        pipeline = root / "src" / "repro" / "core" / "pipeline.py"
        pipeline.write_text(
            pipeline.read_text()
            + "\n\ndef _broken(executor, jobs):\n"
            + "    return executor.map(lambda job: job, jobs)\n"
        )

        report = run_checks(root)
        assert any(
            f.rule == "MP301" and f.path == "src/repro/core/pipeline.py"
            for f in report.new
        )
        rc = cli_main(["check", "--root", str(root), "--strict"])
        assert rc == 1
        assert "MP301" in capsys.readouterr().out


class TestInterproceduralSabotage:
    """The ISSUE-8 acceptance scenarios: hazards only the call-graph
    engine can see, with matching pass fixtures proving the clean
    variants stay clean."""

    def test_helper_global_write_trips_transitive_mp302(self, tmp_path, capsys):
        # the job function is pure; the helper it calls writes a module
        # global — invisible to the per-site scan
        root = broken_copy(tmp_path)
        pipeline = root / "src" / "repro" / "core" / "pipeline.py"
        pipeline.write_text(
            pipeline.read_text()
            + "\n\n_SAB_COUNTER = {}\n"
            + "\n\ndef _sab_helper_bump(key):\n"
            + '    _SAB_COUNTER[key] = _SAB_COUNTER.get(key, 0) + 1\n'
            + "\n\ndef _sab_job(x):\n"
            + '    _sab_helper_bump("jobs")\n'
            + "    return x * 2\n"
            + "\n\ndef _sab_drive(executor, jobs):\n"
            + "    return list(executor.map(_sab_job, jobs))\n"
        )

        report = run_checks(root)
        trips = [f for f in report.new if f.rule == "MP302"]
        assert trips, [f.format() for f in report.new]
        assert any(
            "_sab_job -> _sab_helper_bump" in f.message for f in trips
        )
        rc = cli_main(["check", "--root", str(root), "--strict"])
        assert rc == 1
        assert "MP302" in capsys.readouterr().out

    def test_pure_helper_chain_stays_clean(self, tmp_path):
        root = broken_copy(tmp_path)
        pipeline = root / "src" / "repro" / "core" / "pipeline.py"
        pipeline.write_text(
            pipeline.read_text()
            + "\n\ndef _sab_helper_double(x):\n"
            + "    return x * 2\n"
            + "\n\ndef _sab_job(x):\n"
            + "    return _sab_helper_double(x)\n"
            + "\n\ndef _sab_drive(executor, jobs):\n"
            + "    return list(executor.map(_sab_job, jobs))\n"
        )
        report = run_checks(root)
        assert report.ok, [f.format() for f in report.new]

    def test_attach_without_exception_safe_release_trips_mp601(
        self, tmp_path, capsys
    ):
        # block.close() is present but an exception between attach and
        # close skips it — only the exception edges of the CFG see that
        root = broken_copy(tmp_path)
        stage = root / "src" / "repro" / "core" / "sab_stage.py"
        stage.write_text(
            "from repro.runtime.buffers import attach_block\n"
            "\n\ndef _sab_consume(descriptor):\n"
            "    block = attach_block(descriptor)\n"
            "    total = int(block.lo.sum())\n"
            "    block.close()\n"
            "    return total\n"
        )

        report = run_checks(root)
        trips = [f for f in report.new if f.rule == "MP601"]
        assert trips, [f.format() for f in report.new]
        assert "exception edge" in trips[0].message
        rc = cli_main(["check", "--root", str(root), "--strict"])
        assert rc == 1
        assert "MP601" in capsys.readouterr().out

    def test_managed_and_finally_released_attach_stays_clean(self, tmp_path):
        root = broken_copy(tmp_path)
        stage = root / "src" / "repro" / "core" / "sab_stage.py"
        stage.write_text(
            "from repro.runtime.buffers import attach_block, open_block\n"
            "\n\ndef _sab_consume(descriptor):\n"
            "    block = attach_block(descriptor)\n"
            "    try:\n"
            "        return int(block.lo.sum())\n"
            "    finally:\n"
            "        block.close()\n"
            "\n\ndef _sab_consume_ctx(handle):\n"
            "    with open_block(handle) as block:\n"
            "        return int(block.lo.sum())\n"
        )
        report = run_checks(root)
        assert report.ok, [f.format() for f in report.new]


class TestSamplingSeedFingerprinted:
    def test_seed_in_config_payload(self):
        from repro.core.checkpoint import config_payload
        from repro.core.config import PipelineConfig

        payload = config_payload(PipelineConfig(sampling_seed=7))
        assert payload["sampling_seed"] == 7

    def test_seed_changes_fingerprint(self):
        from repro.core.checkpoint import config_payload, payload_fingerprint
        from repro.core.config import PipelineConfig

        a = payload_fingerprint(config_payload(PipelineConfig(sampling_seed=0)))
        b = payload_fingerprint(config_payload(PipelineConfig(sampling_seed=1)))
        assert a != b

    def test_every_field_classified(self):
        import dataclasses

        from repro.core.checkpoint import (
            PARTITION_IRRELEVANT_FIELDS,
            config_payload,
        )
        from repro.core.config import PipelineConfig

        config = PipelineConfig()
        fields = {f.name for f in dataclasses.fields(PipelineConfig)}
        payload_keys = set(config_payload(config))
        assert payload_keys | PARTITION_IRRELEVANT_FIELDS == fields
        assert payload_keys & PARTITION_IRRELEVANT_FIELDS == set()

    def test_config_sampled_boundaries_uses_config_seed(self):
        import numpy as np

        from repro.core.config import PipelineConfig
        from repro.kmers.engine import KmerTuples
        from repro.sort.sampling import (
            config_sampled_boundaries,
            sampled_boundaries,
        )
        from tests.sort.test_sampling import tuples_with_bins

        rng = np.random.default_rng(5)
        t = tuples_with_bins(rng, 4000, m=4)
        cfg = PipelineConfig(k=13, m=4, sampling_seed=9)
        via_config = config_sampled_boundaries(t, cfg, 4)
        direct = sampled_boundaries(t, 4, 4, seed=9)
        assert np.array_equal(via_config, direct)
        assert isinstance(KmerTuples.empty(13), KmerTuples)
