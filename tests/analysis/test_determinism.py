"""MP2xx determinism checker: trip and pass fixtures."""

from repro.analysis.checkers.determinism import check_determinism


def rules(findings):
    return sorted(f.rule for f in findings)


class TestMP201WallClock:
    def test_time_time_trips_in_result_path(self, make_project):
        project = make_project(
            {
                "sort/local.py": """
                    import time

                    def stamp():
                        return time.time()
                """
            }
        )
        findings = check_determinism(project)
        assert rules(findings) == ["MP201"]
        assert "time.time" in findings[0].message

    def test_datetime_now_trips(self, make_project):
        project = make_project(
            {
                "cc/merge.py": """
                    from datetime import datetime

                    def stamp():
                        return datetime.now()
                """
            }
        )
        assert rules(check_determinism(project)) == ["MP201"]

    def test_monotonic_clocks_allowed(self, make_project):
        project = make_project(
            {
                "sort/local.py": """
                    import time

                    def measure():
                        t0 = time.perf_counter()
                        return time.monotonic() - t0
                """
            }
        )
        assert check_determinism(project) == []

    def test_wall_clock_outside_result_scope_allowed(self, make_project):
        project = make_project(
            {
                "service/queue.py": """
                    import time

                    def enqueued_at():
                        return time.time()
                """,
                "perf/timer.py": """
                    import time

                    def now():
                        return time.time()
                """,
            }
        )
        assert check_determinism(project) == []


class TestMP202RandomSources:
    def test_unseeded_default_rng_trips_anywhere(self, make_project):
        project = make_project(
            {
                "service/jitter.py": """
                    import numpy as np

                    def rng():
                        return np.random.default_rng()
                """
            }
        )
        findings = check_determinism(project)
        assert rules(findings) == ["MP202"]
        assert "without a seed" in findings[0].message

    def test_seeded_default_rng_passes(self, make_project):
        project = make_project(
            {
                "sort/sampling.py": """
                    import numpy as np

                    def rng(seed: int):
                        return np.random.default_rng(seed)
                """
            }
        )
        assert check_determinism(project) == []

    def test_seed_none_keyword_trips(self, make_project):
        project = make_project(
            {
                "sort/sampling.py": """
                    import numpy as np

                    def rng():
                        return np.random.default_rng(seed=None)
                """
            }
        )
        assert rules(check_determinism(project)) == ["MP202"]

    def test_numpy_module_global_api_trips(self, make_project):
        project = make_project(
            {
                "kmers/noise.py": """
                    import numpy as np

                    def sample(n):
                        return np.random.randint(0, 10, size=n)
                """
            }
        )
        findings = check_determinism(project)
        assert rules(findings) == ["MP202"]
        assert "module-global" in findings[0].message

    def test_stdlib_random_module_trips(self, make_project):
        project = make_project(
            {
                "util/pick.py": """
                    import random

                    def pick(items):
                        return random.choice(items)
                """
            }
        )
        assert rules(check_determinism(project)) == ["MP202"]

    def test_seeded_stdlib_random_instance_passes(self, make_project):
        project = make_project(
            {
                "util/pick.py": """
                    import random

                    def pick(items, seed: int):
                        return random.Random(seed).choice(items)
                """
            }
        )
        assert check_determinism(project) == []


class TestMP203SetIteration:
    def test_for_over_set_literal_trips(self, make_project):
        project = make_project(
            {
                "index/build.py": """
                    def names():
                        out = []
                        for name in {"a", "b"}:
                            out.append(name)
                        return out
                """
            }
        )
        findings = check_determinism(project)
        assert rules(findings) == ["MP203"]
        assert "sorted" in findings[0].message

    def test_for_over_set_typed_local_trips(self, make_project):
        project = make_project(
            {
                "index/build.py": """
                    def names(items):
                        seen = set(items)
                        return [x for x in seen]
                """
            }
        )
        assert rules(check_determinism(project)) == ["MP203"]

    def test_sorted_set_passes(self, make_project):
        project = make_project(
            {
                "index/build.py": """
                    def names(items):
                        seen = set(items)
                        return [x for x in sorted(seen)]
                """
            }
        )
        assert check_determinism(project) == []

    def test_list_over_set_algebra_trips(self, make_project):
        project = make_project(
            {
                "cc/labels.py": """
                    def diff(a, b):
                        return list(set(a) - set(b))
                """
            }
        )
        assert rules(check_determinism(project)) == ["MP203"]

    def test_set_iteration_outside_result_scope_allowed(self, make_project):
        project = make_project(
            {
                "service/store.py": """
                    def names(items):
                        seen = set(items)
                        return [x for x in seen]
                """
            }
        )
        assert check_determinism(project) == []


class TestTelemetryScope:
    """telemetry/ is result-affecting for MP2xx, with monotonic clocks
    explicitly allowlisted — the subsystem's whole point is timing."""

    def test_wall_clock_in_telemetry_trips(self, make_project):
        project = make_project(
            {
                "telemetry/runtime.py": """
                    import time

                    def stamp():
                        return time.time()
                """
            }
        )
        findings = check_determinism(project)
        assert rules(findings) == ["MP201"]

    def test_monotonic_clocks_in_telemetry_pass(self, make_project):
        project = make_project(
            {
                "telemetry/runtime.py": """
                    import time

                    def now_ns():
                        return time.perf_counter_ns()

                    def coarse():
                        return time.monotonic_ns()
                """
            }
        )
        assert check_determinism(project) == []

    def test_allowlist_disjoint_from_wall_clock(self):
        from repro.analysis.checkers.determinism import (
            MONOTONIC_ALLOWED,
            WALL_CLOCK,
        )

        assert not (MONOTONIC_ALLOWED & WALL_CLOCK)

    def test_telemetry_is_result_affecting_scope(self):
        from repro.analysis.checkers.determinism import (
            RESULT_AFFECTING_SCOPES,
        )

        assert "telemetry/" in RESULT_AFFECTING_SCOPES
