"""Suppression parsing, baseline round-trip, and runner integration."""

import pytest

from repro.analysis.baseline import (
    load_baseline,
    partition_baseline,
    subtract_baseline,
    write_baseline,
    write_baseline_keys,
)
from repro.analysis.findings import RULES, Finding
from repro.analysis.runner import run_checks
from repro.analysis.suppress import (
    is_suppressed,
    parse_suppressions,
    scan_suppression_comments,
)


class TestSuppressionParsing:
    def test_single_rule(self):
        sup = parse_suppressions("x = 1  # metaprep: ignore[MP203]\n")
        assert is_suppressed(sup, 1, "MP203")
        assert not is_suppressed(sup, 1, "MP201")
        assert not is_suppressed(sup, 2, "MP203")

    def test_multiple_rules(self):
        sup = parse_suppressions("x = 1  # metaprep: ignore[MP201, MP203]\n")
        assert is_suppressed(sup, 1, "MP201")
        assert is_suppressed(sup, 1, "MP203")

    def test_wildcard(self):
        sup = parse_suppressions("x = 1  # metaprep: ignore[*]\n")
        for rule in RULES:
            assert is_suppressed(sup, 1, rule)

    def test_string_literal_does_not_count(self):
        sup = parse_suppressions('x = "# metaprep: ignore[MP203]"\n')
        assert sup == {}

    def test_plain_comment_does_not_count(self):
        assert parse_suppressions("x = 1  # a normal comment\n") == {}

    def test_prose_mention_is_not_a_directive(self):
        # a comment *talking about* the marker mid-text is not a directive
        text = "x = 1  # findings silenced via `# metaprep: ignore[...]`\n"
        assert parse_suppressions(text) == {}
        assert scan_suppression_comments(text) == []

    def test_multiple_rules_deduplicated_and_sorted(self):
        text = "x = 1  # metaprep: ignore[MP203, MP201, MP203]\n"
        (comment,) = scan_suppression_comments(text)
        assert comment.rules == ("MP201", "MP203")
        assert not comment.malformed

    def test_malformed_missing_brackets(self):
        (comment,) = scan_suppression_comments("x = 1  # metaprep: ignore\n")
        assert comment.malformed
        assert comment.rules == ()
        assert parse_suppressions("x = 1  # metaprep: ignore\n") == {}

    def test_malformed_empty_brackets(self):
        (comment,) = scan_suppression_comments("x = 1  # metaprep: ignore[]\n")
        assert comment.malformed

    def test_malformed_unclosed_bracket(self):
        (comment,) = scan_suppression_comments("x = 1  # metaprep: ignore[MP203\n")
        assert comment.malformed

    def test_continuation_line_comment_location(self):
        # the comment lives on the physical line it is written on — a
        # suppression on a continuation line does not cover a finding
        # anchored at the statement's first line
        text = "value = max(\n    1,  # metaprep: ignore[MP203]\n    2,\n)\n"
        sup = parse_suppressions(text)
        assert is_suppressed(sup, 2, "MP203")
        assert not is_suppressed(sup, 1, "MP203")


class TestBaseline:
    def finding(self, line=3, rule="MP203", msg="iteration over a set"):
        return Finding(path="src/repro/a.py", line=line, rule=rule, message=msg)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [self.finding(), self.finding(line=9, rule="MP201", msg="clock")]
        write_baseline(path, findings)
        baseline = load_baseline(path)
        assert sum(baseline.values()) == 2
        assert subtract_baseline(findings, baseline) == []

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_invalid_file_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"not": "a baseline"}')
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_line_drift_does_not_resurrect(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.finding(line=3)])
        moved = [self.finding(line=40)]
        assert subtract_baseline(moved, load_baseline(path)) == []

    def test_second_occurrence_counts_as_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.finding()])
        doubled = [self.finding(line=3), self.finding(line=8)]
        new = subtract_baseline(doubled, load_baseline(path))
        assert len(new) == 1

    def test_partition_reports_stale_entries(self, tmp_path):
        path = tmp_path / "baseline.json"
        fixed = self.finding(rule="MP201", msg="clock")  # no longer produced
        write_baseline(path, [self.finding(), fixed])
        new, used, stale = partition_baseline([self.finding()], load_baseline(path))
        assert new == []
        assert sum(used.values()) == 1
        assert list(stale) == [fixed.key()]

    def test_prune_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        fixed = self.finding(rule="MP201", msg="clock")
        write_baseline(path, [self.finding(), fixed])
        current = [self.finding()]
        _new, used, _stale = partition_baseline(current, load_baseline(path))
        write_baseline_keys(path, used)
        pruned = load_baseline(path)
        assert sum(pruned.values()) == 1
        assert partition_baseline(current, pruned)[2] == {}  # nothing stale left


OFFENDING = {
    "index/build.py": """
        def names(items):
            seen = set(items)
            return [x for x in seen]
    """
}

SUPPRESSED = {
    "index/build.py": """
        def names(items):
            seen = set(items)
            return [x for x in seen]  # metaprep: ignore[MP203]
    """
}


class TestRunnerIntegration:
    def test_finding_gates_without_baseline(self, make_project, project_root):
        make_project(OFFENDING)
        report = run_checks(project_root)
        assert not report.ok
        assert [f.rule for f in report.new] == ["MP203"]

    def test_inline_suppression_clears(self, make_project, project_root):
        make_project(SUPPRESSED)
        report = run_checks(project_root)
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["MP203"]

    def test_baseline_absorbs_and_round_trips(self, make_project, project_root):
        make_project(OFFENDING)
        baseline_path = project_root / ".metaprep-baseline.json"
        first = run_checks(project_root)
        write_baseline(baseline_path, first.new)

        second = run_checks(project_root)
        assert second.ok
        assert [f.rule for f in second.baselined] == ["MP203"]

        # a new, different finding still gates through the baseline
        (project_root / "src" / "repro" / "index" / "build.py").write_text(
            "import time\n"
            "def names(items):\n"
            "    seen = set(items)\n"
            "    t = time.time()\n"
            "    return [x for x in seen], t\n"
        )
        third = run_checks(project_root)
        assert not third.ok
        assert [f.rule for f in third.new] == ["MP201"]

    def test_stale_baseline_reported(self, make_project, project_root):
        make_project(OFFENDING)
        baseline_path = project_root / ".metaprep-baseline.json"
        first = run_checks(project_root)
        ghost = Finding(
            path="src/repro/index/build.py",
            line=1,
            rule="MP201",
            message="a finding nothing produces anymore",
        )
        write_baseline(baseline_path, list(first.new) + [ghost])

        second = run_checks(project_root)
        assert second.ok
        assert list(second.stale_baseline) == [ghost.key()]
        assert sum(second.baseline_used.values()) == 1

        # pruning keeps only the consumed entries
        write_baseline_keys(baseline_path, second.baseline_used)
        third = run_checks(project_root)
        assert third.ok
        assert third.stale_baseline == {}

    def test_mp001_unknown_rule_id(self, make_project, project_root):
        make_project(
            {
                "index/build.py": """
                    def names(items):
                        seen = set(items)
                        return [x for x in seen]  # metaprep: ignore[MP999]
                """
            }
        )
        report = run_checks(project_root)
        assert not report.ok
        assert sorted(f.rule for f in report.new) == ["MP001", "MP203"]
        (audit,) = [f for f in report.new if f.rule == "MP001"]
        assert "MP999" in audit.message

    def test_mp001_suppresses_nothing(self, make_project, project_root):
        make_project(
            {
                "index/build.py": """
                    def names(items):  # metaprep: ignore[MP203]
                        return sorted(items)
                """
            }
        )
        report = run_checks(project_root)
        assert [f.rule for f in report.new] == ["MP001"]
        assert "matches no finding" in report.new[0].message

    def test_mp001_malformed_comment(self, make_project, project_root):
        make_project(
            {
                "index/build.py": """
                    def names(items):  # metaprep: ignore[MP203
                        return sorted(items)
                """
            }
        )
        report = run_checks(project_root)
        assert [f.rule for f in report.new] == ["MP001"]
        assert "malformed" in report.new[0].message

    def test_mp001_not_emitted_for_working_suppression(
        self, make_project, project_root
    ):
        make_project(SUPPRESSED)
        report = run_checks(project_root)
        assert report.ok
        assert report.per_checker["suppress"] == 0

    def test_suppression_on_continuation_line_does_not_cover(
        self, make_project, project_root
    ):
        # the MP203 finding anchors at the comprehension's line; a
        # suppression on the closing-paren continuation line is useless
        # and is itself reported by MP001
        make_project(
            {
                "index/build.py": """
                    def names(items):
                        seen = set(items)
                        return [
                            x for x in seen
                        ]  # metaprep: ignore[MP203]
                """
            }
        )
        report = run_checks(project_root)
        assert not report.ok
        assert sorted(f.rule for f in report.new) == ["MP001", "MP203"]

    def test_per_checker_counts(self, make_project, project_root):
        make_project(OFFENDING)
        report = run_checks(project_root)
        assert report.per_checker["determinism"] == 1
        assert set(report.per_checker) == {
            "fingerprint",
            "determinism",
            "purity",
            "overflow",
            "resources",
            "lifecycle",
            "gateway",
            "suppress",
        }
