"""Suppression parsing, baseline round-trip, and runner integration."""

import pytest

from repro.analysis.baseline import (
    load_baseline,
    subtract_baseline,
    write_baseline,
)
from repro.analysis.findings import RULES, Finding
from repro.analysis.runner import run_checks
from repro.analysis.suppress import is_suppressed, parse_suppressions


class TestSuppressionParsing:
    def test_single_rule(self):
        sup = parse_suppressions("x = 1  # metaprep: ignore[MP203]\n")
        assert is_suppressed(sup, 1, "MP203")
        assert not is_suppressed(sup, 1, "MP201")
        assert not is_suppressed(sup, 2, "MP203")

    def test_multiple_rules(self):
        sup = parse_suppressions("x = 1  # metaprep: ignore[MP201, MP203]\n")
        assert is_suppressed(sup, 1, "MP201")
        assert is_suppressed(sup, 1, "MP203")

    def test_wildcard(self):
        sup = parse_suppressions("x = 1  # metaprep: ignore[*]\n")
        for rule in RULES:
            assert is_suppressed(sup, 1, rule)

    def test_string_literal_does_not_count(self):
        sup = parse_suppressions('x = "# metaprep: ignore[MP203]"\n')
        assert sup == {}

    def test_plain_comment_does_not_count(self):
        assert parse_suppressions("x = 1  # a normal comment\n") == {}


class TestBaseline:
    def finding(self, line=3, rule="MP203", msg="iteration over a set"):
        return Finding(path="src/repro/a.py", line=line, rule=rule, message=msg)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        findings = [self.finding(), self.finding(line=9, rule="MP201", msg="clock")]
        write_baseline(path, findings)
        baseline = load_baseline(path)
        assert sum(baseline.values()) == 2
        assert subtract_baseline(findings, baseline) == []

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "nope.json") == {}

    def test_invalid_file_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text('{"not": "a baseline"}')
        with pytest.raises(ValueError):
            load_baseline(path)

    def test_line_drift_does_not_resurrect(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.finding(line=3)])
        moved = [self.finding(line=40)]
        assert subtract_baseline(moved, load_baseline(path)) == []

    def test_second_occurrence_counts_as_new(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.finding()])
        doubled = [self.finding(line=3), self.finding(line=8)]
        new = subtract_baseline(doubled, load_baseline(path))
        assert len(new) == 1


OFFENDING = {
    "index/build.py": """
        def names(items):
            seen = set(items)
            return [x for x in seen]
    """
}

SUPPRESSED = {
    "index/build.py": """
        def names(items):
            seen = set(items)
            return [x for x in seen]  # metaprep: ignore[MP203]
    """
}


class TestRunnerIntegration:
    def test_finding_gates_without_baseline(self, make_project, project_root):
        make_project(OFFENDING)
        report = run_checks(project_root)
        assert not report.ok
        assert [f.rule for f in report.new] == ["MP203"]

    def test_inline_suppression_clears(self, make_project, project_root):
        make_project(SUPPRESSED)
        report = run_checks(project_root)
        assert report.ok
        assert [f.rule for f in report.suppressed] == ["MP203"]

    def test_baseline_absorbs_and_round_trips(self, make_project, project_root):
        make_project(OFFENDING)
        baseline_path = project_root / ".metaprep-baseline.json"
        first = run_checks(project_root)
        write_baseline(baseline_path, first.new)

        second = run_checks(project_root)
        assert second.ok
        assert [f.rule for f in second.baselined] == ["MP203"]

        # a new, different finding still gates through the baseline
        (project_root / "src" / "repro" / "index" / "build.py").write_text(
            "import time\n"
            "def names(items):\n"
            "    seen = set(items)\n"
            "    t = time.time()\n"
            "    return [x for x in seen], t\n"
        )
        third = run_checks(project_root)
        assert not third.ok
        assert [f.rule for f in third.new] == ["MP201"]

    def test_per_checker_counts(self, make_project, project_root):
        make_project(OFFENDING)
        report = run_checks(project_root)
        assert report.per_checker["determinism"] == 1
        assert set(report.per_checker) == {
            "fingerprint",
            "determinism",
            "purity",
            "overflow",
            "resources",
        }
