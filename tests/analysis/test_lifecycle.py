"""MP6xx — interprocedural resource-lifecycle trip/pass fixtures."""

from repro.analysis.checkers.lifecycle import check_lifecycle


def rules(findings):
    return sorted(f.rule for f in findings)


class TestShmLifecycle:
    def test_trip_exception_edge_skips_close(self, make_project):
        project = make_project(
            {
                "core/stage.py": """
                    from repro.runtime.buffers import attach_block

                    def consume(descriptor):
                        block = attach_block(descriptor)
                        total = int(block.lo.sum())
                        block.close()
                        return total
                """
            }
        )
        findings = check_lifecycle(project)
        assert rules(findings) == ["MP601"]
        assert "exception edge" in findings[0].message

    def test_pass_try_finally(self, make_project):
        project = make_project(
            {
                "core/stage.py": """
                    from repro.runtime.buffers import attach_block

                    def consume(descriptor):
                        block = attach_block(descriptor)
                        try:
                            return int(block.lo.sum())
                        finally:
                            block.close()
                """
            }
        )
        assert check_lifecycle(project) == []

    def test_pass_context_managed(self, make_project):
        project = make_project(
            {
                "core/stage.py": """
                    from repro.runtime.buffers import open_block

                    def consume(handle):
                        with open_block(handle) as block:
                            return int(block.lo.sum())
                """
            }
        )
        assert check_lifecycle(project) == []

    def test_pass_deferred_with_binding(self, make_project):
        # the pipeline idiom: bind now, enter the context later
        project = make_project(
            {
                "core/stage.py": """
                    from repro.runtime.buffers import open_block
                    from repro.runtime.spill import resident_spill

                    def consume(job):
                        if job.spilled:
                            attach = resident_spill(job.target, task=job.task)
                        else:
                            attach = open_block(job.block)
                        with attach as block:
                            return int(block.lo.sum())
                """
            }
        )
        assert check_lifecycle(project) == []

    def test_pass_ownership_escapes_by_return(self, make_project):
        project = make_project(
            {
                "core/stage.py": """
                    from repro.runtime.buffers import attach_block

                    def acquire(descriptor):
                        block = attach_block(descriptor)
                        return block
                """
            }
        )
        assert check_lifecycle(project) == []

    def test_defining_module_is_exempt(self, make_project):
        project = make_project(
            {
                "runtime/buffers.py": """
                    def attach_block(descriptor):
                        return object()

                    def probe(descriptor):
                        block = attach_block(descriptor)
                        return 1
                """
            }
        )
        assert check_lifecycle(project) == []


class TestSpillLifecycle:
    def test_trip_raw_read_spill_leak(self, make_project):
        project = make_project(
            {
                "sort/merge.py": """
                    from repro.runtime.spill import read_spill

                    def merge(path, pool):
                        block = read_spill(path, pool)
                        return block.hi[0]
                """
            }
        )
        findings = check_lifecycle(project)
        assert rules(findings) == ["MP602"]

    def test_trip_through_returning_wrapper(self, make_project):
        # the acquisition happens two modules away; only the call graph
        # connects the wrapper's return value to read_spill
        project = make_project(
            {
                "core/checkpointish.py": """
                    from repro.runtime.spill import read_spill

                    def load_spill(path, pool):
                        return read_spill(path, pool)
                """,
                "sort/merge.py": """
                    from repro.core.checkpointish import load_spill

                    def merge(path, pool):
                        block = load_spill(path, pool)
                        return block.hi[0]
                """,
            }
        )
        findings = check_lifecycle(project)
        assert rules(findings) == ["MP602"]
        assert "load_spill" in findings[0].message
        assert findings[0].path == "src/repro/sort/merge.py"

    def test_pass_wrapper_consumer_releases(self, make_project):
        project = make_project(
            {
                "core/checkpointish.py": """
                    from repro.runtime.spill import read_spill

                    def load_spill(path, pool):
                        return read_spill(path, pool)
                """,
                "sort/merge.py": """
                    from repro.core.checkpointish import load_spill

                    def merge(path, pool):
                        block = load_spill(path, pool)
                        try:
                            return block.hi[0]
                        finally:
                            pool.release(block)
                """,
            }
        )
        assert check_lifecycle(project) == []


class TestSpoolLifecycle:
    def test_trip_spool_writer_leak(self, make_project):
        project = make_project(
            {
                "core/audit.py": """
                    from repro.telemetry.spool import SpoolWriter

                    def audit(path, events):
                        writer = SpoolWriter(path)
                        for event in events:
                            writer.append(event)
                """
            }
        )
        findings = check_lifecycle(project)
        assert rules(findings) == ["MP603"]

    def test_pass_close_in_finally(self, make_project):
        project = make_project(
            {
                "core/audit.py": """
                    from repro.telemetry.spool import SpoolWriter

                    def audit(path, events):
                        writer = SpoolWriter(path)
                        try:
                            for event in events:
                                writer.append(event)
                        finally:
                            writer.close()
                """
            }
        )
        assert check_lifecycle(project) == []

    def test_telemetry_package_is_exempt(self, make_project):
        # the telemetry runtime owns writer lifecycle (attribute escape
        # plus process-exit close); the rule polices everyone else
        project = make_project(
            {
                "telemetry/runtime.py": """
                    from repro.telemetry.spool import SpoolWriter

                    def _writer(path):
                        writer = SpoolWriter(path)
                        return 1
                """
            }
        )
        assert check_lifecycle(project) == []


class TestSocketLifecycle:
    def test_trip_socket_leaked_on_exception_edge(self, make_project):
        project = make_project(
            {
                "core/ping.py": """
                    from repro.runtime.transport import connect_with_retry

                    def ping(address):
                        sock = connect_with_retry(address)
                        sock.sendall(b"ping")
                        reply = sock.recv(4)
                        sock.close()
                        return reply
                """
            }
        )
        findings = check_lifecycle(project)
        assert rules(findings) == ["MP604"]
        assert "network socket" in findings[0].message

    def test_trip_raw_create_connection_leak(self, make_project):
        project = make_project(
            {
                "core/probe.py": """
                    import socket

                    def probe(host, port):
                        sock = socket.create_connection((host, port))
                        return sock.getsockname()
                """
            }
        )
        findings = check_lifecycle(project)
        assert rules(findings) == ["MP604"]

    def test_pass_context_managed(self, make_project):
        project = make_project(
            {
                "core/ping.py": """
                    from repro.runtime.transport import connect_with_retry

                    def ping(address):
                        with connect_with_retry(address) as sock:
                            sock.sendall(b"ping")
                            return sock.recv(4)
                """
            }
        )
        assert check_lifecycle(project) == []

    def test_pass_close_in_finally(self, make_project):
        project = make_project(
            {
                "core/ping.py": """
                    from repro.runtime.transport import connect_with_retry

                    def ping(address):
                        sock = connect_with_retry(address)
                        try:
                            sock.sendall(b"ping")
                            return sock.recv(4)
                        finally:
                            sock.close()
                """
            }
        )
        assert check_lifecycle(project) == []

    def test_pass_ownership_escapes_to_channel_cache(self, make_project):
        # the distributed executor's persistent-channel idiom: the
        # socket is stored on the owning object and returned
        project = make_project(
            {
                "core/channels.py": """
                    from repro.runtime.transport import connect_with_retry

                    class Channels:
                        def __init__(self):
                            self._channels = {}

                        def channel(self, address):
                            sock = connect_with_retry(address)
                            self._channels[address] = sock
                            return sock
                """
            }
        )
        assert check_lifecycle(project) == []

    def test_transport_module_is_exempt(self, make_project):
        # connect_with_retry itself must hand the live socket back
        project = make_project(
            {
                "runtime/transport.py": """
                    import socket

                    def connect_with_retry(address):
                        sock = socket.create_connection(address)
                        sock.setsockopt(1, 1, 1)
                        return 0
                """
            }
        )
        assert check_lifecycle(project) == []
