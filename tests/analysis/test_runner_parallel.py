"""Parallel and incremental behaviour of the check runner.

The contract: ``--jobs N`` and the artifact cache change *how fast* the
answer arrives, never *what* the answer is.
"""

from pathlib import Path

from repro.analysis.runner import (
    CACHE_DIRNAME,
    analyze_file,
    run_checks,
)

REPO_ROOT = Path(__file__).resolve().parents[2]

FILES = {
    "index/build.py": """
        def names(items):
            seen = set(items)
            return [x for x in seen]
    """,
    "util/stamp.py": """
        import time

        def stamp():
            return time.time()
    """,
    "core/emit.py": """
        from repro.util.stamp import stamp

        def emit(record):
            record["at"] = stamp()
            return record
    """,
    "core/stage.py": """
        from repro.runtime.buffers import attach_block

        def consume(descriptor):
            block = attach_block(descriptor)
            return int(block.lo.sum())
    """,
}


def formatted(report):
    return [f.format() for f in report.raw]


class TestParallelParity:
    def test_jobs_finding_identical_to_serial(self, make_project, project_root):
        make_project(FILES)
        serial = run_checks(project_root, jobs=1, use_cache=False)
        parallel = run_checks(project_root, jobs=2, use_cache=False)
        assert formatted(serial) == formatted(parallel)
        assert serial.per_checker == parallel.per_checker
        # the fixture trips one finding per family the engine added
        assert {"MP203", "MP201", "MP601"} <= {f.rule for f in serial.raw}

    def test_jobs_identical_on_real_tree(self):
        serial = run_checks(REPO_ROOT, jobs=1, use_cache=False)
        parallel = run_checks(REPO_ROOT, jobs=2, use_cache=False)
        assert formatted(serial) == formatted(parallel)


class TestIncrementalCache:
    def test_warm_run_hits_every_file(self, make_project, project_root):
        make_project(FILES)
        cold = run_checks(project_root)
        warm = run_checks(project_root)
        assert cold.cache_misses == len(FILES)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(FILES)
        assert warm.cache_misses == 0
        assert formatted(cold) == formatted(warm)
        assert (project_root / CACHE_DIRNAME).is_dir()

    def test_editing_one_file_invalidates_only_it(self, make_project, project_root):
        make_project(FILES)
        run_checks(project_root)
        target = project_root / "src" / "repro" / "index" / "build.py"
        target.write_text("def names(items):\n    return sorted(items)\n")
        touched = run_checks(project_root)
        assert touched.cache_misses == 1
        assert touched.cache_hits == len(FILES) - 1
        # the MP203 of the rewritten file is gone; cross-file findings remain
        assert "MP203" not in {f.rule for f in touched.raw}
        assert {"MP201", "MP601"} <= {f.rule for f in touched.raw}

    def test_cross_file_findings_recomputed_from_cache(
        self, make_project, project_root
    ):
        # warm cache, then change the *out-of-scope helper* only: the
        # transitive MP201 against core/emit.py must disappear even
        # though core/emit.py itself is served from the cache
        make_project(FILES)
        first = run_checks(project_root)
        assert any(
            f.rule == "MP201" and f.path == "src/repro/core/emit.py"
            for f in first.raw
        )
        helper = project_root / "src" / "repro" / "util" / "stamp.py"
        helper.write_text(
            "import time\n\n\ndef stamp():\n    return time.perf_counter()\n"
        )
        second = run_checks(project_root)
        assert second.cache_hits == len(FILES) - 1
        assert not any(f.rule == "MP201" for f in second.raw)

    def test_no_cache_flag_bypasses(self, make_project, project_root):
        make_project(FILES)
        run_checks(project_root)
        bypassed = run_checks(project_root, use_cache=False)
        assert bypassed.cache_hits == 0
        assert bypassed.cache_misses == len(FILES)

    def test_corrupt_cache_entry_is_a_miss(self, make_project, project_root):
        make_project(FILES)
        run_checks(project_root)
        cache_dir = project_root / CACHE_DIRNAME
        for entry in cache_dir.glob("*.pkl"):
            entry.write_bytes(b"not a pickle")
        report = run_checks(project_root)
        assert report.cache_misses == len(FILES)
        assert formatted(report) == formatted(run_checks(project_root))


class TestWorkerFunction:
    def test_analyze_file_round_trips_through_pickle(self):
        import pickle

        text = (
            "from repro.runtime.buffers import attach_block\n"
            "def f(d):\n"
            "    block = attach_block(d)\n"
            "    return 1\n"
        )
        artifact = analyze_file(("core/x.py", "src/repro/core/x.py", text))
        clone = pickle.loads(pickle.dumps(artifact))
        assert clone.pkgpath == artifact.pkgpath
        assert clone.summary.functions["f"].bindings
