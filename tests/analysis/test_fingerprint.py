"""MP1xx fingerprint-coverage checker: trip and pass fixtures."""

from repro.analysis.checkers.fingerprint import check_fingerprint_coverage

CONFIG = """
    from dataclasses import dataclass

    @dataclass
    class PipelineConfig:
        k: int = 27
        m: int = 8
        localcc_opt: bool = True
        executor: str = "serial"

        @property
        def tuple_bytes(self) -> int:
            return 12 if self.k > 31 else 8
"""

CHECKPOINT_OK = """
    PARTITION_IRRELEVANT_FIELDS = frozenset({"executor"})

    def config_payload(config):
        return {
            "k": config.k,
            "m": config.m,
            "localcc_opt": config.localcc_opt,
        }
"""


def rules(findings):
    return sorted({f.rule for f in findings})


class TestPassFixture:
    def test_clean_tree(self, make_project):
        project = make_project(
            {
                "core/config.py": CONFIG,
                "core/checkpoint.py": CHECKPOINT_OK,
                "sort/local.py": """
                    def sort(config: "PipelineConfig"):
                        return config.k + config.m
                """,
            }
        )
        assert check_fingerprint_coverage(project) == []

    def test_derived_property_reads_covered_fields(self, make_project):
        project = make_project(
            {
                "core/config.py": CONFIG,
                "core/checkpoint.py": CHECKPOINT_OK,
                "sort/local.py": """
                    def sort(config: "PipelineConfig"):
                        return config.tuple_bytes
                """,
            }
        )
        assert check_fingerprint_coverage(project) == []

    def test_reads_outside_partition_scope_ignored(self, make_project):
        project = make_project(
            {
                "core/config.py": CONFIG,
                "core/checkpoint.py": CHECKPOINT_OK,
                "perf/model.py": """
                    def project(config: "PipelineConfig"):
                        return config.executor
                """,
            }
        )
        assert check_fingerprint_coverage(project) == []


class TestMP101:
    def test_uncovered_read_trips(self, make_project):
        project = make_project(
            {
                "core/config.py": CONFIG,
                "core/checkpoint.py": """
                    PARTITION_IRRELEVANT_FIELDS = frozenset({"executor"})

                    def config_payload(config):
                        return {"k": config.k, "localcc_opt": config.localcc_opt}
                """,
                "cc/localcc.py": """
                    def run(config: "PipelineConfig"):
                        return config.m
                """,
            }
        )
        findings = check_fingerprint_coverage(project)
        mp101 = [f for f in findings if f.rule == "MP101"]
        assert len(mp101) == 1
        assert "PipelineConfig.m" in mp101[0].message
        assert mp101[0].path == "src/repro/cc/localcc.py"

    def test_uncovered_derived_read_names_base_field(self, make_project):
        project = make_project(
            {
                "core/config.py": CONFIG,
                "core/checkpoint.py": """
                    PARTITION_IRRELEVANT_FIELDS = frozenset(
                        {"executor", "m", "localcc_opt"}
                    )

                    def config_payload(config):
                        return {}
                """,
                "kmers/gen.py": """
                    def gen(cfg: "PipelineConfig"):
                        return cfg.tuple_bytes
                """,
            }
        )
        mp101 = [
            f
            for f in check_fingerprint_coverage(project)
            if f.rule == "MP101"
        ]
        assert len(mp101) == 1
        assert "PipelineConfig.k" in mp101[0].message
        assert "tuple_bytes" in mp101[0].message

    def test_self_config_attribute_tracked(self, make_project):
        project = make_project(
            {
                "core/config.py": CONFIG,
                "core/checkpoint.py": """
                    PARTITION_IRRELEVANT_FIELDS = frozenset({"executor"})

                    def config_payload(config):
                        return {"k": config.k, "localcc_opt": config.localcc_opt}
                """,
                "core/pipeline.py": """
                    class Driver:
                        def run(self):
                            cfg = self.config
                            return cfg.m
                """,
            }
        )
        findings = check_fingerprint_coverage(project)
        # the uncovered field also fires MP104 (unclassified), by design
        assert rules(findings) == ["MP101", "MP104"]
        mp101 = [f for f in findings if f.rule == "MP101"]
        assert mp101[0].path == "src/repro/core/pipeline.py"


class TestMP102:
    def test_stale_payload_key_trips(self, make_project):
        project = make_project(
            {
                "core/config.py": CONFIG,
                "core/checkpoint.py": """
                    PARTITION_IRRELEVANT_FIELDS = frozenset({"executor"})

                    def config_payload(config):
                        return {
                            "k": config.k,
                            "m": config.m,
                            "localcc_opt": config.localcc_opt,
                            "n_nodes": 16,
                        }
                """,
            }
        )
        findings = check_fingerprint_coverage(project)
        assert rules(findings) == ["MP102"]
        assert "n_nodes" in findings[0].message

    def test_non_literal_payload_trips(self, make_project):
        project = make_project(
            {
                "core/config.py": CONFIG,
                "core/checkpoint.py": """
                    PARTITION_IRRELEVANT_FIELDS = frozenset(
                        {"executor", "k", "m", "localcc_opt"}
                    )

                    def config_payload(config):
                        payload = {}
                        for name in ("k", "m"):
                            payload[name] = getattr(config, name)
                        return payload
                """,
            }
        )
        findings = check_fingerprint_coverage(project)
        assert "MP102" in rules(findings)
        assert any("literal dict" in f.message for f in findings)


class TestMP103:
    def test_contradictory_classification_trips(self, make_project):
        project = make_project(
            {
                "core/config.py": CONFIG,
                "core/checkpoint.py": """
                    PARTITION_IRRELEVANT_FIELDS = frozenset({"executor", "k"})

                    def config_payload(config):
                        return {
                            "k": config.k,
                            "m": config.m,
                            "localcc_opt": config.localcc_opt,
                        }
                """,
            }
        )
        findings = check_fingerprint_coverage(project)
        assert rules(findings) == ["MP103"]
        assert "'k'" in findings[0].message


class TestMP104:
    def test_unclassified_field_trips(self, make_project):
        project = make_project(
            {
                "core/config.py": CONFIG,
                "core/checkpoint.py": """
                    def config_payload(config):
                        return {
                            "k": config.k,
                            "m": config.m,
                            "localcc_opt": config.localcc_opt,
                        }
                """,
            }
        )
        findings = check_fingerprint_coverage(project)
        assert rules(findings) == ["MP104"]
        assert "executor" in findings[0].message
        assert findings[0].path == "src/repro/core/config.py"
