"""MP605 — gateway handler-purity trip/pass fixtures."""

from repro.analysis.checkers.gateway import check_gateway_purity


def rules(findings):
    return sorted(f.rule for f in findings)


class TestGlobalWrites:
    def test_trip_handler_writes_module_global(self, make_project):
        project = make_project(
            {
                "gateway/app.py": """
                    JOBS = {}

                    async def post_job(request):
                        JOBS["latest"] = request
                        return 202
                """
            }
        )
        findings = check_gateway_purity(project)
        assert rules(findings) == ["MP605"]
        assert "module globals" in findings[0].message

    def test_trip_handler_declares_global(self, make_project):
        project = make_project(
            {
                "gateway/app.py": """
                    counter = 0

                    async def get_job(request):
                        global counter
                        counter += 1
                        return counter
                """
            }
        )
        findings = check_gateway_purity(project)
        assert "MP605" in rules(findings)

    def test_trip_handler_mutates_module_container(self, make_project):
        project = make_project(
            {
                "gateway/app.py": """
                    SEEN = []

                    async def list_jobs(request):
                        SEEN.append(request)
                        return SEEN
                """
            }
        )
        assert rules(check_gateway_purity(project)) == ["MP605"]

    def test_pass_state_on_the_app_instance(self, make_project):
        project = make_project(
            {
                "gateway/app.py": """
                    class App:
                        def __init__(self):
                            self.jobs = {}

                        async def post_job(self, request):
                            self.jobs[request.job_id] = request
                            return 202
                """
            }
        )
        assert check_gateway_purity(project) == []

    def test_pass_sync_function_out_of_scope(self, make_project):
        # only async handlers run on the event loop; a sync helper may
        # keep a module-level cache (other rules police those)
        project = make_project(
            {
                "gateway/app.py": """
                    CACHE = {}

                    def warm(key, value):
                        CACHE[key] = value
                """
            }
        )
        assert check_gateway_purity(project) == []


class TestBlockingSleep:
    def test_trip_time_sleep_in_handler(self, make_project):
        project = make_project(
            {
                "gateway/server.py": """
                    import time

                    async def throttle(request):
                        time.sleep(0.1)
                        return 429
                """
            }
        )
        findings = check_gateway_purity(project)
        assert rules(findings) == ["MP605"]
        assert "event loop" in findings[0].message

    def test_trip_aliased_sleep(self, make_project):
        project = make_project(
            {
                "gateway/server.py": """
                    from time import sleep

                    async def throttle(request):
                        sleep(0.1)
                """
            }
        )
        assert rules(check_gateway_purity(project)) == ["MP605"]

    def test_pass_asyncio_sleep(self, make_project):
        project = make_project(
            {
                "gateway/server.py": """
                    import asyncio

                    async def throttle(request):
                        await asyncio.sleep(0.1)
                        return 429
                """
            }
        )
        assert check_gateway_purity(project) == []

    def test_pass_sleep_in_sync_helper(self, make_project):
        project = make_project(
            {
                "gateway/client.py": """
                    import time

                    def wait_for(predicate):
                        while not predicate():
                            time.sleep(0.05)
                """
            }
        )
        assert check_gateway_purity(project) == []

    def test_other_packages_out_of_scope(self, make_project):
        project = make_project(
            {
                "runtime/worker.py": """
                    import time

                    GLOBAL = {}

                    async def handler(request):
                        GLOBAL["x"] = 1
                        time.sleep(1)
                """
            }
        )
        assert check_gateway_purity(project) == []
