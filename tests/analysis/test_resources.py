"""MP5xx executor-resource checker: trip and pass fixtures."""

from repro.analysis.checkers.resources import check_executor_resources


def rules(findings):
    return sorted(f.rule for f in findings)


class TestMP501Creation:
    def test_out_of_pool_creation_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def scratch(nbytes):
                        return SharedMemory(create=True, size=nbytes)
                """
            }
        )
        findings = check_executor_resources(project)
        assert rules(findings) == ["MP501"]
        assert "create" in findings[0].message

    def test_creation_trips_even_with_finally(self, make_project):
        # creation is the pool's exclusive privilege: a remembered
        # finally does not buy an exemption
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def scratch(nbytes):
                        shm = SharedMemory(create=True, size=nbytes)
                        try:
                            return bytes(shm.buf[:nbytes])
                        finally:
                            shm.close()
                            shm.unlink()
                """
            }
        )
        assert rules(check_executor_resources(project)) == ["MP501"]

    def test_positional_create_flag_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def scratch(name, nbytes):
                        shm = SharedMemory(name, True, nbytes)
                        try:
                            return shm.name
                        finally:
                            shm.close()
                """
            }
        )
        assert rules(check_executor_resources(project)) == ["MP501"]

    def test_buffer_pool_module_exempt(self, make_project):
        project = make_project(
            {
                "runtime/buffers.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def new_segment(nbytes):
                        return SharedMemory(create=True, size=nbytes)
                """
            }
        )
        assert check_executor_resources(project) == []


class TestMP501Attachment:
    def test_unmanaged_attachment_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def read(name):
                        shm = SharedMemory(name=name)
                        return bytes(shm.buf[:8])
                """
            }
        )
        findings = check_executor_resources(project)
        assert rules(findings) == ["MP501"]
        assert "open_block" in findings[0].message

    def test_bare_expression_attachment_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def touch(name):
                        SharedMemory(name=name)
                """
            }
        )
        assert rules(check_executor_resources(project)) == ["MP501"]

    def test_finally_released_attachment_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def read(name):
                        shm = SharedMemory(name=name)
                        try:
                            return bytes(shm.buf[:8])
                        finally:
                            shm.close()
                """
            }
        )
        assert check_executor_resources(project) == []

    def test_context_managed_attachment_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from contextlib import closing
                    from multiprocessing.shared_memory import SharedMemory

                    def read(name):
                        with closing(SharedMemory(name=name)) as shm:
                            return bytes(shm.buf[:8])
                """
            }
        )
        assert check_executor_resources(project) == []

    def test_attribute_ownership_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    class Attachment:
                        def __init__(self, name):
                            self._shm = SharedMemory(name=name)

                        def close(self):
                            self._shm.close()
                """
            }
        )
        assert check_executor_resources(project) == []

    def test_call_argument_escape_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def read(name, sink):
                        return sink(SharedMemory(name=name))
                """
            }
        )
        assert check_executor_resources(project) == []

    def test_unrelated_constructor_ignored(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    class SharedState:
                        pass

                    def build():
                        return SharedState()
                """
            }
        )
        assert check_executor_resources(project) == []


class TestMP502SpillHygiene:
    def test_tupleblock_schema_literal_trips(self, make_project):
        project = make_project(
            {
                "core/restore.py": """
                    from repro.seqio.tables import read_table

                    def restore(path):
                        return read_table(
                            path, expect_schema="metaprep/tupleblock"
                        )
                """
            }
        )
        findings = check_executor_resources(project)
        assert rules(findings) == ["MP502"]
        assert "repro.runtime.spill" in findings[0].message

    def test_tupleblock_schema_name_trips(self, make_project):
        project = make_project(
            {
                "core/dump.py": """
                    from repro.runtime.spill import TUPLEBLOCK_SCHEMA
                    from repro.seqio.tables import write_table

                    def dump(path, meta, arrays):
                        return write_table(
                            path, TUPLEBLOCK_SCHEMA, meta, arrays
                        )
                """
            }
        )
        assert rules(check_executor_resources(project)) == ["MP502"]

    def test_preallocate_with_schema_positional_trips(self, make_project):
        project = make_project(
            {
                "runtime/scratch.py": """
                    from repro.seqio.tables import preallocate_table

                    def make(path, specs):
                        return preallocate_table(
                            path, "metaprep/tupleblock", {}, specs
                        )
                """
            }
        )
        assert rules(check_executor_resources(project)) == ["MP502"]

    def test_raw_open_on_spill_path_trips(self, make_project):
        project = make_project(
            {
                "core/peek.py": """
                    def peek():
                        with open("/tmp/pass0-task1.spill", "rb") as fh:
                            return fh.read(8)
                """
            }
        )
        findings = check_executor_resources(project)
        assert rules(findings) == ["MP502"]
        assert "raw open()" in findings[0].message

    def test_spill_module_itself_exempt(self, make_project):
        project = make_project(
            {
                "runtime/spill.py": """
                    from repro.seqio.tables import read_table

                    def read_spill(path):
                        meta, arrays = read_table(
                            path, expect_schema="metaprep/tupleblock"
                        )
                        with open("fixture.spill", "rb") as fh:
                            fh.read()
                        return meta, arrays
                """
            }
        )
        assert check_executor_resources(project) == []

    def test_other_schema_and_paths_pass(self, make_project):
        project = make_project(
            {
                "core/checkpoint.py": """
                    from repro.seqio.tables import read_table, write_table

                    def save(path, meta, arrays):
                        write_table(path, "metaprep/checkpoint", meta, arrays)

                    def load(path):
                        with open("notes.txt", "rb") as fh:
                            fh.read()
                        return read_table(
                            path, expect_schema="metaprep/checkpoint"
                        )
                """
            }
        )
        assert check_executor_resources(project) == []
