"""MP5xx executor-resource checker: trip and pass fixtures."""

from repro.analysis.checkers.resources import check_executor_resources


def rules(findings):
    return sorted(f.rule for f in findings)


class TestMP501Creation:
    def test_out_of_pool_creation_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def scratch(nbytes):
                        return SharedMemory(create=True, size=nbytes)
                """
            }
        )
        findings = check_executor_resources(project)
        assert rules(findings) == ["MP501"]
        assert "create" in findings[0].message

    def test_creation_trips_even_with_finally(self, make_project):
        # creation is the pool's exclusive privilege: a remembered
        # finally does not buy an exemption
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def scratch(nbytes):
                        shm = SharedMemory(create=True, size=nbytes)
                        try:
                            return bytes(shm.buf[:nbytes])
                        finally:
                            shm.close()
                            shm.unlink()
                """
            }
        )
        assert rules(check_executor_resources(project)) == ["MP501"]

    def test_positional_create_flag_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def scratch(name, nbytes):
                        shm = SharedMemory(name, True, nbytes)
                        try:
                            return shm.name
                        finally:
                            shm.close()
                """
            }
        )
        assert rules(check_executor_resources(project)) == ["MP501"]

    def test_buffer_pool_module_exempt(self, make_project):
        project = make_project(
            {
                "runtime/buffers.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def new_segment(nbytes):
                        return SharedMemory(create=True, size=nbytes)
                """
            }
        )
        assert check_executor_resources(project) == []


class TestMP501Attachment:
    def test_unmanaged_attachment_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def read(name):
                        shm = SharedMemory(name=name)
                        return bytes(shm.buf[:8])
                """
            }
        )
        findings = check_executor_resources(project)
        assert rules(findings) == ["MP501"]
        assert "open_block" in findings[0].message

    def test_bare_expression_attachment_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def touch(name):
                        SharedMemory(name=name)
                """
            }
        )
        assert rules(check_executor_resources(project)) == ["MP501"]

    def test_finally_released_attachment_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def read(name):
                        shm = SharedMemory(name=name)
                        try:
                            return bytes(shm.buf[:8])
                        finally:
                            shm.close()
                """
            }
        )
        assert check_executor_resources(project) == []

    def test_context_managed_attachment_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from contextlib import closing
                    from multiprocessing.shared_memory import SharedMemory

                    def read(name):
                        with closing(SharedMemory(name=name)) as shm:
                            return bytes(shm.buf[:8])
                """
            }
        )
        assert check_executor_resources(project) == []

    def test_attribute_ownership_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    class Attachment:
                        def __init__(self, name):
                            self._shm = SharedMemory(name=name)

                        def close(self):
                            self._shm.close()
                """
            }
        )
        assert check_executor_resources(project) == []

    def test_call_argument_escape_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from multiprocessing.shared_memory import SharedMemory

                    def read(name, sink):
                        return sink(SharedMemory(name=name))
                """
            }
        )
        assert check_executor_resources(project) == []

    def test_unrelated_constructor_ignored(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    class SharedState:
                        pass

                    def build():
                        return SharedState()
                """
            }
        )
        assert check_executor_resources(project) == []
