"""Unit tests for the per-function effect-summary engine."""

import ast
import pickle
import textwrap

from repro.analysis.dataflow import (
    ESCAPED,
    LEAKY,
    LEAKY_EXC,
    MANAGED,
    RELEASED,
    summarize_module,
)
from repro.analysis.project import SourceModule
from repro.analysis.suppress import parse_suppressions
from pathlib import Path


def module_of(source: str, pkgpath: str = "core/mod.py") -> SourceModule:
    text = textwrap.dedent(source)
    return SourceModule(
        path=Path(pkgpath),
        relpath=f"src/repro/{pkgpath}",
        pkgpath=pkgpath,
        text=text,
        tree=ast.parse(text),
        suppressions=parse_suppressions(text),
    )


def summary_of(source: str, qualname: str, **kw):
    return summarize_module(module_of(source, **kw)).functions[qualname]


def binding_of(source: str, qualname: str, name: str):
    fn = summary_of(source, qualname)
    (binding,) = [b for b in fn.bindings if b.name == name]
    return binding


class TestReleaseCoverage:
    def test_straight_line_leak(self):
        binding = binding_of(
            """
            from repro.runtime.buffers import attach_block

            def f(d):
                block = attach_block(d)
                return 1
            """,
            "f",
            "block",
        )
        assert binding.coverage == LEAKY

    def test_use_then_close_leaks_on_exception_edge(self):
        binding = binding_of(
            """
            from repro.runtime.buffers import attach_block

            def f(d):
                block = attach_block(d)
                total = int(block.lo.sum())
                block.close()
                return total
            """,
            "f",
            "block",
        )
        assert binding.coverage == LEAKY_EXC

    def test_try_finally_release_covers_both_edges(self):
        binding = binding_of(
            """
            from repro.runtime.buffers import attach_block

            def f(d):
                block = attach_block(d)
                try:
                    return int(block.lo.sum())
                finally:
                    block.close()
            """,
            "f",
            "block",
        )
        assert binding.coverage == RELEASED

    def test_pool_release_in_finally(self):
        binding = binding_of(
            """
            from repro.runtime.spill import read_spill

            def f(path, pool):
                block = read_spill(path, pool)
                try:
                    return block.hi[0]
                finally:
                    pool.release(block)
            """,
            "f",
            "block",
        )
        assert binding.coverage == RELEASED

    def test_with_statement_binding_is_managed(self):
        # the pipeline's `attach = open_block(...)` ... `with attach:` idiom
        binding = binding_of(
            """
            from repro.runtime.buffers import open_block

            def f(h):
                attach = open_block(h)
                with attach as block:
                    return int(block.lo.sum())
            """,
            "f",
            "attach",
        )
        assert binding.coverage == MANAGED

    def test_returned_binding_escapes(self):
        binding = binding_of(
            """
            from repro.runtime.spill import read_spill

            def f(path, pool):
                block = read_spill(path, pool)
                return block
            """,
            "f",
            "block",
        )
        assert binding.coverage == ESCAPED

    def test_returning_derived_value_is_not_an_escape(self):
        binding = binding_of(
            """
            from repro.runtime.spill import read_spill

            def f(path, pool):
                block = read_spill(path, pool)
                return block.hi[0]
            """,
            "f",
            "block",
        )
        assert binding.coverage in (LEAKY, LEAKY_EXC)

    def test_attribute_store_hands_ownership_off(self):
        # stored onto an owning object on the only path out: not a leak
        # (classified as released-on-every-path by the CFG walk)
        binding = binding_of(
            """
            from repro.telemetry.spool import SpoolWriter

            class Spooler:
                def start(self, path):
                    writer = SpoolWriter(path)
                    self.writer = writer
            """,
            "Spooler.start",
            "writer",
        )
        assert binding.coverage in (ESCAPED, RELEASED)

    def test_release_on_one_branch_only_leaks(self):
        binding = binding_of(
            """
            from repro.runtime.buffers import attach_block

            def f(d, flag):
                block = attach_block(d)
                if flag:
                    block.close()
                return 1
            """,
            "f",
            "block",
        )
        assert binding.coverage == LEAKY

    def test_raise_after_acquire_without_cleanup(self):
        binding = binding_of(
            """
            from repro.runtime.buffers import attach_block

            def f(d):
                block = attach_block(d)
                if block.nbytes == 0:
                    raise ValueError("empty")
                block.close()
                return 1
            """,
            "f",
            "block",
        )
        assert binding.coverage == LEAKY_EXC


class TestSummaryContent:
    def test_effects_and_calls_recorded(self):
        fn = summary_of(
            """
            import time

            _CACHE = {}

            def helper():
                return 1

            def f(x):
                _CACHE[x] = time.time()
                return helper()
            """,
            "f",
        )
        assert {e.kind for e in fn.effects} == {"global_write", "wall_clock"}
        assert any(c.callee.name == "helper" for c in fn.calls)
        assert any(ref.name == "helper" for ref in fn.return_calls)

    def test_submission_attributed_to_enclosing_function(self):
        summary = summarize_module(
            module_of(
                """
                def job(x):
                    return x

                def drive(executor, items):
                    return list(executor.map(job, items))
                """
            )
        )
        assert summary.functions["drive"].submissions
        assert summary.functions["drive"].submissions[0].callee.name == "job"
        assert not summary.functions["job"].submissions

    def test_methods_get_class_qualified_names(self):
        summary = summarize_module(
            module_of(
                """
                class Stage:
                    def run(self):
                        return self.step()

                    def step(self):
                        return 1
                """
            )
        )
        assert set(summary.functions) == {"Stage.run", "Stage.step"}
        (call,) = summary.functions["Stage.run"].calls
        assert call.callee.kind == "self"
        assert call.callee.name == "step"

    def test_summary_is_picklable(self):
        # the process-pool runner ships summaries between processes
        summary = summarize_module(
            module_of(
                """
                from repro.runtime.buffers import attach_block

                def f(d):
                    block = attach_block(d)
                    return 1
                """
            )
        )
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.functions["f"].bindings == summary.functions["f"].bindings
