"""MP3xx executor-payload purity checker: trip and pass fixtures."""

from repro.analysis.checkers.purity import check_executor_purity


def rules(findings):
    return sorted(f.rule for f in findings)


class TestMP301Submissions:
    def test_lambda_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    def run(executor, jobs):
                        return executor.map(lambda job: job + 1, jobs)
                """
            }
        )
        findings = check_executor_purity(project)
        assert rules(findings) == ["MP301"]
        assert "lambda" in findings[0].message

    def test_nested_function_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    def run(executor, jobs):
                        def work(job):
                            return job + 1
                        return executor.map(work, jobs)
                """
            }
        )
        findings = check_executor_purity(project)
        assert rules(findings) == ["MP301"]
        assert "nested function" in findings[0].message

    def test_bound_method_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    class Driver:
                        def work(self, job):
                            return job + 1

                        def run(self, executor, jobs):
                            return executor.map(self.work, jobs)
                """
            }
        )
        assert rules(check_executor_purity(project)) == ["MP301"]

    def test_module_level_lambda_assignment_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    work = lambda job: job + 1

                    def run(executor, jobs):
                        return executor.map(work, jobs)
                """
            }
        )
        findings = check_executor_purity(project)
        assert rules(findings) == ["MP301"]
        assert "module-level lambda" in findings[0].message

    def test_module_level_function_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    def work(job):
                        return job + 1

                    def run(executor, jobs):
                        return executor.map(work, jobs)
                """
            }
        )
        assert check_executor_purity(project) == []

    def test_partial_of_module_function_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from functools import partial

                    def work(scale, job):
                        return job * scale

                    def run(executor, jobs):
                        return executor.map(partial(work, 2), jobs)
                """
            }
        )
        assert check_executor_purity(project) == []

    def test_partial_of_lambda_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from functools import partial

                    def run(executor, jobs):
                        return executor.map(partial(lambda s, j: j * s, 2), jobs)
                """
            }
        )
        assert rules(check_executor_purity(project)) == ["MP301"]


class TestReceiverInference:
    def test_annotated_parameter_is_executor(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    def run(backend: "ExecutionBackend", jobs):
                        return backend.map(lambda j: j, jobs)
                """
            }
        )
        assert rules(check_executor_purity(project)) == ["MP301"]

    def test_create_executor_assignment_is_executor(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    from repro.runtime.executor import create_executor

                    def run(jobs):
                        pool = create_executor("process")
                        return pool.map(lambda j: j, jobs)
                """
            }
        )
        assert rules(check_executor_purity(project)) == ["MP301"]

    def test_unrelated_map_receiver_ignored(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    def run(pool, jobs):
                        return pool.map(lambda j: j, jobs)
                """
            }
        )
        assert check_executor_purity(project) == []

    def test_backend_implementation_module_exempt(self, make_project):
        project = make_project(
            {
                "runtime/executor.py": """
                    class ProcessExecutor:
                        def map(self, fn, jobs):
                            with self._pool() as pool:
                                return pool.map(lambda j: fn(j), jobs)
                """
            }
        )
        assert check_executor_purity(project) == []


class TestMP302GlobalWrites:
    def test_global_statement_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    _COUNT = 0

                    def work(job):
                        global _COUNT
                        _COUNT += 1
                        return job

                    def run(executor, jobs):
                        return executor.map(work, jobs)
                """
            }
        )
        findings = check_executor_purity(project)
        assert "MP302" in rules(findings)
        assert any("_COUNT" in f.message for f in findings)

    def test_module_container_mutation_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    _CACHE = {}

                    def work(job):
                        _CACHE[job] = True
                        return job

                    def run(executor, jobs):
                        return executor.map(work, jobs)
                """
            }
        )
        assert rules(check_executor_purity(project)) == ["MP302"]

    def test_mutator_call_on_module_list_trips(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    _SEEN = []

                    def work(job):
                        _SEEN.append(job)
                        return job

                    def run(executor, jobs):
                        return executor.map(work, jobs)
                """
            }
        )
        assert rules(check_executor_purity(project)) == ["MP302"]

    def test_local_state_passes(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    def work(job):
                        cache = {}
                        cache[job] = True
                        out = []
                        out.append(job)
                        return out

                    def run(executor, jobs):
                        return executor.map(work, jobs)
                """
            }
        )
        assert check_executor_purity(project) == []

    def test_unsubmitted_function_may_write_globals(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    _CACHE = {}

                    def warm(key):
                        _CACHE[key] = True

                    def work(job):
                        return job

                    def run(executor, jobs):
                        return executor.map(work, jobs)
                """
            }
        )
        assert check_executor_purity(project) == []
