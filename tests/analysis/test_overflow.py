"""MP401 k-mer shift-overflow checker: trip and pass fixtures."""

from repro.analysis.checkers.overflow import check_kmer_overflow


def rules(findings):
    return sorted(f.rule for f in findings)


class TestTrips:
    def test_unguarded_shift_by_k_trips(self, make_project):
        project = make_project(
            {
                "kmers/pack.py": """
                    import numpy as np

                    def mask(k):
                        return np.uint64(1 << (2 * k))
                """
            }
        )
        findings = check_kmer_overflow(project)
        assert rules(findings) == ["MP401"]
        assert "64-bit limb" in findings[0].message

    def test_unguarded_power_of_four_trips(self, make_project):
        project = make_project(
            {
                "sort/ranges.py": """
                    def n_bins(k):
                        return 4 ** k
                """
            }
        )
        assert rules(check_kmer_overflow(project)) == ["MP401"]

    def test_attribute_k_in_shift_amount_trips(self, make_project):
        project = make_project(
            {
                "index/plan.py": """
                    def span(cfg, x):
                        return x << (2 * cfg.k)
                """
            }
        )
        assert rules(check_kmer_overflow(project)) == ["MP401"]


class TestGuards:
    def test_check_in_range_guard_passes(self, make_project):
        project = make_project(
            {
                "kmers/pack.py": """
                    from repro.util.validation import check_in_range

                    def mask(k):
                        check_in_range("k", k, 1, 31)
                        return 1 << (2 * k)
                """
            }
        )
        assert check_kmer_overflow(project) == []

    def test_max_k_constant_guard_passes(self, make_project):
        project = make_project(
            {
                "kmers/pack.py": """
                    from repro.kmers.codec import MAX_K_ONE_LIMB
                    from repro.util.validation import check_in_range

                    def mask(k):
                        check_in_range("k", k, 1, MAX_K_ONE_LIMB)
                        return 1 << (2 * k)
                """
            }
        )
        assert check_kmer_overflow(project) == []

    def test_comparison_guard_passes(self, make_project):
        project = make_project(
            {
                "kmers/pack.py": """
                    def mask(k):
                        if k > 31:
                            raise ValueError("two-limb path required")
                        return 1 << (2 * k)
                """
            }
        )
        assert check_kmer_overflow(project) == []

    def test_two_limb_reference_passes(self, make_project):
        project = make_project(
            {
                "kmers/codec.py": """
                    class Codec:
                        def mask(self, k, x):
                            if self.two_limb:
                                return self._mask_two_limb(x)
                            return x << (2 * k)
                """
            }
        )
        assert check_kmer_overflow(project) == []

    def test_class_level_guard_covers_methods(self, make_project):
        project = make_project(
            {
                "kmers/codec.py": """
                    class Codec:
                        def __init__(self, k):
                            if k > 31:
                                raise ValueError("one limb only")
                            self.k = k

                        def mask(self, x):
                            return x << (2 * self.k)
                """
            }
        )
        assert check_kmer_overflow(project) == []


class TestExemptions:
    def test_python_int_operand_exempt(self, make_project):
        project = make_project(
            {
                "assembly/unitigs.py": """
                    def decode(value: int, k1: int):
                        return value >> (2 * (k1 - 1))
                """
            }
        )
        assert check_kmer_overflow(project) == []

    def test_int_conversion_operand_exempt(self, make_project):
        project = make_project(
            {
                "assembly/unitigs.py": """
                    def decode(value, k1):
                        return int(value) >> (2 * (k1 - 1))
                """
            }
        )
        assert check_kmer_overflow(project) == []

    def test_module_outside_numeric_scope_ignored(self, make_project):
        project = make_project(
            {
                "service/store.py": """
                    def mask(k):
                        return 1 << (2 * k)
                """
            }
        )
        assert check_kmer_overflow(project) == []

    def test_shift_without_k_ignored(self, make_project):
        project = make_project(
            {
                "sort/radix.py": """
                    def digit(x, shift):
                        return (x >> shift) & 0xFF
                """
            }
        )
        assert check_kmer_overflow(project) == []
