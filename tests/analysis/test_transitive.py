"""Transitive MP2xx/MP3xx — call-graph upgrades of the direct scans."""

from repro.analysis.checkers.determinism import check_determinism
from repro.analysis.checkers.purity import check_executor_purity


def rules(findings):
    return sorted(f.rule for f in findings)


class TestTransitiveGlobalWrites:
    def test_trip_helper_writes_global(self, make_project):
        # the job function itself is clean; only the helper it calls
        # writes module state — invisible to any per-site scan
        project = make_project(
            {
                "core/pipeline.py": """
                    _COUNTER = {}

                    def _helper_bump(key):
                        _COUNTER[key] = _COUNTER.get(key, 0) + 1

                    def _sab_job(x):
                        _helper_bump("jobs")
                        return x * 2

                    def _sab_drive(executor, jobs):
                        return list(executor.map(_sab_job, jobs))
                """
            }
        )
        findings = check_executor_purity(project)
        assert rules(findings) == ["MP302"]
        assert "_sab_job -> _helper_bump" in findings[0].message
        assert "transitively" in findings[0].message

    def test_trip_two_hops_deep(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    _STATE = []

                    def _leaf():
                        _STATE.append(1)

                    def _mid():
                        _leaf()

                    def _job(x):
                        _mid()
                        return x

                    def drive(executor, jobs):
                        return list(executor.map(_job, jobs))
                """
            }
        )
        findings = check_executor_purity(project)
        assert rules(findings) == ["MP302"]
        assert "_job -> _mid -> _leaf" in findings[0].message

    def test_trip_helper_in_another_module(self, make_project):
        project = make_project(
            {
                "util/ledger.py": """
                    _LEDGER = {}

                    def note(key):
                        _LEDGER[key] = True
                """,
                "core/pipeline.py": """
                    from repro.util.ledger import note

                    def _job(x):
                        note("x")
                        return x

                    def drive(executor, jobs):
                        return list(executor.map(_job, jobs))
                """,
            }
        )
        findings = check_executor_purity(project)
        assert rules(findings) == ["MP302"]
        assert findings[0].path == "src/repro/core/pipeline.py"

    def test_pass_pure_helpers(self, make_project):
        project = make_project(
            {
                "core/pipeline.py": """
                    def _helper(x):
                        return x * 2

                    def _job(x):
                        return _helper(x)

                    def drive(executor, jobs):
                        return list(executor.map(_job, jobs))
                """
            }
        )
        assert check_executor_purity(project) == []

    def test_pass_thread_local_carrier(self, make_project):
        # threading.local is the sanctioned shared-state pattern, not a
        # module-global hazard
        project = make_project(
            {
                "core/pipeline.py": """
                    import threading

                    _LOCAL = threading.local()

                    def _helper():
                        _LOCAL.count = getattr(_LOCAL, "count", 0) + 1

                    def _job(x):
                        _helper()
                        return x

                    def drive(executor, jobs):
                        return list(executor.map(_job, jobs))
                """
            }
        )
        assert check_executor_purity(project) == []

    def test_direct_write_not_double_reported(self, make_project):
        # a job whose own body writes a global is flagged once (by the
        # direct scan), not a second time by the transitive pass
        project = make_project(
            {
                "core/pipeline.py": """
                    _CACHE = {}

                    def _job(x):
                        _CACHE[x] = x
                        return x

                    def drive(executor, jobs):
                        return list(executor.map(_job, jobs))
                """
            }
        )
        findings = check_executor_purity(project)
        assert rules(findings) == ["MP302"]


class TestTransitiveWallClock:
    def test_trip_out_of_scope_helper(self, make_project):
        # util/ is outside the MP201 scopes, so the direct scan cannot
        # see the wall-clock read a core/ function pulls in
        project = make_project(
            {
                "util/stamp.py": """
                    import time

                    def stamp():
                        return time.time()
                """,
                "core/emit.py": """
                    from repro.util.stamp import stamp

                    def emit(record):
                        record["at"] = stamp()
                        return record
                """,
            }
        )
        findings = check_determinism(project)
        assert rules(findings) == ["MP201"]
        assert findings[0].path == "src/repro/core/emit.py"
        assert "via stamp" in findings[0].message

    def test_pass_monotonic_helper(self, make_project):
        project = make_project(
            {
                "util/stamp.py": """
                    import time

                    def elapsed(start):
                        return time.perf_counter() - start
                """,
                "core/emit.py": """
                    from repro.util.stamp import elapsed

                    def emit(record, start):
                        record["elapsed"] = elapsed(start)
                        return record
                """,
            }
        )
        assert check_determinism(project) == []

    def test_in_scope_source_not_double_reported(self, make_project):
        # a wall-clock read inside the scopes is the direct scan's
        # finding; the transitive pass must not add a second one for
        # the in-scope caller of an in-scope function
        project = make_project(
            {
                "core/clocky.py": """
                    import time

                    def now():
                        return time.time()
                """,
                "core/emit.py": """
                    from repro.core.clocky import now

                    def emit(record):
                        record["at"] = now()
                        return record
                """,
            }
        )
        findings = check_determinism(project)
        assert rules(findings) == ["MP201"]
        assert findings[0].path == "src/repro/core/clocky.py"
