import numpy as np

from repro.baselines.ap_lb import APLBPartitioner, shiloach_vishkin


class TestShiloachVishkin:
    def test_matches_networkx(self, rng):
        import networkx as nx

        n = 80
        edges = rng.integers(0, n, size=(150, 2))
        labels, iters = shiloach_vishkin(n, edges[:, 0], edges[:, 1])
        g = nx.Graph()
        g.add_nodes_from(range(n))
        g.add_edges_from(map(tuple, edges))
        ref = {frozenset(c) for c in nx.connected_components(g)}
        got = {}
        for v in range(n):
            got.setdefault(int(labels[v]), set()).add(v)
        assert {frozenset(c) for c in got.values()} == ref
        assert iters >= 1

    def test_labels_are_component_minima(self):
        labels, _ = shiloach_vishkin(5, np.array([1, 3]), np.array([2, 4]))
        assert labels.tolist() == [0, 1, 1, 3, 3]

    def test_no_edges_identity(self):
        labels, iters = shiloach_vishkin(4, np.array([]), np.array([]))
        assert labels.tolist() == [0, 1, 2, 3]

    def test_long_chain_needs_multiple_iterations(self):
        """A path graph forces the O(log n) SV iteration behaviour the
        paper's Table 4 counts (19-21 on real data)."""
        n = 1024
        us = np.arange(n - 1)
        vs = np.arange(1, n)
        labels, iters = shiloach_vishkin(n, us, vs)
        assert (labels == 0).all()
        assert iters >= 2

    def test_iterations_grow_with_chain_length(self):
        def iters_for(n):
            us = np.arange(n - 1)
            return shiloach_vishkin(n, us, np.arange(1, n))[1]

        assert iters_for(4096) >= iters_for(16)


class TestAPLBPartitioner:
    def test_matches_pipeline_partition(self, tiny_hg_batch):
        from repro.cc.components import reference_components_networkx

        result = APLBPartitioner(27).partition(tiny_hg_batch)
        ref = reference_components_networkx(tiny_hg_batch, 27)
        got = {}
        for rid in np.unique(tiny_hg_batch.read_ids):
            got.setdefault(int(result.labels[rid]), set()).add(int(rid))
        got_sets = sorted(
            (frozenset(s) for s in got.values()), key=lambda c: (-len(c), min(c))
        )
        assert got_sets == ref

    def test_accounting(self, tiny_hg_batch):
        result = APLBPartitioner(27).partition(tiny_hg_batch)
        assert result.n_tuples > 0
        assert result.n_edges > 0
        assert result.seconds > 0
        assert result.communication_rounds == result.sv_iterations

    def test_sv_rounds_exceed_mergecc_rounds(self, tiny_hg_batch):
        """Table 4's mechanism: SV needs more global rounds than the
        log2(P) tree merge for any realistic P."""
        import math

        result = APLBPartitioner(27).partition(tiny_hg_batch)
        mergecc_rounds_16_nodes = math.ceil(math.log2(16))
        assert result.sv_iterations >= 2
        # on paper-scale data SV took 19-21 rounds vs 4; at our scale the
        # gap narrows but the ordering must hold for >= 2 iterations
        assert result.sv_iterations >= 2
