import numpy as np
import pytest

from repro.baselines.kmc2 import Kmc2Counter
from repro.kmers.counter import count_canonical_kmers
from repro.seqio.records import ReadBatch


@pytest.fixture()
def batches(rng):
    from tests.conftest import random_reads

    return [
        ReadBatch.from_sequences(random_reads(rng, 12, 45, n_prob=0.01))
        for _ in range(3)
    ]


class TestCounting:
    @pytest.mark.parametrize("k,m", [(9, 4), (15, 5), (21, 7)])
    def test_matches_direct_counting(self, batches, k, m):
        direct = count_canonical_kmers(ReadBatch.concatenate(batches), k)
        result = Kmc2Counter(k, m=m, n_bins=32).count(batches)
        assert np.array_equal(result.spectrum.kmers.lo, direct.kmers.lo)
        assert np.array_equal(result.spectrum.counts, direct.counts)

    def test_bin_count_invariance(self, batches):
        k, m = 11, 4
        a = Kmc2Counter(k, m, n_bins=8).count(batches)
        b = Kmc2Counter(k, m, n_bins=128).count(batches)
        assert np.array_equal(a.spectrum.kmers.lo, b.spectrum.kmers.lo)
        assert np.array_equal(a.spectrum.counts, b.spectrum.counts)

    def test_empty_input(self):
        result = Kmc2Counter(9, 4).count([ReadBatch.empty()])
        assert result.spectrum.n_distinct == 0
        assert result.n_super_kmers == 0


class TestStageAccounting:
    def test_all_kmers_covered(self, batches):
        k, m = 11, 4
        result = Kmc2Counter(k, m, n_bins=32).count(batches)
        direct_total = sum(
            count_canonical_kmers(b, k).total for b in batches
        )
        assert result.n_kmers == direct_total
        assert result.spectrum.total == direct_total

    def test_super_kmer_compaction(self, batches):
        """KMC 2's point: super-k-mer bases << raw 12-byte tuples."""
        result = Kmc2Counter(15, 5, n_bins=32).count(batches)
        assert 0 < result.compaction_ratio < 1.0
        assert result.super_kmer_bases < 12 * result.n_kmers

    def test_bin_records_sum(self, batches):
        result = Kmc2Counter(11, 4, n_bins=16).count(batches)
        assert sum(result.bin_record_counts) == result.n_kmers

    def test_stage_times_recorded(self, batches):
        result = Kmc2Counter(11, 4).count(batches)
        assert result.stage1_seconds >= 0
        assert result.stage2_seconds >= 0
        assert result.total_seconds == pytest.approx(
            result.stage1_seconds + result.stage2_seconds
        )
