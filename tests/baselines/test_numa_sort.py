import numpy as np

from repro.baselines.numa_sort import comparator_sort_tuples, sort_throughput
from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.sort.radix import radix_sort_tuples
from repro.sort.validate import verify_sort


def make_tuples(rng, n, k=27):
    lo = rng.integers(0, 1 << (2 * k), size=n, dtype=np.uint64)
    ids = rng.integers(0, n, size=n, dtype=np.uint32)
    return KmerTuples(KmerArray(k, lo), ids)


class TestComparatorSort:
    def test_sorted_permutation(self, rng):
        tuples = make_tuples(rng, 3000)
        out = comparator_sort_tuples(tuples)
        verify_sort(tuples, out)

    def test_matches_radix_sort(self, rng):
        tuples = make_tuples(rng, 2000)
        a = comparator_sort_tuples(tuples)
        b, _ = radix_sort_tuples(tuples)
        assert np.array_equal(a.kmers.lo, b.kmers.lo)
        assert np.array_equal(a.read_ids, b.read_ids)

    def test_two_limb_fallback(self, rng):
        lo = rng.integers(0, 2**63, size=500, dtype=np.uint64)
        hi = rng.integers(0, 2**20, size=500, dtype=np.uint64)
        tuples = KmerTuples(
            KmerArray(45, lo, hi), rng.integers(0, 500, 500, dtype=np.uint32)
        )
        out = comparator_sort_tuples(tuples)
        verify_sort(tuples, out)

    def test_empty_and_single(self):
        empty = KmerTuples.empty(27)
        assert len(comparator_sort_tuples(empty)) == 0


class TestThroughput:
    def test_positive(self, rng):
        tuples = make_tuples(rng, 10_000)
        rate = sort_throughput(comparator_sort_tuples, tuples, repeats=2)
        assert rate > 0

    def test_empty_zero(self):
        assert sort_throughput(comparator_sort_tuples, KmerTuples.empty(27)) == 0.0

    def test_radix_within_expected_band_of_comparator(self, rng):
        """Section 4.2.2: the paper's radix sort reaches 78% of the tuned
        comparator.  In this substrate both sorts bottom out in NumPy
        kernels; assert our radix sort is within a sane band (not 10x off)
        rather than the exact ratio."""
        tuples = make_tuples(rng, 200_000)
        r_radix = sort_throughput(
            lambda t: radix_sort_tuples(t)[0], tuples, repeats=2
        )
        r_cmp = sort_throughput(comparator_sort_tuples, tuples, repeats=2)
        assert 0.05 < r_radix / r_cmp < 20
