import numpy as np
import pytest

from repro.assembly.graph import (
    _revcomp_u64,
    build_debruijn_graph,
    graph_from_spectrum,
)
from repro.kmers.codec import KmerCodec
from repro.kmers.counter import count_canonical_kmers
from repro.seqio.alphabet import reverse_complement
from repro.seqio.records import ReadBatch


class TestRevcompU64:
    @pytest.mark.parametrize("k", [3, 5, 15, 31])
    def test_matches_codec(self, rng, k):
        codec = KmerCodec(k)
        kmers = rng.integers(0, 1 << (2 * k), size=20, dtype=np.uint64)
        rc = _revcomp_u64(kmers, k)
        for v, r in zip(kmers, rc):
            assert codec.decode(0, int(r)) == reverse_complement(
                codec.decode(0, int(v))
            )


class TestBuildGraph:
    def test_single_read_linear_path(self):
        batch = ReadBatch.from_sequences(["ACGTTGCAGT"])
        g = build_debruijn_graph(batch, k=5, min_count=1)
        # 6 distinct 5-mers (both strands) -> 12 edges, nodes are 4-mers
        assert g.n_edges == 12
        out_deg = g.out_degree()
        in_deg = g.in_degree()
        assert out_deg.sum() == g.n_edges
        assert in_deg.sum() == g.n_edges

    def test_min_count_prunes(self):
        batch = ReadBatch.from_sequences(["ACGTTGCA", "ACGTTGCA", "GGATCCAA"])
        g2 = build_debruijn_graph(batch, k=5, min_count=2)
        g1 = build_debruijn_graph(batch, k=5, min_count=1)
        assert g2.n_edges < g1.n_edges

    def test_strand_symmetry(self):
        seq = "ACGTTGCAGTAC"
        g_fwd = build_debruijn_graph(ReadBatch.from_sequences([seq]), 5, 1)
        g_rev = build_debruijn_graph(
            ReadBatch.from_sequences([reverse_complement(seq)]), 5, 1
        )
        assert g_fwd.n_edges == g_rev.n_edges
        assert np.array_equal(g_fwd.nodes, g_rev.nodes)

    def test_edges_consistent_with_spectrum(self):
        batch = ReadBatch.from_sequences(["ACGTACGTTT"])
        spectrum = count_canonical_kmers(batch, 5)
        g = graph_from_spectrum(spectrum, 5, min_count=1)
        # each solid non-palindromic k-mer contributes 2 directed edges
        solid = int((spectrum.counts >= 1).sum())
        assert g.n_edges == 2 * solid

    def test_palindromes_single_edge(self):
        # ACGT revcomp = ACGT (even k palindrome): one directed edge only
        batch = ReadBatch.from_sequences(["AACGTA"])
        g = build_debruijn_graph(batch, k=4, min_count=1)
        codec = KmerCodec(4)
        # verify by checking total edges: kmers AACG, ACGT(palindrome), CGTA
        # AACG/CGTT pair -> 2, ACGT -> 1, CGTA/TACG -> 2
        assert g.n_edges == 5

    def test_k_limit_enforced(self):
        batch = ReadBatch.from_sequences(["ACGT" * 20])
        with pytest.raises(ValueError):
            build_debruijn_graph(batch, k=33)

    def test_node_index_lookup(self):
        batch = ReadBatch.from_sequences(["ACGTAC"])
        g = build_debruijn_graph(batch, k=5, min_count=1)
        codec = KmerCodec(4)
        _, acgt = codec.encode("ACGT")
        idx = g.node_index(acgt)
        assert g.nodes[idx] == np.uint64(acgt)
        with pytest.raises(KeyError):
            g.node_index((1 << 8) - 1)  # TTTT's code only if present
