import pytest

from repro.assembly.stats import combine_stats, contig_stats, n_statistic


class TestNStatistic:
    def test_known_n50(self):
        assert n_statistic([10, 8, 6, 4, 2], 0.5) == 8

    def test_single_contig(self):
        assert n_statistic([100], 0.5) == 100

    def test_n90_smaller_than_n50(self):
        lengths = [50, 40, 30, 20, 10, 5, 5, 5]
        assert n_statistic(lengths, 0.9) <= n_statistic(lengths, 0.5)

    def test_all_equal(self):
        assert n_statistic([7, 7, 7, 7], 0.5) == 7

    def test_empty(self):
        assert n_statistic([], 0.5) == 0

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            n_statistic([1], 0.0)
        with pytest.raises(ValueError):
            n_statistic([1], 1.5)

    def test_exactly_half_boundary(self):
        # total 20, target 10: cumulative [10, 20] -> first >= 10 is index 0
        assert n_statistic([10, 10], 0.5) == 10


class TestContigStats:
    def test_basic(self):
        contigs = ["A" * 100, "C" * 50, "G" * 50]
        s = contig_stats(contigs)
        assert s.n_contigs == 3
        assert s.total_bp == 200
        assert s.max_bp == 100
        assert s.n50 == 100
        assert s.mean_bp == pytest.approx(200 / 3)
        assert s.total_mbp == pytest.approx(0.0002)

    def test_empty(self):
        s = contig_stats([])
        assert s.n_contigs == 0
        assert s.n50 == 0

    def test_as_row(self):
        row = contig_stats(["A" * 10]).as_row()
        assert row[0] == 1
        assert row[2] == 10


class TestCombineStats:
    def test_totals_add(self):
        a = contig_stats(["A" * 100])
        b = contig_stats(["C" * 60, "G" * 40])
        c = combine_stats([a, b])
        assert c.n_contigs == 3
        assert c.total_bp == 200
        assert c.max_bp == 100
