
from repro.assembly.graph import build_debruijn_graph
from repro.assembly.unitigs import extract_unitigs
from repro.kmers.counter import count_canonical_kmers
from repro.seqio.alphabet import reverse_complement
from repro.seqio.records import ReadBatch
from repro.util.rng import rng_for


def assemble(seqs, k=5, min_count=1, min_length=0):
    g = build_debruijn_graph(ReadBatch.from_sequences(seqs), k, min_count)
    return extract_unitigs(g, min_length=min_length)


class TestLinearPaths:
    def test_single_read_reconstructed(self):
        seq = "ACGTTGCAGTACCA"
        contigs = assemble([seq], k=6)
        assert len(contigs) == 1
        assert contigs[0] in (seq, reverse_complement(seq))

    def test_overlapping_reads_merge(self):
        genome = "ACGTTGCAGTACCAGGTCAA"
        reads = [genome[i : i + 10] for i in range(0, 11, 2)]
        contigs = assemble(reads, k=8)
        assert len(contigs) == 1
        assert contigs[0] in (genome, reverse_complement(genome))

    def test_two_separate_genomes_two_contigs(self):
        a = "ACGTTGCAGTAC"
        b = "GGATCCTTAGGC"
        contigs = assemble([a, b], k=8)
        assert len(contigs) == 2
        got = {min(c, reverse_complement(c)) for c in contigs}
        assert got == {
            min(a, reverse_complement(a)),
            min(b, reverse_complement(b)),
        }

    def test_rc_duplicates_collapsed(self):
        seq = "ACGTTGCAGTAC"
        contigs = assemble([seq, reverse_complement(seq)], k=6)
        assert len(contigs) == 1


class TestBranching:
    def test_branch_splits_contigs(self):
        # two sequences sharing a middle segment: X-M-Y1 and X'-M-Y2 is
        # complex; use simple SNP bubble instead
        a = "ACGTTGCAGTACCA"
        b = "ACGTTGGAGTACCA"  # one substitution in the middle
        contigs = assemble([a, b], k=6)
        # bubble: shared prefix, two middles, shared suffix -> >= 3 contigs
        assert len(contigs) >= 3
        total = sum(len(c) for c in contigs)
        assert total >= len(a)

    def test_every_contig_is_a_genome_walk(self):
        """Each contig's k-mers must come from the solid k-mer set."""
        rng = rng_for(77, "unitig")
        genome = "".join(rng.choice(list("ACGT"), size=300))
        reads = [genome[i : i + 40] for i in range(0, 260, 7)]
        k = 16
        contigs = assemble(reads, k=k)
        spectrum = count_canonical_kmers(
            ReadBatch.from_sequences(reads), k
        )
        solid_batch = ReadBatch.from_sequences(contigs)
        contig_spec = count_canonical_kmers(solid_batch, k)
        # every contig k-mer must exist in the read spectrum
        reads_set = set(spectrum.kmers.lo.tolist())
        assert set(contig_spec.kmers.lo.tolist()) <= reads_set

    def test_kmers_covered_exactly_once(self):
        """Unitig compaction is a partition of the solid k-mers: no k-mer
        appears in two contigs (after RC dedup)."""
        rng = rng_for(78, "unitig")
        genome = "".join(rng.choice(list("ACGT"), size=200))
        reads = [genome[i : i + 30] for i in range(0, 170, 5)]
        k = 12
        contigs = assemble(reads, k=k)
        contig_spec = count_canonical_kmers(
            ReadBatch.from_sequences(contigs), k
        )
        assert contig_spec.counts.max() <= 2  # palindromic ends may double

    def test_cycle_handled(self):
        # circular sequence: every node through -> pure cycle walk
        cycle = "ACGTTGCA"
        wrapped = cycle + cycle[:4]
        contigs = assemble([wrapped], k=6)
        assert len(contigs) >= 1

    def test_min_length_filter(self):
        contigs_all = assemble(["ACGTTGCAGT"], k=6, min_length=0)
        contigs_none = assemble(["ACGTTGCAGT"], k=6, min_length=100)
        assert contigs_all
        assert contigs_none == []

    def test_read_order_invariance(self):
        rng = rng_for(79, "unitig")
        genome = "".join(rng.choice(list("ACGT"), size=150))
        reads = [genome[i : i + 25] for i in range(0, 120, 4)]
        a = assemble(reads, k=10)
        b = assemble(list(reversed(reads)), k=10)
        assert a == b

    def test_empty_graph(self):
        contigs = assemble(["ACG"], k=6)
        assert contigs == []

    def test_deterministic_ordering(self):
        contigs = assemble(["ACGTTGCAGTAC", "GGATCCTTAGGC"], k=8)
        assert contigs == sorted(contigs, key=lambda s: (-len(s), s))
