import pytest

from repro.assembly.assembler import (
    AssemblyConfig,
    MiniAssembler,
    assemble_reads,
)
from repro.seqio.alphabet import reverse_complement
from repro.seqio.records import ReadBatch
from repro.util.rng import rng_for


def simulate_reads(genome, read_len=40, step=5):
    return [genome[i : i + read_len] for i in range(0, len(genome) - read_len + 1, step)]


@pytest.fixture(scope="module")
def genome():
    rng = rng_for(55, "assembler-genome")
    return "".join(rng.choice(list("ACGT"), size=600))


class TestAssembleReads:
    def test_high_coverage_recovers_genome(self, genome):
        reads = simulate_reads(genome)
        batch = ReadBatch.from_sequences(reads * 2)  # coverage for min_count=2
        result = assemble_reads(batch, k=20, min_count=2, min_contig_length=63)
        assert result.stats.n_contigs == 1
        contig = result.contigs[0]
        assert contig in (genome, reverse_complement(genome))
        assert result.stats.max_bp == len(genome)

    def test_min_count_removes_error_kmers(self, genome):
        reads = simulate_reads(genome) * 2
        # inject a read with an error in the middle
        bad = genome[100:140]
        bad = bad[:20] + ("A" if bad[20] != "A" else "C") + bad[21:]
        batch = ReadBatch.from_sequences(reads + [bad])
        result = assemble_reads(batch, k=20, min_count=2, min_contig_length=63)
        assert result.stats.n_contigs == 1  # the error k-mers are pruned

    def test_no_filter_error_breaks_assembly(self, genome):
        reads = simulate_reads(genome) * 2
        bad = genome[100:140]
        bad = bad[:20] + ("A" if bad[20] != "A" else "C") + bad[21:]
        batch = ReadBatch.from_sequences(reads + [bad])
        dirty = assemble_reads(batch, k=20, min_count=1, min_contig_length=0)
        clean = assemble_reads(batch, k=20, min_count=2, min_contig_length=0)
        assert dirty.stats.n_contigs > clean.stats.n_contigs

    def test_runtime_grows_with_input(self, genome):
        small = ReadBatch.from_sequences(simulate_reads(genome)[:20] * 2)
        big = ReadBatch.from_sequences(simulate_reads(genome) * 8)
        rs = assemble_reads(small, k=16)
        rb = assemble_reads(big, k=16)
        assert rb.n_reads > rs.n_reads
        assert rb.seconds >= 0 and rs.seconds >= 0

    def test_empty_input(self):
        result = assemble_reads(ReadBatch.from_sequences(["ACG"]), k=16)
        assert result.contigs == []
        assert result.stats.n_contigs == 0


class TestAssembleFiles:
    def test_from_fastq(self, genome, tmp_path):
        from repro.seqio.fastq import write_fastq
        from repro.seqio.records import FastqRecord

        reads = simulate_reads(genome) * 2
        path = tmp_path / "reads.fastq"
        write_fastq(
            path,
            [FastqRecord(f"r{i}", s, "I" * len(s)) for i, s in enumerate(reads)],
        )
        result = MiniAssembler(AssemblyConfig(k=20)).assemble_files([str(path)])
        assert result.stats.n_contigs == 1

    def test_empty_file_list_result(self, tmp_path):
        p = tmp_path / "empty.fastq"
        p.write_text("")
        result = MiniAssembler().assemble_files([str(p)])
        assert result.empty


class TestMultiK:
    def test_multi_k_runs_rounds(self, genome):
        reads = simulate_reads(genome, read_len=40, step=3) * 2
        batch = ReadBatch.from_sequences(reads)
        cfg = AssemblyConfig(k=20, k_list=(14, 20), min_contig_length=63)
        result = MiniAssembler(cfg).assemble_batch(batch)
        assert len(result.rounds) == 2
        assert result.stats.n_contigs >= 1

    def test_multi_k_no_worse_than_final_k(self, genome):
        """Feeding round-1 contigs forward cannot lose covered bases."""
        reads = simulate_reads(genome, read_len=35, step=6) * 2
        batch = ReadBatch.from_sequences(reads)
        single = MiniAssembler(AssemblyConfig(k=20, min_contig_length=0)).assemble_batch(batch)
        multi = MiniAssembler(
            AssemblyConfig(k=20, k_list=(14, 20), min_contig_length=0)
        ).assemble_batch(batch)
        assert multi.stats.total_bp >= 0.9 * single.stats.total_bp

    def test_k_list_must_increase(self):
        with pytest.raises(ValueError):
            AssemblyConfig(k_list=(20, 14))


class TestConfigValidation:
    def test_k_bounds(self):
        with pytest.raises(ValueError):
            AssemblyConfig(k=33)

    def test_min_count_positive(self):
        with pytest.raises(ValueError):
            AssemblyConfig(min_count=0)
