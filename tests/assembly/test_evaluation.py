import pytest

from repro.assembly.evaluation import AssemblyEvaluator, evaluate_against_community
from repro.seqio.alphabet import reverse_complement
from repro.util.rng import rng_for


@pytest.fixture()
def references():
    rng = rng_for(141, "evaluation")
    a = "".join(rng.choice(list("ACGT"), size=400))
    b = "".join(rng.choice(list("ACGT"), size=300))
    return [("genomeA", a), ("genomeB", b)]


class TestClassification:
    def test_exact_contig_correct(self, references):
        ev = AssemblyEvaluator(references, k=15)
        a = references[0][1]
        report = ev.evaluate([a[50:200]])
        assert report.n_correct == 1
        assert report.n_misassembled == 0
        assert report.correct_base_fraction == 1.0

    def test_revcomp_contig_correct(self, references):
        ev = AssemblyEvaluator(references, k=15)
        report = ev.evaluate([reverse_complement(references[1][1][10:120])])
        assert report.n_correct == 1

    def test_chimera_detected_as_misassembly(self, references):
        ev = AssemblyEvaluator(references, k=15)
        a, b = references[0][1], references[1][1]
        chimera = a[:80] + b[:80]  # genuine sequence, wrong join
        report = ev.evaluate([chimera])
        assert report.n_misassembled == 1
        assert report.n_correct == 0

    def test_random_garbage_spurious(self, references):
        rng = rng_for(142, "evaluation2")
        junk = "".join(rng.choice(list("ACGT"), size=120))
        report = AssemblyEvaluator(references, k=15).evaluate([junk])
        assert report.n_spurious == 1

    def test_mixed_set(self, references):
        rng = rng_for(143, "evaluation3")
        a, b = references[0][1], references[1][1]
        junk = "".join(rng.choice(list("ACGT"), size=100))
        report = AssemblyEvaluator(references, k=15).evaluate(
            [a[:150], b[:150], a[:60] + b[:60], junk]
        )
        assert report.n_contigs == 4
        assert report.n_correct == 2
        assert report.n_misassembled == 1
        assert report.n_spurious == 1
        assert 0 < report.correct_base_fraction < 1


class TestGenomeFraction:
    def test_full_recovery(self, references):
        ev = AssemblyEvaluator(references, k=15)
        report = ev.evaluate([references[0][1], references[1][1]])
        assert report.genome_fraction == pytest.approx(1.0)
        assert report.per_genome_fraction["genomeA"] == pytest.approx(1.0)

    def test_partial_recovery(self, references):
        ev = AssemblyEvaluator(references, k=15)
        report = ev.evaluate([references[0][1]])  # only genome A
        assert report.per_genome_fraction["genomeA"] == pytest.approx(1.0)
        assert report.per_genome_fraction["genomeB"] < 0.1
        assert 0.4 < report.genome_fraction < 0.7

    def test_empty_assembly(self, references):
        report = AssemblyEvaluator(references, k=15).evaluate([])
        assert report.genome_fraction == 0.0
        assert report.n_contigs == 0
        assert report.correctness_rate == 1.0


class TestEndToEnd:
    def test_real_assembly_scores_well(self, tiny_hg, tiny_hg_batch):
        """The MiniAssembler's output on clean-ish data must be mostly
        correct sequence with decent genome fraction."""
        from repro.assembly.assembler import AssemblyConfig, MiniAssembler

        result = MiniAssembler(
            AssemblyConfig(k=16, min_count=2, min_contig_length=50)
        ).assemble_batch(tiny_hg_batch)
        report = evaluate_against_community(
            result.contigs, tiny_hg.community, k=16
        )
        assert report.correctness_rate > 0.85
        assert report.genome_fraction > 0.15  # ~2.9x coverage analogue
        assert report.n_spurious <= report.n_contigs * 0.1

    def test_references_required(self):
        with pytest.raises(ValueError):
            AssemblyEvaluator([], k=15)
