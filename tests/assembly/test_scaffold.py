import pytest

from repro.assembly.scaffold import (
    ScaffoldConfig,
    Scaffolder,
    scaffold_contigs,
)
from repro.seqio.alphabet import reverse_complement
from repro.util.rng import rng_for


@pytest.fixture()
def genome():
    rng = rng_for(151, "scaffold")
    return "".join(rng.choice(list("ACGT"), size=900))


def spanning_pairs(genome, n, insert=280, read_len=80, seed=152):
    """FR pairs sampled uniformly from a genome."""
    rng = rng_for(seed, "scaffold-pairs")
    pairs = []
    for _ in range(n):
        pos = int(rng.integers(0, len(genome) - insert))
        frag = genome[pos : pos + insert]
        pairs.append((frag[:read_len], reverse_complement(frag[-read_len:])))
    return pairs


class TestMapping:
    def test_forward_read_maps(self, genome):
        sc = Scaffolder([genome[:400]])
        placement = sc.map_read(genome[100:160])
        assert placement is not None
        assert placement.contig == 0
        assert placement.forward
        assert placement.position == 100

    def test_reverse_read_maps(self, genome):
        sc = Scaffolder([genome[:400]])
        placement = sc.map_read(reverse_complement(genome[100:160]))
        assert placement is not None
        assert not placement.forward
        assert placement.position == 100

    def test_unmappable_read(self, genome):
        sc = Scaffolder([genome[:400]])
        rng = rng_for(153, "unmappable")
        junk = "".join(rng.choice(list("ACGT"), size=60))
        assert sc.map_read(junk) is None

    def test_ambiguous_anchor_skipped(self, genome):
        # the same segment in two contigs: anchors there are ambiguous,
        # but a read extending past it still maps via unique anchors
        shared = genome[:100]
        sc = Scaffolder([shared + genome[300:500], shared + genome[600:800]])
        placement = sc.map_read(genome[50:100] + genome[300:330])
        assert placement is not None


class TestScaffolding:
    def test_two_contigs_joined(self, genome):
        # contigs = genome halves with a sequencing gap in the middle
        a, b = genome[:400], genome[500:900]
        pairs = spanning_pairs(genome, 200)
        scaffolds, stats = scaffold_contigs([a, b], pairs)
        assert stats.n_cross_contig_pairs > 0
        assert stats.n_links_kept == 1
        assert len(scaffolds) == 1
        s = scaffolds[0]
        assert "N" in s
        # both contigs present in consistent orientation
        canon = min(s, reverse_complement(s))
        assert a in s or reverse_complement(a) in s

    def test_orientation_consistent(self, genome):
        """The joined scaffold must read A ... N ... B colinearly with the
        genome (or its reverse complement)."""
        a, b = genome[:400], genome[500:900]
        pairs = spanning_pairs(genome, 300)
        scaffolds, _ = scaffold_contigs([a, b], pairs)
        (s,) = scaffolds
        for variant in (s, reverse_complement(s)):
            ia = variant.find(a)
            ib = variant.find(b)
            if ia != -1 and ib != -1:
                assert ia < ib
                return
        pytest.fail("scaffold does not contain both contigs colinearly")

    def test_flipped_contig_reoriented(self, genome):
        a, b = genome[:400], reverse_complement(genome[500:900])
        pairs = spanning_pairs(genome, 300)
        scaffolds, _ = scaffold_contigs([a, b], pairs)
        assert len(scaffolds) == 1
        s = scaffolds[0]
        assert (
            genome[500:900] in s
            or genome[500:900] in reverse_complement(s)
        )

    def test_three_contigs_chain(self, genome):
        a, b, c = genome[:280], genome[330:600], genome[650:900]
        pairs = spanning_pairs(genome, 500)
        scaffolds, stats = scaffold_contigs([a, b, c], pairs)
        assert len(scaffolds) == 1
        assert stats.n_links_kept == 2

    def test_unrelated_contigs_not_joined(self, genome):
        rng = rng_for(154, "scaffold-unrelated")
        other = "".join(rng.choice(list("ACGT"), size=400))
        pairs = spanning_pairs(genome[:400], 100, insert=200)
        scaffolds, stats = scaffold_contigs([genome[:400], other], pairs)
        assert len(scaffolds) == 2
        assert stats.n_links_kept == 0

    def test_min_links_threshold(self, genome):
        a, b = genome[:400], genome[500:900]
        # a single spanning pair: below the default threshold of 2
        one_pair = [
            (genome[350:430], reverse_complement(genome[550:630]))
        ]
        scaffolds, stats = scaffold_contigs([a, b], one_pair)
        assert len(scaffolds) == 2
        scaffolds2, _ = scaffold_contigs(
            [a, b], one_pair, ScaffoldConfig(min_links=1)
        )
        assert len(scaffolds2) == 1

    def test_no_pairs_identity(self, genome):
        scaffolds, stats = scaffold_contigs([genome[:300], genome[400:700]], [])
        assert len(scaffolds) == 2
        assert stats.n_pairs_mapped == 0

    def test_deterministic(self, genome):
        a, b = genome[:400], genome[500:900]
        pairs = spanning_pairs(genome, 150)
        s1, _ = scaffold_contigs([a, b], pairs)
        s2, _ = scaffold_contigs([a, b], pairs)
        assert s1 == s2


class TestConfig:
    def test_invalid_k_rejected(self):
        with pytest.raises(ValueError):
            ScaffoldConfig(k_anchor=40)

    def test_invalid_min_links_rejected(self):
        with pytest.raises(ValueError):
            ScaffoldConfig(min_links=0)
