import pytest

from repro.assembly.cleaning import (
    clean_graph,
    pop_bubbles,
    remove_tips,
    unitig_chains,
)
from repro.assembly.graph import build_debruijn_graph
from repro.assembly.unitigs import extract_unitigs
from repro.seqio.records import ReadBatch
from repro.util.rng import rng_for

K = 10  # even: palindrome-free (k-1)-mer nodes


@pytest.fixture()
def genome():
    rng = rng_for(121, "cleaning")
    return "".join(rng.choice(list("ACGT"), size=300))


def reads_of(seq, read_len=40, step=4):
    return [seq[i : i + read_len] for i in range(0, len(seq) - read_len + 1, step)]


class TestUnitigChains:
    def test_chains_partition_edges(self, genome):
        graph = build_debruijn_graph(
            ReadBatch.from_sequences(reads_of(genome)), K, 1
        )
        chains = unitig_chains(graph)
        covered = sorted(e for c in chains for e in c.edges)
        assert covered == list(range(graph.n_edges))

    def test_linear_graph_two_chains(self, genome):
        # one clean sequence: forward chain + RC chain
        graph = build_debruijn_graph(ReadBatch.from_sequences([genome]), K, 1)
        chains = unitig_chains(graph)
        assert len(chains) == 2
        assert all(len(c) == graph.n_edges // 2 for c in chains)

    def test_empty_graph(self):
        graph = build_debruijn_graph(ReadBatch.from_sequences(["ACG"]), K, 1)
        assert unitig_chains(graph) == []


class TestRemoveTips:
    def test_error_tail_removed(self, genome):
        reads = reads_of(genome)
        # a read with a corrupted tail creates a dead-end branch
        bad = genome[50:85] + "C" if genome[85] != "C" else genome[50:85] + "G"
        graph = build_debruijn_graph(
            ReadBatch.from_sequences(reads + [bad]), K, 1
        )
        cleaned, tips = remove_tips(graph)
        assert tips >= 1
        assert cleaned.n_edges < graph.n_edges
        # cleaning must restore a single linear contig
        contigs = extract_unitigs(cleaned, min_length=0)
        assert len(contigs) == 1

    def test_clean_graph_untouched(self, genome):
        graph = build_debruijn_graph(ReadBatch.from_sequences([genome]), K, 1)
        cleaned, tips = remove_tips(graph)
        assert tips == 0
        assert cleaned.n_edges == graph.n_edges

    def test_isolated_contigs_kept(self):
        # a short standalone sequence is not a tip (dead at both ends)
        graph = build_debruijn_graph(
            ReadBatch.from_sequences(["ACGTTGCAGTACGA"]), K, 1
        )
        cleaned, tips = remove_tips(graph, max_tip_edges=100)
        assert tips == 0
        assert cleaned.n_edges == graph.n_edges

    def test_long_branches_kept(self, genome):
        rng = rng_for(122, "cleaning2")
        other = "".join(rng.choice(list("ACGT"), size=200))
        # genuine long alternative path (shares a junction region)
        branch = genome[:30] + other
        graph = build_debruijn_graph(
            ReadBatch.from_sequences(reads_of(genome) + reads_of(branch)), K, 1
        )
        cleaned, _ = remove_tips(graph, max_tip_edges=5)
        # long branch edges survive the small threshold
        assert cleaned.n_edges == graph.n_edges


class TestPopBubbles:
    def test_snp_bubble_popped_keeps_heavier(self, genome):
        # textbook bubble: two full-length alleles, the true one 3x heavier.
        # k=16 so (k-1)-mer nodes are collision-free over a 300 bp genome
        # (k-1 = 9 would hit chance repeats and complicate the bubble).
        K = 16
        pos = 120
        variant = (
            genome[:pos]
            + ("A" if genome[pos] != "A" else "C")
            + genome[pos + 1 :]
        )
        reads = reads_of(genome) * 3 + reads_of(variant)
        graph = build_debruijn_graph(ReadBatch.from_sequences(reads), K, 1)
        cleaned, popped = pop_bubbles(graph)
        assert popped >= 1
        contigs = extract_unitigs(cleaned, min_length=0)
        # after popping, the assembly is a single linear contig again
        assert len(contigs) == 1
        # and it carries the heavy (true) allele
        assert genome[pos - 12 : pos + 12] in contigs[0] or genome[
            pos - 12 : pos + 12
        ] in contigs[0][::-1]
        from repro.seqio.alphabet import reverse_complement

        assert (
            genome[pos - 12 : pos + 12] in contigs[0]
            or genome[pos - 12 : pos + 12] in reverse_complement(contigs[0])
        )

    def test_no_bubble_no_change(self, genome):
        graph = build_debruijn_graph(ReadBatch.from_sequences([genome]), K, 1)
        cleaned, popped = pop_bubbles(graph)
        assert popped == 0
        assert cleaned.n_edges == graph.n_edges


class TestCleanGraph:
    def test_fixpoint_and_stats(self, genome):
        reads = reads_of(genome) * 2
        bad1 = genome[50:85] + ("C" if genome[85] != "C" else "G")
        pos = 150
        variant = genome[pos - 30 : pos] + (
            "A" if genome[pos] != "A" else "C"
        ) + genome[pos + 1 : pos + 30]
        graph = build_debruijn_graph(
            ReadBatch.from_sequences(reads + [bad1] + [variant]), K, 1
        )
        cleaned, stats = clean_graph(graph)
        assert stats.rounds >= 1
        assert stats.edges_removed == graph.n_edges - cleaned.n_edges
        # fixpoint: a second clean is a no-op
        again, stats2 = clean_graph(cleaned)
        assert again.n_edges == cleaned.n_edges

    def test_assembler_clean_flag_improves_or_preserves(self, genome):
        from repro.assembly.assembler import AssemblyConfig, MiniAssembler

        reads = reads_of(genome) * 2
        bad = genome[50:85] + ("C" if genome[85] != "C" else "G")
        batch = ReadBatch.from_sequences(reads + [bad] * 1)
        dirty = MiniAssembler(
            AssemblyConfig(k=K, min_count=1, min_contig_length=0)
        ).assemble_batch(batch)
        cleaned = MiniAssembler(
            AssemblyConfig(k=K, min_count=1, min_contig_length=0, clean=True)
        ).assemble_batch(batch)
        assert cleaned.stats.n_contigs <= dirty.stats.n_contigs
        assert cleaned.stats.n50 >= dirty.stats.n50
