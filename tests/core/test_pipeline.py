import numpy as np
import pytest

from repro.cc.components import (
    partition_as_frozensets,
    reference_components_networkx,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.kmers.filter import FrequencyFilter
from repro.runtime.work import StepNames


def run(tiny_hg, **kwargs):
    defaults = dict(k=27, m=5, n_tasks=1, n_threads=2, write_outputs=False)
    defaults.update(kwargs)
    return MetaPrep(PipelineConfig(**defaults)).run(tiny_hg.units)


@pytest.fixture(scope="module")
def baseline(tiny_hg):
    cfg = PipelineConfig(k=27, m=5, n_tasks=1, n_threads=2, write_outputs=False)
    return MetaPrep(cfg).run(tiny_hg.units)


class TestBasicRun:
    def test_result_shape(self, tiny_hg, baseline):
        assert baseline.n_reads == tiny_hg.n_pairs
        assert baseline.total_tuples > 0
        assert baseline.partition.summary.n_components >= 1
        assert baseline.n_passes == 1

    def test_matches_networkx_oracle(self, tiny_hg, tiny_hg_batch, baseline):
        ref = reference_components_networkx(tiny_hg_batch, 27)
        got = partition_as_frozensets(
            baseline.partition.parent, tiny_hg_batch.read_ids
        )
        assert got == ref

    def test_giant_component_formed(self, baseline):
        """Paper section 4.4: read preprocessing yields a giant component."""
        assert baseline.partition.summary.largest_component_fraction > 0.5

    def test_measured_steps_present(self, baseline):
        for step in (
            StepNames.KMERGEN_IO,
            StepNames.KMERGEN,
            StepNames.LOCALSORT,
            StepNames.LOCALCC,
            StepNames.MERGECC,
        ):
            assert step in baseline.measured.seconds

    def test_projected_times_positive(self, baseline):
        assert baseline.projected.total_seconds > 0

    def test_work_volumes_consistent(self, baseline):
        w = baseline.work
        assert w.total_tuples == baseline.total_tuples
        # single pass: scanned == kept
        assert w.kmergen_positions_scanned.sum() == w.kmergen_tuples.sum()
        assert w.kmergen_io_bytes.sum() > 0

    def test_memory_estimate_positive(self, baseline):
        assert baseline.memory_per_task_bytes() > 0


class TestDecompositionInvariance:
    """The headline equivalence: any (P, T, S) gives the same partition."""

    @pytest.mark.parametrize(
        "P,T,S",
        [(1, 1, 1), (2, 2, 1), (1, 2, 3), (3, 2, 2), (4, 1, 4)],
    )
    def test_partition_invariant(self, tiny_hg, baseline, P, T, S):
        res = run(tiny_hg, n_tasks=P, n_threads=T, n_passes=S)
        assert np.array_equal(res.partition.labels, baseline.partition.labels)

    def test_localcc_opt_off_same_partition(self, tiny_hg, baseline):
        res = run(tiny_hg, n_passes=3, localcc_opt=False)
        assert np.array_equal(res.partition.labels, baseline.partition.labels)

    def test_localcc_opt_on_multipass_same_partition(self, tiny_hg, baseline):
        res = run(tiny_hg, n_passes=3, localcc_opt=True)
        assert np.array_equal(res.partition.labels, baseline.partition.labels)

    def test_multipass_tuples_conserved(self, tiny_hg, baseline):
        res = run(tiny_hg, n_passes=4)
        assert res.total_tuples == baseline.total_tuples
        # but scanned positions multiply with passes
        assert (
            res.work.kmergen_positions_scanned.sum()
            == 4 * baseline.total_tuples
        )


class TestStaticCounts:
    def test_verification_enabled_passes(self, tiny_hg):
        res = run(tiny_hg, n_tasks=2, n_threads=2, verify_static_counts=True)
        assert res.total_tuples > 0

    def test_comm_only_multi_task(self, tiny_hg):
        res1 = run(tiny_hg, n_tasks=1)
        assert res1.work.wire_bytes == 0
        res2 = run(tiny_hg, n_tasks=2)
        assert res2.work.wire_bytes > 0

    def test_comm_stats_per_pass(self, tiny_hg):
        res = run(tiny_hg, n_tasks=2, n_passes=3)
        assert len(res.comm_stats) == 3


class TestFilters:
    def test_filter_reduces_largest_component(self, tiny_hg, baseline):
        res = run(tiny_hg, kmer_filter=FrequencyFilter(max_freq=12))
        assert (
            res.partition.summary.largest_component_size
            <= baseline.partition.summary.largest_component_size
        )

    def test_filter_matches_oracle(self, tiny_hg, tiny_hg_batch):
        kf = FrequencyFilter(max_freq=15)
        res = run(tiny_hg, kmer_filter=kf)
        ref = reference_components_networkx(tiny_hg_batch, 27, kf)
        got = partition_as_frozensets(
            res.partition.parent, tiny_hg_batch.read_ids
        )
        assert got == ref

    def test_filter_matches_oracle_multipass_multitask(self, tiny_hg, tiny_hg_batch):
        kf = FrequencyFilter(3, 20)
        res = run(tiny_hg, kmer_filter=kf, n_tasks=2, n_threads=2, n_passes=2)
        ref = reference_components_networkx(tiny_hg_batch, 27, kf)
        got = partition_as_frozensets(
            res.partition.parent, tiny_hg_batch.read_ids
        )
        assert got == ref


class TestAutoPasses:
    def test_budget_derives_passes(self, tiny_hg):
        generous = run(tiny_hg, n_passes=None, memory_budget_per_task=10**12)
        assert generous.n_passes == 1
        # a budget sized to ~1/3 of the tuple buffers forces more passes
        need = 2 * 12 * generous.total_tuples
        tight = run(
            tiny_hg,
            n_passes=None,
            memory_budget_per_task=need // 3 + generous.index.fastqpart.nbytes
            + generous.index.merhist.nbytes
            + 8 * generous.n_reads,
        )
        assert tight.n_passes >= 2

    def test_index_mismatch_rejected(self, tiny_hg):
        from repro.index.create import index_create

        idx = index_create(tiny_hg.units, k=27, m=4, n_chunks=4)
        with pytest.raises(ValueError, match="index built for"):
            MetaPrep(
                PipelineConfig(k=27, m=5, write_outputs=False)
            ).run(tiny_hg.units, index=idx)


class TestK63:
    def test_two_limb_pipeline_matches_oracle(self, tiny_hg, tiny_hg_batch):
        res = run(tiny_hg, k=45, m=5, n_tasks=2, n_passes=2)
        ref = reference_components_networkx(tiny_hg_batch, 45)
        got = partition_as_frozensets(
            res.partition.parent, tiny_hg_batch.read_ids
        )
        assert got == ref

    def test_larger_k_smaller_lc(self, tiny_hg, baseline):
        """Paper Table 7: increasing k shrinks the largest component."""
        res = run(tiny_hg, k=63, m=5)
        assert (
            res.partition.summary.largest_component_size
            <= baseline.partition.summary.largest_component_size
        )


class TestDegenerateInputs:
    """Zero-chunk and empty-unit inputs must not divide by zero in the
    memory/CCIO estimates, under either execution backend."""

    def _zero_chunk_index(self, k=21, m=4):
        from repro.index.create import IndexCreateResult
        from repro.index.fastqpart import FastqPartTable
        from repro.index.merhist import MerHist

        n_bins = 1 << (2 * m)
        empty = np.zeros(0, dtype=np.int64)
        table = FastqPartTable(
            k=k,
            m=m,
            units=[],
            unit=empty,
            read_lo=empty,
            read_hi=empty,
            offset1=empty,
            size1=empty,
            offset2=empty,
            size2=empty,
            hist=np.zeros((0, n_bins), dtype=np.uint32),
            total_reads=0,
        )
        merhist = MerHist(k=k, m=m, counts=np.zeros(n_bins, dtype=np.uint32))
        return IndexCreateResult(
            merhist=merhist,
            fastqpart=table,
            fastqpart_seconds=0.0,
            merhist_seconds=0.0,
        )

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_zero_chunk_table_runs(self, executor):
        index = self._zero_chunk_index()
        cfg = PipelineConfig(
            k=21, m=4, n_tasks=2, n_threads=2, write_outputs=False,
            executor=executor, max_workers=2,
        )
        res = MetaPrep(cfg).run([], index=index)
        assert res.n_reads == 0
        assert len(res.partition.labels) == 0
        assert int(res.work.ccio_bytes.sum()) == 0
        # memory estimate must stay finite with no chunks to take max() of
        assert res.memory_per_task_bytes() >= 0

    def test_empty_unit_alongside_real_unit(self, tiny_hg, tmp_path, baseline):
        from repro.index.create import index_create

        empty = tmp_path / "empty.fastq"
        empty.write_text("")
        units = list(tiny_hg.units) + [str(empty)]
        idx = index_create(units, k=27, m=5, n_chunks=8)
        cfg = PipelineConfig(k=27, m=5, n_tasks=1, n_threads=2, write_outputs=False)
        res = MetaPrep(cfg).run(units, index=idx)
        assert np.array_equal(res.partition.labels, baseline.partition.labels)

    def test_all_empty_units_rejected(self, tmp_path):
        empty = tmp_path / "empty.fastq"
        empty.write_text("")
        with pytest.raises(ValueError, match="no reads"):
            MetaPrep(
                PipelineConfig(k=21, m=4, write_outputs=False)
            ).run([str(empty)])
