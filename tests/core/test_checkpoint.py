import os

import numpy as np
import pytest

from repro.core.checkpoint import (
    Checkpoint,
    CheckpointMismatch,
    CheckpointStore,
    config_fingerprint,
    load_block_spill,
    prune_checkpoints,
    save_block_spill,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.runtime.buffers import HeapBufferPool, SharedMemoryBufferPool


class TestStore:
    def _checkpoint(self, fp="abc", done=1, total=3, n=10, tasks=2):
        return Checkpoint(
            fingerprint=fp,
            n_passes_total=total,
            passes_done=done,
            parents=[np.arange(n, dtype=np.int64) for _ in range(tasks)],
        )

    def test_save_load_roundtrip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        ckpt = self._checkpoint()
        ckpt.parents[0][3] = 7
        store.save(ckpt)
        back = store.load("abc")
        assert back.passes_done == 1
        assert back.n_passes_total == 3
        assert np.array_equal(back.parents[0], ckpt.parents[0])
        assert len(back.parents) == 2

    def test_fingerprint_mismatch_rejected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(self._checkpoint(fp="abc"))
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            store.load("xyz")

    def test_clear(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(self._checkpoint())
        assert store.exists()
        store.clear()
        assert not store.exists()
        store.clear()  # idempotent

    def test_overwrite_is_atomic_publish(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(self._checkpoint(done=1))
        store.save(self._checkpoint(done=2))
        assert store.load("abc").passes_done == 2


class TestFingerprint:
    def test_sensitive_to_config(self):
        a = config_fingerprint(PipelineConfig(k=27, m=5), 100, 1000)
        b = config_fingerprint(PipelineConfig(k=31, m=5), 100, 1000)
        assert a != b

    def test_sensitive_to_data(self):
        cfg = PipelineConfig(k=27, m=5)
        assert config_fingerprint(cfg, 100, 1000) != config_fingerprint(
            cfg, 101, 1000
        )

    def test_stable(self):
        cfg = PipelineConfig(k=27, m=5)
        assert config_fingerprint(cfg, 100, 1000) == config_fingerprint(
            cfg, 100, 1000
        )


class TestPipelineResume:
    CFG = dict(k=27, m=5, n_tasks=2, n_threads=2, n_passes=3, write_outputs=False)

    def test_interrupted_run_resumes_to_same_partition(self, tiny_hg, tmp_path):
        reference = MetaPrep(PipelineConfig(**self.CFG)).run(tiny_hg.units)

        # interrupt after two passes by making pass 2 explode
        boom = RuntimeError("injected crash")
        runner = MetaPrep(PipelineConfig(**self.CFG))
        original = runner._run_pass
        calls = {"n": 0}

        def exploding(spec, *args, **kwargs):
            if spec.index == 2:
                raise boom
            calls["n"] += 1
            return original(spec, *args, **kwargs)

        runner._run_pass = exploding
        with pytest.raises(RuntimeError, match="injected"):
            runner.run(tiny_hg.units, checkpoint_dir=tmp_path)
        assert calls["n"] == 2
        assert CheckpointStore(tmp_path).exists()

        # resume: only the remaining pass runs
        resumed_runner = MetaPrep(PipelineConfig(**self.CFG))
        resumed_original = resumed_runner._run_pass
        resumed_calls = []

        def counting(spec, *args, **kwargs):
            resumed_calls.append(spec.index)
            return resumed_original(spec, *args, **kwargs)

        resumed_runner._run_pass = counting
        result = resumed_runner.run(tiny_hg.units, checkpoint_dir=tmp_path)
        assert resumed_calls == [2]
        assert np.array_equal(
            result.partition.labels, reference.partition.labels
        )
        # checkpoint cleared after success
        assert not CheckpointStore(tmp_path).exists()

    def test_clean_run_leaves_no_checkpoint(self, tiny_hg, tmp_path):
        MetaPrep(PipelineConfig(**self.CFG)).run(
            tiny_hg.units, checkpoint_dir=tmp_path
        )
        assert not CheckpointStore(tmp_path).exists()

    def test_config_change_rejected_on_resume(self, tiny_hg, tmp_path):
        runner = MetaPrep(PipelineConfig(**self.CFG))
        original = runner._run_pass

        def exploding(spec, *args, **kwargs):
            if spec.index == 1:
                raise RuntimeError("injected")
            return original(spec, *args, **kwargs)

        runner._run_pass = exploding
        with pytest.raises(RuntimeError):
            runner.run(tiny_hg.units, checkpoint_dir=tmp_path)

        changed = dict(self.CFG, k=31)
        with pytest.raises(CheckpointMismatch):
            MetaPrep(PipelineConfig(**changed)).run(
                tiny_hg.units, checkpoint_dir=tmp_path
            )

    def test_pass_count_change_rejected(self, tiny_hg, tmp_path):
        runner = MetaPrep(PipelineConfig(**self.CFG))
        original = runner._run_pass

        def exploding(spec, *args, **kwargs):
            if spec.index == 1:
                raise RuntimeError("injected")
            return original(spec, *args, **kwargs)

        runner._run_pass = exploding
        with pytest.raises(RuntimeError):
            runner.run(tiny_hg.units, checkpoint_dir=tmp_path)

        changed = dict(self.CFG, n_passes=5)
        with pytest.raises(CheckpointMismatch, match="passes"):
            MetaPrep(PipelineConfig(**changed)).run(
                tiny_hg.units, checkpoint_dir=tmp_path
            )


class TestExecutorResume:
    """Checkpoints are executor-agnostic: interrupting a 4-pass run after
    any pass, under either engine, and resuming — under the same engine or
    the other one — reproduces the uninterrupted run's partition exactly.
    """

    CFG = dict(
        k=27, m=5, n_tasks=2, n_threads=2, n_passes=4, write_outputs=False
    )

    def _interrupted_runner(self, executor, crash_pass):
        runner = MetaPrep(PipelineConfig(executor=executor, **self.CFG))
        original = runner._run_pass

        def exploding(spec, *args, **kwargs):
            if spec.index == crash_pass:
                raise RuntimeError("injected interruption")
            return original(spec, *args, **kwargs)

        runner._run_pass = exploding
        return runner

    @pytest.fixture(scope="class")
    def reference(self, tiny_hg):
        return MetaPrep(PipelineConfig(executor="serial", **self.CFG)).run(
            tiny_hg.units
        )

    @pytest.mark.parametrize("crash_pass", [1, 2, 3])
    @pytest.mark.parametrize(
        "first_engine,resume_engine",
        [
            ("serial", "serial"),
            ("process", "process"),
            ("serial", "process"),
            ("process", "serial"),
        ],
    )
    def test_resume_matches_uninterrupted(
        self,
        tiny_hg,
        tmp_path,
        reference,
        crash_pass,
        first_engine,
        resume_engine,
    ):
        runner = self._interrupted_runner(first_engine, crash_pass)
        with pytest.raises(RuntimeError, match="injected interruption"):
            runner.run(tiny_hg.units, checkpoint_dir=tmp_path)
        assert CheckpointStore(tmp_path).exists()
        assert CheckpointStore(tmp_path).load(
            config_fingerprint(
                PipelineConfig(**self.CFG),
                reference.n_reads,
                reference.index.merhist.total_tuples,
            )
        ).passes_done == crash_pass

        result = MetaPrep(
            PipelineConfig(executor=resume_engine, **self.CFG)
        ).run(tiny_hg.units, checkpoint_dir=tmp_path)
        assert np.array_equal(
            result.partition.labels, reference.partition.labels
        )
        assert np.array_equal(
            result.partition.parent, reference.partition.parent
        )
        assert not CheckpointStore(tmp_path).exists()


def _filled_block(pool, k, n, seed=0):
    rng = np.random.default_rng(seed)
    lo = rng.integers(0, 2**63, size=n, dtype=np.uint64)
    hi = rng.integers(0, 2**63, size=n, dtype=np.uint64) if k > 31 else None
    ids = rng.integers(0, 2**31, size=n, dtype=np.uint32)
    block = pool.allocate(k, n)
    block.write(0, KmerTuples(KmerArray(k, lo, hi), ids))
    return block


class TestBlockSpill:
    """The spill format is backing-agnostic: only the bytes are
    contractual, so every (writer backing, reader backing) pairing must
    round-trip bit-identically."""

    @pytest.mark.parametrize("k", [21, 33])
    @pytest.mark.parametrize("src", ["heap", "shared"])
    @pytest.mark.parametrize("dst", ["heap", "shared"])
    def test_roundtrip_across_backings(self, tmp_path, k, src, dst):
        pools = {
            "heap": HeapBufferPool(),
            "shared": SharedMemoryBufferPool(),
        }
        try:
            block = _filled_block(pools[src], k, 40)
            path = tmp_path / "spill.bin"
            save_block_spill(path, block)
            back = load_block_spill(path, pools[dst])
            assert back.capacity == 40
            a, b = block.view(0, 40), back.view(0, 40)
            assert np.array_equal(a.kmers.lo, b.kmers.lo)
            if k > 31:
                assert np.array_equal(a.kmers.hi, b.kmers.hi)
            assert np.array_equal(a.read_ids, b.read_ids)
        finally:
            pools["shared"].close()

    def test_partial_length_spills_live_prefix(self, tmp_path):
        pool = HeapBufferPool()
        block = _filled_block(pool, 21, 40)
        path = tmp_path / "spill.bin"
        save_block_spill(path, block, length=12)
        back = load_block_spill(path, pool)
        assert back.capacity == 12
        a, b = block.view(0, 12), back.view(0, 12)
        assert np.array_equal(a.kmers.lo, b.kmers.lo)
        assert np.array_equal(a.read_ids, b.read_ids)

    def test_spill_publish_is_atomic(self, tmp_path):
        block = _filled_block(HeapBufferPool(), 21, 8)
        path = tmp_path / "spill.bin"
        save_block_spill(path, block)
        assert path.exists()
        assert not path.with_suffix(".tmp").exists()

    def test_empty_block_roundtrip(self, tmp_path):
        pool = HeapBufferPool()
        path = tmp_path / "spill.bin"
        save_block_spill(path, pool.allocate(21, 0))
        back = load_block_spill(path, pool)
        assert back.capacity == 0


class TestPruneCheckpoints:
    def _plant(self, root, name, mtime):
        path = root / name / CheckpointStore.FILENAME
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"ckpt")
        os.utime(path, (mtime, mtime))
        return path

    def test_keep_latest_n(self, tmp_path):
        paths = [
            self._plant(tmp_path, f"job{i}", 1000.0 + i) for i in range(4)
        ]
        removed = prune_checkpoints(tmp_path, keep_latest=2)
        assert sorted(removed) == sorted(paths[:2])
        assert not paths[0].exists() and not paths[1].exists()
        assert paths[2].exists() and paths[3].exists()
        # emptied per-job directories are removed with their checkpoints
        assert not paths[0].parent.exists()
        assert paths[2].parent.exists()

    def test_keep_zero_removes_all(self, tmp_path):
        for i in range(3):
            self._plant(tmp_path, f"job{i}", 1000.0 + i)
        prune_checkpoints(tmp_path, keep_latest=0)
        assert list(tmp_path.rglob(CheckpointStore.FILENAME)) == []

    def test_root_level_checkpoint_counts_too(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(
            Checkpoint(
                fingerprint="abc",
                n_passes_total=2,
                passes_done=1,
                parents=[np.arange(4, dtype=np.int64)],
            )
        )
        os.utime(store.path, (2000.0, 2000.0))
        nested = self._plant(tmp_path, "old-job", 1000.0)
        removed = prune_checkpoints(tmp_path, keep_latest=1)
        assert removed == [nested]
        assert store.exists()

    def test_missing_root_is_noop(self, tmp_path):
        assert prune_checkpoints(tmp_path / "nowhere", keep_latest=1) == []

    def test_ignores_unrelated_files(self, tmp_path):
        (tmp_path / "notes.txt").write_text("keep me")
        self._plant(tmp_path, "job0", 1000.0)
        prune_checkpoints(tmp_path, keep_latest=0)
        assert (tmp_path / "notes.txt").exists()
