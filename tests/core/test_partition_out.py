import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.seqio.fastq import read_fastq


@pytest.fixture(scope="module")
def written(tiny_hg, tmp_path_factory):
    out = tmp_path_factory.mktemp("parts")
    cfg = PipelineConfig(
        k=27, m=5, n_tasks=2, n_threads=2, write_outputs=True
    )
    res = MetaPrep(cfg).run(tiny_hg.units, output_dir=out)
    return res, out


class TestPartitionOutput:
    def test_files_per_thread(self, written):
        res, _ = written
        # 2 tasks x 2 threads -> 4 LC files + 4 other files
        assert len(res.partition.lc_files) == 4
        assert len(res.partition.other_files) == 4

    def test_every_read_exactly_once(self, written, tiny_hg):
        res, _ = written
        total = res.partition.lc_reads_written + res.partition.other_reads_written
        assert total == 2 * tiny_hg.n_pairs  # both mates of every pair

    def test_pairs_stay_together(self, written):
        """Both mates of a pair share a read id, hence a component, hence a
        file class — the property that keeps paired-end assembly possible."""
        res, _ = written
        lc_names = set()
        for f in res.partition.lc_files:
            lc_names.update(r.name.rsplit("/", 1)[0] for r in read_fastq(f))
        other_names = set()
        for f in res.partition.other_files:
            other_names.update(r.name.rsplit("/", 1)[0] for r in read_fastq(f))
        assert not (lc_names & other_names)

    def test_lc_reads_belong_to_largest(self, written):
        res, _ = written
        lc_count = res.partition.lc_reads_written
        # both mates of each LC pair
        assert lc_count == 2 * res.partition.summary.largest_component_size

    def test_bytes_accounted(self, written):
        res, _ = written
        assert res.partition.bytes_written is not None
        assert res.partition.bytes_written.sum() > 0
        assert res.work.ccio_bytes.sum() == res.partition.bytes_written.sum()

    def test_sequences_roundtrip(self, written, tiny_hg):
        res, _ = written
        original = {
            r.name: r.sequence
            for path in (tiny_hg.r1_path, tiny_hg.r2_path)
            for r in read_fastq(path)
        }
        for f in res.partition.lc_files + res.partition.other_files:
            for rec in read_fastq(f):
                assert original[rec.name] == rec.sequence

    def test_rerun_truncates_stale_outputs(self, tiny_hg, tmp_path):
        cfg = PipelineConfig(k=27, m=5, n_tasks=1, n_threads=1)
        res1 = MetaPrep(cfg).run(tiny_hg.units, output_dir=tmp_path)
        n1 = res1.partition.lc_reads_written + res1.partition.other_reads_written
        res2 = MetaPrep(cfg).run(tiny_hg.units, output_dir=tmp_path)
        n2 = res2.partition.lc_reads_written + res2.partition.other_reads_written
        assert n1 == n2
        total_on_disk = 0
        for f in res2.partition.lc_files + res2.partition.other_files:
            total_on_disk += len(read_fastq(f))
        assert total_on_disk == n2
