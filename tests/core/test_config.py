import pytest

from repro.core.config import PipelineConfig
from repro.kmers.filter import FrequencyFilter


class TestDefaults:
    def test_paper_defaults(self):
        cfg = PipelineConfig()
        assert cfg.k == 27
        assert cfg.tuple_bytes == 12
        assert cfg.kmer_filter.is_identity
        assert cfg.machine == "edison"

    def test_k63_tuple_bytes(self):
        assert PipelineConfig(k=63).tuple_bytes == 20

    def test_resolved_chunks_default(self):
        cfg = PipelineConfig(n_tasks=2, n_threads=3)
        assert cfg.resolved_chunks() == 24
        assert cfg.total_slots == 6

    def test_explicit_chunks(self):
        cfg = PipelineConfig(n_tasks=2, n_threads=2, n_chunks=10)
        assert cfg.resolved_chunks() == 10


class TestValidation:
    def test_k_bounds(self):
        with pytest.raises(ValueError):
            PipelineConfig(k=1)
        with pytest.raises(ValueError):
            PipelineConfig(k=64)

    def test_m_must_be_below_k(self):
        with pytest.raises(ValueError):
            PipelineConfig(k=5, m=5)
        PipelineConfig(k=5, m=4)  # ok

    def test_chunks_must_cover_slots(self):
        with pytest.raises(ValueError):
            PipelineConfig(n_tasks=4, n_threads=4, n_chunks=8)

    def test_passes_or_budget_required(self):
        with pytest.raises(ValueError, match="memory_budget"):
            PipelineConfig(n_passes=None)
        PipelineConfig(n_passes=None, memory_budget_per_task=10**9)  # ok

    def test_zero_passes_rejected(self):
        with pytest.raises(ValueError):
            PipelineConfig(n_passes=0)

    def test_filter_accepted(self):
        cfg = PipelineConfig(kmer_filter=FrequencyFilter(10, 30))
        assert cfg.kmer_filter.describe() == "10 <= KF < 30"

    @pytest.mark.parametrize("budget", [0, -1, -(1 << 30)])
    def test_nonpositive_budget_rejected_with_fixed_passes(self, budget):
        """Regression: with n_passes set, a zero/negative budget used to
        pass validation silently (it still drives the spill schedule)."""
        with pytest.raises(ValueError, match="memory_budget_per_task"):
            PipelineConfig(n_passes=2, memory_budget_per_task=budget)

    @pytest.mark.parametrize("budget", [0, -1])
    def test_nonpositive_budget_rejected_with_derived_passes(self, budget):
        with pytest.raises(ValueError, match="memory_budget_per_task"):
            PipelineConfig(n_passes=None, memory_budget_per_task=budget)


class TestSpillKnob:
    def test_default_is_auto(self):
        assert PipelineConfig().spill == "auto"
        assert PipelineConfig().spill_dir is None

    @pytest.mark.parametrize("mode", ["auto", "never", "always"])
    def test_valid_modes_accepted(self, mode):
        assert PipelineConfig(spill=mode).spill == mode

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="spill"):
            PipelineConfig(spill="sometimes")

    def test_spill_fields_partition_irrelevant(self):
        """The spill knobs must never enter the partition fingerprint:
        spill and in-memory runs are bit-identical by contract."""
        from repro.core.checkpoint import (
            PARTITION_IRRELEVANT_FIELDS,
            config_payload,
        )

        assert "spill" in PARTITION_IRRELEVANT_FIELDS
        assert "spill_dir" in PARTITION_IRRELEVANT_FIELDS
        payload = config_payload(PipelineConfig())
        assert "spill" not in payload
        assert "spill_dir" not in payload
