from repro.cc.components import ComponentSummary
from repro.core.report import (
    format_breakdown,
    format_job_metrics,
    format_job_table,
    format_memory,
    format_partition_summary,
    format_table,
)
from repro.util.timers import TimeBreakdown


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["a", "bee"], [["x", 1], ["long", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")
        assert "long" in lines[3]

    def test_columns_padded_to_widest_cell(self):
        out = format_table(["h", "k"], [["wide-cell", 1]])
        header, sep, row = out.splitlines()
        assert header.index("k") == row.index("1")
        assert set(sep) <= {"-", " "}
        assert len(sep) == len(row)

    def test_empty_rows(self):
        out = format_table(["h"], [])
        lines = out.splitlines()
        assert lines == ["h", "-"]

    def test_no_trailing_whitespace(self):
        out = format_table(["aaaa", "b"], [["x", "y"]])
        assert all(line == line.rstrip() for line in out.splitlines())

    def test_unicode_width_inputs_do_not_crash(self):
        # len()-based alignment treats each code point as one column;
        # the contract is merely consistent padding, no exceptions
        out = format_table(["name", "n"], [["λ-run", 1], ["naïve", 22]])
        lines = out.splitlines()
        assert "λ-run" in lines[2]
        assert "naïve" in lines[3]
        assert lines[2].index("1") == lines[3].index("2")


class TestFormatBreakdown:
    def test_paper_step_order(self):
        bd = TimeBreakdown({"LocalSort": 2.0, "KmerGen": 1.0, "CC-I/O": 0.5})
        out = format_breakdown(bd)
        assert out.index("KmerGen") < out.index("LocalSort") < out.index("CC-I/O")
        assert "Total" in out
        assert "3.500" in out

    def test_unknown_steps_appended(self):
        bd = TimeBreakdown({"Exotic": 1.0})
        out = format_breakdown(bd)
        assert "Exotic" in out


class TestFormatPartitionSummary:
    def test_contains_lc_percent(self):
        s = ComponentSummary(
            n_reads=100,
            n_components=3,
            largest_component_size=95,
            largest_component_fraction=0.95,
            singleton_components=2,
            size_histogram={95: 1, 1: 2, 3: 1},
        )
        out = format_partition_summary(s)
        assert "95.0%" in out
        assert "components" in out


class TestFormatMemory:
    def test_totals(self):
        out = format_memory({"kmerIn": 2**30, "kmerOut": 2**30})
        assert "1.00 GB" in out
        assert "2.00 GB" in out

    def test_total_row_is_last(self):
        out = format_memory({"fastqpart": 2048, "merhist": 1024})
        last = out.splitlines()[-1]
        assert last.startswith("total")
        assert "3.00 KB" in last

    def test_empty_mapping_still_totals(self):
        assert format_memory({}).splitlines()[-1].startswith("total")


class TestFormatJobTable:
    STATUS = {
        "job_id": "j-abc123",
        "state": "succeeded",
        "attempt": 1,
        "error": None,
        "result": {"cache_hit": True},
        "metrics": {"partition_cache": "hit"},
        "submitted_at": 100.0,
        "started_at": 101.5,
        "finished_at": 103.0,
    }

    def test_row_contents(self):
        out = format_job_table([self.STATUS])
        assert "j-abc123" in out
        assert "succeeded" in out
        assert "1.50" in out  # queue wait
        assert "hit" in out

    def test_empty_listing_is_just_headers(self):
        out = format_job_table([])
        assert out.splitlines()[0].startswith("job")
        assert len(out.splitlines()) == 2

    def test_long_error_truncated(self):
        status = dict(
            self.STATUS, state="failed", error="x" * 200, finished_at=None
        )
        out = format_job_table([status])
        assert "x" * 39 + "…" in out
        assert "x" * 41 not in out

    def test_unstarted_job_has_blank_timing_cells(self):
        status = dict(
            self.STATUS,
            state="queued",
            started_at=None,
            finished_at=None,
            metrics={},
        )
        out = format_job_table([status])
        assert "queued" in out
        assert "1.50" not in out

    def test_missing_fields_render_placeholders(self):
        out = format_job_table([{}])
        assert "?" in out.splitlines()[-1]


class TestFormatJobMetrics:
    def test_metrics_and_breakdown(self):
        status = {
            "state": "succeeded",
            "submitted_at": 10.0,
            "started_at": 12.0,
            "metrics": {
                "partition_cache": "miss",
                "index_cache": "hit",
                "run_seconds": 3.25,
                "measured_seconds": {"KmerGen": 1.0, "LocalSort": 2.0},
            },
        }
        out = format_job_metrics(status)
        assert "queue wait (s)" in out
        assert "2.000" in out
        assert "partition_cache" in out
        assert "measured step times" in out
        assert out.index("KmerGen") < out.index("LocalSort")

    def test_without_breakdown(self):
        out = format_job_metrics({"state": "queued", "metrics": {}})
        assert "queued" in out
        assert "step times" not in out

    def test_metric_keys_sorted(self):
        out = format_job_metrics(
            {"state": "done", "metrics": {"zeta": 1, "alpha": 2}}
        )
        assert out.index("alpha") < out.index("zeta")

    def test_no_metrics_key_at_all(self):
        assert "queued" in format_job_metrics({"state": "queued"})

