from repro.cc.components import ComponentSummary
from repro.core.report import (
    format_breakdown,
    format_memory,
    format_partition_summary,
    format_table,
)
from repro.util.timers import TimeBreakdown


class TestFormatTable:
    def test_alignment_and_separator(self):
        out = format_table(["a", "bee"], [["x", 1], ["long", 22]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[1].startswith("-")
        assert "long" in lines[3]

    def test_empty_rows(self):
        out = format_table(["h"], [])
        assert "h" in out


class TestFormatBreakdown:
    def test_paper_step_order(self):
        bd = TimeBreakdown({"LocalSort": 2.0, "KmerGen": 1.0, "CC-I/O": 0.5})
        out = format_breakdown(bd)
        assert out.index("KmerGen") < out.index("LocalSort") < out.index("CC-I/O")
        assert "Total" in out
        assert "3.500" in out

    def test_unknown_steps_appended(self):
        bd = TimeBreakdown({"Exotic": 1.0})
        out = format_breakdown(bd)
        assert "Exotic" in out


class TestFormatPartitionSummary:
    def test_contains_lc_percent(self):
        s = ComponentSummary(
            n_reads=100,
            n_components=3,
            largest_component_size=95,
            largest_component_fraction=0.95,
            singleton_components=2,
            size_histogram={95: 1, 1: 2, 3: 1},
        )
        out = format_partition_summary(s)
        assert "95.0%" in out
        assert "components" in out


class TestFormatMemory:
    def test_totals(self):
        out = format_memory({"kmerIn": 2**30, "kmerOut": 2**30})
        assert "1.00 GB" in out
        assert "2.00 GB" in out
