import numpy as np
import pytest

from repro.kmers.codec import MAX_K_ONE_LIMB, KmerArray, KmerCodec
from repro.seqio.alphabet import reverse_complement


class TestKmerCodecScalar:
    def test_encode_decode_roundtrip_small_k(self):
        codec = KmerCodec(5)
        for s in ["AAAAA", "ACGTA", "TTTTT", "GCGCG"]:
            assert codec.decode(*codec.encode(s)) == s

    def test_encode_values_lexicographic(self):
        codec = KmerCodec(3)
        vals = [codec.encode(s)[1] for s in ["AAA", "AAC", "ACA", "TTT"]]
        assert vals == sorted(vals)
        assert vals[0] == 0
        assert vals[-1] == 4**3 - 1

    def test_two_limb_roundtrip(self):
        codec = KmerCodec(45)
        s = ("ACGT" * 12)[:45]
        hi, lo = codec.encode(s)
        assert hi > 0  # 45-mers need > 64 bits
        assert codec.decode(hi, lo) == s

    def test_boundary_k_32(self):
        codec = KmerCodec(32)
        s = "A" * 31 + "T"
        hi, lo = codec.encode(s)
        assert codec.decode(hi, lo) == s

    def test_wrong_length_rejected(self):
        with pytest.raises(ValueError):
            KmerCodec(5).encode("ACGTAC")

    def test_n_rejected(self):
        with pytest.raises(ValueError):
            KmerCodec(4).encode("ACGN")

    def test_revcomp_matches_string(self):
        codec = KmerCodec(7)
        s = "ACCGTTG"
        hi, lo = codec.encode(s)
        rhi, rlo = codec.revcomp(hi, lo)
        assert codec.decode(rhi, rlo) == reverse_complement(s)

    def test_revcomp_two_limb(self):
        codec = KmerCodec(40)
        s = ("ACGGT" * 8)[:40]
        rhi, rlo = codec.revcomp(*codec.encode(s))
        assert codec.decode(rhi, rlo) == reverse_complement(s)

    def test_canonical_is_min(self):
        codec = KmerCodec(5)
        assert codec.canonical("TTTTT") == "AAAAA"
        assert codec.canonical("AAAAA") == "AAAAA"

    def test_canonical_invariant_under_revcomp(self):
        codec = KmerCodec(9)
        s = "ACCGTTGAC"
        assert codec.canonical(s) == codec.canonical(reverse_complement(s))

    def test_tuple_bytes(self):
        assert KmerCodec(27).tuple_bytes == 12
        assert KmerCodec(31).tuple_bytes == 12
        assert KmerCodec(32).tuple_bytes == 20
        assert KmerCodec(63).tuple_bytes == 20

    @pytest.mark.parametrize("bad_k", [0, 64, 100])
    def test_invalid_k_rejected(self, bad_k):
        with pytest.raises(ValueError):
            KmerCodec(bad_k)


class TestKmerArray:
    def test_limb_policy_enforced(self):
        with pytest.raises(ValueError):
            KmerArray(40, np.zeros(3, dtype=np.uint64))  # needs hi
        with pytest.raises(ValueError):
            KmerArray(10, np.zeros(3, dtype=np.uint64), np.zeros(3, dtype=np.uint64))

    def test_minimum_one_limb(self):
        a = KmerArray(5, np.array([5, 10, 3], dtype=np.uint64))
        b = KmerArray(5, np.array([7, 2, 3], dtype=np.uint64))
        assert a.minimum(b).lo.tolist() == [5, 2, 3]

    def test_minimum_two_limb_hi_dominates(self):
        a = KmerArray(
            40,
            lo=np.array([0, 5], dtype=np.uint64),
            hi=np.array([2, 1], dtype=np.uint64),
        )
        b = KmerArray(
            40,
            lo=np.array([100, 3], dtype=np.uint64),
            hi=np.array([1, 1], dtype=np.uint64),
        )
        result = b.minimum(a)
        assert result.hi.tolist() == [1, 1]
        assert result.lo.tolist() == [100, 3]

    def test_less_than_two_limb_tie_break_on_lo(self):
        a = KmerArray(40, np.array([1], dtype=np.uint64), np.array([5], dtype=np.uint64))
        b = KmerArray(40, np.array([2], dtype=np.uint64), np.array([5], dtype=np.uint64))
        assert a.less_than(b).tolist() == [True]
        assert b.less_than(a).tolist() == [False]

    def test_mmer_prefix_one_limb(self):
        codec = KmerCodec(6)
        arr = codec.from_strings(["ACGTAC", "TTGCAA"])
        codec2 = KmerCodec(2)
        prefixes = arr.mmer_prefix(2)
        assert prefixes[0] == codec2.encode("AC")[1]
        assert prefixes[1] == codec2.encode("TT")[1]

    def test_mmer_prefix_two_limb_straddle(self):
        # k=40: prefix of m=6 lives entirely in hi; m=20 straddles limbs
        codec = KmerCodec(40)
        s = "ACGTACGTACGTACGTACGTACGTACGTACGTACGTACGT"
        arr = codec.from_strings([s])
        for m in (6, 20, 32):
            want = KmerCodec(m).encode(s[:m])[1]
            assert arr.mmer_prefix(m)[0] == want, f"m={m}"

    def test_radix_digit(self):
        arr = KmerArray(5, np.array([0x1234], dtype=np.uint64))
        assert arr.radix_digit(0)[0] == 0x34
        assert arr.radix_digit(1)[0] == 0x12
        assert arr.n_radix_bytes == 8

    def test_radix_digit_two_limb(self):
        arr = KmerArray(
            40, np.array([0xAB], dtype=np.uint64), np.array([0xCD], dtype=np.uint64)
        )
        assert arr.radix_digit(0)[0] == 0xAB
        assert arr.radix_digit(8)[0] == 0xCD
        assert arr.n_radix_bytes == 16

    def test_run_boundaries(self):
        arr = KmerArray(3, np.array([1, 1, 2, 5, 5, 5], dtype=np.uint64))
        assert arr.run_boundaries().tolist() == [0, 2, 3, 6]

    def test_run_boundaries_empty(self):
        assert KmerArray.empty(3).run_boundaries().tolist() == [0]

    def test_argsort_two_limb(self):
        arr = KmerArray(
            40,
            lo=np.array([1, 0, 2], dtype=np.uint64),
            hi=np.array([1, 2, 0], dtype=np.uint64),
        )
        order = arr.argsort()
        s = arr.take(order)
        pairs = list(zip(s.hi.tolist(), s.lo.tolist()))
        assert pairs == sorted(pairs)

    def test_concatenate_and_slice(self):
        a = KmerArray(5, np.array([1, 2], dtype=np.uint64))
        b = KmerArray(5, np.array([3], dtype=np.uint64))
        c = KmerArray.concatenate([a, b])
        assert len(c) == 3
        assert c.slice(1, 3).lo.tolist() == [2, 3]

    def test_concatenate_k_mismatch_rejected(self):
        a = KmerArray(5, np.array([1], dtype=np.uint64))
        b = KmerArray(6, np.array([1], dtype=np.uint64))
        with pytest.raises(ValueError):
            KmerArray.concatenate([a, b])

    def test_decode_array(self):
        codec = KmerCodec(4)
        arr = codec.from_strings(["ACGT", "TTTT"])
        assert codec.decode_array(arr) == ["ACGT", "TTTT"]

    def test_max_one_limb_boundary(self):
        assert MAX_K_ONE_LIMB == 31
        # k=31 should pack into a single limb without overflow
        codec = KmerCodec(31)
        s = "T" * 31
        hi, lo = codec.encode(s)
        assert hi == 0
        assert codec.decode(hi, lo) == s
