import numpy as np
import pytest

from repro.kmers.filter import FrequencyFilter


class TestConstruction:
    def test_identity(self):
        f = FrequencyFilter()
        assert f.is_identity
        assert f.describe() == "None"

    def test_upper_only(self):
        f = FrequencyFilter(max_freq=30)
        assert not f.is_identity
        assert f.describe() == "KF < 30"

    def test_band(self):
        f = FrequencyFilter(10, 30)
        assert f.describe() == "10 <= KF < 30"

    def test_lower_only(self):
        assert FrequencyFilter(10).describe() == "KF >= 10"

    def test_invalid_min_rejected(self):
        with pytest.raises(ValueError):
            FrequencyFilter(0)

    def test_inverted_band_rejected(self):
        with pytest.raises(ValueError):
            FrequencyFilter(30, 10)
        with pytest.raises(ValueError):
            FrequencyFilter(10, 10)


class TestSemantics:
    def test_band_is_half_open(self):
        f = FrequencyFilter(10, 30)
        assert not f.accepts(9)
        assert f.accepts(10)
        assert f.accepts(29)
        assert not f.accepts(30)

    def test_upper_half_open(self):
        f = FrequencyFilter(max_freq=30)
        assert f.accepts(1)
        assert f.accepts(29)
        assert not f.accepts(30)

    def test_vectorized_matches_scalar(self):
        f = FrequencyFilter(3, 8)
        counts = np.arange(1, 12)
        vec = f.accept_counts(counts)
        assert vec.tolist() == [f.accepts(int(c)) for c in counts]

    def test_identity_accepts_everything(self):
        f = FrequencyFilter()
        assert f.accept_counts(np.array([1, 5, 10**6])).all()


class TestParse:
    @pytest.mark.parametrize(
        "text,expect",
        [
            ("none", FrequencyFilter()),
            ("", FrequencyFilter()),
            ("<30", FrequencyFilter(1, 30)),
            ("10:30", FrequencyFilter(10, 30)),
            ("10:", FrequencyFilter(10, None)),
            (":30", FrequencyFilter(1, 30)),
        ],
    )
    def test_accepted_forms(self, text, expect):
        assert FrequencyFilter.parse(text) == expect

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            FrequencyFilter.parse("between 10 and 30")
