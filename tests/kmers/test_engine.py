import numpy as np
import pytest

from repro.kmers.codec import KmerCodec
from repro.kmers.engine import (
    KmerTuples,
    count_kmer_positions,
    enumerate_canonical_kmers,
)
from repro.seqio.records import ReadBatch


def brute_force_kmers(seqs, k, read_ids=None):
    """Reference enumeration: python loop, canonical via codec."""
    codec = KmerCodec(k)
    out = []
    ids = read_ids or list(range(len(seqs)))
    for rid, seq in zip(ids, seqs):
        for i in range(len(seq) - k + 1):
            window = seq[i : i + k]
            if "N" in window:
                continue
            out.append((codec.canonical(window), rid))
    return out


def tuples_as_pairs(tuples: KmerTuples):
    codec = KmerCodec(tuples.k)
    return list(zip(codec.decode_array(tuples.kmers), tuples.read_ids.tolist()))


class TestEnumerationCorrectness:
    @pytest.mark.parametrize("k", [3, 5, 11, 27, 31])
    def test_matches_brute_force_one_limb(self, rng, k):
        seqs = []
        for _ in range(6):
            length = int(rng.integers(k, 3 * k + 10))
            seqs.append("".join(rng.choice(list("ACGT"), size=length)))
        batch = ReadBatch.from_sequences(seqs)
        got = tuples_as_pairs(enumerate_canonical_kmers(batch, k))
        assert got == brute_force_kmers(seqs, k)

    @pytest.mark.parametrize("k", [33, 45, 63])
    def test_matches_brute_force_two_limb(self, rng, k):
        seqs = []
        for _ in range(4):
            length = int(rng.integers(k, 2 * k + 8))
            seqs.append("".join(rng.choice(list("ACGT"), size=length)))
        batch = ReadBatch.from_sequences(seqs)
        got = tuples_as_pairs(enumerate_canonical_kmers(batch, k))
        assert got == brute_force_kmers(seqs, k)

    def test_n_windows_skipped(self):
        batch = ReadBatch.from_sequences(["ACGNACGT"])
        got = tuples_as_pairs(enumerate_canonical_kmers(batch, 3))
        assert got == brute_force_kmers(["ACGNACGT"], 3)
        # windows covering position 3 are absent
        assert len(got) == 3  # ACG + ACG, CGT -> positions 0, 4, 5

    def test_all_n_read(self):
        batch = ReadBatch.from_sequences(["NNNNNN"])
        assert len(enumerate_canonical_kmers(batch, 3)) == 0

    def test_read_shorter_than_k(self):
        batch = ReadBatch.from_sequences(["ACG", "ACGTACGT"])
        tuples = enumerate_canonical_kmers(batch, 5)
        assert set(tuples.read_ids.tolist()) == {1}

    def test_windows_do_not_cross_reads(self):
        # "AC" + "GT" must NOT produce "ACGT"-spanning k-mers
        batch = ReadBatch.from_sequences(["ACAC", "GTGT"])
        got = tuples_as_pairs(enumerate_canonical_kmers(batch, 4))
        assert got == brute_force_kmers(["ACAC", "GTGT"], 4)

    def test_empty_batch(self):
        assert len(enumerate_canonical_kmers(ReadBatch.empty(), 5)) == 0

    def test_read_ids_respected(self):
        batch = ReadBatch.from_sequences(["ACGTA", "ACGTA"], read_ids=[9, 9])
        tuples = enumerate_canonical_kmers(batch, 4)
        assert set(tuples.read_ids.tolist()) == {9}

    def test_canonical_strand_invariance(self):
        from repro.seqio.alphabet import reverse_complement

        seq = "ACCGTAGGTAC"
        fwd = enumerate_canonical_kmers(ReadBatch.from_sequences([seq]), 5)
        rev = enumerate_canonical_kmers(
            ReadBatch.from_sequences([reverse_complement(seq)]), 5
        )
        codec = KmerCodec(5)
        assert sorted(codec.decode_array(fwd.kmers)) == sorted(
            codec.decode_array(rev.kmers)
        )

    def test_deterministic_order(self):
        batch = ReadBatch.from_sequences(["ACGTACG", "TTGGCCA"])
        a = enumerate_canonical_kmers(batch, 4)
        b = enumerate_canonical_kmers(batch, 4)
        assert np.array_equal(a.kmers.lo, b.kmers.lo)
        assert np.array_equal(a.read_ids, b.read_ids)


class TestKmerTuples:
    def test_nbytes_one_limb(self):
        batch = ReadBatch.from_sequences(["ACGTACGTAC"])
        t = enumerate_canonical_kmers(batch, 5)
        assert t.nbytes == 12 * len(t)

    def test_nbytes_two_limb(self):
        batch = ReadBatch.from_sequences(["ACGT" * 20])
        t = enumerate_canonical_kmers(batch, 35)
        assert t.nbytes == 20 * len(t)

    def test_length_mismatch_rejected(self):
        from repro.kmers.codec import KmerArray

        with pytest.raises(ValueError):
            KmerTuples(
                KmerArray(5, np.zeros(3, dtype=np.uint64)),
                np.zeros(2, dtype=np.uint32),
            )

    def test_concatenate_and_slice(self):
        batch = ReadBatch.from_sequences(["ACGTAC", "GGTTCC"])
        t = enumerate_canonical_kmers(batch, 4)
        parts = [t.slice(0, 2), t.slice(2, len(t))]
        merged = KmerTuples.concatenate(parts)
        assert np.array_equal(merged.kmers.lo, t.kmers.lo)
        assert np.array_equal(merged.read_ids, t.read_ids)

    def test_take(self):
        batch = ReadBatch.from_sequences(["ACGTAC"])
        t = enumerate_canonical_kmers(batch, 4)
        sub = t.take(np.array([0, 2]))
        assert len(sub) == 2

    def test_empty(self):
        t = KmerTuples.empty(27)
        assert len(t) == 0
        assert t.k == 27


class TestCountKmerPositions:
    @pytest.mark.parametrize("nprob", [0.0, 0.1])
    def test_matches_enumeration(self, rng, nprob):
        from tests.conftest import random_reads

        seqs = random_reads(rng, 8, 30, n_prob=nprob)
        batch = ReadBatch.from_sequences(seqs)
        assert count_kmer_positions(batch, 7) == len(
            enumerate_canonical_kmers(batch, 7)
        )

    def test_empty(self):
        assert count_kmer_positions(ReadBatch.empty(), 5) == 0
