import numpy as np
import pytest

from repro.kmers.normalization import DigitalNormalizer
from repro.seqio.records import ReadBatch
from repro.util.rng import rng_for


def coverage_reads(genome, read_len, depth, step=None):
    """Tile a genome ``depth`` times."""
    step = step or max(read_len // depth, 1)
    return [
        genome[i : i + read_len]
        for _ in range(depth)
        for i in range(0, len(genome) - read_len + 1, read_len)
    ]


@pytest.fixture()
def genome():
    rng = rng_for(66, "diginorm")
    return "".join(rng.choice(list("ACGT"), size=400))


class TestNormalize:
    def test_low_coverage_all_kept(self, genome):
        reads = [genome[i : i + 50] for i in range(0, 350, 50)]  # 1x
        batch = ReadBatch.from_sequences(reads)
        kept, stats = DigitalNormalizer(k=15, coverage=5).normalize(batch)
        assert stats.n_reads_kept == len(reads)
        assert kept.n_reads == len(reads)

    def test_redundant_reads_discarded(self, genome):
        read = genome[:60]
        batch = ReadBatch.from_sequences([read] * 30)
        kept, stats = DigitalNormalizer(k=15, coverage=5).normalize(batch)
        # after ~5 copies the median coverage reaches C
        assert stats.n_reads_kept == 5
        assert kept.n_reads == 5

    def test_keep_fraction_drops_with_depth(self, genome):
        shallow = ReadBatch.from_sequences(
            [genome[i : i + 50] for i in range(0, 350, 25)] * 2
        )
        deep = ReadBatch.from_sequences(
            [genome[i : i + 50] for i in range(0, 350, 25)] * 20
        )
        _, s_shallow = DigitalNormalizer(k=15, coverage=10).normalize(shallow)
        _, s_deep = DigitalNormalizer(k=15, coverage=10).normalize(deep)
        assert s_deep.keep_fraction < s_shallow.keep_fraction

    def test_rare_species_survives_deep_common_one(self, genome):
        rng = rng_for(67, "diginorm2")
        other = "".join(rng.choice(list("ACGT"), size=200))
        common = [genome[i : i + 50] for i in range(0, 350, 10)] * 10
        rare = [other[i : i + 50] for i in range(0, 150, 50)]
        batch = ReadBatch.from_sequences(common + rare)
        kept, _ = DigitalNormalizer(k=15, coverage=8).normalize(batch)
        kept_seqs = {kept.sequence(i) for i in range(kept.n_reads)}
        # every rare-species read survives
        assert all(r in kept_seqs for r in rare)

    def test_deterministic(self, genome):
        batch = ReadBatch.from_sequences([genome[:60]] * 10 + [genome[100:160]] * 3)
        a, _ = DigitalNormalizer(k=15, coverage=4).normalize(batch)
        b, _ = DigitalNormalizer(k=15, coverage=4).normalize(batch)
        assert a.n_reads == b.n_reads
        assert np.array_equal(a.read_ids, b.read_ids)

    def test_order_matters_state_accumulates(self, genome):
        """A normalizer instance is stateful across calls (streaming)."""
        norm = DigitalNormalizer(k=15, coverage=3)
        batch = ReadBatch.from_sequences([genome[:60]] * 3)
        kept1, _ = norm.normalize(batch)
        kept2, _ = norm.normalize(batch)
        assert kept1.n_reads == 3
        assert kept2.n_reads == 0  # coverage already saturated
        norm.reset()
        kept3, _ = norm.normalize(batch)
        assert kept3.n_reads == 3

    def test_median_histogram_populated(self, genome):
        batch = ReadBatch.from_sequences([genome[:60]] * 8)
        _, stats = DigitalNormalizer(k=15, coverage=4).normalize(batch)
        assert sum(stats.median_histogram.values()) == 8

    def test_empty_batch(self):
        kept, stats = DigitalNormalizer(k=15, coverage=4).normalize(
            ReadBatch.empty()
        )
        assert kept.n_reads == 0
        assert stats.keep_fraction == 0.0

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            DigitalNormalizer(k=40, coverage=4)  # > one-limb limit
        with pytest.raises(ValueError):
            DigitalNormalizer(k=15, coverage=0)


class TestNormalizePairs:
    def test_pairs_kept_together(self, genome):
        # pair ids shared; one deep region, one shallow mate
        seqs, ids = [], []
        for i in range(12):
            seqs.extend([genome[:60], genome[200:260]])
            ids.extend([i, i])
        batch = ReadBatch.from_sequences(seqs, read_ids=ids)
        kept, stats = DigitalNormalizer(k=15, coverage=4).normalize_pairs(batch)
        # mates always kept/dropped together
        kept_ids = kept.read_ids.tolist()
        for rid in set(kept_ids):
            assert kept_ids.count(rid) == 2
        assert stats.n_reads_kept == kept.n_reads

    def test_pair_kept_if_either_mate_novel(self, genome):
        rng = rng_for(68, "diginorm3")
        novel = "".join(rng.choice(list("ACGT"), size=60))
        seqs = [genome[:60], genome[:60]] * 10  # saturate the region
        ids = [i for i in range(10) for _ in range(2)]
        # final pair: one saturated mate + one novel mate
        seqs += [genome[:60], novel]
        ids += [10, 10]
        batch = ReadBatch.from_sequences(seqs, read_ids=ids)
        kept, _ = DigitalNormalizer(k=15, coverage=3).normalize_pairs(batch)
        assert 10 in kept.read_ids.tolist()
