import pytest

from repro.kmers.codec import KmerCodec
from repro.kmers.engine import enumerate_canonical_kmers
from repro.kmers.minimizers import minimizer_of_each_kmer, split_super_kmers
from repro.seqio.records import ReadBatch


def brute_minimizer(seq, k, m):
    """Smallest forward m-mer of each k-mer window (no Ns)."""
    codec = KmerCodec(m)
    out = []
    for i in range(len(seq) - k + 1):
        window = seq[i : i + k]
        if "N" in window:
            continue
        mmers = [
            codec.encode(window[j : j + m])[1] for j in range(k - m + 1)
        ]
        out.append(min(mmers))
    return out


class TestMinimizers:
    @pytest.mark.parametrize("k,m", [(5, 3), (9, 4), (15, 7)])
    def test_matches_brute_force(self, rng, k, m):
        from tests.conftest import random_reads

        seqs = random_reads(rng, 5, 3 * k)
        batch = ReadBatch.from_sequences(seqs)
        got = minimizer_of_each_kmer(batch, k, m).tolist()
        want = [v for s in seqs for v in brute_minimizer(s, k, m)]
        assert got == want

    def test_respects_n_masking(self):
        batch = ReadBatch.from_sequences(["ACGTNACGTACG"])
        got = minimizer_of_each_kmer(batch, 4, 2)
        assert len(got) == len(brute_minimizer("ACGTNACGTACG", 4, 2))

    def test_empty(self):
        assert len(minimizer_of_each_kmer(ReadBatch.empty(), 5, 3)) == 0


class TestSuperKmers:
    def test_kmers_partitioned_exactly(self, rng):
        from tests.conftest import random_reads

        seqs = random_reads(rng, 8, 50, n_prob=0.02)
        batch = ReadBatch.from_sequences(seqs)
        k, m = 11, 5
        sk = split_super_kmers(batch, k, m)
        direct = enumerate_canonical_kmers(batch, k)
        assert sk.total_kmers == len(direct)

    def test_runs_share_minimizer(self, rng):
        from tests.conftest import random_reads

        seqs = random_reads(rng, 5, 40)
        batch = ReadBatch.from_sequences(seqs)
        k, m = 9, 4
        sk = split_super_kmers(batch, k, m)
        mins = minimizer_of_each_kmer(batch, k, m)
        # walk runs: consecutive k-mer minimizers within a run are equal
        pos = 0
        for i in range(len(sk)):
            run = mins[pos : pos + int(sk.n_kmers[i])]
            assert (run == sk.minimizer[i]).all()
            pos += int(sk.n_kmers[i])
        assert pos == len(mins)

    def test_runs_are_maximal(self, rng):
        from tests.conftest import random_reads

        seqs = random_reads(rng, 5, 40)
        batch = ReadBatch.from_sequences(seqs)
        sk = split_super_kmers(batch, 9, 4)
        # adjacent runs within the same read must have different minimizers
        for i in range(1, len(sk)):
            if sk.read_index[i] == sk.read_index[i - 1]:
                contiguous = (
                    sk.start[i] == sk.start[i - 1] + sk.n_kmers[i - 1]
                )
                if contiguous:
                    assert sk.minimizer[i] != sk.minimizer[i - 1]

    def test_total_bases_accounting(self):
        batch = ReadBatch.from_sequences(["ACGTACGTAC"])
        k, m = 5, 3
        sk = split_super_kmers(batch, k, m)
        assert sk.total_bases == int((sk.n_kmers + k - 1).sum())
        # super-k-mers compact: total bases < raw k*count
        assert sk.total_bases <= sk.total_kmers * k

    def test_bins_in_range(self, rng):
        from tests.conftest import random_reads

        batch = ReadBatch.from_sequences(random_reads(rng, 4, 30))
        sk = split_super_kmers(batch, 7, 3)
        bins = sk.bin_of(16)
        assert bins.min() >= 0
        assert bins.max() < 16

    def test_empty_batch(self):
        sk = split_super_kmers(ReadBatch.empty(), 7, 3)
        assert len(sk) == 0
        assert sk.total_kmers == 0
