from collections import Counter

import numpy as np
import pytest

from repro.kmers.codec import KmerCodec
from repro.kmers.counter import (
    KmerSpectrum,
    count_canonical_kmers,
    spectrum_from_tuples,
)
from repro.kmers.engine import enumerate_canonical_kmers
from repro.seqio.records import ReadBatch


def brute_counts(seqs, k):
    codec = KmerCodec(k)
    counts = Counter()
    for seq in seqs:
        for i in range(len(seq) - k + 1):
            window = seq[i : i + k]
            if "N" not in window:
                counts[codec.canonical(window)] += 1
    return counts


class TestSpectrum:
    def test_counts_match_brute_force(self, rng):
        from tests.conftest import random_reads

        seqs = random_reads(rng, 10, 25)
        batch = ReadBatch.from_sequences(seqs)
        spec = count_canonical_kmers(batch, 6)
        codec = KmerCodec(6)
        got = dict(zip(codec.decode_array(spec.kmers), spec.counts.tolist()))
        assert got == dict(brute_counts(seqs, 6))

    def test_total_equals_tuple_count(self, small_batch):
        tuples = enumerate_canonical_kmers(small_batch, 5)
        spec = spectrum_from_tuples(tuples)
        assert spec.total == len(tuples)

    def test_kmers_sorted(self, small_batch):
        spec = count_canonical_kmers(small_batch, 5)
        assert np.all(spec.kmers.lo[:-1] <= spec.kmers.lo[1:])

    def test_empty(self):
        spec = count_canonical_kmers(ReadBatch.empty(), 5)
        assert spec.n_distinct == 0
        assert spec.total == 0

    def test_count_of_present_and_absent(self):
        batch = ReadBatch.from_sequences(["AAAAAA"])
        spec = count_canonical_kmers(batch, 3)
        codec = KmerCodec(3)
        _, aaa = codec.encode("AAA")
        assert spec.count_of(aaa) == 4
        _, ccc = codec.encode("CCC")
        assert spec.count_of(ccc) == 0

    def test_count_of_two_limb(self):
        batch = ReadBatch.from_sequences(["A" * 40])
        spec = count_canonical_kmers(batch, 35)
        hi, lo = KmerCodec(35).encode("A" * 35)
        assert spec.count_of(lo, hi) == 6
        assert spec.count_of(lo + 1, hi) == 0

    def test_abundance_histogram(self):
        batch = ReadBatch.from_sequences(["AAAAA", "CCCC"])
        spec = count_canonical_kmers(batch, 4)
        # AAAA appears 2x, CCCC->GGGG appears 1x
        hist = spec.abundance_histogram(max_count=4)
        assert hist[1] == 1
        assert hist[2] == 1

    def test_abundance_histogram_clips_tail(self):
        batch = ReadBatch.from_sequences(["A" * 20])
        spec = count_canonical_kmers(batch, 3)
        hist = spec.abundance_histogram(max_count=5)
        assert hist[5] == 1  # 18 occurrences clipped into the tail slot

    def test_length_mismatch_rejected(self):
        from repro.kmers.codec import KmerArray

        with pytest.raises(ValueError):
            KmerSpectrum(
                KmerArray(5, np.zeros(2, dtype=np.uint64)),
                np.zeros(3, dtype=np.int64),
            )
