import numpy as np
import pytest

from repro.kmers.counter import count_canonical_kmers
from repro.kmers.spectrum_analysis import (
    analyze_spectrum,
    find_error_trough,
    recommended_filter_band,
)
from repro.seqio.records import ReadBatch
from repro.util.rng import rng_for


def simulated_batch(coverage, error_rate, genome_len=2000, read_len=80, seed=31):
    rng = rng_for(seed, "spectrum", coverage, error_rate)
    genome = rng.integers(0, 4, size=genome_len, dtype=np.int64).astype(np.uint8)
    from repro.seqio.alphabet import decode_sequence

    reads = []
    n_reads = coverage * genome_len // read_len
    for _ in range(n_reads):
        pos = int(rng.integers(0, genome_len - read_len))
        codes = genome[pos : pos + read_len].copy()
        errs = rng.random(read_len) < error_rate
        if errs.any():
            shift = rng.integers(1, 4, size=int(errs.sum()))
            codes[errs] = (codes[errs].astype(np.int64) + shift) % 4
        reads.append(decode_sequence(codes))
    return ReadBatch.from_sequences(reads)


class TestFindErrorTrough:
    def test_bimodal_histogram(self):
        hist = np.array([0, 1000, 200, 30, 5, 8, 30, 100, 150, 90, 20])
        trough = find_error_trough(hist)
        assert 3 <= trough <= 5

    def test_monotone_histogram_no_trough(self):
        hist = np.array([0, 100, 50, 25, 12, 6, 3, 1])
        assert find_error_trough(hist) == 1


class TestAnalyzeSpectrum:
    def test_coverage_estimate_tracks_depth(self):
        for depth in (15, 30):
            batch = simulated_batch(coverage=depth, error_rate=0.005)
            spectrum = count_canonical_kmers(batch, 17)
            report = analyze_spectrum(spectrum)
            # k-mer coverage = base coverage * (L-k+1)/L ~ 0.8 * depth
            expected = depth * (80 - 17 + 1) / 80
            assert report.coverage_peak == pytest.approx(expected, rel=0.35)

    def test_genome_size_estimate(self):
        batch = simulated_batch(coverage=25, error_rate=0.002, genome_len=3000)
        spectrum = count_canonical_kmers(batch, 17)
        report = analyze_spectrum(spectrum)
        assert report.genome_size_estimate == pytest.approx(3000, rel=0.35)

    def test_error_fraction_grows_with_error_rate(self):
        clean = analyze_spectrum(
            count_canonical_kmers(simulated_batch(25, 0.0), 17)
        )
        noisy = analyze_spectrum(
            count_canonical_kmers(simulated_batch(25, 0.02), 17)
        )
        assert noisy.error_occurrence_fraction > clean.error_occurrence_fraction

    def test_empty_spectrum(self):
        report = analyze_spectrum(count_canonical_kmers(ReadBatch.empty(), 17))
        assert report.coverage_peak == 0
        assert report.genome_size_estimate == 0

    def test_as_dict(self):
        batch = simulated_batch(20, 0.005)
        report = analyze_spectrum(count_canonical_kmers(batch, 17))
        d = report.as_dict()
        assert set(d) >= {"coverage_peak", "genome_size_estimate", "trough"}


class TestRecommendedFilterBand:
    def test_band_brackets_coverage(self):
        batch = simulated_batch(coverage=25, error_rate=0.01)
        report = analyze_spectrum(count_canonical_kmers(batch, 17))
        lo, hi = recommended_filter_band(report)
        assert lo <= report.coverage_peak < hi
        assert lo >= 2

    def test_band_usable_as_filter(self):
        from repro.kmers.filter import FrequencyFilter

        batch = simulated_batch(coverage=25, error_rate=0.01)
        report = analyze_spectrum(count_canonical_kmers(batch, 17))
        lo, hi = recommended_filter_band(report)
        kfilter = FrequencyFilter(lo, hi)
        assert kfilter.accepts(report.coverage_peak)
        assert not kfilter.accepts(1)
