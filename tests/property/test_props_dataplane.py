"""Dataplane property tests: the buffer backing is invisible in the bytes.

Two layers of the same invariant, probed with hypothesis:

1. **Block level** — random tuple batches written through a heap block
   and a shared-memory block read back bit-identical, across one-limb
   and two-limb layouts.
2. **Pipeline level** — a full multipass run with ``dataplane="heap"``
   equals the same run with ``dataplane="shared"`` bit for bit (labels,
   parent array, summary), over random read sets and k spanning the
   one-limb/two-limb boundary.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.index.create import index_create
from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.runtime.buffers import HeapBufferPool, SharedMemoryBufferPool
from repro.seqio.fastq import write_fastq
from repro.seqio.records import FastqRecord

#: k values straddling the one-limb / two-limb boundary (<=31 / >31)
K_VALUES = (15, 31, 33)

# min read length 1: an empty sequence cannot round-trip through FASTQ
reads_strategy = st.lists(
    st.text(alphabet="ACGTN", min_size=1, max_size=70),
    min_size=1,
    max_size=10,
)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2**32 - 1),
    st.integers(0, 200),
    st.sampled_from(K_VALUES),
)
def test_block_backing_invisible(seed, n, k):
    rng = np.random.default_rng(seed)
    lo = rng.integers(0, 2**63, size=n, dtype=np.uint64)
    hi = rng.integers(0, 2**63, size=n, dtype=np.uint64) if k > 31 else None
    ids = rng.integers(0, 2**31, size=n, dtype=np.uint32)
    tuples = KmerTuples(KmerArray(k, lo, hi), ids)

    heap = HeapBufferPool().allocate(k, n)
    heap.write(0, tuples)
    shm_pool = SharedMemoryBufferPool()
    try:
        shm = shm_pool.allocate(k, n)
        shm.write(0, tuples)
        a, b = heap.view(0, n), shm.view(0, n)
        assert np.array_equal(a.kmers.lo, b.kmers.lo)
        if k > 31:
            assert np.array_equal(a.kmers.hi, b.kmers.hi)
        assert np.array_equal(a.read_ids, b.read_ids)
    finally:
        shm_pool.close()


def _run(units, index, k, dataplane):
    cfg = PipelineConfig(
        k=k,
        m=4,
        n_tasks=2,
        n_threads=2,
        n_passes=2,
        write_outputs=False,
        dataplane=dataplane,
    )
    return MetaPrep(cfg).run(units, index=index)


@settings(max_examples=10, deadline=None)
@given(reads_strategy, st.sampled_from(K_VALUES))
def test_pipeline_backing_invisible(seqs, k):
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "reads.fastq"
        write_fastq(
            path,
            [
                FastqRecord(f"r{i}", s, "I" * len(s))
                for i, s in enumerate(seqs)
            ],
        )
        units = [str(path)]
        index = index_create(units, k=k, m=4, n_chunks=8)
        heap = _run(units, index, k, "heap")
        shared = _run(units, index, k, "shared")
    assert np.array_equal(heap.partition.labels, shared.partition.labels)
    assert np.array_equal(heap.partition.parent, shared.partition.parent)
    assert heap.partition.summary == shared.partition.summary
