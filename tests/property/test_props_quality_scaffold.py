"""Hypothesis properties for the quality and scaffolding utilities."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.seqio.quality import (
    decode_phred,
    encode_phred,
    quality_filter,
    trim_tail,
)
from repro.seqio.records import FastqRecord

scores_strategy = st.lists(st.integers(0, 93), min_size=0, max_size=60)


@given(scores_strategy)
def test_phred_roundtrip(scores):
    assert decode_phred(encode_phred(scores)).tolist() == scores


@given(scores_strategy, st.integers(0, 93))
def test_trim_is_prefix(scores, threshold):
    rec = FastqRecord("r", "A" * len(scores), encode_phred(scores))
    out = trim_tail(rec, threshold)
    assert len(out) <= len(rec)
    assert rec.sequence.startswith(out.sequence)
    assert rec.quality.startswith(out.quality)


@given(scores_strategy, st.integers(0, 93))
def test_trim_idempotent(scores, threshold):
    rec = FastqRecord("r", "A" * len(scores), encode_phred(scores))
    once = trim_tail(rec, threshold)
    twice = trim_tail(once, threshold)
    assert once == twice


@given(scores_strategy)
def test_trim_removes_only_below_threshold_suffix_mass(scores):
    """The trimmed suffix must have mean quality below the threshold
    (otherwise trimming it could not have maximized the running sum)."""
    threshold = 20
    rec = FastqRecord("r", "A" * len(scores), encode_phred(scores))
    out = trim_tail(rec, threshold)
    cut = len(out)
    tail = scores[cut:]
    if tail:
        assert sum(threshold - q for q in tail) > 0


@settings(max_examples=40)
@given(
    st.lists(
        st.tuples(st.integers(0, 93), st.integers(10, 50)),
        min_size=0,
        max_size=12,
    ),
    st.floats(0, 40),
)
def test_quality_filter_kept_subset_order_preserved(read_specs, min_q):
    records = [
        FastqRecord(f"r{i}", "A" * n, encode_phred([q] * n))
        for i, (q, n) in enumerate(read_specs)
    ]
    kept, stats = quality_filter(records, min_mean_quality=min_q, min_length=1)
    names = [r.name for r in kept]
    original_order = [r.name for r in records if r.name in set(names)]
    assert names == original_order
    assert stats.n_kept + stats.n_dropped_quality + stats.n_dropped_length == stats.n_in


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_scaffold_never_loses_contig_sequence(seed):
    """Every input contig appears in exactly one scaffold (possibly
    reverse-complemented), regardless of pairing noise."""
    from repro.assembly.scaffold import ScaffoldConfig, scaffold_contigs
    from repro.seqio.alphabet import reverse_complement

    rng = np.random.default_rng(seed)
    genome = "".join(rng.choice(list("ACGT"), size=500))
    contigs = [genome[:200], genome[250:450]]
    # noisy pairs: half genuine spanning pairs, half junk
    pairs = []
    for _ in range(20):
        pos = int(rng.integers(0, 220))
        frag = genome[pos : pos + 280]
        pairs.append((frag[:60], reverse_complement(frag[-60:])))
    junk = "".join(rng.choice(list("ACGT"), size=60))
    pairs.append((junk, junk))
    scaffolds, _ = scaffold_contigs(
        contigs, pairs, ScaffoldConfig(min_links=2)
    )
    joined = " ".join(scaffolds)
    joined_rc = " ".join(reverse_complement(s) for s in scaffolds)
    for contig in contigs:
        assert contig in joined or contig in joined_rc
