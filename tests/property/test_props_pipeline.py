"""End-to-end hypothesis property: the full METAPREP pipeline equals the
explicit read-graph oracle for arbitrary read sets and decompositions.

This is the reproduction's headline invariant (Flick et al.'s theorem plus
METAPREP's implicit-graph implementation of it).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.components import (
    partition_as_frozensets,
    reference_components_networkx,
)
from repro.cc.dsf import DisjointSetForest
from repro.cc.localcc import local_connected_components
from repro.kmers.engine import enumerate_canonical_kmers
from repro.kmers.filter import FrequencyFilter
from repro.seqio.records import ReadBatch
from repro.sort.radix import radix_sort_tuples

reads_strategy = st.lists(
    st.text(alphabet="ACGTN", min_size=0, max_size=40),
    min_size=1,
    max_size=12,
)


def in_memory_pipeline(batch: ReadBatch, k: int, kfilter=None, n_tasks=1):
    """The pipeline's algorithmic core without file I/O: enumerate, split
    by k-mer hash to tasks, sort, LocalCC per task, MergeCC."""
    n = int(batch.read_ids.max()) + 1 if batch.n_reads else 0
    tuples = enumerate_canonical_kmers(batch, k)
    parents = []
    for p in range(n_tasks):
        if len(tuples):
            mine = tuples.take(
                np.flatnonzero(tuples.kmers.lo % np.uint64(n_tasks) == np.uint64(p))
            )
        else:
            mine = tuples
        sorted_mine, _ = radix_sort_tuples(mine)
        forest = DisjointSetForest(n)
        local_connected_components(sorted_mine, forest, kfilter)
        parents.append(forest.parent)
    from repro.cc.mergecc import merge_component_arrays

    merged, _ = merge_component_arrays(parents)
    return merged


@settings(max_examples=40, deadline=None)
@given(reads_strategy, st.integers(2, 9), st.integers(1, 4))
def test_pipeline_equals_oracle(seqs, k, n_tasks):
    batch = ReadBatch.from_sequences(seqs)
    merged = in_memory_pipeline(batch, k, n_tasks=n_tasks)
    got = partition_as_frozensets(merged, batch.read_ids)
    ref = reference_components_networkx(batch, k)
    assert got == ref


@settings(max_examples=30, deadline=None)
@given(
    reads_strategy,
    st.integers(2, 7),
    st.integers(1, 3),
    st.integers(2, 6),
)
def test_pipeline_with_filter_equals_oracle(seqs, k, min_f, width):
    kfilter = FrequencyFilter(min_f, min_f + width)
    batch = ReadBatch.from_sequences(seqs)
    merged = in_memory_pipeline(batch, k, kfilter=kfilter, n_tasks=2)
    got = partition_as_frozensets(merged, batch.read_ids)
    ref = reference_components_networkx(batch, k, kfilter)
    assert got == ref


@settings(max_examples=25, deadline=None)
@given(reads_strategy, st.integers(2, 7))
def test_paired_end_ids_keep_mates_together(seqs, k):
    """Giving both mates one id (paper section 3.2) must keep them in the
    same component even when their sequences share no k-mer."""
    # duplicate each read as its own 'mate' with shared ids
    ids = [i for i in range(len(seqs)) for _ in range(2)]
    doubled = [s for s in seqs for _ in range(2)]
    batch = ReadBatch.from_sequences(doubled, read_ids=ids)
    merged = in_memory_pipeline(batch, k)
    got = partition_as_frozensets(merged, batch.read_ids)
    ref = reference_components_networkx(batch, k)
    assert got == ref


@settings(max_examples=25, deadline=None)
@given(reads_strategy, st.integers(2, 7))
def test_wcc_read_graph_correspondence(seqs, k):
    """Flick et al.'s theorem: reads containing k-mers of one de Bruijn
    WCC land in one read-graph CC.  Verify via the de Bruijn graph built
    with networkx."""
    import networkx as nx

    batch = ReadBatch.from_sequences(seqs)
    tuples = enumerate_canonical_kmers(batch, k)
    if len(tuples) == 0:
        return
    # Read-derived de Bruijn graph: a vertex per observed canonical k-mer,
    # an edge per observed (k+1)-mer (adjacent k-mers within a read).  The
    # overlap-implied-edge convention would join k-mers no read connects
    # and break the correspondence.
    from repro.kmers.codec import KmerCodec

    codec = KmerCodec(k)
    kmer_strs = set(codec.decode_array(tuples.kmers))
    g = nx.Graph()
    g.add_nodes_from(kmer_strs)
    for seq in seqs:
        for i in range(len(seq) - k):
            window = seq[i : i + k + 1]
            if "N" in window:
                continue
            a = codec.canonical(window[:k])
            b = codec.canonical(window[1:])
            if a != b:
                g.add_edge(a, b)
    wcc_label = {}
    for i, comp in enumerate(nx.connected_components(g)):
        for node in comp:
            wcc_label[node] = i

    merged = in_memory_pipeline(batch, k)
    forest = DisjointSetForest.from_parent_array(merged)
    # reads sharing a WCC's k-mers must share a read component
    read_comp_of_wcc = {}
    for kmer_str, rid in zip(
        codec.decode_array(tuples.kmers), tuples.read_ids.tolist()
    ):
        w = wcc_label[kmer_str]
        rc = forest.find(int(rid))
        if w in read_comp_of_wcc:
            assert read_comp_of_wcc[w] == rc
        else:
            read_comp_of_wcc[w] = rc
