"""Hypothesis properties of the k-mer machinery."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmers.codec import KmerCodec
from repro.kmers.engine import enumerate_canonical_kmers
from repro.kmers.counter import count_canonical_kmers
from repro.seqio.alphabet import is_valid_dna, reverse_complement
from repro.seqio.records import ReadBatch

dna = st.text(alphabet="ACGT", min_size=0, max_size=60)
dna_with_n = st.text(alphabet="ACGTN", min_size=0, max_size=60)
reads = st.lists(dna_with_n, min_size=0, max_size=8)


@given(dna)
def test_revcomp_involution(seq):
    assert reverse_complement(reverse_complement(seq)) == seq


@given(dna_with_n)
def test_revcomp_length_preserved(seq):
    assert len(reverse_complement(seq)) == len(seq)


@given(st.integers(2, 63), st.data())
def test_codec_roundtrip(k, data):
    seq = data.draw(st.text(alphabet="ACGT", min_size=k, max_size=k))
    codec = KmerCodec(k)
    assert codec.decode(*codec.encode(seq)) == seq


@given(st.integers(2, 63), st.data())
def test_canonical_strand_invariant(k, data):
    seq = data.draw(st.text(alphabet="ACGT", min_size=k, max_size=k))
    codec = KmerCodec(k)
    assert codec.canonical(seq) == codec.canonical(reverse_complement(seq))
    assert codec.canonical(seq) <= min(seq, reverse_complement(seq))
    assert codec.canonical(seq) == min(seq, reverse_complement(seq))


@settings(max_examples=50)
@given(reads, st.integers(2, 11))
def test_enumeration_counts_and_validity(seqs, k):
    batch = ReadBatch.from_sequences(seqs)
    tuples = enumerate_canonical_kmers(batch, k)
    expected = sum(
        sum(
            1
            for i in range(len(s) - k + 1)
            if is_valid_dna(s[i : i + k])
        )
        for s in seqs
    )
    assert len(tuples) == expected
    codec = KmerCodec(k)
    for kmer in codec.decode_array(tuples.kmers):
        assert kmer == codec.canonical(kmer)


@settings(max_examples=40)
@given(reads, st.integers(2, 9))
def test_enumeration_strand_symmetric_multiset(seqs, k):
    batch_fwd = ReadBatch.from_sequences(seqs)
    batch_rev = ReadBatch.from_sequences([reverse_complement(s) for s in seqs])
    a = enumerate_canonical_kmers(batch_fwd, k)
    b = enumerate_canonical_kmers(batch_rev, k)
    assert sorted(a.kmers.lo.tolist()) == sorted(b.kmers.lo.tolist())


@settings(max_examples=40)
@given(reads, st.integers(2, 9))
def test_spectrum_total_matches(seqs, k):
    batch = ReadBatch.from_sequences(seqs)
    spec = count_canonical_kmers(batch, k)
    tuples = enumerate_canonical_kmers(batch, k)
    assert spec.total == len(tuples)
    assert (spec.counts >= 1).all()


@settings(max_examples=30)
@given(reads, st.integers(3, 9), st.integers(1, 4))
def test_mmer_prefix_consistent_with_strings(seqs, k, m):
    if m >= k:
        m = k - 1
    batch = ReadBatch.from_sequences(seqs)
    tuples = enumerate_canonical_kmers(batch, k)
    codec_k = KmerCodec(k)
    codec_m = KmerCodec(m)
    prefixes = tuples.kmers.mmer_prefix(m)
    for kmer_str, pref in zip(codec_k.decode_array(tuples.kmers), prefixes):
        assert int(pref) == codec_m.encode(kmer_str[:m])[1]
