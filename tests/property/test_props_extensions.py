"""Hypothesis properties for the extension modules (contraction,
normalization, splitting, cleaning)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.contraction import merge_component_arrays_contracted
from repro.cc.dsf import DisjointSetForest
from repro.cc.mergecc import merge_component_arrays
from repro.kmers.filter import FrequencyFilter
from repro.kmers.normalization import DigitalNormalizer
from repro.seqio.records import ReadBatch


def edges_strategy(max_n=30, max_edges=80):
    return st.integers(2, max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=max_edges,
            ),
        )
    )


def partition_of(parent):
    roots = DisjointSetForest.from_parent_array(parent).roots()
    groups = {}
    for v, r in enumerate(roots.tolist()):
        groups.setdefault(r, set()).add(v)
    return {frozenset(g) for g in groups.values()}


@settings(max_examples=50)
@given(edges_strategy(), st.integers(1, 6))
def test_contracted_merge_equals_baseline(case, n_tasks):
    n, edges = case
    chunks = [edges[i::n_tasks] for i in range(n_tasks)]
    parents = []
    for chunk in chunks:
        f = DisjointSetForest(n)
        if chunk:
            us, vs = zip(*chunk)
            f.process_edges(np.array(us), np.array(vs))
        parents.append(f.parent)
    base, _ = merge_component_arrays(parents)
    con, _ = merge_component_arrays_contracted(parents)
    assert partition_of(base) == partition_of(con)


reads_strategy = st.lists(
    st.text(alphabet="ACGT", min_size=12, max_size=30), min_size=0, max_size=10
)


@settings(max_examples=30, deadline=None)
@given(reads_strategy, st.integers(1, 5))
def test_diginorm_kept_set_is_prefix_stable(seqs, coverage):
    """Adding reads at the END never changes which earlier reads are kept
    (streaming property of digital normalization)."""
    batch_all = ReadBatch.from_sequences(seqs + ["ACGTACGTACGTACGT"])
    batch_prefix = ReadBatch.from_sequences(seqs)
    norm_a = DigitalNormalizer(k=7, coverage=coverage)
    kept_a, _ = norm_a.normalize(batch_all)
    norm_b = DigitalNormalizer(k=7, coverage=coverage)
    kept_b, _ = norm_b.normalize(batch_prefix)
    kept_a_prefix = [i for i in kept_a.read_ids.tolist() if i < len(seqs)]
    assert kept_a_prefix == kept_b.read_ids.tolist()


@settings(max_examples=30, deadline=None)
@given(reads_strategy, st.integers(1, 4))
def test_diginorm_never_increases_reads(seqs, coverage):
    batch = ReadBatch.from_sequences(seqs)
    kept, stats = DigitalNormalizer(k=7, coverage=coverage).normalize(batch)
    assert kept.n_reads <= batch.n_reads
    assert stats.n_reads_kept == kept.n_reads


@settings(max_examples=30, deadline=None)
@given(
    st.lists(st.text(alphabet="ACGT", min_size=10, max_size=25), min_size=1, max_size=8),
    st.integers(2, 8),
    st.integers(1, 6),
)
def test_filter_monotone_in_cutoff(seqs, k, base_cutoff):
    """A looser frequency filter never produces a finer partition."""
    from repro.cc.components import reference_components_networkx

    batch = ReadBatch.from_sequences(seqs)
    tight = reference_components_networkx(
        batch, k, FrequencyFilter(1, base_cutoff + 1)
    )
    loose = reference_components_networkx(
        batch, k, FrequencyFilter(1, base_cutoff + 5)
    )
    # every tight component is contained in some loose component
    for comp in tight:
        assert any(comp <= big for big in loose)


@settings(max_examples=25, deadline=None)
@given(st.lists(st.text(alphabet="ACGT", min_size=16, max_size=40), min_size=1, max_size=6))
def test_cleaning_never_invents_kmers(seqs):
    """Tip/bubble removal only deletes edges: the cleaned graph's k-mers
    are a subset of the original solid set."""
    from repro.assembly.cleaning import clean_graph
    from repro.assembly.graph import build_debruijn_graph

    k = 8
    graph = build_debruijn_graph(ReadBatch.from_sequences(seqs), k, 1)
    cleaned, stats = clean_graph(graph)
    assert cleaned.n_edges <= graph.n_edges
    # every remaining edge existed before (same (src,dst,base) multiset)
    def edge_set(g):
        return set(
            zip(
                g.nodes[g.edge_src].tolist(),
                g.nodes[g.edge_dst].tolist(),
                g.edge_base.tolist(),
            )
        )

    assert edge_set(cleaned) <= edge_set(graph)
