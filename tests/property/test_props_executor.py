"""Property tests for the execution backends.

Three properties, probed over seeded-random read sets:

1. **Engine invariance** — the executor choice is invisible in the
   output: for any input, ``partition_from_parent`` produces the same
   labels, parent array, and summary under both engines.
2. **Loud failure** — a worker that raises, or dies outright, mid-pass
   surfaces a clear error on the driver; it never hangs and never yields
   a silently wrong partition.
3. **No residue** — a crashed pass leaks nothing: every shared-memory
   segment the dataplane created is unlinked by the pipeline's
   ``finally`` sweep, so ``/dev/shm`` is clean and the interpreter exits
   without resource-tracker leak warnings.
"""

import multiprocessing as mp
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.runtime.buffers import SEGMENT_PREFIX

import repro.core.pipeline as pipeline_mod
from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.index.create import index_create
from repro.runtime.executor import ExecutorError
from repro.seqio.fastq import write_fastq
from repro.seqio.records import FastqRecord

from tests.conftest import random_reads

HAS_FORK = "fork" in mp.get_all_start_methods()


def _random_unit(tmp_path, seed, n_reads=60, length=50, n_prob=0.02):
    rng = np.random.default_rng(seed)
    seqs = random_reads(rng, n_reads, length=length, n_prob=n_prob)
    path = tmp_path / f"reads_{seed}.fastq"
    write_fastq(
        path,
        [FastqRecord(f"r{i}", s, "I" * len(s)) for i, s in enumerate(seqs)],
    )
    return str(path)


def _run(units, index, executor, **overrides):
    kwargs = dict(
        k=21,
        m=4,
        n_tasks=2,
        n_threads=2,
        n_passes=2,
        write_outputs=False,
        executor=executor,
        max_workers=2,
    )
    kwargs.update(overrides)
    return MetaPrep(PipelineConfig(**kwargs)).run(units, index=index)


class TestEngineInvariance:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_reads_same_partition(self, tmp_path, seed):
        units = [_random_unit(tmp_path, seed)]
        index = index_create(units, k=21, m=4, n_chunks=8)
        serial = _run(units, index, "serial")
        process = _run(units, index, "process")
        assert np.array_equal(
            serial.partition.labels, process.partition.labels
        )
        assert np.array_equal(
            serial.partition.parent, process.partition.parent
        )
        assert serial.partition.summary == process.partition.summary

    @pytest.mark.parametrize("seed", [0, 1])
    def test_single_worker_pool_equals_serial(self, tmp_path, seed):
        """Degenerate pool (1 worker) is still the same algorithm."""
        units = [_random_unit(tmp_path, seed, n_reads=40)]
        index = index_create(units, k=21, m=4, n_chunks=8)
        serial = _run(units, index, "serial")
        process = _run(units, index, "process", max_workers=1)
        assert np.array_equal(
            serial.partition.labels, process.partition.labels
        )


# ---- crash injection --------------------------------------------------
# Module-level stand-ins for the pipeline's chunk worker: under the fork
# start method the pool's children inherit the parent's (monkeypatched)
# module state, so these run *inside worker processes*, mid-pass.

_ORIGINAL_CHUNK_TASK = pipeline_mod._kmergen_chunk_task


def _raise_in_worker(job):
    if job.chunk == 3:
        raise RuntimeError("injected worker failure on chunk 3")
    return _ORIGINAL_CHUNK_TASK(job)


def _die_in_worker(job):
    if job.chunk == 2:
        os._exit(23)  # no exception, no result: simulates segfault/OOM-kill
    return _ORIGINAL_CHUNK_TASK(job)


@pytest.mark.skipif(not HAS_FORK, reason="requires fork start method")
class TestWorkerFailure:
    @pytest.fixture()
    def units_and_index(self, tmp_path):
        units = [_random_unit(tmp_path, seed=9)]
        return units, index_create(units, k=21, m=4, n_chunks=8)

    def test_worker_exception_surfaces(
        self, units_and_index, monkeypatch
    ):
        units, index = units_and_index
        monkeypatch.setattr(
            pipeline_mod, "_kmergen_chunk_task", _raise_in_worker
        )
        with pytest.raises(RuntimeError, match="injected worker failure"):
            _run(units, index, "process")

    def test_worker_death_raises_executor_error(
        self, units_and_index, monkeypatch
    ):
        units, index = units_and_index
        monkeypatch.setattr(
            pipeline_mod, "_kmergen_chunk_task", _die_in_worker
        )
        with pytest.raises(ExecutorError, match="worker died"):
            _run(units, index, "process")

    def test_serial_engine_hits_same_injected_error(
        self, units_and_index, monkeypatch
    ):
        """The injection seam is engine-agnostic: serial raises too, so
        the property is about *surfacing*, not executor-specific luck."""
        units, index = units_and_index
        monkeypatch.setattr(
            pipeline_mod, "_kmergen_chunk_task", _raise_in_worker
        )
        with pytest.raises(RuntimeError, match="injected worker failure"):
            _run(units, index, "serial")


# ---- crash residue ----------------------------------------------------


def _our_shm_segments():
    """Names of this process's dataplane segments still in ``/dev/shm``."""
    shm_dir = Path("/dev/shm")
    if not shm_dir.is_dir():
        pytest.skip("no /dev/shm on this platform")
    prefix = f"{SEGMENT_PREFIX}-{os.getpid()}-"
    return sorted(p.name for p in shm_dir.iterdir() if p.name.startswith(prefix))


@pytest.mark.skipif(not HAS_FORK, reason="requires fork start method")
class TestCrashResidue:
    @pytest.fixture()
    def units_and_index(self, tmp_path):
        units = [_random_unit(tmp_path, seed=9)]
        return units, index_create(units, k=21, m=4, n_chunks=8)

    def test_worker_exception_leaves_no_shm_segments(
        self, units_and_index, monkeypatch
    ):
        units, index = units_and_index
        monkeypatch.setattr(
            pipeline_mod, "_kmergen_chunk_task", _raise_in_worker
        )
        with pytest.raises(RuntimeError, match="injected worker failure"):
            _run(units, index, "process")
        assert _our_shm_segments() == []

    def test_worker_death_leaves_no_shm_segments(
        self, units_and_index, monkeypatch
    ):
        units, index = units_and_index
        monkeypatch.setattr(
            pipeline_mod, "_kmergen_chunk_task", _die_in_worker
        )
        with pytest.raises(ExecutorError, match="worker died"):
            _run(units, index, "process")
        assert _our_shm_segments() == []

    def test_clean_run_leaves_no_shm_segments(self, units_and_index):
        units, index = units_and_index
        _run(units, index, "process")
        assert _our_shm_segments() == []

    def test_crashed_run_exits_without_tracker_warning(self, tmp_path):
        """The resource tracker reports leaks only at interpreter exit,
        so the whole crash scenario runs in a subprocess and the property
        is asserted on its stderr."""
        script = textwrap.dedent(
            """
            import os

            import repro.core.pipeline as pipeline_mod
            from repro.core.config import PipelineConfig
            from repro.core.pipeline import MetaPrep
            from repro.index.create import index_create
            from repro.runtime.executor import ExecutorError

            _ORIGINAL = pipeline_mod._kmergen_chunk_task

            def _die(job):
                if job.chunk == 2:
                    os._exit(23)
                return _ORIGINAL(job)

            pipeline_mod._kmergen_chunk_task = _die

            units = [os.environ["CRASH_TEST_UNIT"]]
            index = index_create(units, k=21, m=4, n_chunks=8)
            cfg = PipelineConfig(
                k=21, m=4, n_tasks=2, n_threads=2, n_passes=2,
                write_outputs=False, executor="process", max_workers=2,
            )
            try:
                MetaPrep(cfg).run(units, index=index)
            except ExecutorError:
                pass
            else:
                raise SystemExit("expected the injected crash")
            """
        )
        unit = _random_unit(tmp_path, seed=9)
        env = dict(os.environ, CRASH_TEST_UNIT=unit)
        src = Path(pipeline_mod.__file__).resolve().parents[2]
        env["PYTHONPATH"] = os.pathsep.join(
            filter(None, [str(src), env.get("PYTHONPATH", "")])
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            text=True,
            timeout=120,
            cwd=tmp_path,
        )
        assert result.returncode == 0, result.stderr
        assert "leaked shared_memory" not in result.stderr, result.stderr
