"""Hypothesis properties of union-find and the distributed merge."""

import networkx as nx
import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cc.dsf import DisjointSetForest
from repro.cc.mergecc import merge_component_arrays
from repro.cc.components import compact_labels


def edges_strategy(max_n=40, max_edges=120):
    return st.integers(2, max_n).flatmap(
        lambda n: st.tuples(
            st.just(n),
            st.lists(
                st.tuples(st.integers(0, n - 1), st.integers(0, n - 1)),
                max_size=max_edges,
            ),
        )
    )


def nx_partition(n, edges):
    g = nx.Graph()
    g.add_nodes_from(range(n))
    g.add_edges_from(edges)
    return {frozenset(c) for c in nx.connected_components(g)}


def dsf_partition(forest):
    roots = forest.roots()
    groups = {}
    for v, r in enumerate(roots.tolist()):
        groups.setdefault(r, set()).add(v)
    return {frozenset(c) for c in groups.values()}


@settings(max_examples=80)
@given(edges_strategy())
def test_union_find_matches_networkx(case):
    n, edges = case
    forest = DisjointSetForest(n)
    if edges:
        us, vs = zip(*edges)
        forest.process_edges(np.array(us), np.array(vs))
    assert dsf_partition(forest) == nx_partition(n, edges)


@settings(max_examples=50)
@given(edges_strategy(), st.randoms(use_true_random=False))
def test_edge_order_irrelevant(case, pyrandom):
    n, edges = case
    a = DisjointSetForest(n)
    if edges:
        us, vs = zip(*edges)
        a.process_edges(np.array(us), np.array(vs))
    shuffled = list(edges)
    pyrandom.shuffle(shuffled)
    b = DisjointSetForest(n)
    if shuffled:
        us, vs = zip(*shuffled)
        b.process_edges(np.array(us), np.array(vs))
    assert dsf_partition(a) == dsf_partition(b)


@settings(max_examples=50)
@given(edges_strategy(), st.integers(1, 6))
def test_distributed_merge_equals_sequential(case, n_tasks):
    """Splitting the edges across P tasks and tree-merging the forests
    gives the same partition as one sequential union-find."""
    n, edges = case
    ref = DisjointSetForest(n)
    if edges:
        us, vs = zip(*edges)
        ref.process_edges(np.array(us), np.array(vs))

    chunks = [edges[i::n_tasks] for i in range(n_tasks)]
    parents = []
    for chunk in chunks:
        f = DisjointSetForest(n)
        if chunk:
            us, vs = zip(*chunk)
            f.process_edges(np.array(us), np.array(vs))
        parents.append(f.parent)
    merged, _ = merge_component_arrays(parents)
    merged_forest = DisjointSetForest.from_parent_array(merged)
    assert dsf_partition(merged_forest) == dsf_partition(ref)


@settings(max_examples=50)
@given(edges_strategy())
def test_compact_labels_canonical(case):
    """Two equivalent forests produce identical compact labelings."""
    n, edges = case
    a = DisjointSetForest(n)
    b = DisjointSetForest(n)
    if edges:
        us, vs = zip(*edges)
        a.process_edges(np.array(us), np.array(vs))
        b.process_edges(np.array(vs), np.array(us))  # reversed endpoints
    assert np.array_equal(compact_labels(a.parent), compact_labels(b.parent))


@settings(max_examples=50)
@given(edges_strategy())
def test_union_by_index_root_is_max_of_component(case):
    """With union-by-index the root of every tree is its maximum vertex —
    a structural invariant of the paper's union policy."""
    n, edges = case
    forest = DisjointSetForest(n)
    if edges:
        us, vs = zip(*edges)
        forest.process_edges(np.array(us), np.array(vs))
    roots = forest.roots()
    for comp in dsf_partition(forest):
        members = np.array(sorted(comp))
        assert roots[members[0]] == members.max()
