"""Hypothesis properties of radix sorting and range partitioning."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.sort.partition import range_partition
from repro.sort.radix import radix_sort_tuples
from repro.sort.validate import is_sorted_kmers, verify_sort


def tuples_strategy(k):
    limit = (1 << (2 * k)) - 1 if k <= 31 else np.iinfo(np.uint64).max
    return st.lists(
        st.tuples(
            st.integers(0, limit if k <= 31 else (1 << 62)),
            st.integers(0, 2**32 - 1),
        ),
        min_size=0,
        max_size=200,
    )


@settings(max_examples=60)
@given(tuples_strategy(13))
def test_radix_sort_is_sorted_permutation(pairs):
    lo = np.array([p[0] for p in pairs], dtype=np.uint64)
    ids = np.array([p[1] for p in pairs], dtype=np.uint32)
    tuples = KmerTuples(KmerArray(13, lo), ids)
    out, _ = radix_sort_tuples(tuples)
    verify_sort(tuples, out)


@settings(max_examples=30)
@given(tuples_strategy(40))
def test_radix_sort_two_limb(pairs):
    lo = np.array([p[0] for p in pairs], dtype=np.uint64)
    hi = np.array([p[1] % (1 << 16) for p in pairs], dtype=np.uint64)
    ids = np.array([p[1] for p in pairs], dtype=np.uint32)
    tuples = KmerTuples(KmerArray(40, lo, hi), ids)
    out, _ = radix_sort_tuples(tuples)
    verify_sort(tuples, out)


@settings(max_examples=60)
@given(tuples_strategy(13))
def test_radix_matches_numpy_sort(pairs):
    lo = np.array([p[0] for p in pairs], dtype=np.uint64)
    ids = np.array([p[1] for p in pairs], dtype=np.uint32)
    tuples = KmerTuples(KmerArray(13, lo), ids)
    out, _ = radix_sort_tuples(tuples)
    assert np.array_equal(out.kmers.lo, np.sort(lo))


@settings(max_examples=60)
@given(tuples_strategy(13))
def test_skip_constant_equivalent_to_full(pairs):
    lo = np.array([p[0] for p in pairs], dtype=np.uint64)
    ids = np.array([p[1] for p in pairs], dtype=np.uint32)
    tuples = KmerTuples(KmerArray(13, lo), ids)
    a, _ = radix_sort_tuples(tuples, skip_constant=True)
    b, _ = radix_sort_tuples(tuples, skip_constant=False)
    assert np.array_equal(a.kmers.lo, b.kmers.lo)
    assert np.array_equal(a.read_ids, b.read_ids)


@settings(max_examples=40)
@given(
    tuples_strategy(13),
    st.integers(1, 6),
    st.integers(2, 4),
)
def test_range_partition_then_sort_equals_global_sort(pairs, n_parts, m):
    """Partitioning by prefix bins then sorting each partition and
    concatenating must equal one global sort — LocalSort's core property."""
    k = 13
    lo = np.array([p[0] for p in pairs], dtype=np.uint64)
    ids = np.array([p[1] for p in pairs], dtype=np.uint32)
    tuples = KmerTuples(KmerArray(k, lo), ids)

    counts = np.bincount(
        tuples.kmers.mmer_prefix(m).astype(np.int64), minlength=4**m
    )
    from repro.index.passplan import balanced_boundaries

    edges = balanced_boundaries(counts, n_parts)
    parts, _ = range_partition(tuples, m, edges)
    sorted_parts = [radix_sort_tuples(p)[0] for p in parts]
    nonempty = [p for p in sorted_parts if len(p)]
    if nonempty:
        merged = KmerTuples.concatenate(nonempty)
    else:
        merged = KmerTuples.empty(k)
    global_sorted, _ = radix_sort_tuples(tuples)
    assert is_sorted_kmers(merged.kmers)
    assert np.array_equal(merged.kmers.lo, global_sorted.kmers.lo)
