"""Property tests for the all-to-all exchange schedule.

The distributed engine routes real wire traffic with
:func:`repro.runtime.comm.all_to_all_schedule`, so its combinatorial
invariants are now correctness properties of the network plane, not just
of the byte-accounting model:

* **coverage** — every ordered (sender, receiver) pair appears exactly
  once across the rounds (each task sends to every task, itself
  included, and never twice);
* **contention-freedom** — within one round no task sends twice and no
  task receives twice, the property that lets a round's messages all
  fly concurrently.
"""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.comm import all_to_all_schedule


@settings(max_examples=60, deadline=None)
@given(n_tasks=st.integers(min_value=1, max_value=64))
def test_every_ordered_pair_exactly_once(n_tasks):
    schedule = all_to_all_schedule(n_tasks)
    assert len(schedule) == n_tasks
    pairs = Counter(pair for stage in schedule for pair in stage)
    expected = {
        (s, r) for s in range(n_tasks) for r in range(n_tasks)
    }
    assert set(pairs) == expected
    assert set(pairs.values()) == {1}


@settings(max_examples=60, deadline=None)
@given(n_tasks=st.integers(min_value=1, max_value=64))
def test_no_task_sends_or_receives_twice_per_round(n_tasks):
    for stage in all_to_all_schedule(n_tasks):
        senders = [s for s, _ in stage]
        receivers = [r for _, r in stage]
        assert len(set(senders)) == len(senders) == n_tasks
        assert len(set(receivers)) == len(receivers) == n_tasks


@settings(max_examples=60, deadline=None)
@given(n_tasks=st.integers(min_value=1, max_value=64))
def test_stage_zero_is_the_local_round(n_tasks):
    # stage 0 is the self-"send" kept for accounting symmetry: the
    # distributed engine's diagonal (sender == owner) stays off the wire
    schedule = all_to_all_schedule(n_tasks)
    assert schedule[0] == [(p, p) for p in range(n_tasks)]
