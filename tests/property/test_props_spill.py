"""Spill format property tests: disk is invisible in the bytes.

Hypothesis probes of the out-of-core wire format, mirroring the
dataplane invariant one layer down:

1. **Round trip** — a random block spilled with ``write_spill`` and
   restored with ``read_spill`` is bit-identical, across one-limb and
   two-limb layouts, all lengths including zero, and partial-prefix
   spills.
2. **Region tiling** — a preallocated spill file filled at random cut
   points equals the single-shot spill byte for byte, which is the
   property the out-of-core all-to-all's uncoordinated offset writes
   rest on.
"""

import tempfile
from pathlib import Path

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples
from repro.runtime.buffers import HeapBufferPool
from repro.runtime.spill import (
    SpillTarget,
    create_spill_file,
    read_spill,
    write_spill,
    write_spill_region,
)

#: k values straddling the one-limb / two-limb boundary (<=31 / >31)
K_VALUES = (15, 31, 33)


def _random_tuples(seed, n, k):
    rng = np.random.default_rng(seed)
    lo = rng.integers(0, 2**63, size=n, dtype=np.uint64)
    hi = rng.integers(0, 2**63, size=n, dtype=np.uint64) if k > 31 else None
    ids = rng.integers(0, 2**32, size=n, dtype=np.uint32)
    return KmerTuples(KmerArray(k, lo, hi), ids)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2**32 - 1),
    st.integers(0, 200),
    st.sampled_from(K_VALUES),
)
def test_spill_round_trip_bit_identical(seed, n, k):
    tuples = _random_tuples(seed, n, k)
    pool = HeapBufferPool()
    try:
        block = pool.allocate(k, n)
        block.write(0, tuples)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "block.spill"
            write_spill(path, block)
            got = read_spill(path, pool)
        assert got.capacity == n
        view = got.view(0, n)
        assert np.array_equal(view.kmers.lo, tuples.kmers.lo)
        if k > 31:
            assert np.array_equal(view.kmers.hi, tuples.kmers.hi)
        assert np.array_equal(view.read_ids, tuples.read_ids)
    finally:
        pool.close()


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2**32 - 1),
    st.integers(1, 200),
    st.integers(0, 200),
    st.sampled_from(K_VALUES),
)
def test_partial_prefix_spill_round_trip(seed, n, prefix, k):
    """Spilling the first ``length`` tuples of a larger block restores
    exactly that prefix (the partially-filled-block case)."""
    prefix = min(prefix, n)
    tuples = _random_tuples(seed, n, k)
    pool = HeapBufferPool()
    try:
        block = pool.allocate(k, n)
        block.write(0, tuples)
        with tempfile.TemporaryDirectory() as tmp:
            path = Path(tmp) / "block.spill"
            write_spill(path, block, length=prefix)
            got = read_spill(path, pool)
        assert got.capacity == prefix
        view = got.view(0, prefix)
        assert np.array_equal(view.kmers.lo, tuples.kmers.lo[:prefix])
        assert np.array_equal(view.read_ids, tuples.read_ids[:prefix])
    finally:
        pool.close()


@settings(max_examples=30, deadline=None)
@given(
    st.integers(0, 2**32 - 1),
    st.integers(0, 120),
    st.lists(st.integers(0, 120), max_size=6),
    st.sampled_from(K_VALUES),
)
def test_region_tiling_equals_single_shot(seed, n, raw_cuts, k):
    """Any tiling of [0, n) by regions — including empty ones — fills a
    preallocated file to byte equality with the one-shot spill."""
    tuples = _random_tuples(seed, n, k)
    cuts = sorted({0, n, *[c % (n + 1) for c in raw_cuts]})
    pool = HeapBufferPool()
    try:
        block = pool.allocate(k, n)
        block.write(0, tuples)
        with tempfile.TemporaryDirectory() as tmp:
            one_shot = Path(tmp) / "one.spill"
            write_spill(one_shot, block)
            regioned = Path(tmp) / "regioned.spill"
            create_spill_file(regioned, k, n)
            target = SpillTarget(str(regioned), k, n)
            for lo, hi in zip(cuts[:-1], cuts[1:]):
                end = write_spill_region(
                    target, lo, tuples.take(np.arange(lo, hi))
                )
                assert end == hi
            assert one_shot.read_bytes() == regioned.read_bytes()
    finally:
        pool.close()
