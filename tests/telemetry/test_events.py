"""Wire format: fixed-size records, truncated tails, incremental reads."""

import pytest

from repro.runtime.work import StepNames
from repro.telemetry.events import (
    HEADER,
    KIND_COUNTER,
    KIND_SPAN,
    MAGIC,
    RECORD,
    VERSION,
    WELL_KNOWN_NAMES,
    SpoolWriter,
    name_id,
    read_spool,
)


class TestRegistry:
    def test_ids_are_positions(self):
        for i, name in enumerate(WELL_KNOWN_NAMES):
            assert name_id(name) == i

    def test_step_names_all_registered(self):
        for step in StepNames.ORDER:
            name_id(step)  # does not raise

    def test_unregistered_name_rejected(self):
        with pytest.raises(ValueError, match="unregistered"):
            name_id("no.such.metric")

    def test_registry_fits_u16(self):
        assert len(WELL_KNOWN_NAMES) < (1 << 16)

    def test_record_is_28_bytes(self):
        # the documented size; offset arithmetic in the merger relies on it
        assert RECORD.size == 28


class TestRoundtrip:
    def test_write_read(self, tmp_path):
        path = tmp_path / "w1-1.evt"
        w = SpoolWriter(path)
        w.write(KIND_SPAN, StepNames.KMERGEN, task=3, aux=7,
                value_a=100, value_b=250)
        w.write(KIND_COUNTER, "cc.unions", task=0, value_a=42)
        w.close()

        records, offset = read_spool(path)
        assert offset == HEADER.size + 2 * RECORD.size
        span, counter = records
        assert span.kind == KIND_SPAN
        assert span.name == StepNames.KMERGEN
        assert (span.task, span.aux) == (3, 7)
        assert (span.value_a, span.value_b) == (100, 250)
        assert counter.name == "cc.unions"
        assert counter.value_a == 42

    def test_incremental_offsets(self, tmp_path):
        path = tmp_path / "w.evt"
        w = SpoolWriter(path)
        w.write(KIND_COUNTER, "cc.unions", value_a=1)
        first, offset = read_spool(path)
        assert len(first) == 1

        w.write(KIND_COUNTER, "cc.unions", value_a=2)
        w.close()
        second, offset2 = read_spool(path, offset)
        assert [r.value_a for r in second] == [2]
        assert offset2 == offset + RECORD.size

    def test_reopen_does_not_duplicate_header(self, tmp_path):
        path = tmp_path / "w.evt"
        SpoolWriter(path).close()
        w = SpoolWriter(path)  # e.g. the fork guard re-opening
        w.write(KIND_COUNTER, "cc.unions", value_a=5)
        w.close()
        records, _ = read_spool(path)
        assert [r.value_a for r in records] == [5]


class TestCrashTails:
    def test_truncated_tail_left_for_next_read(self, tmp_path):
        path = tmp_path / "w.evt"
        w = SpoolWriter(path)
        w.write(KIND_COUNTER, "cc.unions", value_a=1)
        w.close()
        # simulate a writer dying mid-record
        with open(path, "ab") as fh:
            fh.write(RECORD.pack(KIND_COUNTER, 0, 0, 0, 9, 0)[: RECORD.size // 2])

        records, offset = read_spool(path)
        assert [r.value_a for r in records] == [1]
        # the partial tail was not consumed
        assert offset == HEADER.size + RECORD.size

    def test_header_only_file(self, tmp_path):
        path = tmp_path / "w.evt"
        SpoolWriter(path).close()
        assert read_spool(path) == ([], HEADER.size)

    def test_incomplete_header(self, tmp_path):
        path = tmp_path / "w.evt"
        path.write_bytes(MAGIC)  # half a header
        assert read_spool(path) == ([], 0)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "w.evt"
        path.write_bytes(HEADER.pack(b"NOPE", VERSION, 0))
        with pytest.raises(ValueError, match="not a telemetry spool"):
            read_spool(path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "w.evt"
        path.write_bytes(HEADER.pack(MAGIC, VERSION + 1, 0))
        with pytest.raises(ValueError, match="version"):
            read_spool(path)

    def test_unknown_name_id_rejected(self, tmp_path):
        path = tmp_path / "w.evt"
        with open(path, "wb") as fh:
            fh.write(HEADER.pack(MAGIC, VERSION, 0))
            fh.write(RECORD.pack(KIND_COUNTER, 65000, 0, 0, 1, 0))
        with pytest.raises(ValueError, match="unknown name id"):
            read_spool(path)
