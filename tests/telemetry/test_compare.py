"""Measured-vs-projected gap report."""

import numpy as np
import pytest

from repro.core.report import format_gap_report
from repro.runtime.timing import ProjectedTimes
from repro.runtime.work import StepNames
from repro.telemetry.collect import RunTelemetry, SpanEvent
from repro.telemetry.compare import compare_measured_projected
from repro.util.timers import TimeBreakdown


def projection(**step_seconds):
    return ProjectedTimes(
        machine="edison",
        n_tasks=1,
        per_task={k: np.array([v]) for k, v in step_seconds.items()},
    )


class TestRatios:
    def test_in_band_not_drifted(self):
        measured = TimeBreakdown({StepNames.LOCALSORT: 1.2})
        report = compare_measured_projected(
            measured, projection(**{StepNames.LOCALSORT: 1.0})
        )
        (row,) = report.rows
        assert row.ratio == pytest.approx(1.2)
        assert not row.drifted

    def test_out_of_band_drifts(self):
        measured = TimeBreakdown({StepNames.LOCALSORT: 5.0})
        report = compare_measured_projected(
            measured, projection(**{StepNames.LOCALSORT: 1.0})
        )
        assert [r.step for r in report.drifted] == [StepNames.LOCALSORT]

    def test_zero_projection_with_real_measurement_drifts(self):
        measured = TimeBreakdown({StepNames.LOCALSORT: 1.0})
        report = compare_measured_projected(
            measured, projection(**{StepNames.LOCALSORT: 0.0})
        )
        (row,) = report.rows
        assert row.ratio is None
        assert row.drifted

    def test_negligible_both_sides_never_flagged(self):
        measured = TimeBreakdown({StepNames.LOCALSORT: 1e-6})
        report = compare_measured_projected(
            measured, projection(**{StepNames.LOCALSORT: 1e-9})
        )
        assert report.drifted == []

    def test_steps_in_paper_order(self):
        measured = TimeBreakdown(
            {StepNames.LOCALSORT: 1.0, StepNames.KMERGEN: 2.0}
        )
        report = compare_measured_projected(
            measured,
            projection(**{StepNames.KMERGEN: 2.0, StepNames.LOCALSORT: 1.0}),
        )
        assert [r.step for r in report.rows] == [
            StepNames.KMERGEN,
            StepNames.LOCALSORT,
        ]

    def test_totals(self):
        measured = TimeBreakdown(
            {StepNames.KMERGEN: 2.0, StepNames.LOCALSORT: 2.0}
        )
        report = compare_measured_projected(
            measured,
            projection(**{StepNames.KMERGEN: 1.0, StepNames.LOCALSORT: 1.0}),
        )
        assert report.measured_total == pytest.approx(4.0)
        assert report.projected_total == pytest.approx(2.0)
        assert report.total_ratio == pytest.approx(2.0)


class TestInputs:
    def test_run_telemetry_uses_attached_projection(self):
        run = RunTelemetry(
            t0_ns=0,
            n_tasks=1,
            spans=[
                SpanEvent(StepNames.LOCALSORT, 0, -1, 0, 2_000_000_000)
            ],
            projected=projection(**{StepNames.LOCALSORT: 1.0}),
        )
        report = compare_measured_projected(run)
        (row,) = report.rows
        assert row.measured_seconds == pytest.approx(2.0)
        assert row.ratio == pytest.approx(2.0)

    def test_no_projection_anywhere_rejected(self):
        run = RunTelemetry(t0_ns=0, n_tasks=1)
        with pytest.raises(ValueError, match="no projection"):
            compare_measured_projected(run)

    def test_bad_band_rejected(self):
        measured = TimeBreakdown({StepNames.LOCALSORT: 1.0})
        with pytest.raises(ValueError, match="band"):
            compare_measured_projected(
                measured,
                projection(**{StepNames.LOCALSORT: 1.0}),
                band=(2.0, 0.5),
            )


class TestFormatting:
    def test_gap_table_rows_and_flags(self):
        measured = TimeBreakdown(
            {StepNames.KMERGEN: 5.0, StepNames.LOCALSORT: 1.0}
        )
        report = compare_measured_projected(
            measured,
            projection(**{StepNames.KMERGEN: 1.0, StepNames.LOCALSORT: 1.0}),
        )
        out = format_gap_report(report)
        lines = out.splitlines()
        assert "measured vs projected" in lines[0]
        kmergen_line = next(l for l in lines if l.startswith(StepNames.KMERGEN))
        assert "DRIFT" in kmergen_line
        localsort_line = next(
            l for l in lines if l.startswith(StepNames.LOCALSORT)
        )
        assert "DRIFT" not in localsort_line
        assert lines[-1].startswith("Total")

    def test_none_ratio_rendered_as_dash(self):
        measured = TimeBreakdown({StepNames.KMERGEN: 1.0})
        report = compare_measured_projected(
            measured, projection(**{StepNames.KMERGEN: 0.0})
        )
        out = format_gap_report(report)
        row = next(
            l for l in out.splitlines() if l.startswith(StepNames.KMERGEN)
        )
        assert " - " in row or row.rstrip().endswith("DRIFT")
