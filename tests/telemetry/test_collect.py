"""Collector merging, barrier aggregation semantics, and spool sweeping."""

import gc

import numpy as np
import pytest

from repro import telemetry
from repro.runtime.timing import ProjectedTimes
from repro.runtime.work import StepNames
from repro.telemetry.collect import (
    RUN_FILENAME,
    RunTelemetry,
    SpanEvent,
    TelemetryCollector,
)
from repro.telemetry.runtime import TelemetrySettings


@pytest.fixture(autouse=True)
def clean_state():
    telemetry.deactivate()
    yield
    telemetry.deactivate()


def emit_into(collector, fn):
    telemetry.activate(collector.settings)
    try:
        fn()
    finally:
        telemetry.deactivate()


class TestMerge:
    def test_counters_sum_gauges_max(self, tmp_path):
        collector = TelemetryCollector(tmp_path)

        def emit():
            telemetry.add_counter("cc.unions", 5, task=0)
            telemetry.add_counter("cc.unions", 7, task=0)
            telemetry.add_counter("cc.unions", 1, task=1)
            telemetry.set_gauge("buffers.pool_hwm_bytes", 100, task=0)
            telemetry.set_gauge("buffers.pool_hwm_bytes", 60, task=0)

        emit_into(collector, emit)
        run = collector.finalize(n_tasks=2)
        assert run.counters["cc.unions"] == {0: 12, 1: 1}
        assert run.counter_total("cc.unions") == 13
        assert run.gauge_max("buffers.pool_hwm_bytes") == 100
        collector.close()

    def test_incremental_merge_reads_only_new_tail(self, tmp_path):
        collector = TelemetryCollector(tmp_path)
        telemetry.activate(collector.settings)
        telemetry.add_counter("cc.unions", 1)
        assert collector.merge() == 1
        assert collector.merge() == 0  # nothing new
        telemetry.add_counter("cc.unions", 2)
        assert collector.merge() == 1
        telemetry.deactivate()
        run = collector.finalize(n_tasks=1)
        assert run.counter_total("cc.unions") == 3  # no double counting
        collector.close()

    def test_spans_sorted_by_start(self, tmp_path):
        collector = TelemetryCollector(tmp_path)

        def emit():
            telemetry.record_span(StepNames.LOCALSORT, 200, 300, task=0)
            telemetry.record_span(StepNames.KMERGEN, 50, 120, task=0)

        emit_into(collector, emit)
        run = collector.finalize(n_tasks=1)
        assert [s.name for s in run.spans] == [
            StepNames.KMERGEN,
            StepNames.LOCALSORT,
        ]
        collector.close()

    def test_finalize_merges_pending_records(self, tmp_path):
        collector = TelemetryCollector(tmp_path)
        emit_into(collector, lambda: telemetry.add_counter("cc.unions", 4))
        # no explicit merge() call
        run = collector.finalize(n_tasks=1)
        assert run.counter_total("cc.unions") == 4
        collector.close()


class TestBarrierSemantics:
    def run_with_spans(self):
        # task 0 works 2s across two spans; task 1 works 3s in one
        return RunTelemetry(
            t0_ns=0,
            n_tasks=2,
            spans=[
                SpanEvent(StepNames.LOCALSORT, 0, 0, 0, 1_000_000_000),
                SpanEvent(StepNames.LOCALSORT, 0, 1, 1_000_000_000, 2_000_000_000),
                SpanEvent(StepNames.LOCALSORT, 1, 0, 0, 3_000_000_000),
            ],
        )

    def test_step_seconds_is_max_over_per_task_sums(self):
        run = self.run_with_spans()
        per_task = run.per_task_step_seconds(StepNames.LOCALSORT)
        assert per_task == {0: pytest.approx(2.0), 1: pytest.approx(3.0)}
        assert run.step_seconds(StepNames.LOCALSORT) == pytest.approx(3.0)

    def test_breakdown_carries_critical_path(self):
        run = self.run_with_spans()
        bd = run.breakdown()
        assert bd.seconds[StepNames.LOCALSORT] == pytest.approx(3.0)

    def test_absent_step_is_zero(self):
        assert self.run_with_spans().step_seconds(StepNames.MERGECC) == 0.0


class TestSerialization:
    def test_save_load_roundtrip_with_projection(self, tmp_path):
        projected = ProjectedTimes(
            machine="edison",
            n_tasks=2,
            per_task={StepNames.LOCALSORT: np.array([1.5, 2.5])},
        )
        run = RunTelemetry(
            t0_ns=10,
            n_tasks=2,
            spans=[SpanEvent(StepNames.LOCALSORT, 1, -1, 10, 20)],
            counters={"cc.unions": {0: 3}},
            gauges={"buffers.pool_hwm_bytes": {-1: 99}},
            projected=projected,
        )
        path = run.save(tmp_path / RUN_FILENAME)
        loaded = RunTelemetry.load(path)
        assert loaded.spans == run.spans
        assert loaded.counters == run.counters
        assert loaded.gauges == run.gauges
        assert loaded.projected.machine == "edison"
        np.testing.assert_allclose(
            loaded.projected.per_task[StepNames.LOCALSORT], [1.5, 2.5]
        )


class TestSweep:
    def test_close_removes_owned_temp_root(self):
        collector = TelemetryCollector()  # directory=None -> private tmp
        root = collector.root
        assert root.is_dir()
        collector.close()
        assert not root.exists()
        assert collector.closed

    def test_close_keeps_artifact_directory(self, tmp_path):
        collector = TelemetryCollector(tmp_path)
        (tmp_path / "trace.json").write_text("{}")  # an exported artifact
        collector.close()
        assert not collector.spool_dir.exists()  # spool swept...
        assert (tmp_path / "trace.json").exists()  # ...artifacts persist

    def test_close_idempotent(self, tmp_path):
        collector = TelemetryCollector(tmp_path)
        collector.close()
        collector.close()

    def test_abandoned_collector_swept_by_finalizer(self, tmp_path):
        collector = TelemetryCollector(tmp_path)
        spool = collector.spool_dir
        emit_into(collector, lambda: telemetry.add_counter("cc.unions", 1))
        assert any(spool.iterdir())
        del collector  # crash analogue: nobody called close()
        gc.collect()
        assert not spool.exists()
