"""Exporters: Perfetto trace layout, Prometheus textfile, artifact set."""

import json

import numpy as np
import pytest

from repro.runtime.timing import ProjectedTimes
from repro.runtime.work import StepNames
from repro.telemetry.collect import RunTelemetry, SpanEvent
from repro.telemetry.exporters import (
    METRICS_FILENAME,
    PROM_FILENAME,
    RUN_FILENAME,
    TRACE_FILENAME,
    export_run_artifacts,
    measured_trace_events,
    metrics_snapshot,
    prometheus_textfile,
    write_measured_trace,
    write_prometheus_textfile,
)


@pytest.fixture
def run():
    return RunTelemetry(
        t0_ns=1_000,
        n_tasks=2,
        spans=[
            SpanEvent(StepNames.KMERGEN, 0, 3, 1_000, 2_000),
            SpanEvent(StepNames.LOCALSORT, 1, 0, 2_000, 5_000),
            SpanEvent(StepNames.CC_IO, -1, -1, 5_000, 6_000),
        ],
        counters={"cc.unions": {0: 10, 1: 20}},
        gauges={"buffers.pool_hwm_bytes": {-1: 4096}},
        projected=ProjectedTimes(
            machine="edison",
            n_tasks=2,
            per_task={StepNames.LOCALSORT: np.array([1.0, 2.0])},
        ),
    )


class TestTraceEvents:
    def test_one_event_per_span(self, run):
        events = measured_trace_events(run)
        assert len(events) == 3
        assert all(e["ph"] == "X" and e["pid"] == 0 for e in events)

    def test_rows_are_tasks_driver_below(self, run):
        events = measured_trace_events(run)
        tids = [e["tid"] for e in events]
        assert tids == [0, 1, run.n_tasks]  # driver on the extra row

    def test_timestamps_relative_to_run_origin_in_us(self, run):
        first = measured_trace_events(run)[0]
        assert first["ts"] == 0.0  # t0 == run origin
        assert first["dur"] == pytest.approx(1.0)  # 1000 ns == 1 us

    def test_args_carry_attribution(self, run):
        first = measured_trace_events(run)[0]
        assert first["args"]["task"] == 0
        assert first["args"]["aux"] == 3

    def test_write_includes_projection_as_pid1(self, run, tmp_path):
        path = tmp_path / TRACE_FILENAME
        n = write_measured_trace(run, path)
        doc = json.loads(path.read_text())
        events = doc["traceEvents"]
        pids = {e["pid"] for e in events}
        assert pids == {0, 1}
        assert n > 3  # measured spans + projection events
        names = {
            e["args"]["name"] for e in events if e["name"] == "process_name"
        }
        assert any("measured" in n for n in names)
        assert any("projection" in n for n in names)

    def test_write_without_projection(self, run, tmp_path):
        run.projected = None
        path = tmp_path / TRACE_FILENAME
        assert write_measured_trace(run, path) == 3
        doc = json.loads(path.read_text())
        assert {e["pid"] for e in doc["traceEvents"]} == {0}


class TestPrometheus:
    def test_textfile_format(self):
        text = prometheus_textfile(
            {"store.hits": 3}, {"service.queue_depth": 2}
        )
        lines = text.splitlines()
        assert "# TYPE metaprep_store_hits counter" in lines
        assert "metaprep_store_hits 3" in lines
        assert "# TYPE metaprep_service_queue_depth gauge" in lines
        assert "metaprep_service_queue_depth 2" in lines
        assert text.endswith("\n")

    def test_names_sanitized(self):
        text = prometheus_textfile({"kmergen.tuples-routed": 1}, {})
        assert "metaprep_kmergen_tuples_routed 1" in text

    def test_atomic_write_no_tmp_left(self, tmp_path):
        path = write_prometheus_textfile(
            tmp_path / PROM_FILENAME, {"store.hits": 1}, {}
        )
        assert path.read_text().startswith("# TYPE")
        assert list(tmp_path.iterdir()) == [path]


class TestSnapshotAndArtifacts:
    def test_metrics_snapshot_shape(self, run):
        doc = metrics_snapshot(run)
        assert doc["counters"] == {"cc.unions": 30}
        assert doc["counters_by_task"]["cc.unions"] == {"0": 10, "1": 20}
        assert doc["gauges"] == {"buffers.pool_hwm_bytes": 4096}
        assert StepNames.LOCALSORT in doc["step_seconds"]
        assert doc["projected_step_seconds"][StepNames.LOCALSORT] == 2.0

    def test_export_writes_full_artifact_set(self, run, tmp_path):
        paths = export_run_artifacts(run, tmp_path)
        assert sorted(p.name for p in tmp_path.iterdir()) == sorted(
            [RUN_FILENAME, TRACE_FILENAME, METRICS_FILENAME, PROM_FILENAME]
        )
        # the persisted record reloads into the same content
        reloaded = RunTelemetry.load(paths["telemetry"])
        assert reloaded.counters == run.counters
        json.loads(paths["metrics"].read_text())  # valid JSON
