"""End-to-end telemetry over real pipeline runs, both engines.

The acceptance contract of the subsystem: a real multiprocess run
(process engine, shared dataplane) yields a Perfetto trace with one row
per task carrying spans for every paper stage, hot-path counters that
agree with the run's own work accounting, and — crash or no crash — no
orphaned spool files.
"""

import glob
import json
import tempfile

import pytest

from repro import telemetry
from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.runtime.work import StepNames
from repro.telemetry.collect import SPOOL_SUBDIR
from repro.telemetry.compare import compare_measured_projected

PER_TASK_STAGES = (
    StepNames.KMERGEN,
    StepNames.KMERGEN_COMM,
    StepNames.LOCALSORT,
    StepNames.LOCALCC,
    StepNames.MERGECC,
)


@pytest.fixture(autouse=True)
def clean_state():
    telemetry.deactivate()
    yield
    telemetry.deactivate()


def run(tiny_hg, tmp_path=None, **kwargs):
    defaults = dict(
        k=27, m=5, n_tasks=2, n_threads=2, n_passes=2, write_outputs=False
    )
    defaults.update(kwargs)
    cfg = PipelineConfig(**defaults)
    return MetaPrep(cfg).run(tiny_hg.units, output_dir=tmp_path)


@pytest.fixture(scope="module", params=["serial", "process"])
def telemetered(request, tiny_hg, tmp_path_factory):
    """One telemetered run per engine (module-cached: runs are not free)."""
    engine = request.param
    directory = tmp_path_factory.mktemp(f"tele-{engine}")
    dataplane = "shared" if engine == "process" else "auto"
    result = run(
        tiny_hg,
        tmp_path=directory / "parts",
        executor=engine,
        dataplane=dataplane,
        max_workers=2,
        telemetry_dir=str(directory / "tele"),
        write_outputs=True,
    )
    return result, directory / "tele"


class TestAcceptance:
    def test_every_task_row_has_every_paper_stage(self, telemetered):
        result, _ = telemetered
        rt = result.telemetry
        for task in range(result.config.n_tasks):
            steps_on_row = {s.name for s in rt.spans if s.task == task}
            for stage in PER_TASK_STAGES:
                assert stage in steps_on_row, (task, stage)

    def test_trace_artifact_has_row_per_task(self, telemetered):
        result, tele_dir = telemetered
        doc = json.loads((tele_dir / "trace.json").read_text())
        events = [
            e for e in doc["traceEvents"] if e.get("ph") == "X" and e["pid"] == 0
        ]
        rows = {e["tid"] for e in events}
        # every task row plus the driver row below them
        assert rows == set(range(result.config.n_tasks + 1))

    def test_gap_report_covers_measured_steps(self, telemetered):
        result, _ = telemetered
        report = compare_measured_projected(result.telemetry)
        steps = {row.step for row in report.rows}
        for stage in PER_TASK_STAGES:
            assert stage in steps

    def test_counters_match_run_accounting(self, telemetered):
        result, _ = telemetered
        rt = result.telemetry
        assert (
            rt.counter_total("kmergen.tuples_routed") == result.total_tuples
        )
        assert rt.counter_total("cc.unions") == result.cc_stats.n_unions
        assert (
            rt.counter_total("cc.find_steps") == result.cc_stats.n_find_steps
        )
        assert (
            rt.counter_total("sort.radix_passes")
            == result.sort_stats.passes_executed
        )
        assert rt.counter_total("comm.bytes_moved") == sum(
            int(s.bytes_matrix.sum()) for s in result.comm_stats
        )

    def test_pool_gauges_observed(self, telemetered):
        result, _ = telemetered
        rt = result.telemetry
        assert rt.gauge_max("buffers.pool_hwm_bytes") > 0
        assert (
            rt.counter_total("buffers.bytes_allocated")
            >= rt.gauge_max("buffers.pool_hwm_bytes")
        )

    def test_spool_swept_after_clean_run(self, telemetered):
        _, tele_dir = telemetered
        assert not (tele_dir / SPOOL_SUBDIR).exists()
        assert sorted(p.name for p in tele_dir.iterdir()) == [
            "metaprep.prom",
            "metrics.json",
            "telemetry.json",
            "trace.json",
        ]

    def test_engines_agree_on_counter_totals(self, tiny_hg):
        totals = []
        for engine, dataplane in (("serial", "auto"), ("process", "shared")):
            result = run(
                tiny_hg,
                executor=engine,
                dataplane=dataplane,
                max_workers=2,
                telemetry=True,
            )
            totals.append(result.telemetry.counter_totals())
        assert totals[0] == totals[1]  # bit-identity extends to accounting


class TestLifecycle:
    def test_disabled_run_has_no_telemetry(self, tiny_hg):
        result = run(tiny_hg, n_tasks=1, n_passes=1)
        assert result.telemetry is None
        assert not telemetry.enabled()  # nothing leaked onto this thread

    def test_memory_only_mode_leaves_no_files(self, tiny_hg):
        before = set(glob.glob(tempfile.gettempdir() + "/metaprep-telemetry-*"))
        result = run(tiny_hg, n_tasks=1, n_passes=1, telemetry=True)
        assert result.telemetry is not None
        assert result.telemetry.spans
        after = set(glob.glob(tempfile.gettempdir() + "/metaprep-telemetry-*"))
        assert after == before

    def test_driver_deactivated_after_run(self, tiny_hg):
        run(tiny_hg, n_tasks=1, n_passes=1, telemetry=True)
        assert not telemetry.enabled()


class TestCrashInjection:
    def test_aborted_run_sweeps_spool(self, tiny_hg, tmp_path):
        tele_dir = tmp_path / "tele"

        def bomb(event):
            if event["type"] == "pass_complete":
                raise RuntimeError("injected crash")

        cfg = PipelineConfig(
            k=27, m=5, n_tasks=2, n_threads=2, n_passes=2,
            write_outputs=False, telemetry_dir=str(tele_dir),
        )
        with pytest.raises(RuntimeError, match="injected crash"):
            MetaPrep(cfg).run(tiny_hg.units, events=bomb)
        assert not (tele_dir / SPOOL_SUBDIR).exists()
        assert not telemetry.enabled()

    def test_aborted_memory_only_run_sweeps_temp_root(self, tiny_hg):
        before = set(glob.glob(tempfile.gettempdir() + "/metaprep-telemetry-*"))

        def bomb(event):
            if event["type"] == "pass_start":
                raise RuntimeError("injected crash")

        cfg = PipelineConfig(
            k=27, m=5, n_tasks=1, n_threads=2, write_outputs=False,
            telemetry=True,
        )
        with pytest.raises(RuntimeError, match="injected crash"):
            MetaPrep(cfg).run(tiny_hg.units, events=bomb)
        after = set(glob.glob(tempfile.gettempdir() + "/metaprep-telemetry-*"))
        assert after == before

    def test_crashed_process_worker_leaves_no_spool(self, tiny_hg, tmp_path):
        # verify_static_counts failure path raises inside the pass
        tele_dir = tmp_path / "tele"
        cfg = PipelineConfig(
            k=27, m=5, n_tasks=2, n_threads=2, n_passes=2,
            write_outputs=False, executor="process", dataplane="shared",
            max_workers=2, telemetry_dir=str(tele_dir),
        )

        def bomb(event):
            if event["type"] == "pass_complete":
                raise RuntimeError("injected crash")

        with pytest.raises(RuntimeError, match="injected crash"):
            MetaPrep(cfg).run(tiny_hg.units, events=bomb)
        assert not (tele_dir / SPOOL_SUBDIR).exists()
