"""Thread-local emission API: no-op paths, activation, the fork guard."""

import os
import pickle

import pytest

from repro import telemetry
from repro.telemetry.events import read_spool
from repro.telemetry.runtime import _STATE, TelemetrySettings


@pytest.fixture(autouse=True)
def clean_state():
    telemetry.deactivate()
    yield
    telemetry.deactivate()


def spool_records(spool_dir):
    out = []
    for path in sorted(spool_dir.glob("*.evt")):
        records, _ = read_spool(path)
        out.extend(records)
    return out


class TestDisabled:
    def test_disabled_by_default(self):
        assert not telemetry.enabled()
        assert telemetry.active_settings() is None

    def test_emissions_are_noops(self, tmp_path):
        telemetry.add_counter("cc.unions", 5)
        telemetry.record_span("KmerGen", 0, 10)
        telemetry.set_gauge("service.queue_depth", 3)
        with telemetry.span("LocalSort"):
            pass
        assert list(tmp_path.iterdir()) == []  # nothing written anywhere


class TestActivation:
    def test_activate_emit_deactivate(self, tmp_path):
        telemetry.activate(TelemetrySettings(str(tmp_path)))
        assert telemetry.enabled()
        telemetry.add_counter("cc.unions", 5, task=2)
        telemetry.deactivate()
        assert not telemetry.enabled()

        (record,) = spool_records(tmp_path)
        assert (record.name, record.task, record.value_a) == ("cc.unions", 2, 5)

    def test_reactivation_same_dir_is_noop(self, tmp_path):
        settings = TelemetrySettings(str(tmp_path))
        telemetry.activate(settings)
        telemetry.add_counter("cc.unions", 1)
        writer = _STATE.writer
        telemetry.activate(TelemetrySettings(str(tmp_path)))  # same dir
        assert _STATE.writer is writer  # not reopened

    def test_switching_dirs_closes_old_writer(self, tmp_path):
        a, b = tmp_path / "a", tmp_path / "b"
        a.mkdir(), b.mkdir()
        telemetry.activate(TelemetrySettings(str(a)))
        telemetry.add_counter("cc.unions", 1)
        telemetry.activate(TelemetrySettings(str(b)))
        telemetry.add_counter("cc.unions", 2)
        assert [r.value_a for r in spool_records(a)] == [1]
        assert [r.value_a for r in spool_records(b)] == [2]

    def test_span_contextmanager(self, tmp_path):
        telemetry.activate(TelemetrySettings(str(tmp_path)))
        with telemetry.span("LocalSort", task=1, aux=0):
            pass
        (record,) = spool_records(tmp_path)
        assert record.name == "LocalSort"
        assert record.value_b >= record.value_a  # t1 >= t0

    def test_settings_picklable(self, tmp_path):
        # rides inside the executor's worker context across the pool
        settings = TelemetrySettings(str(tmp_path))
        assert pickle.loads(pickle.dumps(settings)) == settings

    def test_swept_spool_disables_quietly(self, tmp_path):
        gone = tmp_path / "gone"
        gone.mkdir()
        telemetry.activate(TelemetrySettings(str(gone)))
        gone.rmdir()  # the collector swept mid-run (e.g. crash path)
        telemetry.add_counter("cc.unions", 1)  # must not raise
        assert not telemetry.enabled()


class TestForkGuard:
    def test_writer_reopened_when_pid_changes(self, tmp_path):
        telemetry.activate(TelemetrySettings(str(tmp_path)))
        telemetry.add_counter("cc.unions", 1)
        inherited = _STATE.writer
        # simulate a fork: thread-local state survives, pid does not match
        _STATE.writer_pid = os.getpid() - 1
        telemetry.add_counter("cc.unions", 2)
        assert _STATE.writer is not inherited
        assert _STATE.writer_pid == os.getpid()
        # both records decodable (same file name in this simulation, but
        # the reopen went through the append-mode no-duplicate-header path)
        assert sorted(r.value_a for r in spool_records(tmp_path)) == [1, 2]

    def test_real_fork_writes_child_spool(self, tmp_path):
        telemetry.activate(TelemetrySettings(str(tmp_path)))
        telemetry.add_counter("cc.unions", 1)
        pid = os.fork()
        if pid == 0:  # child
            try:
                telemetry.add_counter("cc.unions", 100)
                os._exit(0)
            except BaseException:
                os._exit(1)
        _, status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(status) == 0
        files = sorted(p.name for p in tmp_path.glob("*.evt"))
        assert len(files) == 2  # parent spool + child spool
        assert sorted(r.value_a for r in spool_records(tmp_path)) == [1, 100]
