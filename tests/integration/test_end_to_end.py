"""Full-pipeline integration tests on the LL analogue (different dataset
than the unit tests' HG fixture, exercising skewed abundances)."""

import numpy as np
import pytest

from repro.cc.components import (
    partition_as_frozensets,
    reference_components_networkx,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.index.fastqpart import load_chunk_reads
from repro.seqio.records import ReadBatch


@pytest.fixture(scope="module")
def ll_result(tiny_ll, tmp_path_factory):
    out = tmp_path_factory.mktemp("ll_parts")
    cfg = PipelineConfig(
        k=27, m=5, n_tasks=2, n_threads=2, n_passes=2, write_outputs=True
    )
    return MetaPrep(cfg).run(tiny_ll.units, output_dir=out)


@pytest.fixture(scope="module")
def ll_batch(ll_result):
    batches = [
        load_chunk_reads(ll_result.index.fastqpart, c, keep_metadata=False)
        for c in range(ll_result.index.fastqpart.n_chunks)
    ]
    return ReadBatch.concatenate(batches)


class TestLLEndToEnd:
    def test_matches_oracle(self, ll_result, ll_batch):
        ref = reference_components_networkx(ll_batch, 27)
        got = partition_as_frozensets(
            ll_result.partition.parent, ll_batch.read_ids
        )
        assert got == ref

    def test_ll_less_connected_than_hg(self, ll_result, tiny_hg):
        """Table 7: LL's largest component fraction is the smallest of the
        three datasets (low, skewed coverage across many species)."""
        hg_cfg = PipelineConfig(k=27, m=5, write_outputs=False)
        hg = MetaPrep(hg_cfg).run(tiny_hg.units)
        assert (
            ll_result.partition.summary.largest_component_fraction
            < hg.partition.summary.largest_component_fraction
        )

    def test_species_purity_of_small_components(self, ll_result, tiny_ll):
        """Howe et al.'s observation: partitioning mostly groups reads of
        one species.  Components other than the giant one should be
        dominated by a single species."""
        labels = ll_result.partition.labels
        species = np.asarray(tiny_ll.species_of_pair)
        giant = ll_result.partition.largest_label
        impure = 0
        n_checked = 0
        for comp in np.unique(labels):
            if comp == giant:
                continue
            members = np.flatnonzero(labels == comp)
            if len(members) < 2:
                continue
            n_checked += 1
            counts = np.bincount(species[members])
            if counts.max() / len(members) < 0.9:
                impure += 1
        if n_checked:
            assert impure <= max(1, n_checked // 5)

    def test_outputs_cover_dataset(self, ll_result, tiny_ll):
        total = (
            ll_result.partition.lc_reads_written
            + ll_result.partition.other_reads_written
        )
        assert total == 2 * tiny_ll.n_pairs


class TestCrossDatasetBehaviour:
    def test_mm_analogue_giant_component(self, data_root):
        """Paper: 'for the MM dataset ... 99.5% of the reads belong to the
        giant component' — deep even coverage glues everything."""
        from repro.datasets.registry import build_dataset

        mm = build_dataset("MM", data_root / "mm", seed=7, scale=0.04)
        cfg = PipelineConfig(k=27, m=5, write_outputs=False)
        res = MetaPrep(cfg).run(mm.units)
        assert res.partition.summary.largest_component_fraction > 0.85
