"""Differential memory-bound suite for the out-of-core spill pipeline.

Two claims, both *measured*, never asserted in prose:

1. **Bit identity** — ``spill="always"`` produces exactly the partition
   of ``spill="never"`` on both engines: same labels, same parent array,
   same RunWork counters.  Disk is a different place for the same bytes.
2. **The memory bound** — on an analogue dataset whose tuple volume is
   at least 4x the configured ``memory_budget_per_task``, the spill
   run's peak resident tuple bytes (telemetry high-water marks sampled
   inside the workers, plus ``resource.getrusage`` RSS reported the same
   way) stay under the budget, while the in-memory run's peak provably
   exceeds it.  The budget is real, not aspirational.
"""

import dataclasses
import os

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep, StaticCountMismatch
from repro.index.create import index_create
from repro.runtime.work import RunWork

K = 21
M = 5
N_CHUNKS = 12
N_TASKS = 4
N_THREADS = 1
N_PASSES = 2


@pytest.fixture(scope="module")
def ooc_index(tiny_hg):
    return index_create(tiny_hg.units, k=K, m=M, n_chunks=N_CHUNKS)


@pytest.fixture(scope="module")
def budget(ooc_index):
    """A per-task budget the dataset overwhelms 4x over.

    With S=2 passes and P=4 owner tasks, one owner's block holds about
    total/8 tuple bytes — comfortably under total/4 — while in-memory
    execution keeps a whole pass (about total/2, i.e. 2x the budget)
    resident.  The bound is therefore beatable by spilling and only by
    spilling.
    """
    tuple_bytes = 12  # one-limb k: 8-byte k-mer + 4-byte read id
    total = int(ooc_index.merhist.total_tuples) * tuple_bytes
    return total // 4


def _config(tmp_path=None, **kw):
    kw.setdefault("spill_dir", str(tmp_path) if tmp_path else None)
    return PipelineConfig(
        k=K,
        m=M,
        n_tasks=N_TASKS,
        n_threads=N_THREADS,
        n_passes=N_PASSES,
        write_outputs=False,
        **kw,
    )


def _run(tiny_hg, ooc_index, cfg):
    return MetaPrep(cfg).run(tiny_hg.units, index=ooc_index)


def assert_runwork_identical(a: RunWork, b: RunWork) -> None:
    for f in dataclasses.fields(RunWork):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), f"RunWork.{f.name} differs"
        else:
            assert va == vb, f"RunWork.{f.name} differs: {va!r} != {vb!r}"


def test_volume_overwhelms_budget(ooc_index, budget):
    """The premise of the whole suite: tuple volume >= 4x the budget."""
    total = int(ooc_index.merhist.total_tuples) * 12
    assert total >= 4 * budget
    assert budget > 0


@pytest.mark.parametrize("executor", ["serial", "process"])
class TestSpillBitIdentity:
    def test_spill_always_matches_never(
        self, tiny_hg, ooc_index, tmp_path, executor
    ):
        base = _run(
            tiny_hg,
            ooc_index,
            _config(executor=executor, max_workers=2, spill="never"),
        )
        spilled = _run(
            tiny_hg,
            ooc_index,
            _config(
                tmp_path,
                executor=executor,
                max_workers=2,
                spill="always",
                memory_budget_per_task=None,
            ),
        )
        assert spilled.spilled_passes == list(range(N_PASSES))
        assert base.spilled_passes == []
        assert np.array_equal(
            base.partition.labels, spilled.partition.labels
        )
        assert np.array_equal(
            base.partition.parent, spilled.partition.parent
        )
        assert base.partition.summary == spilled.partition.summary
        assert base.partition.largest_label == spilled.partition.largest_label
        assert_runwork_identical(base.work, spilled.work)
        assert base.sort_stats == spilled.sort_stats
        assert base.cc_stats == spilled.cc_stats
        # the comm accounting comes from the same static counts
        assert len(base.comm_stats) == len(spilled.comm_stats)
        for sa, sb in zip(base.comm_stats, spilled.comm_stats):
            assert np.array_equal(sa.bytes_matrix, sb.bytes_matrix)

    def test_spill_dir_left_empty(
        self, tiny_hg, ooc_index, tmp_path, executor
    ):
        _run(
            tiny_hg,
            ooc_index,
            _config(
                tmp_path, executor=executor, max_workers=2, spill="always"
            ),
        )
        leftovers = [
            p
            for p in os.listdir(tmp_path)
            if p.startswith("metaprep-spill-")
        ]
        assert leftovers == []


@pytest.fixture(scope="module")
def spill_telemetry(tiny_hg, ooc_index, budget, tmp_path_factory):
    """One telemetry-instrumented ``spill="always"`` run under the
    budget, on the process engine (real worker processes, real RSS).

    The RSS fixture of the suite: workers sample ``resource.getrusage``
    and the residency ledger into gauges; the merged record carries the
    high-water marks the tests below assert against.
    """
    scratch = tmp_path_factory.mktemp("ooc-spill")
    cfg = _config(
        scratch,
        executor="process",
        max_workers=2,
        spill="always",
        memory_budget_per_task=budget,
        telemetry=True,
    )
    result = _run(tiny_hg, ooc_index, cfg)
    assert result.telemetry is not None
    return result


@pytest.fixture(scope="module")
def inmemory_telemetry(tiny_hg, ooc_index, budget):
    cfg = _config(
        executor="process",
        max_workers=2,
        spill="never",
        memory_budget_per_task=budget,
        telemetry=True,
    )
    result = _run(tiny_hg, ooc_index, cfg)
    assert result.telemetry is not None
    return result


class TestMemoryBound:
    def test_resident_tuple_bytes_under_budget(
        self, spill_telemetry, budget
    ):
        """The headline number: the spill run's peak resident spilled
        tuple bytes — sampled inside the workers at every residency
        change — stay under the per-task budget."""
        peak = spill_telemetry.telemetry.gauge_max(
            "spill.tuple_bytes_resident"
        )
        assert 0 < peak <= budget

    def test_one_block_resident_at_a_time(self, spill_telemetry):
        assert (
            spill_telemetry.telemetry.gauge_max("spill.blocks_resident") == 1
        )

    def test_pool_hwm_under_budget_only_when_spilling(
        self, spill_telemetry, inmemory_telemetry, budget
    ):
        """Same gauge, both modes: the buffer-pool high-water mark.  The
        spill run re-attaches one owner block at a time and stays under
        the budget; the in-memory run keeps whole passes resident and
        exceeds it.  This is what makes the bound non-vacuous."""
        spill_hwm = spill_telemetry.telemetry.gauge_max(
            "buffers.pool_hwm_bytes"
        )
        inmem_hwm = inmemory_telemetry.telemetry.gauge_max(
            "buffers.pool_hwm_bytes"
        )
        assert 0 < spill_hwm <= budget
        assert inmem_hwm > budget

    def test_spill_bytes_cover_the_volume(self, spill_telemetry):
        """Every tuple of every pass went to disk and came back."""
        tuple_bytes = 12
        volume = spill_telemetry.work.total_tuples * tuple_bytes
        written = spill_telemetry.telemetry.counter_total(
            "spill.bytes_written"
        )
        read = spill_telemetry.telemetry.counter_total("spill.bytes_read")
        assert written >= volume
        assert read >= volume

    def test_worker_rss_sampled_per_task(self, spill_telemetry):
        """resource.getrusage peaks, reported through telemetry by the
        workers themselves (ru_maxrss is whole-process and includes the
        interpreter; the *tuple-byte* gauges carry the budget assertion,
        this pins the RSS channel works end to end)."""
        peak_kb = spill_telemetry.telemetry.gauge_max("proc.peak_rss_kb")
        assert peak_kb > 0
        # per-task maxima exist for every owner task
        by_task = spill_telemetry.telemetry.gauges["proc.peak_rss_kb"]
        assert set(by_task) >= set(range(N_TASKS))


class TestAutoMode:
    def test_auto_spills_overbudget_passes(
        self, tiny_hg, ooc_index, tmp_path, budget
    ):
        """auto + a 4x-overwhelmed budget: every pass (~2x budget each)
        must spill."""
        result = _run(
            tiny_hg,
            ooc_index,
            _config(
                tmp_path, spill="auto", memory_budget_per_task=budget
            ),
        )
        assert result.spilled_passes == list(range(N_PASSES))

    def test_auto_without_budget_never_spills(
        self, tiny_hg, ooc_index, tmp_path
    ):
        result = _run(tiny_hg, ooc_index, _config(tmp_path, spill="auto"))
        assert result.spilled_passes == []

    def test_auto_with_roomy_budget_never_spills(
        self, tiny_hg, ooc_index, tmp_path
    ):
        result = _run(
            tiny_hg,
            ooc_index,
            _config(
                tmp_path,
                spill="auto",
                memory_budget_per_task=1 << 40,
            ),
        )
        assert result.spilled_passes == []

    def test_never_overrides_budget(self, tiny_hg, ooc_index, budget):
        result = _run(
            tiny_hg,
            ooc_index,
            _config(spill="never", memory_budget_per_task=budget),
        )
        assert result.spilled_passes == []


class TestCrashHygiene:
    def test_mid_stage_failure_leaves_no_orphans(self, tiny_hg, tmp_path):
        """Crash injection: corrupt the index so KmerGen dies mid-pass
        (StaticCountMismatch fires in the workers, after spill files are
        created); the pipeline's finally must still sweep the spill dir
        to zero orphan files."""
        index = index_create(tiny_hg.units, k=K, m=M, n_chunks=8)
        index.fastqpart.hist[0, :] = index.fastqpart.hist[0, ::-1].copy()
        index.merhist.counts = index.fastqpart.global_histogram().astype(
            np.uint32
        )
        cfg = _config(tmp_path, spill="always")
        with pytest.raises(StaticCountMismatch):
            MetaPrep(cfg).run(tiny_hg.units, index=index)
        leftovers = [
            p
            for p in os.listdir(tmp_path)
            if p.startswith("metaprep-spill-")
        ]
        assert leftovers == []
