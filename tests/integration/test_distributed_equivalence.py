"""Differential test suite for the ``distributed`` engine.

The distributed engine replaces the in-process dataplane with worker
daemons and real TCP frames, so the differential contract gets two new
dimensions on top of bit-identity:

* **wire accounting** — ``net.bytes_sent`` must equal the *predicted*
  wire traffic of :func:`~repro.runtime.comm.block_exchange_stats`
  (``comm.wire_bytes``): the byte-accounting model and the actual
  network are the same numbers, not analogous ones;
* **crash hygiene** — a worker killed mid-stage surfaces
  :class:`~repro.runtime.executor.ExecutorError` on the driver and
  leaves no orphaned sockets, ``/dev/shm`` segments, or spill files
  (a dead worker's heap-backed block store dies with it).

Workers are in-process :class:`~repro.runtime.worker.WorkerDaemon`
instances over loopback (real frames, fast setup); the crash leg forks
a real subprocess so ``os._exit`` kills a worker and not the test.
"""

import dataclasses
import glob
import multiprocessing as mp
import os
import tempfile

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.index.create import index_create
from repro.runtime.executor import ExecutorError
from repro.runtime.work import RunWork
from repro.runtime.worker import WorkerDaemon

M = 5
N_CHUNKS = 12

#: counters whose totals must be engine-equal (the work the algorithm
#: does cannot depend on where it runs)
SHARED_COUNTERS = (
    "kmergen.tuples_routed",
    "comm.bytes_moved",
    "comm.wire_bytes",
    "buffers.bytes_allocated",
    "sort.radix_passes",
    "sort.histogram_fills",
    "cc.unions",
    "cc.find_steps",
)

GRID = [
    dict(k=21, n_tasks=2, n_threads=2, n_passes=2, localcc_opt=True),
    dict(k=21, n_tasks=3, n_threads=2, n_passes=1, localcc_opt=False),
    dict(k=21, n_tasks=4, n_threads=1, n_passes=2, localcc_opt=True),
    dict(k=33, n_tasks=2, n_threads=2, n_passes=2, localcc_opt=True),
]


@pytest.fixture(scope="module")
def indexes(tiny_hg):
    return {
        k: index_create(tiny_hg.units, k=k, m=M, n_chunks=N_CHUNKS)
        for k in (21, 33)
    }


@pytest.fixture(scope="module")
def daemons():
    started = [WorkerDaemon(), WorkerDaemon()]
    for d in started:
        d.start()
    yield started
    for d in started:
        d.stop()


def _run(tiny_hg, indexes, grid_point, executor, workers=(), spill="never",
         telemetry=False):
    cfg = PipelineConfig(
        m=M,
        write_outputs=False,
        executor=executor,
        max_workers=2,
        worker_addresses=workers,
        spill=spill,
        telemetry=telemetry,
        **grid_point,
    )
    return MetaPrep(cfg).run(tiny_hg.units, index=indexes[grid_point["k"]])


def assert_runwork_identical(a: RunWork, b: RunWork) -> None:
    for f in dataclasses.fields(RunWork):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), f"RunWork.{f.name} differs"
        else:
            assert va == vb, f"RunWork.{f.name} differs: {va!r} != {vb!r}"


@pytest.mark.parametrize(
    "grid_point",
    GRID,
    ids=lambda g: (
        f"k{g['k']}-P{g['n_tasks']}-T{g['n_threads']}-S{g['n_passes']}-"
        f"opt{int(g['localcc_opt'])}"
    ),
)
class TestDistributedBitIdentity:
    def test_distributed_matches_serial(
        self, tiny_hg, indexes, daemons, grid_point
    ):
        addresses = tuple(d.address for d in daemons)
        serial = _run(tiny_hg, indexes, grid_point, "serial")
        dist = _run(tiny_hg, indexes, grid_point, "distributed", addresses)

        assert np.array_equal(serial.partition.labels, dist.partition.labels)
        assert np.array_equal(serial.partition.parent, dist.partition.parent)
        assert serial.partition.summary == dist.partition.summary
        assert_runwork_identical(serial.work, dist.work)
        assert serial.sort_stats == dist.sort_stats
        assert serial.cc_stats == dist.cc_stats
        for sa, sb in zip(serial.comm_stats, dist.comm_stats):
            assert np.array_equal(sa.bytes_matrix, sb.bytes_matrix)

    def test_spill_always_matches(
        self, tiny_hg, indexes, daemons, grid_point
    ):
        addresses = tuple(d.address for d in daemons)
        inmem = _run(tiny_hg, indexes, grid_point, "serial")
        spilled = _run(
            tiny_hg, indexes, grid_point, "distributed", addresses,
            spill="always",
        )
        assert spilled.spilled_passes == list(range(grid_point["n_passes"]))
        assert np.array_equal(
            inmem.partition.labels, spilled.partition.labels
        )
        assert_runwork_identical(inmem.work, spilled.work)


class TestWireAccounting:
    GRID_POINT = dict(
        k=21, n_tasks=3, n_threads=2, n_passes=2, localcc_opt=True
    )

    @pytest.fixture(scope="class")
    def telemetries(self, tiny_hg, indexes, daemons):
        addresses = tuple(d.address for d in daemons)
        serial = _run(
            tiny_hg, indexes, self.GRID_POINT, "serial", telemetry=True
        )
        dist = _run(
            tiny_hg, indexes, self.GRID_POINT, "distributed", addresses,
            telemetry=True,
        )
        return serial, dist

    def test_shared_counter_totals_engine_equal(self, telemetries):
        serial, dist = telemetries
        st = serial.telemetry.counter_totals()
        dt = dist.telemetry.counter_totals()
        for name in SHARED_COUNTERS:
            assert st.get(name) == dt.get(name), name

    def test_net_bytes_match_predicted_wire_bytes(self, telemetries):
        """The acceptance criterion: actual bytes on the wire equal the
        byte-accounting model's prediction.  Only off-diagonal tuples
        (sender != owner) cross the wire, which is exactly what
        ``comm.wire_bytes`` counts."""
        serial, dist = telemetries
        totals = dist.telemetry.counter_totals()
        predicted = sum(s.wire_bytes_total for s in dist.comm_stats)
        assert totals["net.bytes_sent"] == predicted
        assert totals["net.bytes_recv"] == predicted
        assert totals["net.bytes_sent"] == totals["comm.wire_bytes"]
        # the serial engine never touches the network
        assert "net.bytes_sent" not in serial.telemetry.counter_totals()

    def test_frames_and_connects_counted(self, telemetries):
        _, dist = telemetries
        totals = dist.telemetry.counter_totals()
        assert totals["net.frames"] > 0
        assert totals["worker.connects"] > 0

    def test_spans_attributed_to_worker_hosts(self, telemetries, daemons):
        serial, dist = telemetries
        assert serial.telemetry.hosts_seen() == []
        hosts = dist.telemetry.hosts_seen()
        assert set(hosts) == {d.address for d in daemons}


def _doomed_worker_main(q, exit_after):
    daemon = WorkerDaemon(_exit_after_jobs=exit_after)
    q.put(daemon.address)
    daemon.serve_forever()


@pytest.mark.skipif(
    "fork" not in mp.get_all_start_methods(),
    reason="requires fork start method",
)
class TestCrashInjection:
    GRID_POINT = dict(
        k=21, n_tasks=2, n_threads=2, n_passes=2, localcc_opt=True
    )

    def test_killed_worker_fails_loudly_without_residue(
        self, tiny_hg, indexes, daemons
    ):
        ctx = mp.get_context("fork")
        q = ctx.Queue()
        proc = ctx.Process(
            target=_doomed_worker_main, args=(q, 3), daemon=True
        )
        proc.start()
        doomed = q.get(timeout=10)
        addresses = (daemons[0].address, doomed)

        shm_before = set(glob.glob("/dev/shm/*"))
        fds_before = len(os.listdir("/proc/self/fd"))
        try:
            with pytest.raises(ExecutorError, match="died"):
                _run(
                    tiny_hg, indexes, self.GRID_POINT, "distributed",
                    addresses,
                )
        finally:
            proc.join(timeout=10)

        # no orphaned shm segments, spill files, or leaked driver fds
        assert set(glob.glob("/dev/shm/*")) - shm_before == set()
        assert glob.glob(
            os.path.join(tempfile.gettempdir(), "metaprep-spill-*")
        ) == []
        assert len(os.listdir("/proc/self/fd")) == fds_before

        # the surviving registry still produces a bit-identical run
        healthy = tuple(d.address for d in daemons)
        serial = _run(tiny_hg, indexes, self.GRID_POINT, "serial")
        rerun = _run(
            tiny_hg, indexes, self.GRID_POINT, "distributed", healthy
        )
        assert np.array_equal(
            serial.partition.labels, rerun.partition.labels
        )
