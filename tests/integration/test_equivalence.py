"""Decomposition-equivalence matrix: the same dataset through many (P, T,
S, machine, opt) configurations must always produce the identical
partition, matching both a 1x1x1 run and the explicit oracle."""

import numpy as np
import pytest

from repro.cc.components import (
    partition_as_frozensets,
    reference_components_networkx,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.index.create import index_create
from repro.kmers.filter import FrequencyFilter


@pytest.fixture(scope="module")
def shared_index(tiny_hg):
    return index_create(tiny_hg.units, k=27, m=5, n_chunks=12)


@pytest.fixture(scope="module")
def reference_labels(tiny_hg, shared_index):
    cfg = PipelineConfig(
        k=27, m=5, n_tasks=1, n_threads=1, n_passes=1, write_outputs=False
    )
    return MetaPrep(cfg).run(tiny_hg.units, index=shared_index).partition.labels


CONFIGS = [
    dict(n_tasks=1, n_threads=4, n_passes=1),
    dict(n_tasks=4, n_threads=1, n_passes=1),
    dict(n_tasks=2, n_threads=3, n_passes=2),
    dict(n_tasks=3, n_threads=2, n_passes=5),
    dict(n_tasks=2, n_threads=2, n_passes=2, localcc_opt=False),
    dict(n_tasks=2, n_threads=2, n_passes=1, machine="ganga"),
    dict(n_tasks=2, n_threads=2, n_passes=2, radix_skip_constant=False),
]


class TestEquivalenceMatrix:
    @pytest.mark.parametrize("overrides", CONFIGS)
    def test_same_partition(self, tiny_hg, shared_index, reference_labels, overrides):
        cfg = PipelineConfig(k=27, m=5, write_outputs=False, **overrides)
        res = MetaPrep(cfg).run(tiny_hg.units, index=shared_index)
        assert np.array_equal(res.partition.labels, reference_labels)

    def test_reference_matches_oracle(
        self, tiny_hg_batch, reference_labels, shared_index
    ):
        # reconstruct partition from labels
        groups = {}
        for rid in np.unique(tiny_hg_batch.read_ids):
            groups.setdefault(int(reference_labels[rid]), set()).add(int(rid))
        got = sorted(
            (frozenset(s) for s in groups.values()),
            key=lambda c: (-len(c), min(c)),
        )
        ref = reference_components_networkx(tiny_hg_batch, 27)
        assert got == ref


class TestFilteredEquivalence:
    @pytest.mark.parametrize(
        "overrides",
        [
            dict(n_tasks=1, n_threads=1, n_passes=1),
            dict(n_tasks=2, n_threads=2, n_passes=3),
            dict(n_tasks=3, n_threads=1, n_passes=2, localcc_opt=False),
        ],
    )
    def test_filter_invariant_across_decompositions(
        self, tiny_hg, tiny_hg_batch, shared_index, overrides
    ):
        kf = FrequencyFilter(2, 25)
        cfg = PipelineConfig(
            k=27, m=5, kmer_filter=kf, write_outputs=False, **overrides
        )
        res = MetaPrep(cfg).run(tiny_hg.units, index=shared_index)
        got = partition_as_frozensets(
            res.partition.parent, tiny_hg_batch.read_ids
        )
        ref = reference_components_networkx(tiny_hg_batch, 27, kf)
        assert got == ref


class TestWorkConservation:
    @pytest.mark.parametrize("overrides", CONFIGS[:4])
    def test_tuples_and_edges_conserved(
        self, tiny_hg, shared_index, overrides
    ):
        """Total tuples is decomposition-independent; total edges may only
        shrink with LocalCC-Opt (duplicate component-id pairs collapse)."""
        cfg0 = PipelineConfig(
            k=27, m=5, n_tasks=1, n_threads=1, n_passes=1, write_outputs=False
        )
        base = MetaPrep(cfg0).run(tiny_hg.units, index=shared_index)
        cfg = PipelineConfig(k=27, m=5, write_outputs=False, **overrides)
        res = MetaPrep(cfg).run(tiny_hg.units, index=shared_index)
        assert res.total_tuples == base.total_tuples
        assert res.work.total_edges <= base.work.total_edges
