"""Integration of preprocessing with the assembler substrate: the Table
8/9 workflow (partition, then assemble LC and Other independently)."""

import pytest

from repro.assembly.assembler import AssemblyConfig, MiniAssembler
from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.kmers.filter import FrequencyFilter


@pytest.fixture(scope="module")
def partitioned(tiny_hg, tmp_path_factory):
    out = tmp_path_factory.mktemp("t89")
    cfg = PipelineConfig(k=27, m=5, n_tasks=1, n_threads=2, write_outputs=True)
    res = MetaPrep(cfg).run(tiny_hg.units, output_dir=out)
    return res


@pytest.fixture(scope="module")
def assembler():
    return MiniAssembler(AssemblyConfig(k=16, min_count=2, min_contig_length=50))


class TestPartitionThenAssemble:
    def test_partitions_assemble_independently(self, partitioned, assembler, tiny_hg):
        full = assembler.assemble_units(tiny_hg.units)
        lc = assembler.assemble_files(partitioned.partition.lc_files)
        other = assembler.assemble_files(partitioned.partition.other_files)
        assert lc.n_reads + other.n_reads == full.n_reads
        # LC dominates the assembly
        assert lc.stats.total_bp > other.stats.total_bp

    def test_no_filter_quality_similar(self, partitioned, assembler, tiny_hg):
        """Table 9: 'No Preproc' vs 'No Filter' produce very similar
        qualitative results — partitioning alone loses almost nothing."""
        full = assembler.assemble_units(tiny_hg.units)
        lc = assembler.assemble_files(partitioned.partition.lc_files)
        other = assembler.assemble_files(partitioned.partition.other_files)
        combined_bp = lc.stats.total_bp + other.stats.total_bp
        assert combined_bp == pytest.approx(full.stats.total_bp, rel=0.10)
        assert max(lc.stats.max_bp, other.stats.max_bp) == pytest.approx(
            full.stats.max_bp, rel=0.15
        )

    def test_lc_assembly_faster_than_full(self, partitioned, assembler, tiny_hg):
        """Table 8's speedup source: assembling the (smaller) LC costs less
        than assembling everything."""
        full = assembler.assemble_units(tiny_hg.units)
        lc = assembler.assemble_files(partitioned.partition.lc_files)
        assert lc.n_reads <= full.n_reads
        # runtime ordering is noisy at this scale; require input ordering
        # plus non-degenerate times
        assert full.seconds > 0 and lc.seconds > 0


class TestFilteredPartitionAssembly:
    def test_filter_shrinks_lc_input(self, tiny_hg, tmp_path_factory):
        out = tmp_path_factory.mktemp("t89f")
        base_cfg = PipelineConfig(
            k=27, m=5, n_threads=2, write_outputs=False
        )
        base = MetaPrep(base_cfg).run(tiny_hg.units)
        cfg = PipelineConfig(
            k=27,
            m=5,
            n_threads=2,
            kmer_filter=FrequencyFilter(max_freq=12),
            write_outputs=True,
        )
        res = MetaPrep(cfg).run(tiny_hg.units, output_dir=out)
        assert (
            res.partition.summary.largest_component_size
            <= base.partition.summary.largest_component_size
        )
