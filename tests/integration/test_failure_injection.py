"""Failure injection: the pipeline must fail loudly and precisely, never
silently produce a wrong partition."""

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep, StaticCountMismatch
from repro.index.create import index_create
from repro.seqio.fastq import FastqParseError, read_fastq
from repro.seqio.tables import BinaryTableError, read_table


class TestCorruptIndexTables:
    def test_stale_histogram_detected(self, tiny_hg):
        """A tampered chunk histogram must trip the static-count check
        (the pipeline's defense against index/table corruption)."""
        index = index_create(tiny_hg.units, k=27, m=5, n_chunks=8)
        index.fastqpart.hist[0, :] = index.fastqpart.hist[0, ::-1].copy()
        index.merhist.counts = index.fastqpart.global_histogram().astype(
            np.uint32
        )
        cfg = PipelineConfig(
            k=27, m=5, n_tasks=2, n_threads=2, write_outputs=False,
            verify_static_counts=True,
        )
        with pytest.raises(StaticCountMismatch):
            MetaPrep(cfg).run(tiny_hg.units, index=index)

    def test_bitflipped_table_file_detected(self, tiny_hg, tmp_path):
        index = index_create(
            tiny_hg.units, k=27, m=5, n_chunks=4, output_dir=tmp_path
        )
        path = tmp_path / "flip.bin"
        data = bytearray(open(index.fastqpart_path, "rb").read())
        data[5] ^= 0xFF  # corrupt the header region
        path.write_bytes(bytes(data))
        with pytest.raises((BinaryTableError, KeyError, ValueError)):
            read_table(path)

    def test_wrong_k_index_rejected_before_work(self, tiny_hg):
        index = index_create(tiny_hg.units, k=21, m=5, n_chunks=4)
        cfg = PipelineConfig(k=27, m=5, write_outputs=False)
        with pytest.raises(ValueError, match="index built for"):
            MetaPrep(cfg).run(tiny_hg.units, index=index)


class TestFastqRobustness:
    @pytest.mark.parametrize(
        "payload",
        [
            b"\x00\x01\x02\x03" * 10,
            b"@only_header\n",
            b"@r\nACGT\n+\nIIII\n@broken",
            b">this_is_fasta\nACGT\n",
            b"@r\nACGT\nIIII\n+\n",
        ],
    )
    def test_garbage_raises_parse_error_not_crash(self, tmp_path, payload):
        path = tmp_path / "garbage.fastq"
        path.write_bytes(payload)
        with pytest.raises((FastqParseError, UnicodeDecodeError, ValueError)):
            read_fastq(path)

    def test_mismatched_mate_files_rejected(self, tiny_hg, tmp_path):
        from repro.seqio.fastq import write_fastq
        from repro.seqio.records import FastqRecord

        short = tmp_path / "short_R2.fastq"
        write_fastq(short, [FastqRecord("x", "ACGT", "IIII")])
        with pytest.raises(ValueError, match="mate counts differ"):
            index_create(
                [(tiny_hg.r1_path, str(short))], k=27, m=5, n_chunks=2
            )


class TestInputMutationBetweenIndexAndRun:
    def test_shorter_input_detected(self, tiny_hg, tmp_path):
        """Index built, then the FASTQ shrinks: chunk loads must fail
        rather than silently process the wrong region."""
        import shutil

        r1 = tmp_path / "r1.fastq"
        r2 = tmp_path / "r2.fastq"
        shutil.copy(tiny_hg.r1_path, r1)
        shutil.copy(tiny_hg.r2_path, r2)
        index = index_create([(str(r1), str(r2))], k=27, m=5, n_chunks=4)
        # truncate r1 to half its records
        records = read_fastq(r1)
        from repro.seqio.fastq import write_fastq

        write_fastq(r1, records[: len(records) // 2])
        cfg = PipelineConfig(k=27, m=5, write_outputs=False)
        with pytest.raises((ValueError, FastqParseError)):
            MetaPrep(cfg).run([(str(r1), str(r2))], index=index)
