"""Differential test suite: the ``process`` engine must be bit-identical
to the ``serial`` reference engine, and the shared-memory dataplane must
be bit-identical to the heap dataplane.

For every grid point (P, T, n_passes, k in {21, 33}, LocalCC-Opt on/off)
the engines run the same dataset through the same prebuilt index, and
the partition labels, the component summary, and *every* integer counter
in :class:`~repro.runtime.work.RunWork` are compared for exact equality.
Any scheduling leak — a reordered union, a dropped tuple, a miscounted
byte — shows up here as a hard mismatch, not a statistical drift.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.index.create import index_create
from repro.runtime.work import RunWork

M = 5
N_CHUNKS = 12


@pytest.fixture(scope="module")
def indexes(tiny_hg):
    """One prebuilt index per k (k=33 exercises two-limb k-mers)."""
    return {
        k: index_create(tiny_hg.units, k=k, m=M, n_chunks=N_CHUNKS)
        for k in (21, 33)
    }


GRID = [
    dict(k=21, n_tasks=1, n_threads=1, n_passes=1, localcc_opt=True),
    dict(k=21, n_tasks=2, n_threads=2, n_passes=1, localcc_opt=True),
    dict(k=21, n_tasks=2, n_threads=2, n_passes=2, localcc_opt=False),
    dict(k=21, n_tasks=3, n_threads=2, n_passes=2, localcc_opt=True),
    dict(k=21, n_tasks=4, n_threads=1, n_passes=3, localcc_opt=True),
    dict(k=33, n_tasks=2, n_threads=2, n_passes=1, localcc_opt=True),
    dict(k=33, n_tasks=2, n_threads=3, n_passes=2, localcc_opt=True),
    dict(k=33, n_tasks=3, n_threads=1, n_passes=2, localcc_opt=False),
]


def _run(tiny_hg, indexes, grid_point, executor, dataplane="auto", spill="never"):
    cfg = PipelineConfig(
        m=M,
        write_outputs=False,
        executor=executor,
        max_workers=2,
        dataplane=dataplane,
        spill=spill,
        **grid_point,
    )
    return MetaPrep(cfg).run(tiny_hg.units, index=indexes[grid_point["k"]])


def assert_runwork_identical(a: RunWork, b: RunWork) -> None:
    """Every field of RunWork must match exactly, by whatever equality its
    type defines (arrays elementwise, lists/ints structurally)."""
    for f in dataclasses.fields(RunWork):
        va, vb = getattr(a, f.name), getattr(b, f.name)
        if isinstance(va, np.ndarray):
            assert np.array_equal(va, vb), f"RunWork.{f.name} differs"
        else:
            assert va == vb, f"RunWork.{f.name} differs: {va!r} != {vb!r}"


@pytest.mark.parametrize(
    "grid_point",
    GRID,
    ids=lambda g: (
        f"k{g['k']}-P{g['n_tasks']}-T{g['n_threads']}-S{g['n_passes']}-"
        f"opt{int(g['localcc_opt'])}"
    ),
)
class TestBitIdentity:
    def test_process_matches_serial(self, tiny_hg, indexes, grid_point):
        serial = _run(tiny_hg, indexes, grid_point, "serial")
        process = _run(tiny_hg, indexes, grid_point, "process")

        # partition: labels, parent array, and the summary
        assert np.array_equal(
            serial.partition.labels, process.partition.labels
        )
        assert np.array_equal(
            serial.partition.parent, process.partition.parent
        )
        assert serial.partition.summary == process.partition.summary
        assert serial.partition.largest_label == process.partition.largest_label

        # every RunWork integer counter
        assert_runwork_identical(serial.work, process.work)

        # step-level stats ride along bit-identically too
        assert serial.sort_stats == process.sort_stats
        assert serial.cc_stats == process.cc_stats
        assert len(serial.comm_stats) == len(process.comm_stats)
        for sa, sb in zip(serial.comm_stats, process.comm_stats):
            assert np.array_equal(sa.bytes_matrix, sb.bytes_matrix)
            assert (
                sa.max_message_bytes_per_stage
                == sb.max_message_bytes_per_stage
            )

        # and the projection, which is a pure function of the volumes
        assert (
            serial.projected.total_seconds == process.projected.total_seconds
        )

    def test_shared_dataplane_matches_heap(self, tiny_hg, indexes, grid_point):
        """Third leg of the differential: the serial engine with the
        shared-memory dataplane forced on.  This isolates the buffer
        backing from the executor — any byte the shm path moves
        differently from plain ndarrays breaks bit-identity here."""
        heap = _run(tiny_hg, indexes, grid_point, "serial", dataplane="heap")
        shared = _run(
            tiny_hg, indexes, grid_point, "serial", dataplane="shared"
        )
        assert np.array_equal(heap.partition.labels, shared.partition.labels)
        assert np.array_equal(heap.partition.parent, shared.partition.parent)
        assert heap.partition.summary == shared.partition.summary
        assert_runwork_identical(heap.work, shared.work)
        assert heap.sort_stats == shared.sort_stats
        assert heap.cc_stats == shared.cc_stats

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_spill_always_matches_never(
        self, tiny_hg, indexes, grid_point, executor
    ):
        """Fourth leg of the differential: the out-of-core path forced
        on.  Tuples travel through spill files on disk instead of
        resident blocks — any byte the spill format or the lazy
        re-attachment moves differently breaks bit-identity here."""
        inmem = _run(tiny_hg, indexes, grid_point, executor, spill="never")
        spilled = _run(tiny_hg, indexes, grid_point, executor, spill="always")
        assert spilled.spilled_passes == list(range(grid_point["n_passes"]))
        assert np.array_equal(
            inmem.partition.labels, spilled.partition.labels
        )
        assert np.array_equal(
            inmem.partition.parent, spilled.partition.parent
        )
        assert inmem.partition.summary == spilled.partition.summary
        assert_runwork_identical(inmem.work, spilled.work)
        assert inmem.sort_stats == spilled.sort_stats
        assert inmem.cc_stats == spilled.cc_stats


class TestStaticChecksActiveInWorkers:
    def test_corrupt_index_still_detected_under_process_engine(self, tiny_hg):
        """The StaticCountMismatch defense must survive the executor
        boundary: counts are produced by workers, verified by the driver."""
        from repro.core.pipeline import StaticCountMismatch

        index = index_create(tiny_hg.units, k=21, m=M, n_chunks=8)
        index.fastqpart.hist[0, :] = index.fastqpart.hist[0, ::-1].copy()
        index.merhist.counts = index.fastqpart.global_histogram().astype(
            np.uint32
        )
        cfg = PipelineConfig(
            k=21, m=M, n_tasks=2, n_threads=2, write_outputs=False,
            verify_static_counts=True, executor="process", max_workers=2,
        )
        with pytest.raises(StaticCountMismatch):
            MetaPrep(cfg).run(tiny_hg.units, index=index)
