"""Single-end (unpaired) input through the whole pipeline."""

import pytest

from repro.cc.components import (
    partition_as_frozensets,
    reference_components_networkx,
)
from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep
from repro.seqio.fastq import read_fastq, write_fastq
from repro.seqio.records import ReadBatch


@pytest.fixture(scope="module")
def single_end_file(tmp_path_factory, tiny_hg):
    """The HG analogue's R1 file alone, as a single-end dataset."""
    out = tmp_path_factory.mktemp("se") / "reads.fastq"
    write_fastq(out, read_fastq(tiny_hg.r1_path))
    return str(out)


class TestSingleEndPipeline:
    def test_runs_and_matches_oracle(self, single_end_file, tmp_path):
        cfg = PipelineConfig(
            k=27, m=5, n_tasks=2, n_threads=2, n_passes=2, write_outputs=True
        )
        res = MetaPrep(cfg).run([single_end_file], output_dir=tmp_path)
        records = read_fastq(single_end_file)
        batch = ReadBatch.from_records(records, keep_metadata=False)
        ref = reference_components_networkx(batch, 27)
        got = partition_as_frozensets(res.partition.parent, batch.read_ids)
        assert got == ref

    def test_every_read_written_once(self, single_end_file, tmp_path):
        cfg = PipelineConfig(k=27, m=5, n_threads=2, write_outputs=True)
        res = MetaPrep(cfg).run([single_end_file], output_dir=tmp_path)
        n = len(read_fastq(single_end_file))
        total = (
            res.partition.lc_reads_written + res.partition.other_reads_written
        )
        assert total == n

    def test_single_end_ids_unique(self, single_end_file):
        cfg = PipelineConfig(k=27, m=5, write_outputs=False)
        res = MetaPrep(cfg).run([single_end_file])
        assert res.n_reads == len(read_fastq(single_end_file))

    def test_mixed_single_and_paired_units(self, single_end_file, tiny_hg):
        """A single-end file plus a paired unit in one run."""
        cfg = PipelineConfig(k=27, m=5, n_threads=2, write_outputs=False)
        units = [single_end_file, (tiny_hg.r1_path, tiny_hg.r2_path)]
        res = MetaPrep(cfg).run(units)
        n_single = len(read_fastq(single_end_file))
        assert res.n_reads == n_single + tiny_hg.n_pairs
        assert res.partition.summary.n_components >= 1
