import csv

import numpy as np
import pytest

from repro.perf.sweeps import SweepDriver


@pytest.fixture(scope="module")
def driver(tiny_hg):
    return SweepDriver(tiny_hg.units, k=27, m=5, n_chunks=16, scale_factor=100.0)


class TestSweepDriver:
    def test_index_built_once(self, driver):
        a = driver.index
        b = driver.index
        assert a is b

    def test_thread_sweep_speedup_monotone(self, driver):
        sweep = driver.thread_sweep([1, 2, 4])
        speedups = sweep.speedups()
        assert speedups[0] == pytest.approx(1.0)
        assert speedups == sorted(speedups)

    def test_node_sweep_partitions_identical(self, driver):
        sweep = driver.node_sweep([1, 2, 4], n_threads=2)
        labels = [p.result.partition.labels for p in sweep.points]
        for other in labels[1:]:
            assert np.array_equal(labels[0], other)

    def test_pass_sweep_tuples_conserved(self, driver):
        sweep = driver.pass_sweep([1, 2, 4], n_tasks=2, n_threads=2)
        totals = {p.result.total_tuples for p in sweep.points}
        assert len(totals) == 1

    def test_point_rows_have_all_steps(self, driver):
        from repro.runtime.work import StepNames

        point = driver.run_point(2, 2)
        row = point.as_row()
        for step in StepNames.ORDER:
            assert step in row

    def test_csv_export(self, driver, tmp_path):
        sweep = driver.thread_sweep([1, 2])
        path = tmp_path / "sweep.csv"
        n = sweep.write_csv(path)
        assert n == 2
        with open(path) as fh:
            rows = list(csv.DictReader(fh))
        assert len(rows) == 2
        assert rows[0]["threads"] == "1"
        assert float(rows[0]["projected_total_s"]) > 0

    def test_empty_sweep_rejected(self, tmp_path):
        from repro.perf.sweeps import SweepResult

        with pytest.raises(ValueError):
            SweepResult([]).write_csv(tmp_path / "x.csv")
