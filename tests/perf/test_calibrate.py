
from repro.perf.calibrate import (
    SubstrateRates,
    measure_kmer_rate,
    measure_merge_rate,
    measure_sort_rate,
    measure_uf_rate,
)


class TestMeasurements:
    def test_kmer_rate_positive(self):
        rate = measure_kmer_rate(n_bases=30_000, repeats=1)
        assert rate > 1e4

    def test_sort_rate_positive(self):
        rate = measure_sort_rate(n_tuples=20_000, repeats=1)
        assert rate > 1e4

    def test_uf_rate_positive(self):
        rate = measure_uf_rate(n_vertices=5_000, n_edges=10_000, repeats=1)
        assert rate > 1e3

    def test_merge_rate_positive(self):
        rate = measure_merge_rate(n_vertices=20_000, repeats=1)
        assert rate > 1e3


class TestSubstrateRates:
    def test_as_dict_keys_match_machine_fields(self):
        from repro.runtime.machines import EDISON

        rates = SubstrateRates(
            kmer_rate=1.0, sort_rate=2.0, uf_rate=3.0, merge_rate=4.0
        )
        for key in rates.as_dict():
            assert hasattr(EDISON, key), key
