import pytest

from repro.perf.costmodel import (
    IOWA_EXAMPLE,
    CostModelInputs,
    estimate_memory_per_task,
    estimate_step_complexities,
    mergecc_is_bottleneck,
)

GB = 10**9


class TestIowaWorkedExample:
    """Paper section 3.7's 49 GB/task example, component by component."""

    def test_merhist_4mb(self):
        mem = estimate_memory_per_task(IOWA_EXAMPLE)
        assert mem.merhist_bytes == 4 * 4**10  # 4 MB

    def test_fastqpart_about_6gb(self):
        mem = estimate_memory_per_task(IOWA_EXAMPLE)
        assert mem.fastqpart_bytes == pytest.approx(6.4 * GB, rel=0.05)

    def test_fastq_buffer_about_7gb(self):
        mem = estimate_memory_per_task(IOWA_EXAMPLE)
        assert mem.fastq_buffer_bytes == pytest.approx(7.2 * GB, rel=0.05)

    def test_kmer_buffers_about_14gb_each(self):
        mem = estimate_memory_per_task(IOWA_EXAMPLE)
        assert mem.kmer_out_bytes == pytest.approx(15.6 * GB, rel=0.1)
        assert mem.kmer_in_bytes == mem.kmer_out_bytes

    def test_component_arrays_about_8gb(self):
        mem = estimate_memory_per_task(IOWA_EXAMPLE)
        assert mem.component_arrays_bytes == pytest.approx(9.0 * GB, rel=0.05)

    def test_total_about_49gb(self):
        mem = estimate_memory_per_task(IOWA_EXAMPLE)
        # paper: "49 GB (6 + 7 + 2 x 14 + 8)" with generous rounding
        assert 45 * GB < mem.total_bytes < 56 * GB

    def test_breakdown_sums_to_total(self):
        mem = estimate_memory_per_task(IOWA_EXAMPLE)
        assert sum(mem.breakdown().values()) == mem.total_bytes


class TestScalingDirections:
    def _inputs(self, **kw):
        base = dict(
            tuples=10**9,
            reads=10**7,
            n_chunks=128,
            chunk_bytes=10**8,
            n_tasks=4,
            n_threads=8,
            n_passes=1,
            m=8,
            tuple_bytes=12,
        )
        base.update(kw)
        return CostModelInputs(**base)

    def test_more_passes_less_memory(self):
        m1 = estimate_memory_per_task(self._inputs(n_passes=1)).total_bytes
        m8 = estimate_memory_per_task(self._inputs(n_passes=8)).total_bytes
        assert m8 < m1

    def test_more_tasks_less_memory(self):
        m1 = estimate_memory_per_task(self._inputs(n_tasks=1)).total_bytes
        m16 = estimate_memory_per_task(self._inputs(n_tasks=16)).total_bytes
        assert m16 < m1

    def test_k63_tuples_cost_more(self):
        m12 = estimate_memory_per_task(self._inputs(tuple_bytes=12))
        m20 = estimate_memory_per_task(self._inputs(tuple_bytes=20))
        assert m20.kmer_out_bytes > m12.kmer_out_bytes

    def test_component_arrays_independent_of_passes(self):
        m1 = estimate_memory_per_task(self._inputs(n_passes=1))
        m8 = estimate_memory_per_task(self._inputs(n_passes=8))
        assert m1.component_arrays_bytes == m8.component_arrays_bytes


class TestComplexities:
    def test_first_steps_scale_with_pt(self):
        a = estimate_step_complexities(IOWA_EXAMPLE)
        bigger = CostModelInputs(
            tuples=IOWA_EXAMPLE.tuples,
            reads=IOWA_EXAMPLE.reads,
            n_chunks=IOWA_EXAMPLE.n_chunks,
            chunk_bytes=IOWA_EXAMPLE.chunk_bytes,
            n_tasks=32,
            n_threads=24,
            n_passes=8,
        )
        b = estimate_step_complexities(bigger)
        assert b["KmerGen"] < a["KmerGen"]
        assert b["MergeCC"] > a["MergeCC"]  # log P grew

    def test_bottleneck_predicate(self):
        # small data, many tasks: R log P > M/(PT) -> MergeCC dominates
        small = CostModelInputs(
            tuples=10**6,
            reads=10**6,
            n_chunks=16,
            chunk_bytes=10**6,
            n_tasks=64,
            n_threads=24,
            n_passes=1,
        )
        assert mergecc_is_bottleneck(small)
        # huge data, one task: never
        big = CostModelInputs(
            tuples=10**12,
            reads=10**6,
            n_chunks=16,
            chunk_bytes=10**6,
            n_tasks=1,
            n_threads=1,
            n_passes=1,
        )
        assert not mergecc_is_bottleneck(big)
