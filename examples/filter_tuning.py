#!/usr/bin/env python
"""Data-driven filter tuning: automating the paper's Table 7 exploration.

The paper picks its frequency-filter cutoffs (10, 30) "arbitrarily" and
leaves "an extensive evaluation of filtering strategies ... for future
work".  This example runs that evaluation with the extension modules:

1. estimate the dataset's coverage structure from its k-mer spectrum and
   derive a filter band (``repro.kmers.spectrum_analysis``),
2. sweep cutoffs and plot the largest-component curve
   (``repro.cc.splitting.sweep_filters``),
3. binary-search the gentlest filter meeting a target balance
   (``split_to_target``),
4. compare with digital normalization as an alternative reduction
   (``repro.kmers.normalization``).

Run:  python examples/filter_tuning.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import build_dataset
from repro.cc.splitting import split_to_target, sweep_filters
from repro.core.report import format_table
from repro.index.create import index_create
from repro.index.fastqpart import load_chunk_reads
from repro.kmers.counter import count_canonical_kmers
from repro.kmers.normalization import DigitalNormalizer
from repro.kmers.spectrum_analysis import analyze_spectrum, recommended_filter_band
from repro.seqio.records import ReadBatch

K = 27


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="metaprep_tuning_")
    )
    dataset = build_dataset("HG", workdir / "data", seed=5, scale=0.8)
    index = index_create(dataset.units, k=K, m=6, n_chunks=16)
    batch = ReadBatch.concatenate(
        [
            load_chunk_reads(index.fastqpart, c, keep_metadata=False)
            for c in range(index.fastqpart.n_chunks)
        ]
    )
    print(f"HG analogue: {dataset.n_pairs} pairs")

    # 1. spectrum-derived filter band
    spectrum = count_canonical_kmers(batch, K)
    report = analyze_spectrum(spectrum)
    lo, hi = recommended_filter_band(report)
    print(
        f"spectrum: coverage peak {report.coverage_peak}x, error trough at "
        f"{report.trough}, suggested band {lo} <= KF < {hi} "
        f"(the paper hand-picked 10 <= KF < 30)"
    )

    # 2. cutoff sweep
    cutoffs = [5, 10, 20, 30, 50, 100]
    outcomes = sweep_filters(batch, K, max_freqs=cutoffs)
    rows = [
        [o.kfilter.describe(), f"{o.lc_fraction * 100:.1f}%", o.summary.n_components]
        for o in outcomes
    ]
    print()
    print(format_table(["filter", "largest component", "components"], rows))

    # 3. gentlest filter meeting a 60% balance target
    target = 0.6
    best = split_to_target(batch, K, target_fraction=target)
    print(
        f"\ngentlest filter with LC <= {target:.0%}: "
        f"{best.kfilter.describe()} "
        f"(LC = {best.lc_fraction * 100:.1f}%)"
    )

    # 4. digital normalization as the alternative reduction
    kept, stats = DigitalNormalizer(k=17, coverage=report.coverage_peak).normalize_pairs(batch)
    print(
        f"\ndigital normalization at C={report.coverage_peak}: kept "
        f"{stats.n_reads_kept}/{stats.n_reads_in} reads "
        f"({100 * stats.keep_fraction:.1f}%) — an orthogonal reduction the "
        "partitioning strategy composes with"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
