#!/usr/bin/env python
"""Large-dataset workflow: multipass partitioning under a memory budget.

This mirrors the paper's headline experiment — the 223 Gbp Iowa
Continuous Corn soil dataset processed in ~14 minutes on 16 Edison nodes
using 8 I/O passes to fit 64 GB/node — at reproduction scale:

1. build the IS (Iowa soil) analogue,
2. let the pass planner derive the fewest passes for a per-task memory
   budget (paper section 3.7),
3. run with 16 simulated tasks,
4. project the run onto the Edison machine model at the paper's data
   scale and report the step breakdown and memory estimate.

Run:  python examples/soil_metagenome_partitioning.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import MetaPrep, PipelineConfig, build_dataset
from repro.core.report import format_breakdown
from repro.runtime.machines import get_machine
from repro.runtime.timing import TimingModel
from repro.util.sizes import human_bytes

PAPER_IS_GBP = 223.26
N_TASKS = 16
THREADS = 12


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="metaprep_soil_")
    )
    dataset = build_dataset("IS", workdir / "data", seed=3, scale=0.4)
    print(
        f"IS analogue: {dataset.n_pairs} pairs, "
        f"{dataset.total_bases / 1e6:.1f} Mbp, "
        f"{dataset.community.n_species} species"
    )

    # Budget-driven pass planning: give each simulated task a budget that
    # forces multipass execution, exactly how the real 64 GB/node limit
    # forces 8 passes on the full dataset.  IndexCreate runs first so the
    # budget can account for the resident tables and component arrays
    # (the fixed terms of the section 3.7 memory model).
    from repro.index.create import index_create

    n_chunks = N_TASKS * THREADS * 2
    index = index_create(dataset.units, k=27, m=7, n_chunks=n_chunks)
    reserved = (
        index.fastqpart.nbytes
        + index.merhist.nbytes
        + 8 * index.fastqpart.total_reads
    )
    tuples = index.merhist.total_tuples
    # leave tuple-buffer room for ~1/4 of the data per pass => ~4 passes
    budget = reserved + int(2 * 12 * tuples / (N_TASKS * 4))
    config = PipelineConfig(
        k=27,
        m=7,
        n_tasks=N_TASKS,
        n_threads=THREADS,
        n_passes=None,  # derive from the budget
        memory_budget_per_task=budget,
        n_chunks=n_chunks,
        write_outputs=False,
    )
    print(
        f"per-task memory budget: {human_bytes(budget)} "
        f"(tables + component arrays: {human_bytes(reserved)})"
    )

    result = MetaPrep(config).run(dataset.units, index=index)
    print(
        f"planner chose S = {result.n_passes} passes; "
        f"{result.total_tuples} tuples; "
        f"{result.partition.summary.n_components} components "
        f"(LC {result.partition.summary.largest_component_percent:.1f}%)"
    )

    # Project at the paper's 223 Gbp scale on the Edison model.
    factor = PAPER_IS_GBP / (dataset.total_bases / 1e9)
    scaled = result.work.scaled(factor)
    model = TimingModel(get_machine("edison"))
    projected = model.project(scaled)
    print()
    print(
        format_breakdown(
            projected.breakdown(),
            f"projected on Edison at {PAPER_IS_GBP} Gbp, "
            f"{N_TASKS} nodes, S={result.n_passes} "
            f"(paper: ~14 minutes on 16 nodes)",
        )
    )
    print(
        f"\nprojected memory/task: "
        f"{human_bytes(model.estimated_memory_per_task(scaled))} "
        f"(paper example: ~49 GB)"
    )
    print(
        f"projected total: {projected.total_seconds / 60:.1f} minutes"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
