#!/usr/bin/env python
"""K-mer counting shoot-out: METAPREP's KmerGen path vs a KMC 2-style
minimizer counter (paper Figure 9).

Both count canonical 27-mers of the same dataset; the script verifies the
spectra agree exactly, then contrasts the two pipelines' stage structure:
raw (k-mer, read) tuples vs super-k-mer binning.

Run:  python examples/kmer_counting_comparison.py [workdir]
"""

import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro import build_dataset
from repro.baselines.kmc2 import Kmc2Counter
from repro.core.report import format_table
from repro.index.create import index_create
from repro.index.fastqpart import load_chunk_reads
from repro.kmers.counter import spectrum_from_tuples
from repro.kmers.engine import enumerate_canonical_kmers
from repro.seqio.records import ReadBatch
from repro.sort.radix import radix_sort_tuples

K, M = 27, 7


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="metaprep_kmc2_")
    )
    dataset = build_dataset("LL", workdir / "data", seed=4, scale=0.8)
    index = index_create(dataset.units, k=K, m=6, n_chunks=16)
    batches = [
        load_chunk_reads(index.fastqpart, c, keep_metadata=False)
        for c in range(index.fastqpart.n_chunks)
    ]
    merged = ReadBatch.concatenate(batches)
    print(
        f"LL analogue: {merged.n_reads} reads, "
        f"{merged.n_bases / 1e6:.2f} Mbp"
    )

    # --- METAPREP path: enumerate raw tuples, sort, collapse -------------
    t0 = time.perf_counter()
    tuples = enumerate_canonical_kmers(merged, K)
    stage1_mp = time.perf_counter() - t0
    t0 = time.perf_counter()
    sorted_tuples, _ = radix_sort_tuples(tuples)
    spectrum_mp = spectrum_from_tuples(sorted_tuples)
    stage2_mp = time.perf_counter() - t0

    # --- KMC 2 path: super-k-mer binning, per-bin sort -------------------
    counter = Kmc2Counter(K, m=M, n_bins=128)
    kmc = counter.count(batches)

    same = np.array_equal(
        spectrum_mp.kmers.lo, kmc.spectrum.kmers.lo
    ) and np.array_equal(spectrum_mp.counts, kmc.spectrum.counts)
    print(f"spectra identical: {same}")
    assert same

    print()
    print(
        format_table(
            ["pipeline", "stage1 (s)", "stage2 (s)", "stage1 output"],
            [
                [
                    "METAPREP",
                    f"{stage1_mp:.2f}",
                    f"{stage2_mp:.2f}",
                    f"{12 * len(tuples) / 1e6:.1f} MB raw tuples",
                ],
                [
                    "KMC 2 style",
                    f"{kmc.stage1_seconds:.2f}",
                    f"{kmc.stage2_seconds:.2f}",
                    f"{kmc.super_kmer_bases / 1e6:.1f} MB super-k-mers",
                ],
            ],
        )
    )
    print(
        f"\ndistinct 27-mers: {spectrum_mp.n_distinct}; "
        f"super-k-mers: {kmc.n_super_kmers} "
        f"(compaction vs raw tuples: {kmc.compaction_ratio:.2f}x)"
    )
    print(
        "KMC 2's trade: extra Stage-1 minimizer work buys a Stage-2 input "
        f"{1 / max(kmc.compaction_ratio, 1e-9):.1f}x smaller."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
