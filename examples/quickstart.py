#!/usr/bin/env python
"""Quickstart: partition a small synthetic metagenome with METAPREP.

Builds a human-gut-like synthetic dataset, runs the full preprocessing
pipeline (IndexCreate -> KmerGen -> all-to-all -> LocalSort -> LocalCC ->
MergeCC), writes the partitioned FASTQ files, and prints the partition
summary plus measured and projected step times.

Run:  python examples/quickstart.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import MetaPrep, PipelineConfig, build_dataset
from repro.core.report import format_breakdown, format_partition_summary


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="metaprep_quickstart_")
    )
    print(f"workspace: {workdir}")

    # 1. A scaled-down human-gut analogue (paper Table 2's HG): paired-end
    #    FASTQ files written to disk.
    dataset = build_dataset("HG", workdir / "data", seed=1, scale=0.5)
    print(
        f"dataset: {dataset.n_pairs} read pairs, "
        f"{dataset.total_bases / 1e6:.2f} Mbp "
        f"({dataset.community.n_species} species)"
    )

    # 2. Configure the pipeline: k=27 (the paper's default), 2 simulated
    #    MPI tasks x 4 threads, single I/O pass.
    config = PipelineConfig(k=27, m=6, n_tasks=2, n_threads=4, n_passes=1)

    # 3. Run.  IndexCreate happens automatically on first use.
    result = MetaPrep(config).run(dataset.units, output_dir=workdir / "parts")

    # 4. Inspect the partition.
    print()
    print(format_partition_summary(result.partition.summary))
    print()
    print(format_breakdown(result.measured, "measured step times (this host)"))
    print()
    print(
        format_breakdown(
            result.projected.breakdown(),
            "projected step times (Edison model, this data size)",
        )
    )
    print()
    print(f"largest-component reads -> {result.partition.lc_files}")
    print(f"all other reads        -> {result.partition.other_files}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
