#!/usr/bin/env python
"""Preprocessing + assembly: the Tables 8/9 workflow.

Partitions a mock-community analogue with METAPREP (with the paper's
k-mer frequency filter), assembles the whole dataset, the largest
component, and the remainder independently with the de Bruijn unitig
assembler, and compares times and assembly quality.

Run:  python examples/assembly_speedup.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import MetaPrep, PipelineConfig, build_dataset
from repro.assembly.assembler import AssemblyConfig, MiniAssembler
from repro.core.report import format_table
from repro.kmers.filter import FrequencyFilter


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="metaprep_assembly_")
    )
    dataset = build_dataset("MM", workdir / "data", seed=2, scale=0.6)
    print(
        f"MM analogue: {dataset.n_pairs} pairs, "
        f"{dataset.total_bases / 1e6:.2f} Mbp"
    )

    # Partition with the paper's KF < 30 frequency filter.
    config = PipelineConfig(
        k=27,
        m=6,
        n_threads=4,
        kmer_filter=FrequencyFilter(max_freq=30),
        write_outputs=True,
    )
    prep = MetaPrep(config).run(dataset.units, output_dir=workdir / "parts")
    print(
        f"METAPREP ({prep.measured.total:.2f}s): LC holds "
        f"{prep.partition.summary.largest_component_percent:.1f}% of reads "
        f"(filter: {config.kmer_filter.describe()})"
    )

    assembler = MiniAssembler(AssemblyConfig(k=16, min_count=2, min_contig_length=50))
    full = assembler.assemble_units(dataset.units)
    lc = assembler.assemble_files(prep.partition.lc_files)
    other = assembler.assemble_files(prep.partition.other_files)

    rows = []
    for label, result in (
        ("No Preproc", full),
        ("LC", lc),
        ("Other", other),
    ):
        s = result.stats
        rows.append(
            [
                label,
                result.n_reads,
                f"{result.seconds:.2f}s",
                s.n_contigs,
                f"{s.total_bp / 1e3:.1f} kbp",
                s.max_bp,
                s.n50,
            ]
        )
    print()
    print(
        format_table(
            ["assembly", "reads", "time", "contigs", "total", "max", "N50"],
            rows,
        )
    )

    speedup = full.seconds / (prep.measured.total + lc.seconds)
    print(
        f"\nLC and Other can be assembled in parallel on 2 nodes; "
        f"end-to-end speedup metric (paper Table 8): {speedup:.2f}x"
    )
    print(
        "(at paper scale assembly dwarfs preprocessing, giving 1.22-1.36x;"
        " at this scale the preprocessing share is proportionally larger)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
