#!/usr/bin/env python
"""Paired-end scaffolding: closing the loop on preserved pair information.

METAPREP assigns both mates of a pair one read id precisely so that
partitioned outputs remain usable as paired-end data (paper section 3.2).
This example exercises the payoff end to end:

1. partition a dataset with METAPREP (pairs stay together by
   construction),
2. assemble the largest component into contigs,
3. use the pairs' insert-size information to join contigs into scaffolds,
4. score contigs and scaffolds against the ground-truth genomes.

Run:  python examples/scaffolding.py [workdir]
"""

import sys
import tempfile
from pathlib import Path

from repro import MetaPrep, PipelineConfig, build_dataset
from repro.assembly.assembler import AssemblyConfig, MiniAssembler
from repro.assembly.evaluation import evaluate_against_community
from repro.assembly.scaffold import ScaffoldConfig, scaffold_contigs
from repro.assembly.stats import contig_stats
from repro.seqio.fastq import read_fastq


def main() -> int:
    workdir = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(
        tempfile.mkdtemp(prefix="metaprep_scaffold_")
    )
    dataset = build_dataset("HG", workdir / "data", seed=8, scale=1.2)
    print(f"HG analogue: {dataset.n_pairs} pairs")

    # 1. partition
    prep = MetaPrep(
        PipelineConfig(k=27, m=6, n_threads=4, write_outputs=True)
    ).run(dataset.units, output_dir=workdir / "parts")
    print(
        f"partitioned: LC {prep.partition.summary.largest_component_percent:.1f}%"
    )

    # 2. assemble the largest component
    assembler = MiniAssembler(
        AssemblyConfig(k=20, min_count=2, min_contig_length=60, clean=True)
    )
    lc = assembler.assemble_files(prep.partition.lc_files)
    print(
        f"assembly: {lc.stats.n_contigs} contigs, N50 {lc.stats.n50} bp, "
        f"max {lc.stats.max_bp} bp"
    )

    # 3. scaffold with the preserved pairs (reconstruct mate tuples from
    # the partitioned per-thread files: mates share the name prefix)
    by_name = {}
    for path in prep.partition.lc_files:
        for rec in read_fastq(path):
            stem, mate = rec.name.rsplit("/", 1)
            by_name.setdefault(stem, {})[mate] = rec.sequence
    pairs = [
        (mates["1"], mates["2"])
        for mates in by_name.values()
        if "1" in mates and "2" in mates
    ]
    print(f"pairs preserved through partitioning: {len(pairs)}")
    scaffolds, sstats = scaffold_contigs(
        lc.contigs,
        pairs,
        ScaffoldConfig(
            k_anchor=16,
            min_links=3,
            insert_mean=dataset.spec.insert_mean,
        ),
    )
    sc_stats = contig_stats(scaffolds)
    print(
        f"scaffolding: {sstats.n_links_kept} joins -> "
        f"{sc_stats.n_contigs} scaffolds, N50 {sc_stats.n50} bp "
        f"(contig N50 was {lc.stats.n50})"
    )

    # 4. truth check
    contig_eval = evaluate_against_community(lc.contigs, dataset.community, k=16)
    print(
        f"\nground truth: {100 * contig_eval.correctness_rate:.1f}% of "
        f"contigs exact, genome fraction "
        f"{100 * contig_eval.genome_fraction:.1f}%, "
        f"{contig_eval.n_misassembled} misassemblies"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
