"""Paper section 3.7, implemented symbolically.

Memory per task:  ``4^(m+1) (C + 1)  +  T s_c  +  2 * tuple_bytes * M/(S P)
+ 8 R`` — merHist + FASTQPart, per-thread FASTQ buffers, kmerOut + kmerIn,
and the two component arrays (p, p' at 4 bytes per read each).

Step time complexities (per task, up to constant factors):

* KmerGen:   O(M / (P T))
* LocalSort: O(M / (P T))       (linear-time radix, fixed pass count)
* LocalCC:   O(M log* R / (P T))
* MergeCC:   O(R log P log* R)

"if S is a small constant, the asymptotic running times of the first four
steps are essentially the same.  The MergeCC step might become a
bottleneck if R log P > M / (P T)."

The Iowa worked example from the paper (8 passes, 16 tasks, 24 threads,
~49 GB/task) is encoded as :data:`IOWA_EXAMPLE` and asserted by the test
suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class CostModelInputs:
    """Input data / machine parameters, paper notation."""

    #: number of canonical k-mer tuples (upper-bounded by total bases M;
    #: the paper uses M in Gbp and tuples ~= 0.74 M for 100 bp reads, k=27)
    tuples: int
    #: total paired-end reads R (one id per pair)
    reads: int
    #: number of file chunks C
    n_chunks: int
    #: bytes per FASTQ chunk s_c
    chunk_bytes: int
    #: MPI tasks P, threads per task T, passes S
    n_tasks: int
    n_threads: int
    n_passes: int
    #: m-mer prefix length (histogram bins = 4^m)
    m: int = 10
    #: bytes per (k-mer, read id) tuple (12 for k<=31, 20 for k<=63)
    tuple_bytes: int = 12


@dataclass(frozen=True)
class MemoryEstimate:
    """Per-task memory, broken down as in the paper's worked example."""

    merhist_bytes: int
    fastqpart_bytes: int
    fastq_buffer_bytes: int
    kmer_out_bytes: int
    kmer_in_bytes: int
    component_arrays_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.merhist_bytes
            + self.fastqpart_bytes
            + self.fastq_buffer_bytes
            + self.kmer_out_bytes
            + self.kmer_in_bytes
            + self.component_arrays_bytes
        )

    def breakdown(self) -> Dict[str, int]:
        return {
            "merHist": self.merhist_bytes,
            "FASTQPart": self.fastqpart_bytes,
            "FASTQBuffer": self.fastq_buffer_bytes,
            "kmerOut": self.kmer_out_bytes,
            "kmerIn": self.kmer_in_bytes,
            "p + p'": self.component_arrays_bytes,
        }


def estimate_memory_per_task(inputs: CostModelInputs) -> MemoryEstimate:
    """Section 3.7's memory formula."""
    bins = 4 ** inputs.m
    tuples_per_task_pass = math.ceil(
        inputs.tuples / (inputs.n_passes * inputs.n_tasks)
    )
    return MemoryEstimate(
        merhist_bytes=4 * bins,
        fastqpart_bytes=4 * bins * inputs.n_chunks,
        fastq_buffer_bytes=inputs.n_threads * inputs.chunk_bytes,
        kmer_out_bytes=inputs.tuple_bytes * tuples_per_task_pass,
        kmer_in_bytes=inputs.tuple_bytes * tuples_per_task_pass,
        component_arrays_bytes=2 * 4 * inputs.reads,
    )


def _log_star(n: float) -> float:
    """Iterated logarithm (base 2)."""
    count = 0
    while n > 1:
        n = math.log2(n)
        count += 1
    return max(count, 1)


def estimate_step_complexities(inputs: CostModelInputs) -> Dict[str, float]:
    """Relative per-task operation counts for the four compute steps plus
    MergeCC, in the paper's O(.) terms (constants dropped; useful for the
    bottleneck predicate below)."""
    pt = inputs.n_tasks * inputs.n_threads
    m = float(inputs.tuples)
    r = float(inputs.reads)
    return {
        "KmerGen": m / pt,
        "LocalSort": m / pt,
        "LocalCC": (m / pt) * _log_star(r),
        "MergeCC": r * max(math.log2(inputs.n_tasks), 0.0) * _log_star(r),
    }


def mergecc_is_bottleneck(inputs: CostModelInputs) -> bool:
    """The paper's predicate: MergeCC dominates when R log P > M / (P T)."""
    if inputs.n_tasks <= 1:
        return False
    lhs = inputs.reads * math.log2(inputs.n_tasks)
    rhs = inputs.tuples / (inputs.n_tasks * inputs.n_threads)
    return lhs > rhs


#: The paper's worked example: IS dataset (223.26 Gbp, 1.13 B reads) with
#: 8 passes, 16 tasks, 24 threads, 1536 chunks of ~0.3 GB, m = 10.
#: Expected: merHist 4 MB, FASTQPart ~6 GB, FASTQBuffer ~7 GB, kmerIn/Out
#: ~14 GB each, p+p' ~8 GB  =>  ~49 GB total.
IOWA_EXAMPLE = CostModelInputs(
    tuples=int(1.3e9) * 8 * 16,  # ~1.3 B tuples per task per pass
    reads=1_130_000_000,
    n_chunks=1536,
    chunk_bytes=int(0.3 * 10**9),
    n_tasks=16,
    n_threads=24,
    n_passes=8,
    m=10,
    tuple_bytes=12,
)
