"""Substrate calibration: measure this host's kernel throughputs.

The machine models in :mod:`repro.runtime.machines` carry per-core rate
constants for Edison/Ganga.  This module measures the *same quantities on
the current Python substrate* — tuples enumerated, tuple-passes sorted,
edges unioned, entries merged per second — so that

* benchmark reports can show measured-vs-modeled side by side, and
* users running on their own hardware can sanity-check whether a slow run
  is the algorithm or the host.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np

from repro.cc.dsf import DisjointSetForest
from repro.kmers.codec import MAX_K_ONE_LIMB, KmerArray
from repro.kmers.engine import KmerTuples, enumerate_canonical_kmers
from repro.seqio.records import ReadBatch
from repro.sort.radix import radix_passes_for, radix_sort_tuples
from repro.util.rng import rng_for
from repro.util.validation import check_in_range


@dataclass(frozen=True)
class SubstrateRates:
    """Measured single-thread throughputs on this host (ops/second)."""

    kmer_rate: float  # canonical k-mers enumerated /s
    sort_rate: float  # tuple-passes through the radix sort /s
    uf_rate: float  # union-find edge operations /s
    merge_rate: float  # component-array entries folded /s

    def as_dict(self) -> dict:
        return {
            "kmer_rate": self.kmer_rate,
            "sort_rate": self.sort_rate,
            "uf_rate": self.uf_rate,
            "merge_rate": self.merge_rate,
        }


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def measure_kmer_rate(n_bases: int = 300_000, k: int = 27, repeats: int = 3) -> float:
    rng = rng_for(101, "calibrate-kmer")
    codes = rng.integers(0, 4, size=n_bases, dtype=np.int64).astype(np.uint8)
    read_len = 100
    n_reads = n_bases // read_len
    batch = ReadBatch(
        codes[: n_reads * read_len],
        np.arange(0, n_reads * read_len + 1, read_len, dtype=np.int64),
        np.arange(n_reads, dtype=np.int64),
    )
    dt = _best_of(lambda: enumerate_canonical_kmers(batch, k), repeats)
    n_kmers = n_reads * (read_len - k + 1)
    return n_kmers / dt if dt > 0 else float("inf")


def measure_sort_rate(n_tuples: int = 200_000, k: int = 27, repeats: int = 3) -> float:
    # the synthetic keys fill a single uint64 limb, so the calibration
    # only models one-limb k-mers
    check_in_range("k", k, 1, MAX_K_ONE_LIMB)
    rng = rng_for(102, "calibrate-sort")
    lo = rng.integers(0, 1 << (2 * k), size=n_tuples, dtype=np.uint64)
    ids = rng.integers(0, n_tuples, size=n_tuples, dtype=np.uint32)
    tuples = KmerTuples(KmerArray(k, lo), ids)
    dt = _best_of(lambda: radix_sort_tuples(tuples, skip_constant=False), repeats)
    return n_tuples * radix_passes_for(k) / dt if dt > 0 else float("inf")


def measure_uf_rate(n_vertices: int = 50_000, n_edges: int = 100_000, repeats: int = 3) -> float:
    rng = rng_for(103, "calibrate-uf")
    us = rng.integers(0, n_vertices, size=n_edges)
    vs = rng.integers(0, n_vertices, size=n_edges)

    def run():
        DisjointSetForest(n_vertices).process_edges(us, vs)

    dt = _best_of(run, repeats)
    return n_edges / dt if dt > 0 else float("inf")


def measure_merge_rate(n_vertices: int = 200_000, repeats: int = 3) -> float:
    rng = rng_for(104, "calibrate-merge")
    a = DisjointSetForest(n_vertices)
    b = DisjointSetForest(n_vertices)
    edges = rng.integers(0, n_vertices, size=(n_vertices // 4, 2))
    b.process_edges(edges[:, 0], edges[:, 1])
    sent = b.parent

    def run():
        a.copy().absorb_parent_array(sent)

    dt = _best_of(run, repeats)
    return n_vertices / dt if dt > 0 else float("inf")


def calibrate(quick: bool = True) -> SubstrateRates:
    """Measure all four rates; ``quick`` shrinks problem sizes ~4x."""
    scale = 4 if not quick else 1
    return SubstrateRates(
        kmer_rate=measure_kmer_rate(300_000 * scale),
        sort_rate=measure_sort_rate(200_000 * scale),
        uf_rate=measure_uf_rate(50_000 * scale, 100_000 * scale),
        merge_rate=measure_merge_rate(200_000 * scale),
    )
