"""Analytic cost model of paper section 3.7."""

from repro.perf.costmodel import (
    CostModelInputs,
    MemoryEstimate,
    estimate_memory_per_task,
    estimate_step_complexities,
    IOWA_EXAMPLE,
)
from repro.perf.calibrate import SubstrateRates, calibrate

__all__ = [
    "CostModelInputs",
    "MemoryEstimate",
    "estimate_memory_per_task",
    "estimate_step_complexities",
    "IOWA_EXAMPLE",
    "SubstrateRates",
    "calibrate",
]
