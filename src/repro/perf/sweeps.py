"""Programmatic scaling sweeps.

Wraps the pipeline + timing model into one-call experiment drivers that
return structured rows (and write CSV), so notebooks, examples and the
benchmark harness share one implementation of "run the Figure-5 sweep".
"""

from __future__ import annotations

import csv
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Sequence

from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep, PipelineResult
from repro.index.create import IndexCreateResult, index_create
from repro.runtime.machines import get_machine
from repro.runtime.timing import TimingModel
from repro.runtime.work import StepNames


@dataclass
class SweepPoint:
    """One configuration's outcome."""

    n_tasks: int
    n_threads: int
    n_passes: int
    machine: str
    projected_total: float
    measured_total: float
    step_seconds: Dict[str, float]
    result: PipelineResult = field(repr=False, default=None)

    def as_row(self) -> Dict[str, object]:
        row: Dict[str, object] = {
            "tasks": self.n_tasks,
            "threads": self.n_threads,
            "passes": self.n_passes,
            "machine": self.machine,
            "projected_total_s": round(self.projected_total, 4),
            "measured_total_s": round(self.measured_total, 4),
        }
        for step in StepNames.ORDER:
            row[step] = round(self.step_seconds.get(step, 0.0), 4)
        return row


@dataclass
class SweepResult:
    points: List[SweepPoint]

    def speedups(self) -> List[float]:
        """Projected speedup of each point relative to the first."""
        if not self.points:
            return []
        base = self.points[0].projected_total
        return [base / p.projected_total for p in self.points]

    def write_csv(self, path: str | os.PathLike) -> int:
        if not self.points:
            raise ValueError("empty sweep")
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        rows = [p.as_row() for p in self.points]
        with open(path, "w", newline="", encoding="ascii") as fh:
            writer = csv.DictWriter(fh, fieldnames=list(rows[0].keys()))
            writer.writeheader()
            writer.writerows(rows)
        return len(rows)


class SweepDriver:
    """Runs a family of configurations over one dataset + index."""

    def __init__(
        self,
        units: Sequence,
        k: int = 27,
        m: int = 6,
        n_chunks: int = 32,
        machine: str = "edison",
        scale_factor: float = 1.0,
    ) -> None:
        self.units = list(units)
        self.k = k
        self.m = m
        self.n_chunks = n_chunks
        self.machine = machine
        self.scale_factor = scale_factor
        self._index: IndexCreateResult | None = None

    @property
    def index(self) -> IndexCreateResult:
        if self._index is None:
            self._index = index_create(
                self.units, k=self.k, m=self.m, n_chunks=self.n_chunks
            )
        return self._index

    # ------------------------------------------------------------------
    def run_point(
        self, n_tasks: int, n_threads: int, n_passes: int = 1, **config_kw
    ) -> SweepPoint:
        config = PipelineConfig(
            k=self.k,
            m=self.m,
            n_tasks=n_tasks,
            n_threads=n_threads,
            n_passes=n_passes,
            n_chunks=self.n_chunks,
            machine=self.machine,
            write_outputs=False,
            **config_kw,
        )
        result = MetaPrep(config).run(self.units, index=self.index)
        scaled = result.work.scaled(self.scale_factor)
        projected = TimingModel(get_machine(self.machine)).project(scaled)
        return SweepPoint(
            n_tasks=n_tasks,
            n_threads=n_threads,
            n_passes=n_passes,
            machine=self.machine,
            projected_total=projected.total_seconds,
            measured_total=result.measured.total,
            step_seconds=projected.breakdown().as_dict(),
            result=result,
        )

    def thread_sweep(
        self, threads: Sequence[int], n_passes: int = 1
    ) -> SweepResult:
        """The Figure-5 family: single task, varying threads."""
        return SweepResult(
            [self.run_point(1, t, n_passes) for t in threads]
        )

    def node_sweep(
        self, nodes: Sequence[int], n_threads: int, n_passes: int = 1
    ) -> SweepResult:
        """The Figure-6 family: varying tasks at fixed threads."""
        return SweepResult(
            [self.run_point(p, n_threads, n_passes) for p in nodes]
        )

    def pass_sweep(
        self, passes: Sequence[int], n_tasks: int, n_threads: int
    ) -> SweepResult:
        """The Table-3 family: fixed decomposition, varying passes."""
        return SweepResult(
            [self.run_point(n_tasks, n_threads, s) for s in passes]
        )
