"""Paired-end scaffolding.

METAPREP goes out of its way to keep mates together ("we use a single read
identifier for both ends of a paired-end read, because we want to preserve
paired-end read information", paper section 3.2) precisely so downstream
assembly can exploit insert-size information.  This module closes that
loop: contigs from the unitig assembler are joined into scaffolds using
read pairs whose mates anchor to different contigs.

Anchoring is exact-k-mer based (no alignment): every contig position's
canonical k-mer is indexed; a read maps to the contig holding its first
unambiguous anchor, with strand recovered from whether the read's forward
k-mer or its reverse complement is the canonical form at that position.
Links between contig *ends* are tallied; ends joined by at least
``min_links`` concordant pairs, with a unique partner on both sides, are
chained into scaffolds (gaps filled with ``N``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.kmers.engine import enumerate_canonical_kmers
from repro.seqio.alphabet import reverse_complement
from repro.seqio.records import ReadBatch
from repro.util.validation import check_in_range, check_positive

LEFT, RIGHT = 0, 1

#: sentinel for k-mers occurring at multiple contig positions
_AMBIGUOUS = (-1, -1, False)


@dataclass
class ScaffoldConfig:
    #: anchor k-mer length (<= 31; smaller = more anchors, more ambiguity)
    k_anchor: int = 16
    #: pairs required to trust an end-to-end link
    min_links: int = 2
    #: library insert size, used for gap estimation
    insert_mean: float = 280.0
    #: floor/ceiling for estimated gaps
    min_gap: int = 1
    max_gap: int = 2000

    def __post_init__(self) -> None:
        check_in_range("k_anchor", self.k_anchor, 4, 31)
        check_positive("min_links", self.min_links)


@dataclass
class ReadPlacement:
    contig: int
    position: int  # approximate read-start position on the contig
    forward: bool  # read strand relative to the contig


@dataclass
class ScaffoldStats:
    n_contigs_in: int = 0
    n_scaffolds_out: int = 0
    n_pairs_mapped: int = 0
    n_cross_contig_pairs: int = 0
    n_links_kept: int = 0
    link_counts: Dict[tuple, int] = field(default_factory=dict)


class Scaffolder:
    """Anchor index + link accumulation + scaffold chaining."""

    def __init__(
        self, contigs: Sequence[str], config: ScaffoldConfig | None = None
    ) -> None:
        self.config = config or ScaffoldConfig()
        self.contigs = list(contigs)
        self._anchors: Dict[int, Tuple[int, int, bool]] = {}
        k = self.config.k_anchor
        for ci, contig in enumerate(self.contigs):
            if len(contig) < k:
                continue
            batch = ReadBatch.from_sequences([contig])
            tuples = enumerate_canonical_kmers(batch, k)
            # recover, per position, whether the forward k-mer is canonical
            fwd = enumerate_canonical_kmers(batch, k)  # canonical values
            # recompute forward values directly for the flag
            for pos in range(len(contig) - k + 1):
                window = contig[pos : pos + k]
                if "N" in window:
                    continue
                canon = min(window, reverse_complement(window))
                key = hash(canon)
                entry = (ci, pos, canon == window)
                if key in self._anchors and self._anchors[key][:2] != entry[:2]:
                    self._anchors[key] = _AMBIGUOUS
                else:
                    self._anchors[key] = entry

    # ------------------------------------------------------------------
    def map_read(self, seq: str) -> Optional[ReadPlacement]:
        """Place a read via its first unambiguous anchor (or None)."""
        k = self.config.k_anchor
        for i in range(0, max(len(seq) - k + 1, 0)):
            window = seq[i : i + k]
            if "N" in window:
                continue
            canon = min(window, reverse_complement(window))
            entry = self._anchors.get(hash(canon))
            if entry is None or entry == _AMBIGUOUS:
                continue
            ci, pos, contig_fwd_is_canon = entry
            read_fwd_is_canon = canon == window
            forward = read_fwd_is_canon == contig_fwd_is_canon
            if forward:
                start = pos - i
            else:
                start = pos + k - (len(seq) - i)
            return ReadPlacement(contig=ci, position=start, forward=forward)
        return None

    # ------------------------------------------------------------------
    def _end_of(self, placement: ReadPlacement) -> int:
        """Which contig end a mate points out of (FR library: each mate
        faces inward along the fragment, i.e. outward across the gap)."""
        return RIGHT if placement.forward else LEFT

    def collect_links(
        self, pairs: Sequence[Tuple[str, str]]
    ) -> ScaffoldStats:
        """Tally end-to-end links from (r1, r2) sequence pairs."""
        stats = ScaffoldStats(n_contigs_in=len(self.contigs))
        for r1, r2 in pairs:
            p1 = self.map_read(r1)
            p2 = self.map_read(r2)
            if p1 is None or p2 is None:
                continue
            stats.n_pairs_mapped += 1
            if p1.contig == p2.contig:
                continue
            stats.n_cross_contig_pairs += 1
            key = self._link_key(p1, p2)
            stats.link_counts[key] = stats.link_counts.get(key, 0) + 1
        return stats

    def _link_key(self, p1: ReadPlacement, p2: ReadPlacement) -> tuple:
        a = (p1.contig, self._end_of(p1))
        b = (p2.contig, self._end_of(p2))
        return (a, b) if a <= b else (b, a)

    # ------------------------------------------------------------------
    def scaffold(self, pairs: Sequence[Tuple[str, str]]) -> Tuple[List[str], ScaffoldStats]:
        """Chain contigs into scaffolds; returns (scaffolds, stats)."""
        stats = self.collect_links(pairs)
        cfg = self.config

        # keep well-supported links whose ends are mutually exclusive
        strong = {
            key: n for key, n in stats.link_counts.items() if n >= cfg.min_links
        }
        partner: Dict[tuple, tuple] = {}
        for (a, b), _n in sorted(
            strong.items(), key=lambda kv: -kv[1]
        ):
            if a in partner or b in partner:
                continue  # end already claimed by a stronger link
            partner[a] = b
            partner[b] = a
        stats.n_links_kept = len(partner) // 2

        gap = int(
            np.clip(cfg.insert_mean / 2, cfg.min_gap, cfg.max_gap)
        )
        used = [False] * len(self.contigs)
        scaffolds: List[str] = []

        def oriented(ci: int, entered_via: int) -> str:
            seq = self.contigs[ci]
            # entering via LEFT means we traverse the contig forward
            return seq if entered_via == LEFT else reverse_complement(seq)

        for ci in range(len(self.contigs)):
            if used[ci]:
                continue
            # find a free end to start from (an end with no partner)
            start_end = None
            for e in (LEFT, RIGHT):
                if (ci, e) not in partner:
                    start_end = e
                    break
            if start_end is None:
                start_end = LEFT  # circular scaffold; break arbitrarily
            # 'entry' is the end we conceptually entered through; the walk
            # exits through the opposite end.  Starting at the free end
            # puts it at the scaffold's outer boundary.
            pieces: List[str] = []
            cur, entry = ci, start_end
            while True:
                used[cur] = True
                pieces.append(oriented(cur, entry))
                exit_end = RIGHT if entry == LEFT else LEFT
                nxt = partner.get((cur, exit_end))
                if nxt is None:
                    break
                ncontig, nend = nxt
                if used[ncontig]:
                    break
                pieces.append("N" * gap)
                cur, entry = ncontig, nend
            scaffolds.append("".join(pieces))

        stats.n_scaffolds_out = len(scaffolds)
        scaffolds.sort(key=lambda s: (-len(s), s))
        return scaffolds, stats


def scaffold_contigs(
    contigs: Sequence[str],
    pairs: Sequence[Tuple[str, str]],
    config: ScaffoldConfig | None = None,
) -> Tuple[List[str], ScaffoldStats]:
    """One-call convenience wrapper."""
    return Scaffolder(contigs, config).scaffold(pairs)
