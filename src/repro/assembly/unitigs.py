"""Unitig extraction: maximal non-branching path compaction.

A unitig is a maximal path through nodes with in-degree == out-degree == 1
(except possibly at its endpoints).  Because the graph carries both
strands explicitly, every unitig appears twice (once per strand); the
output keeps the lexicographically smaller of each (sequence, revcomp)
pair, once.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.assembly.graph import DeBruijnGraph
from repro.seqio.alphabet import BASES, reverse_complement


def _decode_km1(value: int, k1: int) -> str:
    return "".join(
        BASES[(value >> (2 * (k1 - 1 - i))) & 3] for i in range(k1)
    )


def extract_unitigs(graph: DeBruijnGraph, min_length: int = 0) -> List[str]:
    """All unitigs of ``graph``, reverse-complement-deduplicated, sorted
    descending by length then lexicographically (deterministic output).

    ``min_length`` drops contigs shorter than the threshold *after*
    deduplication (assemblers discard near-k-length fragments).
    """
    n_nodes = graph.n_nodes
    n_edges = graph.n_edges
    if n_edges == 0:
        return []
    k1 = graph.k - 1

    out_deg = graph.out_degree()
    in_deg = graph.in_degree()
    through = (out_deg == 1) & (in_deg == 1)

    # order edges by source for O(1) "the edges out of node v" lookups
    order = np.argsort(graph.edge_src, kind="stable")
    src_sorted = graph.edge_src[order]
    first_edge = np.searchsorted(src_sorted, np.arange(n_nodes))

    edge_dst = graph.edge_dst
    edge_base = graph.edge_base
    visited = np.zeros(n_edges, dtype=bool)

    def walk(start_edge: int) -> str:
        """Follow edges forward while the next node is non-branching."""
        pieces = [_decode_km1(int(graph.nodes[graph.edge_src[start_edge]]), k1)]
        e = start_edge
        while True:
            visited[e] = True
            pieces.append(BASES[int(edge_base[e])])
            nxt = int(edge_dst[e])
            if not through[nxt]:
                break
            e2 = int(order[first_edge[nxt]])
            if visited[e2]:
                break  # closed a cycle
            e = e2
        return "".join(pieces)

    raw: List[str] = []
    # phase 1: unitigs starting at branch boundaries
    start_nodes = np.flatnonzero(~through & (out_deg > 0))
    for v in start_nodes:
        lo = int(first_edge[v])
        hi = int(first_edge[v + 1]) if v + 1 < n_nodes else n_edges
        for j in range(lo, hi):
            e = int(order[j])
            if not visited[e]:
                raw.append(walk(e))
    # phase 2: remaining edges belong to pure cycles
    for e in range(n_edges):
        if not visited[e]:
            raw.append(walk(e))

    dedup = set()
    contigs: List[str] = []
    for seq in raw:
        canon = min(seq, reverse_complement(seq))
        if canon not in dedup:
            dedup.add(canon)
            if len(canon) >= min_length:
                contigs.append(canon)
    contigs.sort(key=lambda s: (-len(s), s))
    return contigs
