"""Graph cleaning: tip removal and bubble popping.

The standard error-correction passes every de Bruijn assembler (MEGAHIT
included) runs between graph construction and unitig output:

* a **tip** is a short dead-end chain — the residue of sequencing errors
  near read ends that survived the solidity filter;
* a **bubble** is a pair of short parallel chains between the same two
  nodes — the residue of an internal error (or a SNP between strains);
  the lighter branch (lower mean k-mer multiplicity) is removed.

Both operate on unitig *chains* so a whole spurious path goes at once;
cleaning iterates to a fixed point because removing a tip can linearize a
junction and expose another.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.assembly.graph import DeBruijnGraph
from repro.util.validation import check_positive


@dataclass
class Chain:
    """A maximal non-branching edge path."""

    edges: List[int]
    start_node: int
    end_node: int

    def __len__(self) -> int:
        return len(self.edges)


@dataclass
class CleaningStats:
    tips_removed: int = 0
    bubbles_popped: int = 0
    edges_removed: int = 0
    rounds: int = 0


def unitig_chains(graph: DeBruijnGraph) -> List[Chain]:
    """Decompose the graph's edges into maximal non-branching chains."""
    n_nodes = graph.n_nodes
    n_edges = graph.n_edges
    if n_edges == 0:
        return []
    out_deg = graph.out_degree()
    in_deg = graph.in_degree()
    through = (out_deg == 1) & (in_deg == 1)

    order = np.argsort(graph.edge_src, kind="stable")
    src_sorted = graph.edge_src[order]
    first_edge = np.searchsorted(src_sorted, np.arange(n_nodes))
    visited = np.zeros(n_edges, dtype=bool)
    chains: List[Chain] = []

    def walk(start_edge: int) -> Chain:
        edges = []
        e = start_edge
        while True:
            visited[e] = True
            edges.append(e)
            nxt = int(graph.edge_dst[e])
            if not through[nxt]:
                break
            e2 = int(order[first_edge[nxt]])
            if visited[e2]:
                break
            e = e2
        return Chain(
            edges=edges,
            start_node=int(graph.edge_src[start_edge]),
            end_node=int(graph.edge_dst[edges[-1]]),
        )

    start_nodes = np.flatnonzero(~through & (out_deg > 0))
    for v in start_nodes:
        lo = int(first_edge[v])
        hi = int(first_edge[v + 1]) if v + 1 < n_nodes else n_edges
        for j in range(lo, hi):
            e = int(order[j])
            if not visited[e]:
                chains.append(walk(e))
    for e in range(n_edges):
        if not visited[e]:
            chains.append(walk(e))
    return chains


def _drop_edges(graph: DeBruijnGraph, drop: np.ndarray) -> DeBruijnGraph:
    keep = np.ones(graph.n_edges, dtype=bool)
    keep[drop] = False
    return DeBruijnGraph(
        k=graph.k,
        nodes=graph.nodes,
        edge_src=graph.edge_src[keep],
        edge_dst=graph.edge_dst[keep],
        edge_base=graph.edge_base[keep],
        edge_count=graph.edge_count[keep],
    )


def remove_tips(
    graph: DeBruijnGraph, max_tip_edges: int | None = None
) -> Tuple[DeBruijnGraph, int]:
    """Remove dead-end chains of at most ``max_tip_edges`` edges.

    Default threshold: ``2 * k`` edges, the customary "shorter than two
    k-mers of sequence" rule.  Returns (new graph, tips removed).
    """
    if max_tip_edges is None:
        max_tip_edges = 2 * graph.k
    check_positive("max_tip_edges", max_tip_edges)
    out_deg = graph.out_degree()
    in_deg = graph.in_degree()
    drop: List[int] = []
    tips = 0
    for chain in unitig_chains(graph):
        if len(chain) > max_tip_edges:
            continue
        dead_start = in_deg[chain.start_node] == 0
        dead_end = out_deg[chain.end_node] == 0
        # a tip dangles at exactly one side (both sides dead = an isolated
        # chain, i.e. a whole tiny contig -- keep those)
        if dead_start != dead_end:
            drop.extend(chain.edges)
            tips += 1
    if not drop:
        return graph, 0
    return _drop_edges(graph, np.asarray(drop)), tips


def pop_bubbles(graph: DeBruijnGraph) -> Tuple[DeBruijnGraph, int]:
    """Pop simple bubbles: parallel chains sharing (start, end) nodes.

    Among each parallel group the chain with the highest mean edge count
    survives (ties broken deterministically by edge ids); the rest are
    removed.  Returns (new graph, bubbles popped).
    """
    groups = {}
    for chain in unitig_chains(graph):
        key = (chain.start_node, chain.end_node)
        groups.setdefault(key, []).append(chain)
    drop: List[int] = []
    popped = 0
    for (u, v), chains in groups.items():
        if len(chains) < 2 or u == v:
            continue
        def weight(c: Chain) -> tuple:
            return (
                float(np.mean(graph.edge_count[c.edges])),
                -min(c.edges),
            )
        chains_sorted = sorted(chains, key=weight, reverse=True)
        for loser in chains_sorted[1:]:
            drop.extend(loser.edges)
            popped += 1
    if not drop:
        return graph, 0
    return _drop_edges(graph, np.asarray(drop)), popped


def clean_graph(
    graph: DeBruijnGraph,
    max_tip_edges: int | None = None,
    max_rounds: int = 8,
) -> Tuple[DeBruijnGraph, CleaningStats]:
    """Iterate tip removal + bubble popping to a fixed point."""
    check_positive("max_rounds", max_rounds)
    stats = CleaningStats()
    for _ in range(max_rounds):
        before = graph.n_edges
        graph, tips = remove_tips(graph, max_tip_edges)
        graph, bubbles = pop_bubbles(graph)
        stats.tips_removed += tips
        stats.bubbles_popped += bubbles
        stats.rounds += 1
        removed = before - graph.n_edges
        stats.edges_removed += removed
        if removed == 0:
            break
    return graph, stats
