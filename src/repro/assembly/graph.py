"""The directed de Bruijn graph over (k-1)-mers.

Nodes are (k-1)-mers; every *solid* k-mer (canonical count >= min_count)
contributes two directed edges — itself and its reverse complement — so
the graph contains both strands and unitig extraction does not need
bidirected-edge bookkeeping.  Reverse-complement-duplicate contigs are
collapsed afterwards (see :mod:`repro.assembly.unitigs`).

Use an **even** assembly ``k``: with both strands explicit, the hazard is
a *palindromic (k-1)-mer node* (its own reverse complement), which fuses
the two strands and spuriously breaks unitigs; odd ``k-1`` (even ``k``)
makes such nodes impossible.  Palindromic k-mers — possible at even k —
are benign here: they collapse to the single directed edge
``prefix -> rc(prefix)``, which both strand walks share.  (Tools that use
canonical-k-mer *nodes* need the opposite parity rule; the representation
dictates the rule.)

Assembly k is limited to 31 (single-limb (k-1)-mers); the preprocessing
pipeline's k is independent of this (MEGAHIT likewise uses its own k list
regardless of METAPREP's k = 27/63).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.kmers.counter import KmerSpectrum, count_canonical_kmers
from repro.seqio.records import ReadBatch
from repro.util.validation import check_in_range

_U64 = np.uint64


def _revcomp_u64(kmers: np.ndarray, k: int) -> np.ndarray:
    """Vectorized reverse complement of packed k-mers (k <= 31)."""
    out = np.zeros_like(kmers)
    vals = kmers.copy()
    for _ in range(k):
        out = (out << _U64(2)) | ((_U64(3) - (vals & _U64(3))) & _U64(3))
        vals >>= _U64(2)
    return out


@dataclass
class DeBruijnGraph:
    """Edge-centric graph representation.

    ``nodes`` is the sorted array of distinct (k-1)-mers; edges are
    parallel arrays (``edge_src``, ``edge_dst`` as node indices,
    ``edge_base`` — the base appended when traversing the edge — and
    ``edge_count``, the multiplicity of the underlying canonical k-mer,
    used by the cleaning passes to pick bubble survivors).
    """

    k: int
    nodes: np.ndarray
    edge_src: np.ndarray
    edge_dst: np.ndarray
    edge_base: np.ndarray
    edge_count: np.ndarray = None

    def __post_init__(self) -> None:
        if self.edge_count is None:
            self.edge_count = np.ones(len(self.edge_src), dtype=np.int64)

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_edges(self) -> int:
        return len(self.edge_src)

    def out_degree(self) -> np.ndarray:
        return np.bincount(self.edge_src, minlength=self.n_nodes)

    def in_degree(self) -> np.ndarray:
        return np.bincount(self.edge_dst, minlength=self.n_nodes)

    def node_index(self, km1mer: int) -> int:
        idx = int(np.searchsorted(self.nodes, _U64(km1mer)))
        if idx >= len(self.nodes) or self.nodes[idx] != _U64(km1mer):
            raise KeyError(f"(k-1)-mer {km1mer} not in graph")
        return idx


def graph_from_spectrum(spectrum: KmerSpectrum, k: int, min_count: int) -> DeBruijnGraph:
    """Build the graph from a counted spectrum (solidity-filtered here)."""
    check_in_range("k", k, 3, 31)
    solid_mask = spectrum.counts >= min_count
    solid = spectrum.kmers.lo[solid_mask]
    solid_counts = spectrum.counts[solid_mask]

    # both strands
    rc = _revcomp_u64(solid, k)
    palindrome = rc == solid  # only possible for even k
    directed = np.concatenate((solid, rc[~palindrome]))
    counts = np.concatenate((solid_counts, solid_counts[~palindrome]))

    km1_mask = (_U64(1) << _U64(2 * (k - 1))) - _U64(1)
    prefixes = directed >> _U64(2)
    suffixes = directed & km1_mask
    bases = (directed & _U64(3)).astype(np.uint8)

    nodes = np.unique(np.concatenate((prefixes, suffixes)))
    edge_src = np.searchsorted(nodes, prefixes).astype(np.int64)
    edge_dst = np.searchsorted(nodes, suffixes).astype(np.int64)
    return DeBruijnGraph(
        k=k,
        nodes=nodes,
        edge_src=edge_src,
        edge_dst=edge_dst,
        edge_base=bases,
        edge_count=counts.astype(np.int64),
    )


def build_debruijn_graph(
    batch: ReadBatch, k: int, min_count: int = 2
) -> DeBruijnGraph:
    """Count canonical k-mers of ``batch`` and build the solid-k-mer graph.

    ``min_count`` is the error-pruning threshold every de Bruijn assembler
    applies ("Most de Bruijn graph-based assemblers include such filters in
    the graph construction step" — paper section 4.4).
    """
    spectrum = count_canonical_kmers(batch, k)
    return graph_from_spectrum(spectrum, k, min_count)
