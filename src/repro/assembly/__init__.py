"""De Bruijn unitig assembler — the MEGAHIT stand-in for Tables 8-9.

The paper's Tables 8 and 9 measure how METAPREP partitioning changes
assembly *time* and *quality* (contigs, total bp, max contig, N50) under
MEGAHIT.  MEGAHIT itself is a large C++ system; what the experiment needs
from the assembler is that (a) runtime grows with input size, (b) output
contigs come from a frequency-filtered de Bruijn graph, and (c) the
quality statistics respond to partitioning and filtering.  This package
provides exactly that: canonical k-mer counting with a solidity filter,
the bidirectional de Bruijn graph over (k-1)-mers, maximal non-branching
path (unitig) compaction, and standard contig statistics.
"""

from repro.assembly.graph import DeBruijnGraph, build_debruijn_graph
from repro.assembly.unitigs import extract_unitigs
from repro.assembly.cleaning import (
    CleaningStats,
    clean_graph,
    pop_bubbles,
    remove_tips,
    unitig_chains,
)
from repro.assembly.evaluation import (
    AssemblyEvaluator,
    EvaluationReport,
    evaluate_against_community,
)
from repro.assembly.scaffold import (
    ScaffoldConfig,
    Scaffolder,
    ScaffoldStats,
    scaffold_contigs,
)
from repro.assembly.stats import AssemblyStats, contig_stats, n_statistic
from repro.assembly.assembler import (
    AssemblyConfig,
    AssemblyResult,
    MiniAssembler,
    assemble_reads,
)

__all__ = [
    "DeBruijnGraph",
    "build_debruijn_graph",
    "extract_unitigs",
    "AssemblyStats",
    "contig_stats",
    "n_statistic",
    "AssemblyConfig",
    "AssemblyResult",
    "MiniAssembler",
    "assemble_reads",
    "CleaningStats",
    "clean_graph",
    "pop_bubbles",
    "remove_tips",
    "unitig_chains",
    "AssemblyEvaluator",
    "EvaluationReport",
    "evaluate_against_community",
    "ScaffoldConfig",
    "Scaffolder",
    "ScaffoldStats",
    "scaffold_contigs",
]
