"""Reference-based assembly evaluation (a miniature QUAST).

The synthetic datasets carry their ground-truth genomes, so assemblies can
be scored against the truth — something the paper could not do for its
real metagenomes (Table 9 reports only reference-free statistics).  The
evaluator uses exact k-mer anchoring:

* a contig is **correct** if it (or its reverse complement) occurs exactly
  in some reference genome;
* **genome fraction** is the share of reference k-mers covered by contig
  k-mers;
* a contig is a **misassembly** if its k-mers come from references but the
  contig itself matches none — i.e. the assembler glued genuine sequence
  in a wrong order (chimeras across species are the interesting case for
  partition-quality claims);
* contigs whose k-mers are absent from every reference are **spurious**
  (error-derived).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from repro.kmers.counter import count_canonical_kmers
from repro.seqio.alphabet import reverse_complement
from repro.seqio.records import ReadBatch
from repro.util.validation import check_in_range


@dataclass
class ContigClassification:
    correct: List[int] = field(default_factory=list)
    misassembled: List[int] = field(default_factory=list)
    spurious: List[int] = field(default_factory=list)


@dataclass
class EvaluationReport:
    """Truth-based quality metrics for one assembly."""

    n_contigs: int
    n_correct: int
    n_misassembled: int
    n_spurious: int
    #: fraction of reference k-mers covered by the assembly
    genome_fraction: float
    #: per-reference-genome k-mer coverage fractions
    per_genome_fraction: Dict[str, float]
    #: bases in correct contigs / total contig bases
    correct_base_fraction: float
    classification: ContigClassification = field(repr=False, default=None)

    @property
    def correctness_rate(self) -> float:
        return self.n_correct / self.n_contigs if self.n_contigs else 1.0


class AssemblyEvaluator:
    """Scores contig sets against reference genome strings."""

    def __init__(self, references: Sequence, k: int = 21) -> None:
        check_in_range("k", k, 4, 31)
        self.k = k
        self.names: List[str] = []
        self.texts: List[str] = []
        for ref in references:
            if hasattr(ref, "sequence"):  # Genome objects
                self.names.append(getattr(ref, "name", f"ref{len(self.names)}"))
                self.texts.append(ref.sequence)
            elif isinstance(ref, tuple):
                self.names.append(ref[0])
                self.texts.append(ref[1])
            else:
                self.names.append(f"ref{len(self.names)}")
                self.texts.append(str(ref))
        if not self.texts:
            raise ValueError("need at least one reference")
        # per-genome canonical k-mer sets
        self._ref_kmers: List[np.ndarray] = []
        for text in self.texts:
            spec = count_canonical_kmers(ReadBatch.from_sequences([text]), self.k)
            self._ref_kmers.append(spec.kmers.lo)
        self._all_ref = np.unique(np.concatenate(self._ref_kmers))

    # ------------------------------------------------------------------
    def _contig_kmers(self, contig: str) -> np.ndarray:
        if len(contig) < self.k:
            return np.empty(0, dtype=np.uint64)
        spec = count_canonical_kmers(
            ReadBatch.from_sequences([contig]), self.k
        )
        return spec.kmers.lo

    def _occurs_exactly(self, contig: str) -> bool:
        rc = reverse_complement(contig)
        return any(contig in t or rc in t for t in self.texts)

    def evaluate(self, contigs: Sequence[str]) -> EvaluationReport:
        classification = ContigClassification()
        covered = np.zeros(len(self._all_ref), dtype=bool)
        correct_bases = 0
        total_bases = 0

        for i, contig in enumerate(contigs):
            total_bases += len(contig)
            kmers = self._contig_kmers(contig)
            idx = np.searchsorted(self._all_ref, kmers)
            idx = np.clip(idx, 0, len(self._all_ref) - 1)
            hits = self._all_ref[idx] == kmers
            if len(kmers):
                covered[idx[hits]] = True
            if self._occurs_exactly(contig):
                classification.correct.append(i)
                correct_bases += len(contig)
            elif len(kmers) and hits.mean() > 0.5:
                classification.misassembled.append(i)
            else:
                classification.spurious.append(i)

        per_genome: Dict[str, float] = {}
        for name, ref_kmers in zip(self.names, self._ref_kmers):
            idx = np.searchsorted(self._all_ref, ref_kmers)
            per_genome[name] = (
                float(covered[idx].mean()) if len(ref_kmers) else 0.0
            )

        return EvaluationReport(
            n_contigs=len(contigs),
            n_correct=len(classification.correct),
            n_misassembled=len(classification.misassembled),
            n_spurious=len(classification.spurious),
            genome_fraction=float(covered.mean()) if len(covered) else 0.0,
            per_genome_fraction=per_genome,
            correct_base_fraction=(
                correct_bases / total_bases if total_bases else 1.0
            ),
            classification=classification,
        )


def evaluate_against_community(
    contigs: Sequence[str], community, k: int = 21
) -> EvaluationReport:
    """Convenience: evaluate against a dataset's ground-truth community."""
    return AssemblyEvaluator(community.genomes, k=k).evaluate(contigs)
