"""Assembly quality statistics (the Table 9 columns)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class AssemblyStats:
    """Contigs / Total (Mbp) / Max (bp) / N50 (bp), as in paper Table 9."""

    n_contigs: int
    total_bp: int
    max_bp: int
    n50: int
    n90: int
    mean_bp: float

    @property
    def total_mbp(self) -> float:
        return self.total_bp / 1e6

    def as_row(self) -> list:
        return [self.n_contigs, f"{self.total_mbp:.3f}", self.max_bp, self.n50]


def n_statistic(lengths: Sequence[int], fraction: float) -> int:
    """N{fraction*100}: the length L such that contigs of length >= L cover
    at least ``fraction`` of the total assembled bases.

    >>> n_statistic([10, 8, 6, 4, 2], 0.5)
    8
    """
    if not (0.0 < fraction <= 1.0):
        raise ValueError(f"fraction must be in (0, 1], got {fraction}")
    arr = np.sort(np.asarray(list(lengths), dtype=np.int64))[::-1]
    if len(arr) == 0 or arr.sum() == 0:
        return 0
    target = float(arr.sum()) * fraction
    cum = np.cumsum(arr)
    idx = int(np.searchsorted(cum, target, side="left"))
    return int(arr[min(idx, len(arr) - 1)])


def contig_stats(contigs: Sequence[str]) -> AssemblyStats:
    """Standard contig statistics of a contig set (Table 9 columns)."""
    lengths = [len(c) for c in contigs]
    if not lengths:
        return AssemblyStats(0, 0, 0, 0, 0, 0.0)
    total = int(sum(lengths))
    return AssemblyStats(
        n_contigs=len(lengths),
        total_bp=total,
        max_bp=int(max(lengths)),
        n50=n_statistic(lengths, 0.5),
        n90=n_statistic(lengths, 0.9),
        mean_bp=total / len(lengths),
    )


def combine_stats(parts: Sequence[AssemblyStats]) -> AssemblyStats:
    """Aggregate statistics of independently assembled partitions.

    N50/N90 cannot be combined exactly from summaries; this recomputes them
    from the concatenated virtual length multiset encoded by each part's
    (n_contigs, mean) — callers that need exact N50 should pass contig
    lists to :func:`contig_stats` instead.  Used only for coarse roll-ups.
    """
    n = sum(p.n_contigs for p in parts)
    total = sum(p.total_bp for p in parts)
    mx = max((p.max_bp for p in parts), default=0)
    n50 = max((p.n50 for p in parts), default=0)
    n90 = min((p.n90 for p in parts if p.n_contigs), default=0)
    return AssemblyStats(n, total, mx, n50, n90, total / n if n else 0.0)
