"""The assembler driver (MEGAHIT stand-in).

Single-k unitig assembly by default; the multi-k mode mirrors MEGAHIT's
iterative strategy in simplified form ("assemblers such as MEGAHIT use
multiple k-mer lengths... Small k values help in reconstructing low
coverage genomes, and larger k values help in resolving repeats" — paper
section 2): each round assembles at the next larger k with the previous
round's contigs injected as additional high-confidence reads.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.assembly.graph import build_debruijn_graph
from repro.assembly.stats import AssemblyStats, contig_stats
from repro.assembly.unitigs import extract_unitigs
from repro.index.fastqpart import FastqUnit
from repro.seqio.fastq import read_fastq
from repro.seqio.records import FastqRecord, ReadBatch
from repro.util.validation import check_in_range, check_positive


@dataclass
class AssemblyConfig:
    """Assembler knobs (MEGAHIT-ish defaults scaled to this substrate)."""

    #: assembly k.  Even k recommended: it keeps (k-1)-mer graph nodes
    #: palindrome-free in the two-strand representation (see
    #: :mod:`repro.assembly.graph`).  Comparable to MEGAHIT's smallest
    #: default k of 21.
    k: int = 20
    #: solid-k-mer threshold (MEGAHIT --min-count equivalent).
    min_count: int = 2
    #: contigs shorter than this are dropped.
    min_contig_length: int = 63
    #: multi-k schedule; empty = single-k.  E.g. (21, 29) runs two rounds.
    k_list: tuple = ()
    #: run tip-removal + bubble-popping between graph construction and
    #: unitig extraction (MEGAHIT-style cleaning).
    clean: bool = False
    #: tip threshold in edges; None = the 2k default.
    max_tip_edges: int | None = None

    def __post_init__(self) -> None:
        check_in_range("k", self.k, 3, 31)
        check_positive("min_count", self.min_count)
        for kk in self.k_list:
            check_in_range("k_list entry", kk, 3, 31)
        if self.k_list and list(self.k_list) != sorted(set(self.k_list)):
            raise ValueError("k_list must be strictly increasing")


@dataclass
class AssemblyResult:
    contigs: List[str]
    stats: AssemblyStats
    seconds: float
    n_reads: int
    n_solid_kmers: int
    rounds: List[AssemblyStats] = field(default_factory=list)

    @property
    def empty(self) -> bool:
        return not self.contigs


class MiniAssembler:
    """De Bruijn unitig assembler over read batches or FASTQ files."""

    def __init__(self, config: AssemblyConfig | None = None) -> None:
        self.config = config or AssemblyConfig()

    # ------------------------------------------------------------------
    def assemble_batch(self, batch: ReadBatch) -> AssemblyResult:
        cfg = self.config
        t0 = time.perf_counter()
        ks = list(cfg.k_list) or [cfg.k]
        contigs: List[str] = []
        rounds: List[AssemblyStats] = []
        n_solid = 0
        current = batch
        for round_idx, k in enumerate(ks):
            graph = build_debruijn_graph(current, k, cfg.min_count)
            n_solid = graph.n_edges // 2 if graph.n_edges else 0
            if cfg.clean:
                from repro.assembly.cleaning import clean_graph

                graph, _ = clean_graph(graph, cfg.max_tip_edges)
            contigs = extract_unitigs(graph, min_length=cfg.min_contig_length)
            rounds.append(contig_stats(contigs))
            if round_idx + 1 < len(ks):
                # feed contigs forward as extra "reads" for the next k:
                # contig k-mers are high-confidence, so exempt them from
                # the solidity filter by replicating min_count times.
                extra = [
                    FastqRecord(f"contig{ci}", seq, "I" * len(seq))
                    for ci, seq in enumerate(contigs)
                    for _ in range(cfg.min_count)
                ]
                extra_batch = ReadBatch.from_records(
                    extra,
                    read_ids=range(
                        batch.n_reads, batch.n_reads + len(extra)
                    ),
                    keep_metadata=False,
                )
                current = ReadBatch.concatenate([batch, extra_batch])
        dt = time.perf_counter() - t0
        return AssemblyResult(
            contigs=contigs,
            stats=contig_stats(contigs),
            seconds=dt,
            n_reads=batch.n_reads,
            n_solid_kmers=n_solid,
            rounds=rounds,
        )

    # ------------------------------------------------------------------
    def assemble_files(self, paths: Sequence[str]) -> AssemblyResult:
        """Assemble the union of reads from FASTQ files."""
        records: List[FastqRecord] = []
        for path in paths:
            records.extend(read_fastq(path))
        if not records:
            return AssemblyResult([], contig_stats([]), 0.0, 0, 0)
        batch = ReadBatch.from_records(records, keep_metadata=False)
        result = self.assemble_batch(batch)
        return result

    def assemble_units(self, units: Sequence) -> AssemblyResult:
        paths: List[str] = []
        for u in units:
            paths.extend(FastqUnit.wrap(u).files)
        return self.assemble_files(paths)


def assemble_reads(
    batch: ReadBatch, k: int = 21, min_count: int = 2, min_contig_length: int = 63
) -> AssemblyResult:
    """One-call convenience wrapper."""
    return MiniAssembler(
        AssemblyConfig(k=k, min_count=min_count, min_contig_length=min_contig_length)
    ).assemble_batch(batch)
