"""Tuple sorting: range partitioning + out-of-place LSD radix sort.

Implements the paper's LocalSort (section 3.4): the received tuples are
first range-partitioned into ``T`` disjoint k-mer sub-ranges using
precomputed offsets, then each partition is sorted independently with a
serial out-of-place LSD radix sort over 8-bit digits (8 passes for 64-bit
k-mers, 16 for 128-bit ones).
"""

from repro.sort.radix import (
    RADIX_BITS,
    RADIX_BUCKETS,
    RadixSortStats,
    radix_passes_for,
    radix_sort_tuples,
    counting_sort_by_digit,
)
from repro.sort.partition import range_partition, partition_boundaries_equal
from repro.sort.sampling import (
    SamplingPartitionStats,
    config_sampled_boundaries,
    measure_partition_balance,
    sampled_boundaries,
)
from repro.sort.validate import is_sorted_kmers, verify_sort

__all__ = [
    "RADIX_BITS",
    "RADIX_BUCKETS",
    "RadixSortStats",
    "radix_passes_for",
    "radix_sort_tuples",
    "counting_sort_by_digit",
    "range_partition",
    "partition_boundaries_equal",
    "SamplingPartitionStats",
    "config_sampled_boundaries",
    "measure_partition_balance",
    "sampled_boundaries",
    "is_sorted_kmers",
    "verify_sort",
]
