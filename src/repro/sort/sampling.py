"""Sample-based range partitioning — the alternative METAPREP rejects.

The paper's static load balancing derives *exact* per-range tuple counts
from the merHist/FASTQPart histograms, precomputing every buffer offset
(sections 3.1-3.3).  The classical alternative — used by sample sort and
by many distributed sorting systems — draws a sample of keys, picks
splitters from its quantiles, and accepts approximate balance plus a
runtime counting step.

This module implements splitter sampling over the same m-mer-prefix bin
domain so the two strategies are directly comparable: the ablation
benchmark measures achieved balance (max/mean partition size) and shows
why the index-driven approach is worth the index — perfect information
beats sampling, and no synchronization or second pass over the data is
needed to size the buffers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.kmers.engine import KmerTuples
from repro.util.validation import check_positive

if TYPE_CHECKING:  # layering: sort sits below core, import only for types
    from repro.core.config import PipelineConfig


@dataclass
class SamplingPartitionStats:
    n_tuples: int
    n_parts: int
    sample_size: int
    counts: np.ndarray

    @property
    def imbalance(self) -> float:
        """max/mean partition size (1.0 = perfect)."""
        mean = self.counts.mean()
        return float(self.counts.max() / mean) if mean > 0 else 1.0


def sampled_boundaries(
    tuples: KmerTuples,
    m: int,
    n_parts: int,
    sample_size: int = 1024,
    *,
    seed: int,
) -> np.ndarray:
    """Bin-range edges from a random key sample (sample-sort style).

    Returns ``n_parts + 1`` edges over ``[0, 4^m]``, comparable to
    :func:`repro.index.passplan.balanced_boundaries` built from the exact
    histogram.

    ``seed`` is keyword-required and has no default: splitter choice
    changes the produced boundaries, so the seed is part of the partition
    fingerprint (``PipelineConfig.sampling_seed``, emitted by
    :func:`repro.core.checkpoint.config_payload`).  Pipeline call sites
    should go through :func:`config_sampled_boundaries` so the fingerprinted
    seed cannot be bypassed.
    """
    check_positive("n_parts", n_parts)
    check_positive("sample_size", sample_size)
    n_bins = 1 << (2 * m)
    edges = np.empty(n_parts + 1, dtype=np.int64)
    edges[0], edges[-1] = 0, n_bins
    if len(tuples) == 0 or n_parts == 1:
        inner = np.ceil(np.linspace(0, n_bins, n_parts + 1)).astype(np.int64)
        inner[0], inner[-1] = 0, n_bins
        return inner
    rng = np.random.default_rng(seed)
    take = min(sample_size, len(tuples))
    idx = rng.choice(len(tuples), size=take, replace=False)
    sample_bins = np.sort(
        tuples.take(np.sort(idx)).kmers.mmer_prefix(m).astype(np.int64)
    )
    quantiles = (np.arange(1, n_parts) * take) // n_parts
    # splitter = the sampled bin at each quantile; +1 so the splitter bin
    # itself stays in the lower part (half-open ranges)
    edges[1:-1] = sample_bins[quantiles] + 1
    np.clip(edges, 0, n_bins, out=edges)
    np.maximum.accumulate(edges, out=edges)
    return edges


def config_sampled_boundaries(
    tuples: KmerTuples,
    config: "PipelineConfig",
    n_parts: int,
    sample_size: int = 1024,
) -> np.ndarray:
    """:func:`sampled_boundaries` with ``m`` and the seed taken from config.

    The seed comes from ``config.sampling_seed``, which the checkpoint /
    artifact-store fingerprint covers — two runs that sample different
    splitters can never collide on one cached artifact.
    """
    return sampled_boundaries(
        tuples,
        config.m,
        n_parts,
        sample_size=sample_size,
        seed=config.sampling_seed,
    )


def measure_partition_balance(
    tuples: KmerTuples, m: int, edges: np.ndarray
) -> SamplingPartitionStats:
    """Partition sizes induced by ``edges`` (no data movement)."""
    n_parts = len(edges) - 1
    if len(tuples) == 0:
        counts = np.zeros(n_parts, dtype=np.int64)
    else:
        bins = tuples.kmers.mmer_prefix(m).astype(np.int64)
        part = np.clip(
            np.searchsorted(edges, bins, side="right") - 1, 0, n_parts - 1
        )
        counts = np.bincount(part, minlength=n_parts).astype(np.int64)
    return SamplingPartitionStats(
        n_tuples=len(tuples),
        n_parts=n_parts,
        sample_size=0,
        counts=counts,
    )
