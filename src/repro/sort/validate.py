"""Sort-output validation helpers (used by tests and debug assertions)."""

from __future__ import annotations

import numpy as np

from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples


def is_sorted_kmers(kmers: KmerArray) -> bool:
    """True iff the k-mer array is non-decreasing lexicographically."""
    n = len(kmers)
    if n <= 1:
        return True
    if not kmers.two_limb:
        return bool(np.all(kmers.lo[:-1] <= kmers.lo[1:]))
    assert kmers.hi is not None
    hi, lo = kmers.hi, kmers.lo
    ok = (hi[:-1] < hi[1:]) | ((hi[:-1] == hi[1:]) & (lo[:-1] <= lo[1:]))
    return bool(np.all(ok))


def _tuple_multiset_key(tuples: KmerTuples) -> np.ndarray:
    """A canonical row-sorted view of the tuple multiset for comparisons."""
    cols = [tuples.read_ids.astype(np.uint64), tuples.kmers.lo]
    if tuples.kmers.hi is not None:
        cols.append(tuples.kmers.hi)
    stacked = np.stack(cols, axis=1)
    order = np.lexsort(tuple(stacked[:, i] for i in range(stacked.shape[1])))
    return stacked[order]


def verify_sort(before: KmerTuples, after: KmerTuples) -> None:
    """Assert ``after`` is a sorted permutation of ``before``.

    Raises ``AssertionError`` with a diagnostic on violation.
    """
    assert len(before) == len(after), (
        f"tuple count changed: {len(before)} -> {len(after)}"
    )
    assert is_sorted_kmers(after.kmers), "output k-mers are not sorted"
    if len(before) == 0:
        return
    a = _tuple_multiset_key(before)
    b = _tuple_multiset_key(after)
    assert np.array_equal(a, b), "output is not a permutation of the input"
