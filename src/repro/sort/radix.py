"""Out-of-place LSD radix sort for (k-mer, read id) tuples.

Paper section 3.4: "We use 8 passes to sort tuples based on the 64-bit
k-mers, with each pass sorting 8 bits (using 256 buckets).  We find that
sorting 8 bits per pass is faster than sorting a higher number of bits
because accessing bucket counts of 256 buckets repeatedly has better
temporal locality."

This module keeps that structure: one stable counting-sort pass per 8-bit
digit, least significant digit first, ping-ponging between two buffers
(out-of-place).  The per-pass stable reorder uses NumPy's stable sort on
``uint8`` digits, which NumPy itself implements as an O(n) radix/counting
sort for 8-bit integers — so the per-pass cost model matches the paper's.

An adaptive optimization (on by default) skips passes whose digit is
constant across the partition; this is exactly why multipass runs with
narrow per-pass k-mer ranges sort slightly faster.  ``skip_constant=False``
forces the paper's fixed 8/16-pass behaviour for benchmarking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro import telemetry
from repro.kmers.codec import KmerArray
from repro.kmers.engine import KmerTuples

RADIX_BITS = 8
RADIX_BUCKETS = 1 << RADIX_BITS


def radix_passes_for(k: int) -> int:
    """Nominal radix pass count: 8 for one-limb k-mers, 16 for two."""
    return 16 if k > 31 else 8


@dataclass
class RadixSortStats:
    """Work accounting for one radix sort invocation."""

    n_tuples: int = 0
    passes_nominal: int = 0
    passes_executed: int = 0
    passes_skipped: int = 0
    bucket_bits: int = RADIX_BITS
    digits_histogrammed: List[int] = field(default_factory=list)

    def merge(self, other: "RadixSortStats") -> "RadixSortStats":
        self.n_tuples += other.n_tuples
        self.passes_nominal += other.passes_nominal
        self.passes_executed += other.passes_executed
        self.passes_skipped += other.passes_skipped
        self.digits_histogrammed.extend(other.digits_histogrammed)
        return self


def counting_sort_by_digit(digit: np.ndarray) -> np.ndarray:
    """Stable permutation sorting one 8-bit digit column.

    Explicit counting sort, structured exactly as the paper's per-pass
    kernel: 256 bucket counts (:func:`np.bincount`), an exclusive prefix
    sum fixing each bucket's output range, then a stable scatter filling
    each occupied bucket's range with its members in input order.
    Returns the gather permutation ``order`` such that ``digit[order]``
    is sorted and equal digits keep their input order.

    :func:`argsort_by_digit` is the oracle this is tested against.
    """
    digit = np.ascontiguousarray(digit, dtype=np.uint8)
    counts = np.bincount(digit, minlength=RADIX_BUCKETS)
    bounds = np.zeros(RADIX_BUCKETS + 1, dtype=np.int64)
    np.cumsum(counts, out=bounds[1:])
    order = np.empty(len(digit), dtype=np.int64)
    for b in np.flatnonzero(counts):
        order[bounds[b] : bounds[b + 1]] = np.flatnonzero(digit == b)
    return order


def argsort_by_digit(digit: np.ndarray) -> np.ndarray:
    """The stable-argsort oracle for :func:`counting_sort_by_digit`.

    NumPy's stable sort on ``uint8`` is an O(n) radix/counting sort
    internally, so this produces the identical permutation; the
    differential tests pin the two to each other.
    """
    digit = np.ascontiguousarray(digit, dtype=np.uint8)
    return np.argsort(digit, kind="stable")


def radix_sort_tuples(
    tuples: KmerTuples,
    skip_constant: bool = True,
    digit_bits: int = RADIX_BITS,
) -> tuple[KmerTuples, RadixSortStats]:
    """Sort tuples by k-mer, LSD radix, stable in the id payload.

    ``digit_bits`` selects the radix width: 8 (the paper's choice — 256
    buckets, 8/16 passes) or 16 (65536 buckets, 4/8 passes).  The paper
    measured 8-bit digits faster on real hardware because 256 bucket
    counters stay cache-resident; the ablation benchmark
    (``benchmarks/test_ablation_radix_digits.py``) revisits that trade on
    this substrate.  Returns the sorted tuples and per-invocation
    :class:`RadixSortStats`.
    """
    if digit_bits not in (8, 16):
        raise ValueError(f"digit_bits must be 8 or 16, got {digit_bits}")
    k = tuples.k
    key_bits = 128 if tuples.kmers.two_limb else 64
    nominal = key_bits // digit_bits
    stats = RadixSortStats(
        n_tuples=len(tuples), passes_nominal=nominal, bucket_bits=digit_bits
    )
    if len(tuples) <= 1:
        stats.passes_skipped = nominal
        return tuples, stats

    lo = tuples.kmers.lo.copy()
    hi = tuples.kmers.hi.copy() if tuples.kmers.hi is not None else None
    ids = tuples.read_ids.copy()

    mask = np.uint64((1 << digit_bits) - 1)
    digit_dtype = np.uint8 if digit_bits == 8 else np.uint16
    digits_per_limb = 64 // digit_bits

    for digit_index in range(nominal):
        if digit_index < digits_per_limb:
            src = lo
            shift = digit_bits * digit_index
        else:
            assert hi is not None
            src = hi
            shift = digit_bits * (digit_index - digits_per_limb)
        digit = ((src >> np.uint64(shift)) & mask).astype(digit_dtype)
        if skip_constant and digit[0] == digit[-1] and not np.any(digit != digit[0]):
            stats.passes_skipped += 1
            continue
        # 8-bit digits use the explicit 256-bucket counting sort (the
        # paper's kernel); the 16-bit ablation path keeps the stable
        # argsort — 65536 buckets lose the temporal locality that makes
        # the explicit counting formulation worthwhile (section 3.4).
        if digit_bits == 8:
            order = counting_sort_by_digit(digit)
        else:
            order = np.argsort(digit, kind="stable")
        lo = lo[order]
        ids = ids[order]
        if hi is not None:
            hi = hi[order]
        stats.passes_executed += 1
        stats.digits_histogrammed.append(digit_index)

    return KmerTuples(KmerArray(k, lo, hi), ids), stats


def radix_sort_block(
    block,
    lo: int,
    hi: int,
    skip_constant: bool = True,
    digit_bits: int = RADIX_BITS,
) -> RadixSortStats:
    """Sort tuples ``[lo, hi)`` of a
    :class:`~repro.runtime.buffers.TupleBlock` in place over its backing.

    The LSD passes ping-pong through the usual out-of-place scratch
    (bounded at one partition, per the paper's memory budget) and the
    final order is written back into the block's columns — under the
    shared-memory dataplane the sorted run therefore lands in the same
    segment the tuples were received into, with no extra round trip.
    Returns the per-invocation :class:`RadixSortStats`.
    """
    part = block.view(lo, hi)
    sorted_part, stats = radix_sort_tuples(
        part, skip_constant=skip_constant, digit_bits=digit_bits
    )
    if stats.passes_executed:
        block.write(lo, sorted_part)
    if telemetry.enabled():
        telemetry.add_counter("sort.radix_passes", stats.passes_executed)
        telemetry.add_counter(
            "sort.histogram_fills", stats.passes_executed * stats.n_tuples
        )
    return stats
