"""Parallel range partitioning of tuples (LocalSort stage 1).

Paper section 3.4: received tuples are partitioned into ``T`` disjoint
k-mer ranges so each partition can be sorted concurrently.  Ranges are
expressed as m-mer-prefix *bin* boundaries (the same bins as merHist), so
partition membership is a single vectorized ``searchsorted`` over the bin
id of each tuple.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.kmers.engine import KmerTuples


def partition_boundaries_equal(n_bins: int, n_parts: int) -> np.ndarray:
    """Equal-width bin boundaries: ``n_parts + 1`` edges over ``[0, n_bins]``.

    Histogram-balanced boundaries come from
    :func:`repro.index.passplan.balanced_boundaries`; this uniform variant
    is the fallback when no histogram is available.
    """
    if n_parts < 1:
        raise ValueError(f"n_parts must be >= 1, got {n_parts}")
    edges = np.linspace(0, n_bins, n_parts + 1)
    return np.ceil(edges).astype(np.int64)


def _check_edges(
    edges: np.ndarray, m: int, span: Tuple[int, int] | None
) -> np.ndarray:
    edges = np.asarray(edges, dtype=np.int64)
    if edges.ndim != 1 or len(edges) < 2:
        raise ValueError("edges must have at least two entries")
    span_lo, span_hi = span if span is not None else (0, 1 << (2 * m))
    if edges[0] != span_lo or edges[-1] != span_hi:
        raise ValueError(
            f"edges must span [{span_lo}, {span_hi}], got "
            f"[{edges[0]}, {edges[-1]}]"
        )
    if np.any(np.diff(edges) < 0):
        raise ValueError("edges must be non-decreasing")
    return edges


def _partition_order(
    tuples: KmerTuples, m: int, edges: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Stable gather order grouping tuples by partition, plus counts."""
    n_parts = len(edges) - 1
    bins = tuples.kmers.mmer_prefix(m).astype(np.int64)
    part = np.searchsorted(edges, bins, side="right") - 1
    # Tuples in the last bin of the last partition: searchsorted puts
    # bin == edges[-1] out of range only if a bin equals 4^m, impossible.
    part = np.clip(part, 0, n_parts - 1)
    counts = np.bincount(part, minlength=n_parts).astype(np.int64)
    order = np.argsort(part, kind="stable")
    return order, counts


def range_partition(
    tuples: KmerTuples,
    m: int,
    edges: np.ndarray,
    span: Tuple[int, int] | None = None,
) -> Tuple[List[KmerTuples], np.ndarray]:
    """Split tuples into ``len(edges) - 1`` partitions by m-mer prefix bin.

    ``edges`` must be non-decreasing and span ``span`` (default: the full
    bin range ``[0, 4**m]``); every tuple's prefix bin must lie inside the
    span.  Returns the partitions (order of tuples within a partition
    preserved — the scatter is stable, as required for the radix sort's
    stability guarantee to be meaningful end-to-end) and the per-partition
    tuple counts.
    """
    edges = _check_edges(edges, m, span)
    n_parts = len(edges) - 1
    if len(tuples) == 0:
        return (
            [KmerTuples.empty(tuples.k) for _ in range(n_parts)],
            np.zeros(n_parts, dtype=np.int64),
        )

    order, counts = _partition_order(tuples, m, edges)
    gathered = tuples.take(order)
    out: List[KmerTuples] = []
    start = 0
    for p in range(n_parts):
        end = start + int(counts[p])
        out.append(gathered.slice(start, end))
        start = end
    return out, counts


def range_partition_block(
    block,
    length: int,
    m: int,
    edges: np.ndarray,
    span: Tuple[int, int] | None = None,
) -> np.ndarray:
    """Range-partition a :class:`~repro.runtime.buffers.TupleBlock` in
    place over its backing.

    The stable partition permutation is applied directly to the block's
    columns (:meth:`TupleBlock.permute`), so under the shared-memory
    dataplane the scatter happens inside the destination segment — no
    per-partition copies leave the block.  After the call, partition
    ``t`` occupies ``block.view(starts[t], starts[t+1])`` where
    ``starts`` is the exclusive cumsum of the returned counts.  Produces
    exactly the same tuple order as :func:`range_partition` followed by
    concatenation (same stable gather order).
    """
    edges = _check_edges(edges, m, span)
    n_parts = len(edges) - 1
    if length == 0:
        return np.zeros(n_parts, dtype=np.int64)
    order, counts = _partition_order(block.view(0, length), m, edges)
    block.permute(order, length)
    return counts
