"""DNA alphabet and 2-bit base encoding.

METAPREP packs bases two bits each (A=0, C=1, G=2, T=3), exactly the layout
assumed by the vectorized k-mer generator (paper section 3.2.1).  The ``N``
symbol (and any other non-ACGT character) maps to :data:`CODE_INVALID`;
k-mers containing it are never enumerated (section 3.2).

Encoding/decoding is table-driven and fully vectorized: a 256-entry lookup
array translates raw ASCII bytes to codes in one NumPy gather.
"""

from __future__ import annotations

import numpy as np

#: Canonical base ordering; index in this string == 2-bit code.
BASES = "ACGT"

CODE_A = np.uint8(0)
CODE_C = np.uint8(1)
CODE_G = np.uint8(2)
CODE_T = np.uint8(3)

#: Sentinel for N / unknown bases.  Chosen > 3 so that validity is a simple
#: ``codes <= 3`` test and window sums expose contamination cheaply.
CODE_INVALID = np.uint8(4)


def _build_encode_lut() -> np.ndarray:
    lut = np.full(256, CODE_INVALID, dtype=np.uint8)
    for code, base in enumerate(BASES):
        lut[ord(base)] = code
        lut[ord(base.lower())] = code
    return lut


def _build_complement_lut() -> np.ndarray:
    # complement of code c is 3 - c; invalid stays invalid.
    lut = np.arange(256, dtype=np.uint8)
    lut[:4] = 3 - np.arange(4, dtype=np.uint8)
    lut[4:] = CODE_INVALID
    return lut


_ENCODE_LUT = _build_encode_lut()
_COMPLEMENT_LUT = _build_complement_lut()
_DECODE_LUT = np.frombuffer((BASES + "N" * 252).encode("ascii"), dtype=np.uint8)


def encode_sequence(seq: str | bytes) -> np.ndarray:
    """Encode a DNA string into a ``uint8`` code array.

    Non-ACGT characters (including ``N``) become :data:`CODE_INVALID`.
    Case-insensitive.

    >>> encode_sequence("ACGTN").tolist()
    [0, 1, 2, 3, 4]
    """
    if isinstance(seq, str):
        seq = seq.encode("ascii")
    raw = np.frombuffer(seq, dtype=np.uint8)
    return _ENCODE_LUT[raw]


def decode_sequence(codes: np.ndarray) -> str:
    """Decode a ``uint8`` code array back into a DNA string.

    Invalid codes decode to ``N``.

    >>> decode_sequence(np.array([0, 1, 2, 3, 4], dtype=np.uint8))
    'ACGTN'
    """
    codes = np.asarray(codes, dtype=np.uint8)
    return _DECODE_LUT[np.minimum(codes, 4)].tobytes().decode("ascii")


def complement_codes(codes: np.ndarray) -> np.ndarray:
    """Complement a code array elementwise (A<->T, C<->G); N stays N."""
    return _COMPLEMENT_LUT[np.asarray(codes, dtype=np.uint8)]


def reverse_complement(seq: str) -> str:
    """Reverse-complement a DNA string.

    >>> reverse_complement("ACGTN")
    'NACGT'
    """
    return decode_sequence(complement_codes(encode_sequence(seq))[::-1])


def is_valid_dna(seq: str) -> bool:
    """True iff every character of ``seq`` is one of ``ACGTacgt``."""
    if not seq:
        return True
    return bool((encode_sequence(seq) <= 3).all())
