"""Sequence I/O substrate: DNA alphabet, FASTQ files, binary index tables."""

from repro.seqio.alphabet import (
    BASES,
    CODE_A,
    CODE_C,
    CODE_G,
    CODE_T,
    CODE_INVALID,
    encode_sequence,
    decode_sequence,
    complement_codes,
    reverse_complement,
    is_valid_dna,
)
from repro.seqio.records import FastqRecord, ReadBatch
from repro.seqio.fastq import (
    read_fastq,
    write_fastq,
    iter_fastq,
    FastqParseError,
    count_reads,
    read_fastq_region,
)
from repro.seqio.tables import BinaryTableError, read_table, write_table
from repro.seqio.fasta import (
    FastaParseError,
    iter_fasta,
    read_fasta,
    write_contigs,
    write_fasta,
)
from repro.seqio.quality import (
    decode_phred,
    encode_phred,
    mean_quality,
    quality_filter,
    trim_tail,
)

__all__ = [
    "BASES",
    "CODE_A",
    "CODE_C",
    "CODE_G",
    "CODE_T",
    "CODE_INVALID",
    "encode_sequence",
    "decode_sequence",
    "complement_codes",
    "reverse_complement",
    "is_valid_dna",
    "FastqRecord",
    "ReadBatch",
    "read_fastq",
    "write_fastq",
    "iter_fastq",
    "read_fastq_region",
    "count_reads",
    "FastqParseError",
    "BinaryTableError",
    "read_table",
    "write_table",
    "FastaParseError",
    "iter_fasta",
    "read_fasta",
    "write_contigs",
    "write_fasta",
    "decode_phred",
    "encode_phred",
    "mean_quality",
    "quality_filter",
    "trim_tail",
]
