"""Binary on-disk tables.

IndexCreate writes its two tables (merHist, FASTQPart) "to disk in binary
format" (paper section 3.1) so they can be reused across runs on different
machines.  This module defines a minimal, versioned container: a magic tag,
a schema identifier, a JSON header for scalar metadata, and a sequence of
named NumPy arrays stored with ``numpy.lib.format`` semantics (dtype string,
shape, raw little-endian bytes).
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Any, Dict, Mapping, Tuple

import numpy as np

_MAGIC = b"MPREPTAB"
_VERSION = 1


class BinaryTableError(IOError):
    """Raised for malformed/corrupt table files."""


def write_table(
    path: str | os.PathLike,
    schema: str,
    meta: Mapping[str, Any],
    arrays: Mapping[str, np.ndarray],
) -> int:
    """Serialize ``meta`` + named ``arrays`` to ``path``.

    Returns the number of bytes written.
    """
    header = {
        "schema": schema,
        "version": _VERSION,
        "meta": dict(meta),
        "arrays": [
            {
                "name": name,
                "dtype": np.lib.format.dtype_to_descr(arr.dtype),
                "shape": list(arr.shape),
            }
            for name, arr in arrays.items()
        ],
    }
    blob = json.dumps(header, sort_keys=True).encode("utf-8")
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<II", _VERSION, len(blob)))
        fh.write(blob)
        written = len(_MAGIC) + 8 + len(blob)
        for arr in arrays.values():
            data = np.ascontiguousarray(arr)
            if data.dtype.byteorder == ">":
                data = data.astype(data.dtype.newbyteorder("<"))
            raw = data.tobytes()
            fh.write(struct.pack("<Q", len(raw)))
            fh.write(raw)
            written += 8 + len(raw)
    return written


def read_table(
    path: str | os.PathLike, expect_schema: str | None = None
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Read a table written by :func:`write_table`.

    Returns ``(meta, arrays)``.  ``expect_schema`` (when given) is validated
    against the stored schema tag.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise BinaryTableError(f"{path}: bad magic {magic!r}")
        version, hlen = struct.unpack("<II", fh.read(8))
        if version != _VERSION:
            raise BinaryTableError(f"{path}: unsupported version {version}")
        try:
            header = json.loads(fh.read(hlen).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BinaryTableError(f"{path}: corrupt header: {exc}") from exc
        schema = header.get("schema")
        if expect_schema is not None and schema != expect_schema:
            raise BinaryTableError(
                f"{path}: schema mismatch: expected {expect_schema!r}, "
                f"found {schema!r}"
            )
        arrays: Dict[str, np.ndarray] = {}
        for spec in header["arrays"]:
            (nbytes,) = struct.unpack("<Q", fh.read(8))
            raw = fh.read(nbytes)
            if len(raw) != nbytes:
                raise BinaryTableError(f"{path}: truncated array {spec['name']}")
            dtype = np.dtype(spec["dtype"])
            arr = np.frombuffer(raw, dtype=dtype).reshape(spec["shape"]).copy()
            arrays[spec["name"]] = arr
        return header["meta"], arrays
