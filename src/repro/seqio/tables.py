"""Binary on-disk tables.

IndexCreate writes its two tables (merHist, FASTQPart) "to disk in binary
format" (paper section 3.1) so they can be reused across runs on different
machines.  This module defines a minimal, versioned container: a magic tag,
a schema identifier, a JSON header for scalar metadata, and a sequence of
named NumPy arrays stored with ``numpy.lib.format`` semantics (dtype string,
shape, raw little-endian bytes).
"""

from __future__ import annotations

import json
import os
import struct
from pathlib import Path
from typing import Any, Dict, List, Mapping, Sequence, Tuple

import numpy as np

_MAGIC = b"MPREPTAB"
_VERSION = 1

#: one array's static description: (name, dtype, shape).  The layout
#: helpers below take these so callers can reason about a table file's
#: byte layout without materializing the arrays.
ArraySpec = Tuple[str, np.dtype, Tuple[int, ...]]


class BinaryTableError(IOError):
    """Raised for malformed/corrupt table files."""


def _spec_nbytes(dtype: np.dtype, shape: Sequence[int]) -> int:
    n = 1
    for dim in shape:
        n *= int(dim)
    return np.dtype(dtype).itemsize * n


def _header_blob(schema: str, meta: Mapping[str, Any], specs: Sequence[ArraySpec]) -> bytes:
    """The canonical JSON header for a table holding ``specs``.

    Shared by :func:`write_table` and :func:`preallocate_table` so a
    preallocated file is byte-identical to one written in a single shot.
    """
    header = {
        "schema": schema,
        "version": _VERSION,
        "meta": dict(meta),
        "arrays": [
            {
                "name": name,
                "dtype": np.lib.format.dtype_to_descr(np.dtype(dtype)),
                "shape": [int(dim) for dim in shape],
            }
            for name, dtype, shape in specs
        ],
    }
    return json.dumps(header, sort_keys=True).encode("utf-8")


def table_layout(
    schema: str, meta: Mapping[str, Any], specs: Sequence[ArraySpec]
) -> Tuple[int, Dict[str, int]]:
    """Total file size and per-array payload offsets of a table file.

    The returned offsets point at the first *data* byte of each array
    (past its ``<Q`` length prefix).  Pure function of the header inputs:
    every process that knows ``(schema, meta, specs)`` computes the same
    layout, which is what lets spill writers address disjoint regions of
    one file without coordination.
    """
    blob = _header_blob(schema, meta, specs)
    offset = len(_MAGIC) + 8 + len(blob)
    offsets: Dict[str, int] = {}
    for name, dtype, shape in specs:
        offset += 8  # the <Q length prefix
        offsets[name] = offset
        offset += _spec_nbytes(dtype, shape)
    return offset, offsets


def preallocate_table(
    path: str | os.PathLike,
    schema: str,
    meta: Mapping[str, Any],
    specs: Sequence[ArraySpec],
) -> Dict[str, int]:
    """Create a table file with its full header and a zeroed payload.

    Writes the container prolog and every array's length prefix, then
    extends the file (sparsely where the filesystem allows) to its final
    size.  Returns the per-array data offsets of :func:`table_layout`;
    once every payload byte has been filled in place, the file is
    byte-identical to a :func:`write_table` of the same arrays.
    """
    blob = _header_blob(schema, meta, specs)
    total, offsets = table_layout(schema, meta, specs)
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<II", _VERSION, len(blob)))
        fh.write(blob)
        for name, dtype, shape in specs:
            nbytes = _spec_nbytes(dtype, shape)
            fh.write(struct.pack("<Q", nbytes))
            fh.seek(nbytes, os.SEEK_CUR)
        fh.truncate(total)
    return offsets


def write_table(
    path: str | os.PathLike,
    schema: str,
    meta: Mapping[str, Any],
    arrays: Mapping[str, np.ndarray],
) -> int:
    """Serialize ``meta`` + named ``arrays`` to ``path``.

    Returns the number of bytes written.
    """
    datas: List[np.ndarray] = []
    specs: List[ArraySpec] = []
    for name, arr in arrays.items():
        data = np.ascontiguousarray(arr)
        if data.dtype.byteorder == ">":
            data = data.astype(data.dtype.newbyteorder("<"))
        datas.append(data)
        specs.append((name, data.dtype, data.shape))
    blob = _header_blob(schema, meta, specs)
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    written = 0
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(struct.pack("<II", _VERSION, len(blob)))
        fh.write(blob)
        written = len(_MAGIC) + 8 + len(blob)
        for data in datas:
            raw = data.tobytes()
            fh.write(struct.pack("<Q", len(raw)))
            fh.write(raw)
            written += 8 + len(raw)
    return written


def read_table(
    path: str | os.PathLike, expect_schema: str | None = None
) -> Tuple[Dict[str, Any], Dict[str, np.ndarray]]:
    """Read a table written by :func:`write_table`.

    Returns ``(meta, arrays)``.  ``expect_schema`` (when given) is validated
    against the stored schema tag.
    """
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise BinaryTableError(f"{path}: bad magic {magic!r}")
        prolog = fh.read(8)
        if len(prolog) < 8:
            raise BinaryTableError(f"{path}: truncated header")
        version, hlen = struct.unpack("<II", prolog)
        if version != _VERSION:
            raise BinaryTableError(f"{path}: unsupported version {version}")
        raw_header = fh.read(hlen)
        if len(raw_header) < hlen:
            raise BinaryTableError(f"{path}: truncated header")
        try:
            header = json.loads(raw_header.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BinaryTableError(f"{path}: corrupt header: {exc}") from exc
        schema = header.get("schema")
        if expect_schema is not None and schema != expect_schema:
            raise BinaryTableError(
                f"{path}: schema mismatch: expected {expect_schema!r}, "
                f"found {schema!r}"
            )
        arrays: Dict[str, np.ndarray] = {}
        for spec in header["arrays"]:
            prefix = fh.read(8)
            if len(prefix) < 8:
                raise BinaryTableError(
                    f"{path}: truncated array {spec['name']}"
                )
            (nbytes,) = struct.unpack("<Q", prefix)
            raw = fh.read(nbytes)
            if len(raw) != nbytes:
                raise BinaryTableError(f"{path}: truncated array {spec['name']}")
            dtype = np.dtype(spec["dtype"])
            arr = np.frombuffer(raw, dtype=dtype).reshape(spec["shape"]).copy()
            arrays[spec["name"]] = arr
        return header["meta"], arrays
