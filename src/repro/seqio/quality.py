"""Quality-score utilities: Phred decoding, filtering, trimming.

Real sequencing preprocessing starts with quality control; the simulator
emits flat qualities, but the library would be incomplete without the
standard Phred+33 toolbox (mean-quality read filtering and 3' quality
trimming with the BWA-style running-sum algorithm).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.seqio.records import FastqRecord
from repro.util.validation import check_in_range

PHRED_OFFSET = 33


def decode_phred(quality: str) -> np.ndarray:
    """ASCII (Phred+33) quality string -> integer scores."""
    raw = np.frombuffer(quality.encode("ascii"), dtype=np.uint8)
    if raw.size and raw.min() < PHRED_OFFSET:
        raise ValueError(
            f"quality string contains characters below Phred+33: {quality!r}"
        )
    return (raw - PHRED_OFFSET).astype(np.int64)


def encode_phred(scores: Sequence[int]) -> str:
    """Integer scores -> ASCII (Phred+33)."""
    arr = np.asarray(list(scores), dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() > 93):
        raise ValueError("Phred scores must lie in [0, 93]")
    return (arr + PHRED_OFFSET).astype(np.uint8).tobytes().decode("ascii")


def mean_quality(record: FastqRecord) -> float:
    """Mean Phred score of a record (0.0 for empty reads)."""
    scores = decode_phred(record.quality)
    return float(scores.mean()) if scores.size else 0.0


def error_probability(record: FastqRecord) -> float:
    """Expected per-base error probability implied by the qualities."""
    scores = decode_phred(record.quality)
    if not scores.size:
        return 0.0
    return float(np.mean(10.0 ** (-scores / 10.0)))


def trim_tail(record: FastqRecord, threshold: int = 20) -> FastqRecord:
    """BWA-style 3' quality trimming.

    Finds the cut position maximizing ``sum(threshold - q[i])`` over the
    trailing suffix; bases after the argmax of the running sum are
    removed.  A read whose tail is all above ``threshold`` is returned
    unchanged.
    """
    check_in_range("threshold", threshold, 0, 93)
    scores = decode_phred(record.quality)
    n = len(scores)
    if n == 0:
        return record
    best_pos, best_sum, running = n, 0, 0
    for i in range(n - 1, -1, -1):
        running += threshold - int(scores[i])
        if running > best_sum:
            best_sum = running
            best_pos = i
    if best_pos >= n:
        return record
    return FastqRecord(
        record.name,
        record.sequence[:best_pos],
        record.quality[:best_pos],
    )


@dataclass
class QualityFilterStats:
    n_in: int = 0
    n_kept: int = 0
    n_dropped_quality: int = 0
    n_dropped_length: int = 0
    bases_trimmed: int = 0

    @property
    def keep_fraction(self) -> float:
        return self.n_kept / self.n_in if self.n_in else 0.0


def quality_filter(
    records: Sequence[FastqRecord],
    min_mean_quality: float = 20.0,
    trim_threshold: int | None = None,
    min_length: int = 30,
) -> Tuple[List[FastqRecord], QualityFilterStats]:
    """Trim (optionally) then drop low-quality / too-short reads."""
    stats = QualityFilterStats(n_in=len(records))
    out: List[FastqRecord] = []
    for rec in records:
        if trim_threshold is not None:
            trimmed = trim_tail(rec, trim_threshold)
            stats.bases_trimmed += len(rec) - len(trimmed)
            rec = trimmed
        if len(rec) < min_length:
            stats.n_dropped_length += 1
            continue
        if mean_quality(rec) < min_mean_quality:
            stats.n_dropped_quality += 1
            continue
        out.append(rec)
    stats.n_kept = len(out)
    return out, stats
