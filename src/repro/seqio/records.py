"""Read containers.

:class:`FastqRecord` is the scalar view of a single read.  The pipeline
itself never loops over records: :class:`ReadBatch` stores a whole FASTQ
chunk as one concatenated 2-bit code array plus CSR-style offsets, which is
what the vectorized k-mer engine consumes (one NumPy pass per chunk instead
of a Python loop per read).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

import numpy as np

from repro.seqio.alphabet import decode_sequence, encode_sequence


@dataclass(frozen=True)
class FastqRecord:
    """One FASTQ read: ``@name`` / sequence / ``+`` / quality."""

    name: str
    sequence: str
    quality: str

    def __post_init__(self) -> None:
        if len(self.sequence) != len(self.quality):
            raise ValueError(
                f"read {self.name!r}: sequence length {len(self.sequence)} "
                f"!= quality length {len(self.quality)}"
            )

    def __len__(self) -> int:
        return len(self.sequence)

    def to_fastq(self) -> str:
        return f"@{self.name}\n{self.sequence}\n+\n{self.quality}\n"


class ReadBatch:
    """A set of reads in structure-of-arrays layout.

    Attributes
    ----------
    codes : uint8 array, all reads' 2-bit codes concatenated.
    offsets : int64 array of length ``n_reads + 1``; read ``i`` occupies
        ``codes[offsets[i]:offsets[i+1]]``.
    read_ids : int64 array of *global* read identifiers.  Both mates of a
        paired-end read carry the same id (paper section 3.2), so a batch
        may contain duplicate ids.
    names, quals : optional per-read metadata (kept only when the batch must
        be written back out as FASTQ).
    """

    __slots__ = ("codes", "offsets", "read_ids", "names", "quals")

    def __init__(
        self,
        codes: np.ndarray,
        offsets: np.ndarray,
        read_ids: np.ndarray,
        names: List[str] | None = None,
        quals: List[str] | None = None,
    ) -> None:
        codes = np.ascontiguousarray(codes, dtype=np.uint8)
        offsets = np.ascontiguousarray(offsets, dtype=np.int64)
        read_ids = np.ascontiguousarray(read_ids, dtype=np.int64)
        if offsets.ndim != 1 or len(offsets) == 0:
            raise ValueError("offsets must be a non-empty 1-D array")
        if offsets[0] != 0 or offsets[-1] != len(codes):
            raise ValueError("offsets must start at 0 and end at len(codes)")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        n = len(offsets) - 1
        if len(read_ids) != n:
            raise ValueError(f"expected {n} read ids, got {len(read_ids)}")
        for label, meta in (("names", names), ("quals", quals)):
            if meta is not None and len(meta) != n:
                raise ValueError(f"expected {n} {label}, got {len(meta)}")
        self.codes = codes
        self.offsets = offsets
        self.read_ids = read_ids
        self.names = names
        self.quals = quals

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_records(
        cls,
        records: Sequence[FastqRecord],
        read_ids: Iterable[int] | None = None,
        keep_metadata: bool = True,
    ) -> "ReadBatch":
        """Build a batch from scalar records.

        ``read_ids`` defaults to ``0..n-1``.
        """
        records = list(records)
        n = len(records)
        lengths = np.fromiter((len(r) for r in records), dtype=np.int64, count=n)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        codes = np.empty(int(offsets[-1]), dtype=np.uint8)
        for i, rec in enumerate(records):
            codes[offsets[i] : offsets[i + 1]] = encode_sequence(rec.sequence)
        if read_ids is None:
            ids = np.arange(n, dtype=np.int64)
        else:
            ids = np.fromiter((int(i) for i in read_ids), dtype=np.int64, count=n)
        names = [r.name for r in records] if keep_metadata else None
        quals = [r.quality for r in records] if keep_metadata else None
        return cls(codes, offsets, ids, names, quals)

    @classmethod
    def from_sequences(
        cls,
        sequences: Sequence[str],
        read_ids: Iterable[int] | None = None,
    ) -> "ReadBatch":
        """Build a metadata-free batch from plain strings (tests, internals)."""
        records = [
            FastqRecord(f"r{i}", seq, "I" * len(seq))
            for i, seq in enumerate(sequences)
        ]
        return cls.from_records(records, read_ids=read_ids, keep_metadata=False)

    @classmethod
    def empty(cls) -> "ReadBatch":
        return cls(
            np.empty(0, dtype=np.uint8),
            np.zeros(1, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def n_reads(self) -> int:
        return len(self.offsets) - 1

    @property
    def n_bases(self) -> int:
        return int(self.offsets[-1])

    @property
    def lengths(self) -> np.ndarray:
        return np.diff(self.offsets)

    def sequence(self, i: int) -> str:
        return decode_sequence(self.codes[self.offsets[i] : self.offsets[i + 1]])

    def record(self, i: int) -> FastqRecord:
        seq = self.sequence(i)
        name = self.names[i] if self.names else f"read/{int(self.read_ids[i])}"
        qual = self.quals[i] if self.quals else "I" * len(seq)
        return FastqRecord(name, seq, qual)

    def __len__(self) -> int:
        return self.n_reads

    def __iter__(self) -> Iterator[FastqRecord]:
        for i in range(self.n_reads):
            yield self.record(i)

    def select(self, indices: np.ndarray) -> "ReadBatch":
        """Return a new batch holding reads at ``indices`` (gather)."""
        indices = np.asarray(indices, dtype=np.int64)
        lengths = self.lengths[indices]
        offsets = np.zeros(len(indices) + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        codes = np.empty(int(offsets[-1]), dtype=np.uint8)
        for out_i, src_i in enumerate(indices):
            codes[offsets[out_i] : offsets[out_i + 1]] = self.codes[
                self.offsets[src_i] : self.offsets[src_i + 1]
            ]
        names = [self.names[i] for i in indices] if self.names else None
        quals = [self.quals[i] for i in indices] if self.quals else None
        return ReadBatch(codes, offsets, self.read_ids[indices], names, quals)

    @staticmethod
    def concatenate(batches: Sequence["ReadBatch"]) -> "ReadBatch":
        """Concatenate batches preserving order."""
        batches = [b for b in batches if b.n_reads > 0]
        if not batches:
            return ReadBatch.empty()
        codes = np.concatenate([b.codes for b in batches])
        counts = [b.n_reads for b in batches]
        offsets = np.zeros(sum(counts) + 1, dtype=np.int64)
        np.cumsum(np.concatenate([b.lengths for b in batches]), out=offsets[1:])
        read_ids = np.concatenate([b.read_ids for b in batches])
        if all(b.names is not None for b in batches):
            names: List[str] | None = [n for b in batches for n in b.names or []]
            quals: List[str] | None = [q for b in batches for q in b.quals or []]
        else:
            names = quals = None
        return ReadBatch(codes, offsets, read_ids, names, quals)
