"""FASTA reading/writing (contig output of the assembler substrate)."""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator, List, Sequence, Tuple


class FastaParseError(ValueError):
    """Raised on malformed FASTA input."""


def write_fasta(
    path: str | os.PathLike,
    records: Sequence[Tuple[str, str]],
    line_width: int = 80,
) -> int:
    """Write ``(name, sequence)`` records; returns the count written."""
    if line_width < 1:
        raise ValueError(f"line_width must be >= 1, got {line_width}")
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    n = 0
    with open(path, "w", encoding="ascii") as fh:
        for name, seq in records:
            fh.write(f">{name}\n")
            for i in range(0, len(seq), line_width):
                fh.write(seq[i : i + line_width])
                fh.write("\n")
            n += 1
    return n


def write_contigs(path: str | os.PathLike, contigs: Sequence[str]) -> int:
    """Write assembler contigs with standard headers."""
    return write_fasta(
        path,
        [
            (f"contig_{i} len={len(c)}", c)
            for i, c in enumerate(contigs)
        ],
    )


def iter_fasta(path: str | os.PathLike) -> Iterator[Tuple[str, str]]:
    """Stream ``(name, sequence)`` records from a FASTA file."""
    name = None
    chunks: List[str] = []
    with open(path, "rt", encoding="ascii") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if line.startswith(">"):
                if name is not None:
                    yield name, "".join(chunks)
                name = line[1:]
                chunks = []
            else:
                if name is None:
                    raise FastaParseError(
                        f"{path}:{lineno}: sequence before any '>' header"
                    )
                chunks.append(line)
    if name is not None:
        yield name, "".join(chunks)


def read_fasta(path: str | os.PathLike) -> List[Tuple[str, str]]:
    """Read an entire FASTA file into ``(name, sequence)`` records."""
    return list(iter_fasta(path))
