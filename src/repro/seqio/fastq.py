"""FASTQ reading and writing.

The pipeline performs genuine file I/O (the paper times KmerGen-I/O and
CC-I/O separately), so this module provides both whole-file readers and the
byte-region reader used for chunked parallel access: given a byte offset and
size from the FASTQPart table, :func:`read_fastq_region` parses exactly the
records of that chunk.
"""

from __future__ import annotations

import gzip
import io
import os
from pathlib import Path
from typing import Iterable, Iterator, List, Sequence

from repro.seqio.records import FastqRecord


class FastqParseError(ValueError):
    """Raised on malformed FASTQ input."""


def _is_gzip(path: str | os.PathLike) -> bool:
    return str(path).endswith(".gz")


def _open_text(path: str | os.PathLike, mode: str = "rt"):
    """Open plain or gzip-compressed text transparently by suffix."""
    if _is_gzip(path):
        return gzip.open(path, mode, encoding="ascii")
    return open(path, mode, encoding="ascii")


def iter_fastq(path: str | os.PathLike) -> Iterator[FastqRecord]:
    """Stream records from a FASTQ file (``.gz`` handled transparently).

    Raises :class:`FastqParseError` on structural problems (missing ``@``,
    truncated record, length mismatch).
    """
    with _open_text(path) as fh:
        yield from _iter_fastq_handle(fh, str(path))


def _iter_fastq_handle(fh: io.TextIOBase, label: str) -> Iterator[FastqRecord]:
    lineno = 0
    while True:
        header = fh.readline()
        if not header:
            return
        lineno += 1
        header = header.rstrip("\n")
        if not header:
            # tolerate trailing blank lines
            continue
        if not header.startswith("@"):
            raise FastqParseError(
                f"{label}:{lineno}: expected '@' header, got {header[:30]!r}"
            )
        seq = fh.readline().rstrip("\n")
        plus = fh.readline().rstrip("\n")
        qual = fh.readline().rstrip("\n")
        lineno += 3
        if not qual and not seq:
            raise FastqParseError(f"{label}:{lineno}: truncated record")
        if not plus.startswith("+"):
            raise FastqParseError(
                f"{label}:{lineno - 1}: expected '+' separator, got {plus[:30]!r}"
            )
        if len(seq) != len(qual):
            raise FastqParseError(
                f"{label}:{lineno}: sequence/quality length mismatch "
                f"({len(seq)} vs {len(qual)})"
            )
        yield FastqRecord(header[1:], seq, qual)


def read_fastq(path: str | os.PathLike) -> List[FastqRecord]:
    """Read an entire FASTQ file into memory."""
    return list(iter_fastq(path))


def count_reads(path: str | os.PathLike) -> int:
    """Count records without materializing them."""
    n = 0
    for _ in iter_fastq(path):
        n += 1
    return n


def write_fastq(
    path: str | os.PathLike, records: Iterable[FastqRecord], append: bool = False
) -> int:
    """Write records to ``path`` (gzipped if it ends in ``.gz``); returns
    the number written."""
    mode = "at" if append else "wt"
    n = 0
    Path(path).parent.mkdir(parents=True, exist_ok=True)
    with _open_text(path, mode) as fh:
        for rec in records:
            fh.write(rec.to_fastq())
            n += 1
    return n


def read_fastq_region(
    path: str | os.PathLike, offset: int, size: int
) -> List[FastqRecord]:
    """Parse the FASTQ records contained in ``[offset, offset + size)``.

    The region must start exactly at a record boundary (the FASTQPart chunker
    guarantees this).  A record straddling the end of the region is NOT
    returned: the region must also end on a boundary, matching how chunks
    tile the file.

    Gzipped inputs are rejected: byte-offset chunked access needs a
    seekable uncompressed file (decompress first, as the paper's tool
    requires of its inputs).
    """
    if _is_gzip(path):
        raise FastqParseError(
            f"{path}: chunked region access requires an uncompressed FASTQ "
            "(gzip streams are not byte-seekable); decompress first"
        )
    with open(path, "rt", encoding="ascii") as fh:
        fh.seek(offset)
        data = fh.read(size)
    return list(_iter_fastq_handle(io.StringIO(data), f"{path}@{offset}"))


def record_boundaries(path: str | os.PathLike) -> List[int]:
    """Return the byte offset of every record start plus the file size.

    Used by the FASTQPart chunker to place chunk boundaries on record
    starts.  Offsets are byte positions of '@' header lines.  Gzipped
    inputs are rejected (see :func:`read_fastq_region`).
    """
    if _is_gzip(path):
        raise FastqParseError(
            f"{path}: chunk-boundary discovery requires an uncompressed "
            "FASTQ; decompress first"
        )
    boundaries: List[int] = []
    pos = 0
    with open(path, "rb") as fh:
        while True:
            start = pos
            header = fh.readline()
            if not header:
                break
            pos += len(header)
            if header.strip() and header.startswith(b"@"):
                boundaries.append(start)
                for _ in range(3):
                    line = fh.readline()
                    if not line:
                        raise FastqParseError(f"{path}: truncated final record")
                    pos += len(line)
    boundaries.append(pos)
    return boundaries


def interleave_paired(
    r1: Sequence[FastqRecord], r2: Sequence[FastqRecord]
) -> List[FastqRecord]:
    """Interleave mate files (r1[0], r2[0], r1[1], ...)."""
    if len(r1) != len(r2):
        raise ValueError(f"mate files differ in length: {len(r1)} vs {len(r2)}")
    out: List[FastqRecord] = []
    for a, b in zip(r1, r2):
        out.append(a)
        out.append(b)
    return out
