"""IndexCreate: the sequential once-per-dataset indexing step.

Builds FASTQPart then derives merHist by summing the per-chunk histograms
(one scan of the input, exactly as the paper's Table 5 measures the two
sub-steps separately: chunk-boundary discovery vs. histogramming).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.index.fastqpart import FastqPartTable, build_fastqpart
from repro.index.merhist import MerHist
from repro.util.logging import get_logger

_LOG = get_logger("index.create")


@dataclass
class IndexCreateResult:
    """The two tables plus the timing split reported in paper Table 5."""

    merhist: MerHist
    fastqpart: FastqPartTable
    fastqpart_seconds: float
    merhist_seconds: float
    merhist_path: str | None = None
    fastqpart_path: str | None = None

    @property
    def total_seconds(self) -> float:
        return self.fastqpart_seconds + self.merhist_seconds


def index_create(
    units: Sequence,
    k: int,
    m: int,
    n_chunks: int,
    output_dir: str | os.PathLike | None = None,
) -> IndexCreateResult:
    """Run IndexCreate; optionally persist both tables under ``output_dir``.

    The FASTQPart timing covers chunk-boundary discovery and region setup;
    the merHist timing covers canonical-k-mer histogramming (which the
    paper notes "is similar to the KmerGen preprocessing step and can be
    parallelized in the same manner" — kept sequential here, as published).
    """
    t0 = time.perf_counter()
    table = build_fastqpart(units, k=k, m=m, n_chunks=n_chunks)
    # attribute the histogram scan to the merHist phase: rebuild split
    # timings by measuring the (cheap) summation plus the scan embedded in
    # build_fastqpart.  The scan dominates; boundary discovery is measured
    # separately below by re-running it.
    t1 = time.perf_counter()
    merhist = MerHist(k=k, m=m, counts=table.global_histogram().astype("uint32"))
    t2 = time.perf_counter()

    # build_fastqpart interleaves both concerns; split its cost by the
    # documented proportions: boundary discovery is I/O-bound, histogram is
    # compute-bound.  We time boundary discovery directly.
    from repro.seqio.fastq import record_boundaries

    tb0 = time.perf_counter()
    for u in table.units:
        for f in u.files:
            record_boundaries(f)
    boundary_seconds = time.perf_counter() - tb0

    total_build = t1 - t0
    fastqpart_seconds = min(boundary_seconds, total_build)
    merhist_seconds = (total_build - fastqpart_seconds) + (t2 - t1)

    result = IndexCreateResult(
        merhist=merhist,
        fastqpart=table,
        fastqpart_seconds=fastqpart_seconds,
        merhist_seconds=merhist_seconds,
    )
    if output_dir is not None:
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        mh_path = out / f"merhist_k{k}_m{m}.bin"
        fp_path = out / f"fastqpart_k{k}_m{m}_c{n_chunks}.bin"
        merhist.save(mh_path)
        table.save(fp_path)
        result.merhist_path = str(mh_path)
        result.fastqpart_path = str(fp_path)
        _LOG.info(
            "IndexCreate: %d chunks, %d reads, tables saved to %s",
            table.n_chunks,
            table.total_reads,
            out,
        )
    return result
