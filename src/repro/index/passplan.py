"""Multipass / range planning from the merHist histogram.

Paper section 3.1.1: "The histogram is used to partition the range of
integers spanned by k-mer values (k-mer range) for multipass and parallel
execution" — and section 3.7's memory model determines the fewest passes
that fit a per-task memory budget.

All ranges are expressed as half-open intervals of m-mer prefix *bins*;
nesting is pass range ⊇ per-task ranges ⊇ per-thread ranges, each level
balanced against the histogram so tuple counts are as even as possible
(this is what makes Figure 8's load balance flat for KmerGen/LocalSort/
LocalCC).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.index.merhist import MerHist
from repro.util.validation import check_positive


def balanced_boundaries(
    counts: np.ndarray, n_parts: int, lo: int = 0, hi: int | None = None
) -> np.ndarray:
    """Split bins ``[lo, hi)`` into ``n_parts`` ranges of ~equal tuple mass.

    Returns ``n_parts + 1`` non-decreasing edges with ``edges[0] == lo`` and
    ``edges[-1] == hi``.  Greedy on the cumulative histogram: edge ``i`` is
    the first bin where the cumulative mass reaches ``i/n_parts`` of the
    range total.  A range is never split mid-bin (all occurrences of one
    k-mer share a bin, which is what keeps passes disjoint and filters
    local).
    """
    check_positive("n_parts", n_parts)
    counts = np.asarray(counts, dtype=np.int64)
    if hi is None:
        hi = len(counts)
    if not (0 <= lo <= hi <= len(counts)):
        raise ValueError(f"invalid bin range [{lo}, {hi}) for {len(counts)} bins")
    segment = counts[lo:hi]
    total = int(segment.sum())
    edges = np.empty(n_parts + 1, dtype=np.int64)
    edges[0], edges[-1] = lo, hi
    if total == 0 or n_parts == 1:
        # distribute empty/degenerate range by bin count
        edges[:] = np.ceil(np.linspace(lo, hi, n_parts + 1)).astype(np.int64)
        edges[0], edges[-1] = lo, hi
        return edges
    cum = np.cumsum(segment)
    targets = (np.arange(1, n_parts) * total) / n_parts
    inner = np.searchsorted(cum, targets, side="left") + 1 + lo
    edges[1:-1] = np.minimum(inner, hi)
    # enforce monotonicity (heavy single bins can collapse ranges to empty)
    np.maximum.accumulate(edges, out=edges)
    return edges


@dataclass
class PassSpec:
    """One I/O pass: its global bin range and the nested task/thread edges.

    * ``task_edges``: ``P + 1`` edges partitioning ``[bin_lo, bin_hi)`` into
      per-task k-mer ranges (ownership for the all-to-all).
    * ``thread_edges``: ``(P, T + 1)`` — task ``p``'s range subdivided for
      its ``T`` threads (LocalSort range partitioning).
    """

    index: int
    bin_lo: int
    bin_hi: int
    tuples: int
    task_edges: np.ndarray
    thread_edges: np.ndarray

    def tuples_per_task(self, merhist: MerHist) -> np.ndarray:
        cum = merhist.cumulative()
        return cum[self.task_edges[1:]] - cum[self.task_edges[:-1]]


@dataclass
class PassPlan:
    """The full multipass schedule for one (dataset, P, T, S) configuration."""

    n_tasks: int
    n_threads: int
    m: int
    passes: List[PassSpec] = field(default_factory=list)

    @property
    def n_passes(self) -> int:
        return len(self.passes)

    @property
    def total_tuples(self) -> int:
        return sum(p.tuples for p in self.passes)

    def validate_disjoint(self, n_bins: int) -> None:
        """Passes must tile ``[0, 4^m)`` without gaps or overlap."""
        expect = 0
        for spec in self.passes:
            if spec.bin_lo != expect:
                raise ValueError(
                    f"pass {spec.index} starts at bin {spec.bin_lo}, "
                    f"expected {expect}"
                )
            expect = spec.bin_hi
        if expect != n_bins:
            raise ValueError(f"passes end at bin {expect}, expected {n_bins}")


def plan_passes(
    merhist: MerHist,
    n_passes: int,
    n_tasks: int,
    n_threads: int,
) -> PassPlan:
    """Build the nested pass/task/thread ranges for a fixed pass count."""
    check_positive("n_passes", n_passes)
    check_positive("n_tasks", n_tasks)
    check_positive("n_threads", n_threads)
    counts = merhist.counts.astype(np.int64)
    pass_edges = balanced_boundaries(counts, n_passes)
    cum = merhist.cumulative()

    plan = PassPlan(n_tasks=n_tasks, n_threads=n_threads, m=merhist.m)
    for s in range(n_passes):
        lo, hi = int(pass_edges[s]), int(pass_edges[s + 1])
        task_edges = balanced_boundaries(counts, n_tasks, lo, hi)
        thread_edges = np.empty((n_tasks, n_threads + 1), dtype=np.int64)
        for p in range(n_tasks):
            thread_edges[p] = balanced_boundaries(
                counts, n_threads, int(task_edges[p]), int(task_edges[p + 1])
            )
        plan.passes.append(
            PassSpec(
                index=s,
                bin_lo=lo,
                bin_hi=hi,
                tuples=int(cum[hi] - cum[lo]),
                task_edges=task_edges,
                thread_edges=thread_edges,
            )
        )
    plan.validate_disjoint(merhist.n_bins)
    return plan


def passes_for_memory_budget(
    merhist: MerHist,
    n_tasks: int,
    tuple_bytes: int,
    memory_budget_per_task: int,
    reserved_bytes_per_task: int = 0,
    max_passes: int = 64,
) -> int:
    """Fewest passes S so per-task tuple buffers fit the budget.

    Paper section 3.7: kmerOut and kmerIn each hold ~``12 M / (S P)`` bytes
    (with 12 generalized to ``tuple_bytes``); the dominant term is
    ``2 * tuple_bytes * M / (S P)``.  ``reserved_bytes_per_task`` accounts
    for the fixed arrays (tables, FASTQ buffers, p and p').

    The planner uses the *actual worst pass* (max tuples over the balanced
    pass split), not the average, so a skewed histogram is handled.

    Raises ``ValueError`` for a zero/negative budget or ``tuple_bytes``, a
    negative ``reserved_bytes_per_task``, or a reservation that consumes
    the whole budget — a nonsensical budget must fail here, loudly, not
    surface later as a division artifact or an absurd pass count.
    """
    check_positive("memory_budget_per_task", memory_budget_per_task)
    check_positive("tuple_bytes", tuple_bytes)
    if reserved_bytes_per_task < 0:
        raise ValueError(
            "reserved_bytes_per_task must be >= 0, got "
            f"{reserved_bytes_per_task}"
        )
    available = memory_budget_per_task - reserved_bytes_per_task
    if available <= 0:
        raise ValueError(
            "reserved bytes exceed the memory budget; nothing left for tuples"
        )
    counts = merhist.counts.astype(np.int64)
    for s in range(1, max_passes + 1):
        edges = balanced_boundaries(counts, s)
        cum = np.zeros(len(counts) + 1, dtype=np.int64)
        np.cumsum(counts, out=cum[1:])
        per_pass = cum[edges[1:]] - cum[edges[:-1]]
        worst = int(per_pass.max())
        # per task: kmerOut + kmerIn, each ~worst/P tuples (balanced split)
        per_task_bytes = 2 * tuple_bytes * int(np.ceil(worst / n_tasks))
        if per_task_bytes <= available:
            return s
    raise ValueError(
        f"no pass count up to {max_passes} fits the per-task budget of "
        f"{memory_budget_per_task} bytes"
    )


def spill_schedule(
    plan: PassPlan,
    tuple_bytes: int,
    memory_budget_per_task: int | None,
    mode: str = "auto",
) -> List[bool]:
    """Decide, per pass, whether tuples go through spill files or RAM.

    The planner decision rule of the out-of-core mode
    (:mod:`repro.runtime.spill`).  The quantity compared against the
    budget is what in-memory execution would actually keep resident for
    pass ``s``: every owner task's destination block at once —
    ``tuple_bytes * spec.tuples`` — because KmerGen scatters into all P
    blocks and they stay mapped until LocalCC drains them.  Spilling
    replaces that with at most one owner's block
    (``~tuple_bytes * spec.tuples / P``) resident per worker at a time.

    * ``"never"``: all in-memory (the historical behavior);
    * ``"always"``: every pass spills;
    * ``"auto"``: pass ``s`` spills iff a budget is configured and the
      pass's in-memory residency exceeds it.  With no budget, ``auto``
      never spills — out-of-core is opt-in via the budget, mirroring how
      ``n_passes=None`` makes the budget drive the pass count.

    Returns one decision per pass, aligned with ``plan.passes``.
    """
    from repro.runtime.spill import SPILL_NAMES

    if mode not in SPILL_NAMES:
        raise ValueError(f"spill must be one of {SPILL_NAMES}, got {mode!r}")
    check_positive("tuple_bytes", tuple_bytes)
    if mode == "never":
        return [False] * plan.n_passes
    if mode == "always":
        return [True] * plan.n_passes
    if memory_budget_per_task is None:
        return [False] * plan.n_passes
    check_positive("memory_budget_per_task", memory_budget_per_task)
    return [
        tuple_bytes * spec.tuples > memory_budget_per_task
        for spec in plan.passes
    ]
