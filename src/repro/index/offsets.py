"""Static load-balancing arithmetic from the FASTQPart histograms.

Paper sections 3.2.2 and 3.3: because every chunk carries its own m-mer
histogram, the number of tuples any thread will produce for any destination
task is known *before* KmerGen runs.  That predetermines

* each thread's write offset into its task's single output buffer (so
  threads append without synchronization),
* the exact send/recv counts of the custom all-to-all (no handshake
  needed), and
* per-thread sub-ranges for the LocalSort range partitioning.

Everything here is exact, not an estimate — the tests assert equality with
the counts the real KmerGen produces.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.index.fastqpart import FastqPartTable
from repro.util.validation import check_positive


def chunk_assignment(n_chunks: int, n_tasks: int, n_threads: int) -> np.ndarray:
    """Assign chunks to (task, thread) slots.

    Returns an ``(n_chunks,)`` int array of flattened slot ids
    ``task * n_threads + thread``.  Chunks are dealt round-robin so that a
    thread's chunks sample the whole file — the paper distributes the C
    chunks to threads "to enable parallel FASTQ file read operations" and
    relies on C >> P*T for balance.
    """
    check_positive("n_tasks", n_tasks)
    check_positive("n_threads", n_threads)
    slots = n_tasks * n_threads
    return (np.arange(n_chunks, dtype=np.int64) % slots).astype(np.int64)


def _bin_range_counts(hist: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Per chunk, tuples falling in each bin range: (C, len(edges)-1)."""
    cum = np.zeros((hist.shape[0], hist.shape[1] + 1), dtype=np.int64)
    np.cumsum(hist, axis=1, out=cum[:, 1:])
    return cum[:, edges[1:]] - cum[:, edges[:-1]]


def send_counts_matrix(
    table: FastqPartTable,
    assignment: np.ndarray,
    task_edges: np.ndarray,
    n_tasks: int,
    n_threads: int,
    pass_lo: int = 0,
    pass_hi: int | None = None,
) -> np.ndarray:
    """Tuples thread ``t`` of task ``p`` will send to task ``p'``.

    Returns an ``(n_tasks, n_threads, n_tasks)`` int64 array.  ``task_edges``
    are the ``n_tasks + 1`` m-mer-bin edges of the destination k-mer ranges;
    ``[pass_lo, pass_hi)`` restricts to the current pass's bin range (edges
    outside it contribute zero).
    """
    task_edges = np.asarray(task_edges, dtype=np.int64)
    if len(task_edges) != n_tasks + 1:
        raise ValueError(
            f"need {n_tasks + 1} task edges, got {len(task_edges)}"
        )
    if pass_hi is None:
        pass_hi = table.n_bins
    clipped = np.clip(task_edges, pass_lo, pass_hi)
    per_chunk = _bin_range_counts(table.hist, clipped)  # (C, P)
    out = np.zeros((n_tasks, n_threads, n_tasks), dtype=np.int64)
    tasks = assignment // n_threads
    threads = assignment % n_threads
    np.add.at(out, (tasks, threads), per_chunk)
    return out


def recv_counts_matrix(send_counts: np.ndarray) -> np.ndarray:
    """Tuples task ``p`` receives from task ``p'``: ``(P, P)``.

    ``recv[p, p'] = sum_t send[p', t, p]`` — computed on the receiving side
    from the same table, "in advance using the FASTQPart table" (section
    3.3), so no count exchange is needed at runtime.
    """
    return send_counts.sum(axis=1).T.copy()


def thread_write_offsets(send_counts: np.ndarray) -> List[np.ndarray]:
    """Per task, each thread's write offsets into the task's send buffer.

    The buffer is laid out destination-major: all tuples for task 0 first,
    then task 1, ...  Within a destination block, thread 0's tuples precede
    thread 1's.  For task ``p`` the result is an ``(n_threads, n_tasks)``
    offset array (plus the implied block ends), from "a prefix sum of this
    array" as in section 3.2.2.

    Returns a list of length ``n_tasks``; element ``p`` is an
    ``(n_threads + 1, n_tasks)`` int64 array where ``[t, d]`` is thread
    ``t``'s write offset for destination ``d`` and row ``n_threads`` holds
    the block-end offsets.
    """
    n_tasks, n_threads, _ = send_counts.shape
    result = []
    for p in range(n_tasks):
        counts = send_counts[p]  # (T, P): tuples thread t sends to task d
        block_totals = counts.sum(axis=0)  # per destination
        block_starts = np.zeros(n_tasks, dtype=np.int64)
        np.cumsum(block_totals[:-1], out=block_starts[1:])
        within = np.zeros((n_threads + 1, n_tasks), dtype=np.int64)
        np.cumsum(counts, axis=0, out=within[1:])
        result.append(within + block_starts[None, :])
    return result
