"""Static load-balancing arithmetic from the FASTQPart histograms.

Paper sections 3.2.2 and 3.3: because every chunk carries its own m-mer
histogram, the number of tuples any thread will produce for any destination
task is known *before* KmerGen runs.  That predetermines

* each thread's write offset into its task's single output buffer (so
  threads append without synchronization),
* the exact send/recv counts of the custom all-to-all (no handshake
  needed), and
* per-thread sub-ranges for the LocalSort range partitioning.

Everything here is exact, not an estimate — the tests assert equality with
the counts the real KmerGen produces.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.index.fastqpart import FastqPartTable
from repro.util.validation import check_positive


def chunk_assignment(n_chunks: int, n_tasks: int, n_threads: int) -> np.ndarray:
    """Assign chunks to (task, thread) slots.

    Returns an ``(n_chunks,)`` int array of flattened slot ids
    ``task * n_threads + thread``.  Chunks are dealt round-robin so that a
    thread's chunks sample the whole file — the paper distributes the C
    chunks to threads "to enable parallel FASTQ file read operations" and
    relies on C >> P*T for balance.
    """
    check_positive("n_tasks", n_tasks)
    check_positive("n_threads", n_threads)
    slots = n_tasks * n_threads
    return (np.arange(n_chunks, dtype=np.int64) % slots).astype(np.int64)


def _bin_range_counts(hist: np.ndarray, edges: np.ndarray) -> np.ndarray:
    """Per chunk, tuples falling in each bin range: (C, len(edges)-1)."""
    cum = np.zeros((hist.shape[0], hist.shape[1] + 1), dtype=np.int64)
    np.cumsum(hist, axis=1, out=cum[:, 1:])
    return cum[:, edges[1:]] - cum[:, edges[:-1]]


def send_counts_matrix(
    table: FastqPartTable,
    assignment: np.ndarray,
    task_edges: np.ndarray,
    n_tasks: int,
    n_threads: int,
    pass_lo: int = 0,
    pass_hi: int | None = None,
) -> np.ndarray:
    """Tuples thread ``t`` of task ``p`` will send to task ``p'``.

    Returns an ``(n_tasks, n_threads, n_tasks)`` int64 array.  ``task_edges``
    are the ``n_tasks + 1`` m-mer-bin edges of the destination k-mer ranges;
    ``[pass_lo, pass_hi)`` restricts to the current pass's bin range (edges
    outside it contribute zero).
    """
    task_edges = np.asarray(task_edges, dtype=np.int64)
    if len(task_edges) != n_tasks + 1:
        raise ValueError(
            f"need {n_tasks + 1} task edges, got {len(task_edges)}"
        )
    if pass_hi is None:
        pass_hi = table.n_bins
    clipped = np.clip(task_edges, pass_lo, pass_hi)
    per_chunk = _bin_range_counts(table.hist, clipped)  # (C, P)
    out = np.zeros((n_tasks, n_threads, n_tasks), dtype=np.int64)
    tasks = assignment // n_threads
    threads = assignment % n_threads
    np.add.at(out, (tasks, threads), per_chunk)
    return out


def chunk_send_counts(
    table: FastqPartTable,
    task_edges: np.ndarray,
    n_tasks: int,
    pass_lo: int = 0,
    pass_hi: int | None = None,
) -> np.ndarray:
    """Tuples chunk ``c`` will contribute to each destination task: (C, P).

    The per-chunk resolution of :func:`send_counts_matrix` — exact, from
    the chunk histograms alone.  This is what sizes the zero-copy
    destination blocks and fixes each chunk's write offsets before
    KmerGen runs a single instruction.
    """
    task_edges = np.asarray(task_edges, dtype=np.int64)
    if len(task_edges) != n_tasks + 1:
        raise ValueError(
            f"need {n_tasks + 1} task edges, got {len(task_edges)}"
        )
    if pass_hi is None:
        pass_hi = table.n_bins
    clipped = np.clip(task_edges, pass_lo, pass_hi)
    return _bin_range_counts(table.hist, clipped)


def recv_write_offsets(
    per_chunk: np.ndarray,
    assignment: np.ndarray,
    n_tasks: int,
    n_threads: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Each chunk's write offset into every destination task's block.

    The receive-side layout of the zero-copy exchange is fixed up front:
    destination ``d``'s block holds tuples grouped by *source task* in
    rank order, and within a source task by chunk id — exactly the order
    the payload all-to-all produces (sources concatenated in rank order,
    each source's chunks appended in chunk order).  Given the exact
    ``per_chunk`` counts from :func:`chunk_send_counts`, every chunk's
    slice of every destination block is known in advance, so KmerGen
    writers never contend and never handshake.

    Returns ``(offsets, sender_splits, totals)``:

    * ``offsets`` — ``(C, P)``; ``offsets[c, d]`` is where chunk ``c``'s
      tuples for destination ``d`` begin in ``d``'s block,
    * ``sender_splits`` — ``(P + 1, P)``; ``sender_splits[p, d]`` is
      where source task ``p``'s region begins in ``d``'s block (row
      ``P`` holds the block ends),
    * ``totals`` — ``(P,)``; destination block sizes in tuples.
    """
    per_chunk = np.asarray(per_chunk, dtype=np.int64)
    n_chunks = per_chunk.shape[0]
    tasks = np.asarray(assignment, dtype=np.int64) // n_threads
    if len(tasks) != n_chunks:
        raise ValueError(
            f"assignment covers {len(tasks)} chunks, counts cover {n_chunks}"
        )
    # chunks in receive order: source task ascending, chunk id ascending
    order = np.lexsort((np.arange(n_chunks), tasks))
    ordered = per_chunk[order]
    csum = np.zeros_like(ordered)
    np.cumsum(ordered[:-1], axis=0, out=csum[1:])
    offsets = np.zeros_like(per_chunk)
    offsets[order] = csum

    by_task = np.zeros((n_tasks, per_chunk.shape[1]), dtype=np.int64)
    np.add.at(by_task, tasks, per_chunk)
    sender_splits = np.zeros((n_tasks + 1, per_chunk.shape[1]), dtype=np.int64)
    np.cumsum(by_task, axis=0, out=sender_splits[1:])
    totals = sender_splits[-1].copy()
    return offsets, sender_splits, totals


def recv_counts_matrix(send_counts: np.ndarray) -> np.ndarray:
    """Tuples task ``p`` receives from task ``p'``: ``(P, P)``.

    ``recv[p, p'] = sum_t send[p', t, p]`` — computed on the receiving side
    from the same table, "in advance using the FASTQPart table" (section
    3.3), so no count exchange is needed at runtime.
    """
    return send_counts.sum(axis=1).T.copy()


def thread_write_offsets(send_counts: np.ndarray) -> List[np.ndarray]:
    """Per task, each thread's write offsets into the task's send buffer.

    The buffer is laid out destination-major: all tuples for task 0 first,
    then task 1, ...  Within a destination block, thread 0's tuples precede
    thread 1's.  For task ``p`` the result is an ``(n_threads, n_tasks)``
    offset array (plus the implied block ends), from "a prefix sum of this
    array" as in section 3.2.2.

    Returns a list of length ``n_tasks``; element ``p`` is an
    ``(n_threads + 1, n_tasks)`` int64 array where ``[t, d]`` is thread
    ``t``'s write offset for destination ``d`` and row ``n_threads`` holds
    the block-end offsets.
    """
    n_tasks, n_threads, _ = send_counts.shape
    result = []
    for p in range(n_tasks):
        counts = send_counts[p]  # (T, P): tuples thread t sends to task d
        block_totals = counts.sum(axis=0)  # per destination
        block_starts = np.zeros(n_tasks, dtype=np.int64)
        np.cumsum(block_totals[:-1], out=block_starts[1:])
        within = np.zeros((n_threads + 1, n_tasks), dtype=np.int64)
        np.cumsum(counts, axis=0, out=within[1:])
        result.append(within + block_starts[None, :])
    return result
