"""FASTQPart: the chunk table (paper section 3.1.2, Figure 2).

"We logically partition FASTQ files into C chunks which have approximately
the same file size.  In the FASTQPart table, each record contains
information for one chunk, which includes the location of the chunk within
the FASTQ file, global read ID of the first read in the chunk, and the size
of the chunk...  each record also stores a m-mer histogram...  with counts
of m-mer prefixes of canonical k-mers present in the corresponding FASTQ
chunk."

Paired-end handling: a *unit* is either a single FASTQ file or an (R1, R2)
mate pair.  Both mates of pair ``i`` carry the same global read id (section
3.2), and a chunk covers the same pair-index range in both files — the
paper notes the extra work of locating the matching read in the second
file; here that is the dual byte-range lookup stored per chunk.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.index.merhist import histogram_batch
from repro.seqio.fastq import read_fastq_region, record_boundaries
from repro.seqio.records import FastqRecord, ReadBatch
from repro.seqio.tables import read_table, write_table
from repro.util.validation import check_in_range, check_positive

_SCHEMA = "metaprep/fastqpart"


@dataclass(frozen=True)
class FastqUnit:
    """One input unit: a single-end file or a paired-end file couple."""

    r1: str
    r2: str | None = None

    @property
    def paired(self) -> bool:
        return self.r2 is not None

    @property
    def files(self) -> List[str]:
        return [self.r1] if self.r2 is None else [self.r1, self.r2]

    @staticmethod
    def wrap(spec) -> "FastqUnit":
        """Accept a FastqUnit, a path, or an (r1, r2) tuple."""
        if isinstance(spec, FastqUnit):
            return spec
        if isinstance(spec, (str, os.PathLike)):
            return FastqUnit(str(spec))
        if isinstance(spec, (tuple, list)) and len(spec) == 2:
            return FastqUnit(str(spec[0]), str(spec[1]))
        raise TypeError(f"cannot interpret FASTQ unit spec: {spec!r}")


@dataclass
class FastqPartTable:
    """The chunk table: parallel arrays, one entry per chunk.

    Layout mirrors paper Figure 2 plus the paired-end second-file location:

    * ``unit[c]``          — input unit index,
    * ``read_lo/read_hi``  — global read-id range ``[lo, hi)`` of the chunk,
    * ``offset1/size1``    — byte region in the unit's first file,
    * ``offset2/size2``    — byte region in the mate file (0/0 if single),
    * ``hist[c]``          — the chunk's m-mer prefix histogram (uint32).
    """

    k: int
    m: int
    units: List[FastqUnit]
    unit: np.ndarray
    read_lo: np.ndarray
    read_hi: np.ndarray
    offset1: np.ndarray
    size1: np.ndarray
    offset2: np.ndarray
    size2: np.ndarray
    hist: np.ndarray
    total_reads: int = field(default=0)

    def __post_init__(self) -> None:
        c = len(self.unit)
        for name in ("read_lo", "read_hi", "offset1", "size1", "offset2", "size2"):
            arr = getattr(self, name)
            if len(arr) != c:
                raise ValueError(f"{name} has {len(arr)} entries, expected {c}")
            setattr(self, name, np.ascontiguousarray(arr, dtype=np.int64))
        self.unit = np.ascontiguousarray(self.unit, dtype=np.int64)
        self.hist = np.ascontiguousarray(self.hist, dtype=np.uint32)
        if self.hist.shape != (c, 1 << (2 * self.m)):
            raise ValueError(
                f"hist shape {self.hist.shape} != ({c}, {1 << (2 * self.m)})"
            )

    @property
    def n_chunks(self) -> int:
        return len(self.unit)

    @property
    def n_bins(self) -> int:
        return 1 << (2 * self.m)

    @property
    def nbytes(self) -> int:
        """Approximate table size; the histogram matrix (4^(m+1) C bytes)
        dominates, as in the paper's memory analysis."""
        return int(self.hist.nbytes + 7 * 8 * self.n_chunks)

    def chunk_bytes(self, c: int) -> int:
        return int(self.size1[c] + self.size2[c])

    def chunk_reads(self, c: int) -> int:
        return int(self.read_hi[c] - self.read_lo[c])

    def global_histogram(self) -> np.ndarray:
        """Sum of per-chunk histograms == merHist counts (tested invariant)."""
        return self.hist.sum(axis=0, dtype=np.int64)

    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> int:
        meta = {
            "k": self.k,
            "m": self.m,
            "total_reads": self.total_reads,
            "units": [[u.r1, u.r2] for u in self.units],
        }
        arrays = {
            "unit": self.unit,
            "read_lo": self.read_lo,
            "read_hi": self.read_hi,
            "offset1": self.offset1,
            "size1": self.size1,
            "offset2": self.offset2,
            "size2": self.size2,
            "hist": self.hist,
        }
        return write_table(path, _SCHEMA, meta, arrays)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "FastqPartTable":
        meta, arrays = read_table(path, expect_schema=_SCHEMA)
        units = [FastqUnit(r1, r2) for r1, r2 in meta["units"]]
        return cls(
            k=int(meta["k"]),
            m=int(meta["m"]),
            units=units,
            total_reads=int(meta["total_reads"]),
            **arrays,
        )


def _chunk_read_ranges(n_reads: int, n_chunks: int) -> List[tuple]:
    """Split ``n_reads`` into ``n_chunks`` contiguous nearly-equal ranges."""
    base, extra = divmod(n_reads, n_chunks)
    ranges = []
    start = 0
    for c in range(n_chunks):
        size = base + (1 if c < extra else 0)
        ranges.append((start, start + size))
        start += size
    return ranges


def build_fastqpart(
    units: Sequence,
    k: int,
    m: int,
    n_chunks: int,
) -> FastqPartTable:
    """Build the chunk table by scanning the input files once.

    ``n_chunks`` is the total chunk count C, distributed over units
    proportionally to their read counts (at least one chunk per non-empty
    unit).  Chunk boundaries always fall on record boundaries, and for
    paired units on the *same pair index* in both files.
    """
    check_in_range("m", m, 1, min(k, 16))
    check_positive("n_chunks", n_chunks)
    units = [FastqUnit.wrap(u) for u in units]
    if not units:
        raise ValueError("need at least one FASTQ unit")

    # Pass 1: record boundaries per file.
    unit_bounds: List[List[np.ndarray]] = []
    unit_reads: List[int] = []
    for u in units:
        bounds = [np.asarray(record_boundaries(f), dtype=np.int64) for f in u.files]
        n_recs = [len(b) - 1 for b in bounds]
        if u.paired and n_recs[0] != n_recs[1]:
            raise ValueError(
                f"paired unit {u.r1}/{u.r2}: mate counts differ "
                f"({n_recs[0]} vs {n_recs[1]})"
            )
        unit_bounds.append(bounds)
        unit_reads.append(n_recs[0])

    total_reads = sum(unit_reads)
    if total_reads == 0:
        raise ValueError("input units contain no reads")

    # Distribute chunks over units (largest remainder, >=1 per non-empty unit)
    weights = np.asarray(unit_reads, dtype=np.float64)
    raw = weights / weights.sum() * n_chunks
    alloc = np.maximum(np.floor(raw).astype(int), (weights > 0).astype(int))
    while alloc.sum() < n_chunks:
        alloc[int(np.argmax(raw - alloc))] += 1
    while alloc.sum() > n_chunks:
        over = np.where(alloc > 1)[0]
        if len(over) == 0:
            break
        alloc[over[int(np.argmin((raw - alloc)[over]))]] -= 1
    # never allocate more chunks to a unit than it has reads
    for i, r in enumerate(unit_reads):
        if r > 0:
            alloc[i] = min(alloc[i], r)

    rows = {name: [] for name in (
        "unit", "read_lo", "read_hi", "offset1", "size1", "offset2", "size2"
    )}
    hists: List[np.ndarray] = []
    next_global_id = 0
    for ui, u in enumerate(units):
        n_u = unit_reads[ui]
        if n_u == 0:
            continue
        bounds = unit_bounds[ui]
        for lo, hi in _chunk_read_ranges(n_u, int(alloc[ui])):
            rows["unit"].append(ui)
            rows["read_lo"].append(next_global_id + lo)
            rows["read_hi"].append(next_global_id + hi)
            rows["offset1"].append(int(bounds[0][lo]))
            rows["size1"].append(int(bounds[0][hi] - bounds[0][lo]))
            if u.paired:
                rows["offset2"].append(int(bounds[1][lo]))
                rows["size2"].append(int(bounds[1][hi] - bounds[1][lo]))
            else:
                rows["offset2"].append(0)
                rows["size2"].append(0)
        next_global_id += n_u

    table = FastqPartTable(
        k=k,
        m=m,
        units=units,
        unit=np.asarray(rows["unit"]),
        read_lo=np.asarray(rows["read_lo"]),
        read_hi=np.asarray(rows["read_hi"]),
        offset1=np.asarray(rows["offset1"]),
        size1=np.asarray(rows["size1"]),
        offset2=np.asarray(rows["offset2"]),
        size2=np.asarray(rows["size2"]),
        hist=np.zeros((len(rows["unit"]), 1 << (2 * m)), dtype=np.uint32),
        total_reads=total_reads,
    )

    # Pass 2: per-chunk m-mer histograms (the "read once, histogram" scan).
    for c in range(table.n_chunks):
        batch = load_chunk_reads(table, c)
        table.hist[c] = histogram_batch(batch, k, m)
    return table


def load_chunk_reads(
    table: FastqPartTable, c: int, keep_metadata: bool = True
) -> ReadBatch:
    """Materialize chunk ``c`` as a :class:`ReadBatch`.

    For paired units the two mates of pair ``i`` are adjacent (R1 then R2)
    and share the global read id ``read_lo + i``.
    """
    check_in_range("chunk", c, 0, table.n_chunks - 1)
    u = table.units[int(table.unit[c])]
    recs1 = read_fastq_region(u.r1, int(table.offset1[c]), int(table.size1[c]))
    ids = list(range(int(table.read_lo[c]), int(table.read_hi[c])))
    if len(recs1) != len(ids):
        raise ValueError(
            f"chunk {c}: expected {len(ids)} records in {u.r1}, "
            f"parsed {len(recs1)}"
        )
    if not u.paired:
        return ReadBatch.from_records(recs1, ids, keep_metadata=keep_metadata)
    recs2 = read_fastq_region(u.r2, int(table.offset2[c]), int(table.size2[c]))
    if len(recs2) != len(recs1):
        raise ValueError(
            f"chunk {c}: mate record counts differ "
            f"({len(recs1)} vs {len(recs2)})"
        )
    inter: List[FastqRecord] = []
    inter_ids: List[int] = []
    for i, (a, b) in enumerate(zip(recs1, recs2)):
        inter.extend((a, b))
        inter_ids.extend((ids[i], ids[i]))
    return ReadBatch.from_records(inter, inter_ids, keep_metadata=keep_metadata)
