"""merHist: the m-mer prefix histogram of canonical k-mers (section 3.1.1).

"We store counts of all m-mer prefixes of canonical k-mers (m < k; we use
m = 10 in this work)...  So there are 4^m histogram bins and the counts are
stored as 32-bit integers.  The histogram is used to partition the range of
integers spanned by k-mer values for multipass and parallel execution."
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.kmers.engine import enumerate_canonical_kmers
from repro.seqio.records import ReadBatch
from repro.seqio.tables import read_table, write_table
from repro.util.validation import check_in_range

_SCHEMA = "metaprep/merhist"


@dataclass
class MerHist:
    """The global m-mer prefix histogram.

    ``counts[b]`` is the number of canonical k-mer occurrences (with
    multiplicity) whose first ``m`` bases pack to the integer ``b``.
    """

    k: int
    m: int
    counts: np.ndarray

    def __post_init__(self) -> None:
        check_in_range("m", self.m, 1, min(self.k, 16))
        self.counts = np.ascontiguousarray(self.counts, dtype=np.uint32)
        if len(self.counts) != self.n_bins:
            raise ValueError(
                f"expected {self.n_bins} bins for m={self.m}, "
                f"got {len(self.counts)}"
            )

    @property
    def n_bins(self) -> int:
        return 1 << (2 * self.m)

    @property
    def total_tuples(self) -> int:
        """Total canonical k-mer occurrences over the whole dataset."""
        return int(self.counts.sum(dtype=np.int64))

    @property
    def nbytes(self) -> int:
        """On-disk/in-memory size: 4^(m+1) bytes (4 bytes per bin)."""
        return 4 * self.n_bins

    def cumulative(self) -> np.ndarray:
        """Exclusive prefix sum with a trailing total: length ``n_bins+1``."""
        out = np.zeros(self.n_bins + 1, dtype=np.int64)
        np.cumsum(self.counts, out=out[1:])
        return out

    def count_in_bin_range(self, lo: int, hi: int) -> int:
        """Tuples whose prefix bin lies in ``[lo, hi)``."""
        check_in_range("lo", lo, 0, self.n_bins)
        check_in_range("hi", hi, lo, self.n_bins)
        return int(self.counts[lo:hi].sum(dtype=np.int64))

    # ------------------------------------------------------------------
    def save(self, path: str | os.PathLike) -> int:
        return write_table(
            path, _SCHEMA, {"k": self.k, "m": self.m}, {"counts": self.counts}
        )

    @classmethod
    def load(cls, path: str | os.PathLike) -> "MerHist":
        meta, arrays = read_table(path, expect_schema=_SCHEMA)
        return cls(k=int(meta["k"]), m=int(meta["m"]), counts=arrays["counts"])


def histogram_batch(batch: ReadBatch, k: int, m: int) -> np.ndarray:
    """m-mer prefix histogram of one read batch (uint32, 4^m bins)."""
    tuples = enumerate_canonical_kmers(batch, k)
    n_bins = 1 << (2 * m)
    if len(tuples) == 0:
        return np.zeros(n_bins, dtype=np.uint32)
    prefixes = tuples.kmers.mmer_prefix(m).astype(np.int64)
    return np.bincount(prefixes, minlength=n_bins).astype(np.uint32)


def build_merhist(batches: "list[ReadBatch]", k: int, m: int) -> MerHist:
    """Accumulate the global histogram over a sequence of read batches."""
    n_bins = 1 << (2 * m)
    counts = np.zeros(n_bins, dtype=np.int64)
    for batch in batches:
        counts += histogram_batch(batch, k, m)
    if counts.max(initial=0) > np.iinfo(np.uint32).max:
        raise OverflowError(
            "a merHist bin exceeds uint32; increase m to spread bins"
        )
    return MerHist(k=k, m=m, counts=counts.astype(np.uint32))
