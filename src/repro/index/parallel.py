"""Parallel IndexCreate (paper section 4.3).

The published IndexCreate is sequential — "not in the critical path" — but
the paper notes that "creating k-mer frequency histograms is similar to
the KmerGen preprocessing step and can be parallelized in the same
manner", and its Table 5 measures 5160 sequential seconds on IS.  This
module supplies that parallelization: chunk-boundary discovery happens
once, then per-chunk histogramming is decomposed over P x T slots exactly
like KmerGen, with per-slot work volumes recorded so the timing model can
project the speedup.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.index.create import IndexCreateResult
from repro.index.fastqpart import build_fastqpart, load_chunk_reads
from repro.index.merhist import MerHist, histogram_batch
from repro.index.offsets import chunk_assignment
from repro.util.validation import check_positive


@dataclass
class ParallelIndexStats:
    """Per-slot histogramming work (bases scanned), for projection."""

    n_tasks: int
    n_threads: int
    bases_scanned: np.ndarray = field(default=None)  # (P, T)
    boundary_seconds: float = 0.0
    histogram_seconds: float = 0.0

    def __post_init__(self) -> None:
        if self.bases_scanned is None:
            self.bases_scanned = np.zeros(
                (self.n_tasks, self.n_threads), dtype=np.int64
            )

    def imbalance(self) -> float:
        per_slot = self.bases_scanned.reshape(-1).astype(np.float64)
        mean = per_slot.mean()
        return float(per_slot.max() / mean) if mean > 0 else 1.0

    def projected_seconds(self, scan_rate_per_core: float) -> float:
        """Critical-path histogram time at ``scan_rate_per_core`` bases/s,
        plus the (sequential) boundary discovery."""
        worst = float(self.bases_scanned.max())
        return self.boundary_seconds + worst / scan_rate_per_core


def parallel_index_create(
    units: Sequence,
    k: int,
    m: int,
    n_chunks: int,
    n_tasks: int = 1,
    n_threads: int = 4,
) -> tuple[IndexCreateResult, ParallelIndexStats]:
    """IndexCreate with the histogram scan decomposed over P x T slots.

    Produces tables identical to :func:`repro.index.create.index_create`
    (tested), plus the per-slot accounting.
    """
    check_positive("n_tasks", n_tasks)
    check_positive("n_threads", n_threads)

    # Phase 1 (sequential): chunk table without histograms.  Reuse the
    # sequential builder, then blank and redo the histograms under the
    # parallel decomposition — byte-identical by construction, with
    # honest per-slot accounting.
    t0 = time.perf_counter()
    table = build_fastqpart(units, k=k, m=m, n_chunks=n_chunks)
    build_seconds = time.perf_counter() - t0

    stats = ParallelIndexStats(n_tasks=n_tasks, n_threads=n_threads)
    assignment = chunk_assignment(table.n_chunks, n_tasks, n_threads)

    t1 = time.perf_counter()
    hist = np.zeros_like(table.hist)
    for c in range(table.n_chunks):
        p, t = divmod(int(assignment[c]), n_threads)
        batch = load_chunk_reads(table, c, keep_metadata=False)
        hist[c] = histogram_batch(batch, k, m)
        stats.bases_scanned[p, t] += batch.n_bases
    stats.histogram_seconds = time.perf_counter() - t1
    # boundary discovery is the part that stays sequential
    stats.boundary_seconds = max(build_seconds - stats.histogram_seconds, 0.0)
    table.hist = hist

    merhist = MerHist(
        k=k, m=m, counts=table.global_histogram().astype(np.uint32)
    )
    result = IndexCreateResult(
        merhist=merhist,
        fastqpart=table,
        fastqpart_seconds=stats.boundary_seconds,
        merhist_seconds=stats.histogram_seconds,
    )
    return result, stats
