"""IndexCreate: the two index tables and the static load-balancing math.

Paper section 3.1: a sequential, once-per-dataset step builds

* **merHist** — counts of all m-mer prefixes of canonical k-mers (4^m bins,
  32-bit counts), used to split the k-mer range across passes and tasks;
* **FASTQPart** — a table of C roughly equal-sized logical FASTQ chunks,
  each with its byte location, first global read id, size, and its own
  m-mer histogram, used to precompute every buffer offset and message size
  in the parallel phase.

"These two tables let us statically determine, for a given task and thread
concurrency, the main memory required per thread, the fewest number of
passes for the dataset, the k-mer range to enumerate in each pass, the
offsets into the FASTQ files that the threads should read from, and the
thread offsets for in-memory buffers."
"""

from repro.index.merhist import MerHist, build_merhist
from repro.index.fastqpart import (
    FastqPartTable,
    FastqUnit,
    build_fastqpart,
    load_chunk_reads,
)
from repro.index.offsets import (
    chunk_assignment,
    send_counts_matrix,
    recv_counts_matrix,
    thread_write_offsets,
)
from repro.index.passplan import (
    PassSpec,
    PassPlan,
    balanced_boundaries,
    plan_passes,
    passes_for_memory_budget,
)
from repro.index.create import IndexCreateResult, index_create
from repro.index.parallel import ParallelIndexStats, parallel_index_create

__all__ = [
    "MerHist",
    "build_merhist",
    "FastqPartTable",
    "FastqUnit",
    "build_fastqpart",
    "load_chunk_reads",
    "chunk_assignment",
    "send_counts_matrix",
    "recv_counts_matrix",
    "thread_write_offsets",
    "PassSpec",
    "PassPlan",
    "balanced_boundaries",
    "plan_passes",
    "passes_for_memory_budget",
    "IndexCreateResult",
    "index_create",
    "ParallelIndexStats",
    "parallel_index_create",
]
