"""Component labeling, statistics, and the networkx reference oracle.

The oracle builds the read graph *explicitly* (what METAPREP avoids doing)
and is used by the test suite to certify that the implicit pipeline —
enumerate, sort, LocalCC, MergeCC, over any task/thread/pass decomposition —
produces exactly the same partition of reads.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

import networkx as nx
import numpy as np

from repro.cc.dsf import DisjointSetForest
from repro.kmers.engine import enumerate_canonical_kmers
from repro.kmers.filter import FrequencyFilter
from repro.seqio.records import ReadBatch


def compact_labels(parent: np.ndarray) -> np.ndarray:
    """Relabel a parent array into dense component ids ``0..n_comp-1``.

    Labels are assigned in increasing root order, so the labeling is a
    canonical form: two parent arrays describe the same partition iff their
    compact labelings are identical.
    """
    forest = DisjointSetForest.from_parent_array(parent)
    roots = forest.roots()
    _, labels = np.unique(roots, return_inverse=True)
    return labels.astype(np.int64)


def component_sizes(parent: np.ndarray) -> np.ndarray:
    """Sizes of all components, descending."""
    labels = compact_labels(parent)
    sizes = np.bincount(labels)
    return np.sort(sizes)[::-1].astype(np.int64)


@dataclass
class ComponentSummary:
    """Partition statistics reported by the pipeline (Table 7 inputs)."""

    n_reads: int
    n_components: int
    largest_component_size: int
    largest_component_fraction: float
    singleton_components: int
    size_histogram: Dict[int, int]

    @property
    def largest_component_percent(self) -> float:
        """Percentage form, matching Table 7's 'LC size (% Reads)'."""
        return 100.0 * self.largest_component_fraction


def summarize_components(parent: np.ndarray) -> ComponentSummary:
    """Partition statistics of a parent array (sizes, LC share, histogram)."""
    sizes = component_sizes(parent)
    n = int(len(parent))
    if len(sizes) == 0:
        return ComponentSummary(0, 0, 0, 0.0, 0, {})
    hist: Dict[int, int] = {}
    for s in sizes.tolist():
        hist[s] = hist.get(s, 0) + 1
    largest = int(sizes[0])
    return ComponentSummary(
        n_reads=n,
        n_components=len(sizes),
        largest_component_size=largest,
        largest_component_fraction=largest / n if n else 0.0,
        singleton_components=int((sizes == 1).sum()),
        size_histogram=hist,
    )


def build_read_graph(
    batch: ReadBatch,
    k: int,
    kfilter: FrequencyFilter | None = None,
) -> nx.Graph:
    """Explicit read graph: vertices are global read ids; an edge joins two
    reads sharing a canonical k-mer whose total frequency passes ``kfilter``.

    Quadratic-ish and memory hungry by design — reference only.
    """
    tuples = enumerate_canonical_kmers(batch, k)
    graph = nx.Graph()
    graph.add_nodes_from(np.unique(batch.read_ids).tolist())
    if len(tuples) == 0:
        return graph
    order = tuples.kmers.argsort()
    s = tuples.take(order)
    bounds = s.kmers.run_boundaries()
    for i in range(len(bounds) - 1):
        lo, hi = int(bounds[i]), int(bounds[i + 1])
        freq = hi - lo
        if kfilter is not None and not kfilter.accepts(freq):
            continue
        members = np.unique(s.read_ids[lo:hi])
        first = int(members[0])
        for other in members[1:].tolist():
            graph.add_edge(first, int(other))
    return graph


def reference_components_networkx(
    batch: ReadBatch,
    k: int,
    kfilter: FrequencyFilter | None = None,
) -> List[frozenset]:
    """Connected components of the explicit read graph, as frozensets of
    global read ids, sorted descending by size then by min id."""
    graph = build_read_graph(batch, k, kfilter)
    comps = [frozenset(int(v) for v in comp) for comp in nx.connected_components(graph)]
    return sorted(comps, key=lambda c: (-len(c), min(c)))


def partition_as_frozensets(parent: np.ndarray, active: np.ndarray) -> List[frozenset]:
    """Partition induced by a parent array, restricted to ``active`` vertex
    ids, in the same canonical order as
    :func:`reference_components_networkx`."""
    forest = DisjointSetForest.from_parent_array(parent)
    active = np.unique(np.asarray(active, dtype=np.int64))
    roots = forest.find_many(active)
    groups: Dict[int, List[int]] = {}
    for vid, root in zip(active.tolist(), roots.tolist()):
        groups.setdefault(root, []).append(vid)
    comps = [frozenset(v) for v in groups.values()]
    return sorted(comps, key=lambda c: (-len(c), min(c)))
