"""Component-splitting strategies (paper section 5, future work).

The paper observes that read-graph partitioning produces one giant
component and proposes exploring "alternate component-splitting
strategies" beyond its two simple levers (larger k, frequency filters).
This module implements that exploration:

* :func:`sweep_filters` — scan a grid of frequency filters and report the
  largest-component curve (automating the paper's Table 7 search);
* :func:`split_to_target` — binary-search the *upper* cutoff of the
  frequency filter until the largest component fits a target fraction,
  the "choose filter settings carefully" loop the paper leaves manual;
* :func:`hub_kmer_split` — remove the highest-frequency k-mers one
  frequency tier at a time (a targeted version of the same idea: repeats
  and conserved segments are the hubs that glue species together).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.cc.components import ComponentSummary, summarize_components
from repro.cc.dsf import DisjointSetForest
from repro.cc.localcc import local_connected_components
from repro.kmers.engine import KmerTuples, enumerate_canonical_kmers
from repro.kmers.filter import FrequencyFilter
from repro.seqio.records import ReadBatch
from repro.sort.radix import radix_sort_tuples
from repro.util.validation import check_in_range


@dataclass
class SplitOutcome:
    """One evaluated splitting configuration."""

    kfilter: FrequencyFilter
    summary: ComponentSummary

    @property
    def lc_fraction(self) -> float:
        return self.summary.largest_component_fraction


def _partition_with_filter(
    sorted_tuples: KmerTuples, n_reads: int, kfilter: FrequencyFilter
) -> ComponentSummary:
    forest = DisjointSetForest(n_reads)
    local_connected_components(sorted_tuples, forest, kfilter)
    return summarize_components(forest.parent)


def _prepare(batch: ReadBatch, k: int) -> tuple:
    tuples = enumerate_canonical_kmers(batch, k)
    sorted_tuples, _ = radix_sort_tuples(tuples)
    n_reads = int(batch.read_ids.max()) + 1 if batch.n_reads else 0
    return sorted_tuples, n_reads


def sweep_filters(
    batch: ReadBatch,
    k: int,
    max_freqs: Sequence[int],
    min_freq: int = 1,
) -> List[SplitOutcome]:
    """Evaluate ``KF < f`` (or ``min_freq <= KF < f``) for each cutoff."""
    sorted_tuples, n_reads = _prepare(batch, k)
    out = []
    for f in max_freqs:
        kfilter = FrequencyFilter(min_freq, f)
        out.append(
            SplitOutcome(kfilter, _partition_with_filter(sorted_tuples, n_reads, kfilter))
        )
    return out


def split_to_target(
    batch: ReadBatch,
    k: int,
    target_fraction: float,
    min_freq: int = 1,
    max_cutoff: int = 1 << 20,
) -> SplitOutcome:
    """Smallest-filtering cutoff whose largest component fits the target.

    Binary search over the upper frequency cutoff: larger cutoffs filter
    *less* (keep more edges), so the LC fraction is monotone non-decreasing
    in the cutoff; we return the largest cutoff still meeting the target
    (i.e. the gentlest filter that achieves the desired balance).  If even
    the most aggressive filter (cutoff = min_freq + 1) cannot meet the
    target, that outcome is returned so callers can inspect the residual.
    """
    check_in_range("target_fraction", target_fraction, 0.0, 1.0)
    sorted_tuples, n_reads = _prepare(batch, k)

    def lc_at(cutoff: int) -> SplitOutcome:
        kfilter = FrequencyFilter(min_freq, cutoff)
        return SplitOutcome(
            kfilter, _partition_with_filter(sorted_tuples, n_reads, kfilter)
        )

    lo, hi = min_freq + 1, max_cutoff
    best = lc_at(lo)
    if best.lc_fraction > target_fraction:
        return best  # even maximal filtering cannot hit the target
    while lo < hi:
        mid = (lo + hi + 1) // 2
        outcome = lc_at(mid)
        if outcome.lc_fraction <= target_fraction:
            best = outcome
            lo = mid
        else:
            hi = mid - 1
    return best


def hub_kmer_split(
    batch: ReadBatch,
    k: int,
    target_fraction: float,
    tiers: int = 16,
) -> SplitOutcome:
    """Remove the hottest k-mers tier by tier until the target is met.

    Ranks distinct k-mers by frequency and lowers the cutoff through
    ``tiers`` quantiles of the frequency distribution — a data-driven
    version of picking "30" by hand.  Returns the first configuration
    meeting the target, or the most aggressive tier evaluated.
    """
    check_in_range("tiers", tiers, 1, 10_000)
    sorted_tuples, n_reads = _prepare(batch, k)
    bounds = sorted_tuples.kmers.run_boundaries()
    freqs = np.diff(bounds)
    if len(freqs) == 0:
        return SplitOutcome(
            FrequencyFilter(), _partition_with_filter(sorted_tuples, n_reads, FrequencyFilter())
        )
    quantiles = np.unique(
        np.quantile(freqs, np.linspace(1.0, 0.0, tiers + 1)[1:-1]).astype(int)
    )[::-1]
    outcome = None
    for q in quantiles:
        cutoff = max(int(q), 2)
        kfilter = FrequencyFilter(1, cutoff)
        outcome = SplitOutcome(
            kfilter, _partition_with_filter(sorted_tuples, n_reads, kfilter)
        )
        if outcome.lc_fraction <= target_fraction:
            return outcome
    if outcome is None:
        kfilter = FrequencyFilter(1, 2)
        outcome = SplitOutcome(
            kfilter, _partition_with_filter(sorted_tuples, n_reads, kfilter)
        )
    return outcome
