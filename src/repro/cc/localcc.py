"""LocalCC: connected components from sorted tuple runs (paper section 3.5).

After LocalSort, tuples sharing a canonical k-mer are adjacent.  Each run of
``f`` tuples contributes ``f - 1`` star edges (first read of the run joined
to every other), optionally gated by the k-mer frequency filter (section
4.4).  Edges are folded into the task-local disjoint-set forest — the read
graph itself is never constructed, which is the memory-efficiency point of
the union-find design.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro import telemetry
from repro.cc.dsf import DisjointSetForest
from repro.kmers.engine import KmerTuples
from repro.kmers.filter import FrequencyFilter
from repro.sort.validate import is_sorted_kmers


@dataclass
class LocalCCStats:
    """Work accounting for one LocalCC invocation."""

    n_tuples: int = 0
    n_runs: int = 0
    n_runs_filtered: int = 0
    n_edges: int = 0
    n_unions: int = 0
    n_find_steps: int = 0
    n_iterations: int = 0

    def merge(self, other: "LocalCCStats") -> "LocalCCStats":
        self.n_tuples += other.n_tuples
        self.n_runs += other.n_runs
        self.n_runs_filtered += other.n_runs_filtered
        self.n_edges += other.n_edges
        self.n_unions += other.n_unions
        self.n_find_steps += other.n_find_steps
        self.n_iterations = max(self.n_iterations, other.n_iterations)
        return self


def edges_from_sorted_runs(
    tuples: KmerTuples,
    kfilter: FrequencyFilter | None = None,
) -> Tuple[np.ndarray, np.ndarray, LocalCCStats]:
    """Star edges of the implicit read graph from *sorted* tuples.

    Returns ``(us, vs, stats)`` with self-loops removed.  ``stats`` has the
    run/filter accounting filled in (union counts are added later by
    :func:`local_connected_components`).
    """
    stats = LocalCCStats(n_tuples=len(tuples))
    if len(tuples) == 0:
        return (np.empty(0, np.int64), np.empty(0, np.int64), stats)
    if not is_sorted_kmers(tuples.kmers):
        raise ValueError("edges_from_sorted_runs requires k-mer-sorted tuples")

    bounds = tuples.kmers.run_boundaries()
    counts = np.diff(bounds)
    stats.n_runs = len(counts)

    keep = counts > 1  # singleton runs yield no edges
    if kfilter is not None and not kfilter.is_identity:
        accepted = kfilter.accept_counts(counts)
        stats.n_runs_filtered = int((~accepted & keep).sum())
        keep &= accepted
    starts = bounds[:-1][keep]
    lens = counts[keep]
    if len(starts) == 0:
        return (np.empty(0, np.int64), np.empty(0, np.int64), stats)

    ids = tuples.read_ids.astype(np.int64)
    firsts = ids[starts]
    us = np.repeat(firsts, lens - 1)
    # every non-first position of each kept run, in order
    member_mask = np.zeros(len(ids) + 1, dtype=np.int64)
    np.add.at(member_mask, starts, 1)
    np.add.at(member_mask, starts + lens, -1)
    in_run = np.cumsum(member_mask[:-1]) > 0
    in_run[starts] = False
    vs = ids[in_run]
    if len(us) != len(vs):
        raise AssertionError(
            f"edge construction mismatch: {len(us)} u's vs {len(vs)} v's"
        )
    nontrivial = us != vs
    us, vs = us[nontrivial], vs[nontrivial]
    stats.n_edges = len(us)
    return us, vs, stats


def local_connected_components(
    tuples: KmerTuples,
    forest: DisjointSetForest,
    kfilter: FrequencyFilter | None = None,
) -> LocalCCStats:
    """Fold one sorted tuple partition into ``forest`` (Algorithm 1)."""
    us, vs, stats = edges_from_sorted_runs(tuples, kfilter)
    if len(us):
        unions, find_steps, iters = forest.process_edges(us, vs)
        stats.n_unions = unions
        stats.n_find_steps = find_steps
        stats.n_iterations = iters
    return stats


def fold_block_partitions(
    block,
    counts: np.ndarray,
    forest: DisjointSetForest,
    kfilter: FrequencyFilter | None = None,
) -> Tuple[LocalCCStats, np.ndarray]:
    """Fold the sorted partitions of a
    :class:`~repro.runtime.buffers.TupleBlock` into ``forest``.

    ``counts`` are the per-thread partition lengths from the in-place
    range partition; partition ``t`` is consumed as a zero-copy view
    ``block.view(starts[t], starts[t+1])`` in thread-rank order — the
    deterministic union sequence the engines' bit-identity rests on.
    Returns the merged :class:`LocalCCStats` and the per-thread edge
    counts.
    """
    stats = LocalCCStats()
    edges_by_thread = np.zeros(len(counts), dtype=np.int64)
    retries = 0
    start = 0
    for t, count in enumerate(counts):
        end = start + int(count)
        part_stats = local_connected_components(
            block.view(start, end), forest, kfilter
        )
        stats.merge(part_stats)
        edges_by_thread[t] = part_stats.n_edges
        retries += max(0, part_stats.n_iterations - 1)
        start = end
    if telemetry.enabled():
        telemetry.add_counter("cc.unions", stats.n_unions)
        telemetry.add_counter("cc.find_steps", stats.n_find_steps)
        telemetry.add_counter("cc.retries", retries)
    return stats, edges_by_thread


def map_ids_to_components(
    ids: np.ndarray, forest: DisjointSetForest
) -> np.ndarray:
    """LocalCC-Opt (section 3.5.1): replace read ids by their current
    component root before re-enumeration.

    "Since the number of components is much smaller than the number of
    reads, the random accesses to the p array are limited to a lower number
    of locations" — this mapping is what realizes that locality gain on
    later passes; correctness is unaffected because ``root(read)`` and the
    read itself are by construction in the same component.
    """
    roots = forest.find_many(np.asarray(ids, dtype=np.int64))
    return roots.astype(np.uint32)
