"""Connected-components machinery (LocalCC + MergeCC, paper sections 3.5-3.6).

The read graph is never materialized: sorted (k-mer, read) tuple runs are
turned into star edges on the fly and folded into a disjoint-set forest with
path splitting and union-by-index (Algorithm 1), then per-task forests are
merged in ``ceil(log2 P)`` tree rounds (Cybenko-style, Figure 4).
"""

from repro.cc.dsf import DisjointSetForest
from repro.cc.localcc import (
    LocalCCStats,
    edges_from_sorted_runs,
    local_connected_components,
    map_ids_to_components,
)
from repro.cc.mergecc import MergeCCStats, merge_component_arrays, tree_merge_schedule
from repro.cc.components import (
    ComponentSummary,
    compact_labels,
    component_sizes,
    summarize_components,
    reference_components_networkx,
)
from repro.cc.contraction import (
    ContractedMergeStats,
    merge_component_arrays_contracted,
    nontrivial_pairs,
)
from repro.cc.splitting import (
    SplitOutcome,
    hub_kmer_split,
    split_to_target,
    sweep_filters,
)
from repro.cc.incremental import IncrementalPartitioner, IncrementalStats

__all__ = [
    "DisjointSetForest",
    "LocalCCStats",
    "edges_from_sorted_runs",
    "local_connected_components",
    "map_ids_to_components",
    "MergeCCStats",
    "merge_component_arrays",
    "tree_merge_schedule",
    "ComponentSummary",
    "compact_labels",
    "component_sizes",
    "summarize_components",
    "reference_components_networkx",
    "ContractedMergeStats",
    "merge_component_arrays_contracted",
    "nontrivial_pairs",
    "SplitOutcome",
    "hub_kmer_split",
    "split_to_target",
    "sweep_filters",
    "IncrementalPartitioner",
    "IncrementalStats",
]
