"""Contracted MergeCC (paper section 5: "This step could be improved by
adopting the component graph contraction methods described in [16]"
— Iverson, Kamath, Karypis).

The baseline MergeCC ships each sender's full component array: ``4R``
bytes per message regardless of content.  But a task's local forest is
mostly *singletons* — it only unioned reads that co-occurred in its own
tuple share — so the informative part is the set of non-trivial
``(vertex, parent)`` pairs.  The contracted merge transmits exactly those
pairs (8 bytes each).  The same ceil(log2 P) tree applies; receivers fold
the pairs as edges, as before.

Wire volume: ``8 * (R - n_singletons)`` per message instead of ``4R`` —
a win whenever fewer than half the vertices are non-trivial, which is the
common case for the early rounds and for large P (each task sees ~1/P of
the tuples).  Later rounds transmit the *accumulated* non-trivial set, so
the advantage tapers exactly as contraction theory predicts; the ablation
benchmark measures the crossover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.cc.dsf import DisjointSetForest
from repro.cc.mergecc import tree_merge_schedule


@dataclass
class ContractedMergeStats:
    """Byte accounting, comparable to MergeCCStats."""

    n_tasks: int = 1
    n_rounds: int = 0
    n_unions: int = 0
    bytes_communicated: int = 0
    baseline_bytes: int = 0  # what full-array MergeCC would have sent
    pairs_per_round: List[int] = field(default_factory=list)

    @property
    def compression_ratio(self) -> float:
        """Contracted bytes / baseline bytes (< 1 is a win)."""
        if self.baseline_bytes == 0:
            return 1.0
        return self.bytes_communicated / self.baseline_bytes


def nontrivial_pairs(parent: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The contracted representation: (vertex, parent) where parent != vertex."""
    parent = np.asarray(parent, dtype=np.int64)
    idx = np.flatnonzero(parent != np.arange(len(parent)))
    return idx, parent[idx]


def merge_component_arrays_contracted(
    parents: Sequence[np.ndarray],
) -> Tuple[np.ndarray, ContractedMergeStats]:
    """Tree merge transmitting only non-trivial pairs.

    Produces the identical partition to
    :func:`repro.cc.mergecc.merge_component_arrays` (tested), with byte
    accounting for both schemes.
    """
    if not parents:
        raise ValueError("need at least one component array")
    n = len(parents[0])
    for i, p in enumerate(parents):
        if len(p) != n:
            raise ValueError(
                f"component array {i} has length {len(p)}, expected {n}"
            )

    stats = ContractedMergeStats(n_tasks=len(parents))
    forests = [DisjointSetForest.from_parent_array(p) for p in parents]
    schedule = tree_merge_schedule(len(parents))
    stats.n_rounds = len(schedule)

    for pairs in schedule:
        round_pairs = 0
        for sender, receiver in pairs:
            us, vs = nontrivial_pairs(forests[sender].parent)
            round_pairs += len(us)
            stats.bytes_communicated += 8 * len(us)
            stats.baseline_bytes += 4 * n
            if len(us):
                unions, _, _ = forests[receiver].process_edges(us, vs)
                stats.n_unions += unions
        stats.pairs_per_round.append(round_pairs)

    return forests[0].parent.copy(), stats


def expected_contracted_bytes(
    parents: Sequence[np.ndarray],
) -> Tuple[int, int]:
    """(contracted, baseline) wire bytes for the *first* round only —
    a cheap predictor for whether contraction pays off, usable before
    committing to either merge implementation."""
    schedule = tree_merge_schedule(len(parents))
    if not schedule:
        return 0, 0
    contracted = 0
    baseline = 0
    n = len(parents[0])
    for sender, _ in schedule[0]:
        idx, _vals = nontrivial_pairs(np.asarray(parents[sender]))
        contracted += 8 * len(idx)
        baseline += 4 * n
    return contracted, baseline
