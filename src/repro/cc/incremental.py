"""Incremental read-graph partitioning.

Paper section 3.5, on choosing union-find: "The main advantage of using
Union-Find is that the graph need not be explicitly constructed, and
components can be *dynamically updated*."  The batch pipeline exploits
this across passes; this module exposes it as a first-class streaming
interface: reads arrive in batches (a sequencer finishing flowcells, a
download in progress) and the partition is queryable at any time.

State: a disjoint-set forest over read ids (grown on demand) plus one
*representative read* per canonical k-mer seen so far — enough to union
every future occurrence, in O(1) memory per distinct k-mer instead of per
occurrence.  The final partition provably equals the batch pipeline's
(tested, including arrival-order invariance).

Limitations vs the batch pipeline: k <= 31 (dict keys are one limb) and
no frequency filtering (a k-mer's final frequency is unknowable
mid-stream — the fundamental reason the paper's filters belong in the
batch setting).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cc.components import ComponentSummary, summarize_components
from repro.cc.dsf import DisjointSetForest
from repro.kmers.codec import MAX_K_ONE_LIMB
from repro.kmers.engine import enumerate_canonical_kmers
from repro.seqio.records import ReadBatch
from repro.util.validation import check_in_range


@dataclass
class IncrementalStats:
    n_batches: int = 0
    n_reads_seen: int = 0
    n_tuples_processed: int = 0
    n_distinct_kmers: int = 0
    n_unions: int = 0


class IncrementalPartitioner:
    """Streaming union-find over an implicit read graph."""

    def __init__(self, k: int) -> None:
        check_in_range("k", k, 2, MAX_K_ONE_LIMB)
        self.k = k
        self._kmer_rep: dict = {}
        self._forest = DisjointSetForest(0)
        self.stats = IncrementalStats()

    # ------------------------------------------------------------------
    @property
    def n_reads(self) -> int:
        return self._forest.n_vertices

    def _ensure_capacity(self, max_read_id: int) -> None:
        n = self._forest.n_vertices
        if max_read_id < n:
            return
        grown = np.arange(max_read_id + 1, dtype=np.int64)
        grown[:n] = self._forest.parent
        self._forest.parent = grown

    # ------------------------------------------------------------------
    def add_batch(self, batch: ReadBatch) -> IncrementalStats:
        """Fold a batch of reads into the partition.

        Read ids are global: batches may interleave, repeat, or extend the
        id space; both mates of a pair share an id as usual.
        """
        self.stats.n_batches += 1
        if batch.n_reads == 0:
            return self.stats
        self._ensure_capacity(int(batch.read_ids.max()))
        self.stats.n_reads_seen = self.n_reads

        tuples = enumerate_canonical_kmers(batch, self.k)
        self.stats.n_tuples_processed += len(tuples)
        if len(tuples) == 0:
            return self.stats

        rep = self._kmer_rep
        us, vs = [], []
        for kmer, rid in zip(tuples.kmers.lo.tolist(), tuples.read_ids.tolist()):
            seen = rep.get(kmer)
            if seen is None:
                rep[kmer] = rid
            elif seen != rid:
                us.append(seen)
                vs.append(rid)
        if us:
            unions, _, _ = self._forest.process_edges(
                np.asarray(us), np.asarray(vs)
            )
            self.stats.n_unions += unions
        self.stats.n_distinct_kmers = len(rep)
        return self.stats

    # ------------------------------------------------------------------
    def parent_array(self) -> np.ndarray:
        return self._forest.parent.copy()

    def summary(self) -> ComponentSummary:
        return summarize_components(self._forest.parent)

    def connected(self, read_a: int, read_b: int) -> bool:
        n = self._forest.n_vertices
        if read_a >= n or read_b >= n:
            return False
        return self._forest.connected(read_a, read_b)

    def memory_estimate_bytes(self) -> int:
        """Rough resident footprint: the forest + the k-mer map."""
        # dict entry ~ 100 bytes in CPython; parent 8 bytes/read
        return 8 * self.n_reads + 100 * len(self._kmer_rep)
