"""Disjoint-set forest with the paper's concurrency-safe policy choices.

Paper section 3.5: *Find* uses path splitting (Tarjan & van Leeuwen's
one-pass variant); *Union* uses union-by-index — "the parent pointer of the
root element with lower index is set to the root element with higher index"
— because, unlike union-by-rank/size, it cannot introduce cycles when edges
are processed concurrently.  Threads run without synchronization; edges
whose union might have raced are buffered and re-verified in a next
iteration (Algorithm 1).  In this single-process reproduction races cannot
occur, but the deferred-verification loop is implemented faithfully (and
exercised by an adversarial interleaving in the tests) so the algorithm is
the paper's, not a simplification.
"""

from __future__ import annotations

from typing import Iterable, Tuple

import numpy as np


class DisjointSetForest:
    """Array-backed union-find over vertices ``0..n-1``."""

    __slots__ = ("parent",)

    def __init__(self, n_vertices: int) -> None:
        if n_vertices < 0:
            raise ValueError(f"n_vertices must be >= 0, got {n_vertices}")
        # "Initially, the parent of each read (vertex) is set to point to
        # itself."
        self.parent = np.arange(n_vertices, dtype=np.int64)

    @property
    def n_vertices(self) -> int:
        return len(self.parent)

    @classmethod
    def wrap(cls, parent: np.ndarray) -> "DisjointSetForest":
        """Adopt ``parent`` *without copying or validating*.

        Mutations through the forest write straight into ``parent``.  This
        is the executor-worker constructor: the pipeline ships a task's
        parent array to a worker (pickled for the process engine, by
        reference for the serial engine) and wraps it on arrival, so both
        engines run LocalCC against byte-identical forest state.  Use
        :meth:`from_parent_array` for untrusted input.
        """
        parent = np.ascontiguousarray(parent, dtype=np.int64)
        forest = cls.__new__(cls)
        forest.parent = parent
        return forest

    @classmethod
    def from_parent_array(cls, parent: np.ndarray) -> "DisjointSetForest":
        """Adopt an existing component array (e.g. one received in MergeCC).

        Validates that the array is a forest: every chain terminates.
        """
        parent = np.ascontiguousarray(parent, dtype=np.int64)
        n = len(parent)
        if n and (parent.min() < 0 or parent.max() >= n):
            raise ValueError("parent entries out of range")
        forest = cls.__new__(cls)
        forest.parent = parent.copy()
        # cheap acyclicity check: pointer-jump n times must reach fixpoint
        roots = forest.find_many(np.arange(n, dtype=np.int64))
        if n and not np.array_equal(parent[roots], roots):
            raise ValueError("parent array contains a cycle")
        return forest

    # ------------------------------------------------------------------
    # scalar operations (the Algorithm 1 hot loop)
    # ------------------------------------------------------------------
    def find(self, x: int) -> int:
        """Root of ``x`` with path splitting: every visited node is
        re-pointed at its grandparent, and the walk continues through the
        *old* parent so every node on the path is updated (Tarjan & van
        Leeuwen's one-pass splitting — distinct from path halving, which
        skips every other node)."""
        p = self.parent
        while True:
            px = p[x]
            if px == x:
                return x
            ppx = p[px]
            if ppx == px:
                return int(px)
            p[x] = ppx  # path splitting
            x = int(px)

    def union(self, root_u: int, root_v: int) -> int:
        """Union-by-index of two *roots*; returns the surviving root.

        The lower-index root is attached beneath the higher-index one.
        """
        if root_u == root_v:
            return root_u
        if root_u < root_v:
            self.parent[root_u] = root_v
            return root_v
        self.parent[root_v] = root_u
        return root_u

    def connected(self, u: int, v: int) -> bool:
        return self.find(u) == self.find(v)

    # ------------------------------------------------------------------
    # vectorized helpers
    # ------------------------------------------------------------------
    def find_many(self, xs: np.ndarray, compress: bool = False) -> np.ndarray:
        """Roots of many vertices by repeated pointer jumping (no mutation
        unless ``compress``).

        Used by LocalCC-Opt (map read ids to component ids before
        re-enumeration) and by final relabeling; jump count is
        O(log depth) gathers over the whole array.
        """
        xs = np.asarray(xs, dtype=np.int64)
        # True pointer doubling on the whole mapping: composing the parent
        # function with itself halves every chain's depth per round, so a
        # forest of n nodes converges within log2(n) + 1 rounds; exceeding
        # that bound means the parent array contains a cycle.
        p = self.parent.copy()
        max_rounds = max(self.n_vertices, 2).bit_length() + 2
        for _ in range(max_rounds):
            nxt = p[p]
            if np.array_equal(nxt, p):
                break
            p = nxt
        else:
            raise ValueError("parent array contains a cycle")
        roots = p[xs]
        if compress:
            self.parent[xs] = roots
        return roots

    def roots(self) -> np.ndarray:
        """Root of every vertex (vectorized full-array find)."""
        return self.find_many(np.arange(self.n_vertices, dtype=np.int64))

    def n_components(self) -> int:
        if self.n_vertices == 0:
            return 0
        return int(len(np.unique(self.roots())))

    # ------------------------------------------------------------------
    # Algorithm 1: edge processing with deferred verification
    # ------------------------------------------------------------------
    def process_edges(
        self, us: np.ndarray, vs: np.ndarray
    ) -> Tuple[int, int, int]:
        """Fold an edge list into the forest per Algorithm 1.

        Returns ``(n_unions, n_find_steps, n_iterations)``.  Edges that
        trigger a Union are buffered into ``E_out`` and re-verified in the
        next iteration until no edge produces further unions — the paper's
        guard against concurrent lost updates.  The paper observes "the
        overall time is dominated by the time for the first iteration";
        the returned iteration count lets tests confirm the loop converges
        in two iterations when uncontended.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape:
            raise ValueError("edge endpoint arrays differ in length")
        parent = self.parent
        n_unions = 0
        find_steps = 0
        iterations = 0

        e_in_u, e_in_v = us, vs
        while len(e_in_u):
            iterations += 1
            out_u = []
            out_v = []
            for u, v in zip(e_in_u.tolist(), e_in_v.tolist()):
                # inline find with path splitting (hot loop)
                x = u
                while True:
                    px = parent[x]
                    if px == x:
                        break
                    ppx = parent[px]
                    if ppx == px:
                        x = px
                        break
                    parent[x] = ppx
                    x = px
                    find_steps += 1
                root_u = x
                x = v
                while True:
                    px = parent[x]
                    if px == x:
                        break
                    ppx = parent[px]
                    if ppx == px:
                        x = px
                        break
                    parent[x] = ppx
                    x = px
                    find_steps += 1
                root_v = x
                if root_u != root_v:
                    if root_u < root_v:
                        parent[root_u] = root_v
                    else:
                        parent[root_v] = root_u
                    n_unions += 1
                    out_u.append(u)
                    out_v.append(v)
            if not out_u:
                break
            # E_in <- E_out: re-verify edges whose union may have raced.
            e_in_u = np.asarray(out_u, dtype=np.int64)
            e_in_v = np.asarray(out_v, dtype=np.int64)
            # On re-verification the roots now coincide, so the loop
            # terminates after one extra quiet iteration (or immediately
            # starts another round if a racing thread undid the work --
            # impossible here, guaranteed converging regardless).
            nxt_u, nxt_v = [], []
            for u, v in zip(e_in_u.tolist(), e_in_v.tolist()):
                if self.find(u) != self.find(v):
                    nxt_u.append(u)
                    nxt_v.append(v)
            if not nxt_u:
                break
            e_in_u = np.asarray(nxt_u, dtype=np.int64)
            e_in_v = np.asarray(nxt_v, dtype=np.int64)
        return n_unions, find_steps, iterations

    def copy(self) -> "DisjointSetForest":
        clone = DisjointSetForest.__new__(DisjointSetForest)
        clone.parent = self.parent.copy()
        return clone

    def absorb_parent_array(self, other_parent: np.ndarray) -> int:
        """Treat another task's component array as edges (MergeCC kernel).

        Paper section 3.6: "the i-th element is treated as an edge from
        vertex i to vertex p'(i)".  Returns the number of unions performed.
        """
        other_parent = np.asarray(other_parent, dtype=np.int64)
        if len(other_parent) != self.n_vertices:
            raise ValueError(
                f"component array length {len(other_parent)} != "
                f"{self.n_vertices} vertices"
            )
        nontrivial = np.flatnonzero(other_parent != np.arange(len(other_parent)))
        if len(nontrivial) == 0:
            return 0
        unions, _, _ = self.process_edges(nontrivial, other_parent[nontrivial])
        return unions

    @staticmethod
    def build_from_edges(
        n_vertices: int, edges: Iterable[Tuple[int, int]]
    ) -> "DisjointSetForest":
        """Convenience constructor for tests."""
        forest = DisjointSetForest(n_vertices)
        es = list(edges)
        if es:
            us, vs = zip(*es)
            forest.process_edges(np.asarray(us), np.asarray(vs))
        return forest
