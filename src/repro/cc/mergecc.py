"""MergeCC: tree merge of per-task component arrays (paper section 3.6).

"We combine this information in ceil(log2 P) iterations...  In each
iteration, tasks with a higher MPI rank send their component array (p) to
the corresponding lower rank task.  In successive iterations, the number of
tasks participating in the communication reduces by a factor of 2...  The
MPI task with rank 0 has the final component information."  (Figure 4.)

This module computes the schedule and performs the merges; actual byte
accounting for the simulated interconnect lives in
:mod:`repro.runtime.comm`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.cc.dsf import DisjointSetForest


def tree_merge_schedule(n_tasks: int) -> List[List[Tuple[int, int]]]:
    """Rounds of ``(sender, receiver)`` pairs for the Figure-4 tree merge.

    >>> tree_merge_schedule(8)[0]
    [(1, 0), (3, 2), (5, 4), (7, 6)]
    """
    if n_tasks < 1:
        raise ValueError(f"n_tasks must be >= 1, got {n_tasks}")
    rounds: List[List[Tuple[int, int]]] = []
    offset = 1
    while offset < n_tasks:
        pairs = [
            (p + offset, p)
            for p in range(0, n_tasks, 2 * offset)
            if p + offset < n_tasks
        ]
        rounds.append(pairs)
        offset *= 2
    return rounds


@dataclass
class MergeCCStats:
    """Accounting for the whole merge tree."""

    n_tasks: int = 1
    n_rounds: int = 0
    n_unions: int = 0
    bytes_communicated: int = 0
    per_round_pairs: List[int] = field(default_factory=list)
    #: per-task wall contribution proxy: number of merge operations each
    #: receiver executed (rank 0 does the most -- the paper's Figure 8
    #: spread in MergeCC comes exactly from this asymmetry).
    merges_by_task: dict = field(default_factory=dict)


def merge_component_arrays(
    parents: Sequence[np.ndarray],
) -> Tuple[np.ndarray, MergeCCStats]:
    """Merge per-task component arrays into the global labeling.

    ``parents[p]`` is task ``p``'s local disjoint-set parent array over all
    ``R`` reads (each task holds the full array — "Since the number of
    reads is substantially smaller than the total number of graph edges, it
    is feasible to replicate the component array on each task").

    Returns the rank-0 parent array after the merge and stats.  The input
    arrays are not modified.
    """
    if not parents:
        raise ValueError("need at least one component array")
    n = len(parents[0])
    for i, p in enumerate(parents):
        if len(p) != n:
            raise ValueError(
                f"component array {i} has length {len(p)}, expected {n}"
            )

    stats = MergeCCStats(n_tasks=len(parents))
    forests = [DisjointSetForest.from_parent_array(p) for p in parents]
    schedule = tree_merge_schedule(len(parents))
    stats.n_rounds = len(schedule)
    stats.merges_by_task = {p: 0 for p in range(len(parents))}

    for pairs in schedule:
        stats.per_round_pairs.append(len(pairs))
        for sender, receiver in pairs:
            sent = forests[sender].parent
            stats.bytes_communicated += 4 * len(sent)  # p is 4R bytes (paper)
            unions = forests[receiver].absorb_parent_array(sent)
            stats.n_unions += unions
            stats.merges_by_task[receiver] += 1

    return forests[0].parent.copy(), stats
