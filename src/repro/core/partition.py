"""Partitioned FASTQ output (the tail of MergeCC, paper section 3.6).

"We currently write the reads corresponding to the largest component to one
file, and all other reads to another file, since we observed a giant
component being formed for most of the datasets...  Each thread extracts
reads from its FASTQ chunks and writes them to the corresponding output
FASTQ files.  Each thread writes to separate FASTQ files."
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List

import numpy as np

from repro.cc.components import ComponentSummary, compact_labels, summarize_components
from repro.index.fastqpart import FastqPartTable, load_chunk_reads
from repro.seqio.fastq import write_fastq


@dataclass
class PartitionResult:
    """The global partition and its output materialization."""

    parent: np.ndarray
    labels: np.ndarray
    summary: ComponentSummary
    largest_label: int
    #: output files per class; empty when output writing was disabled
    lc_files: List[str] = field(default_factory=list)
    other_files: List[str] = field(default_factory=list)
    #: FASTQ bytes written per (task, thread)
    bytes_written: np.ndarray | None = None
    lc_reads_written: int = 0
    other_reads_written: int = 0

    @property
    def largest_component_fraction(self) -> float:
        return self.summary.largest_component_fraction

    def read_in_largest(self, read_id: int) -> bool:
        return bool(self.labels[read_id] == self.largest_label)

    def lc_mask(self) -> np.ndarray:
        """Boolean mask over global read ids: in the largest component."""
        return self.labels == self.largest_label


def partition_from_parent(parent: np.ndarray) -> PartitionResult:
    """Label components and identify the largest one."""
    labels = compact_labels(parent)
    summary = summarize_components(parent)
    if len(labels):
        counts = np.bincount(labels)
        largest = int(np.argmax(counts))
    else:
        largest = -1
    return PartitionResult(
        parent=np.asarray(parent, dtype=np.int64),
        labels=labels,
        summary=summary,
        largest_label=largest,
    )


def write_partitions(
    result: PartitionResult,
    table: FastqPartTable,
    assignment: np.ndarray,
    n_tasks: int,
    n_threads: int,
    output_dir: str | os.PathLike,
) -> PartitionResult:
    """Write the partitioned reads; one LC + one 'other' file per thread.

    Reads are re-extracted chunk by chunk using the same chunk->thread
    assignment as KmerGen, so output I/O parallelism matches the paper's.
    Mutates and returns ``result`` with file lists and byte accounting.
    """
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    bytes_written = np.zeros((n_tasks, n_threads), dtype=np.int64)
    lc_total = other_total = 0
    handles: Dict[tuple, List] = {}

    for c in range(table.n_chunks):
        slot = int(assignment[c])
        p, t = divmod(slot, n_threads)
        batch = load_chunk_reads(table, c, keep_metadata=True)
        lc_records, other_records = [], []
        for i in range(batch.n_reads):
            rec = batch.record(i)
            if result.read_in_largest(int(batch.read_ids[i])):
                lc_records.append(rec)
            else:
                other_records.append(rec)
        key = (p, t)
        if key not in handles:
            lc_path = out / f"lc_p{p}_t{t}.fastq"
            other_path = out / f"other_p{p}_t{t}.fastq"
            # truncate any stale files from a prior run
            lc_path.write_text("")
            other_path.write_text("")
            handles[key] = [str(lc_path), str(other_path)]
            result.lc_files.append(str(lc_path))
            result.other_files.append(str(other_path))
        lc_path, other_path = handles[key]
        write_fastq(lc_path, lc_records, append=True)
        write_fastq(other_path, other_records, append=True)
        written = sum(len(r.to_fastq()) for r in lc_records)
        written += sum(len(r.to_fastq()) for r in other_records)
        bytes_written[p, t] += written
        lc_total += len(lc_records)
        other_total += len(other_records)

    result.bytes_written = bytes_written
    result.lc_reads_written = lc_total
    result.other_reads_written = other_total
    return result
