"""Checkpoint/restart for multipass runs.

METAPREP's multipass structure makes mid-run recovery natural: after each
pass, the complete mutable state is the per-task component arrays plus
the pass counter (the index tables are immutable inputs).  A checkpoint
records exactly that, keyed by a fingerprint of everything that must not
change between save and resume (configuration, index identity, dataset
size).  On restart the pipeline fast-forwards past completed passes.

For a 14-minute 16-node run this is a convenience; for the multi-hour
sequential IndexCreate + multipass runs the paper contemplates on larger
inputs, it is the difference between losing a node and losing a day.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import List

import numpy as np

from repro.core.config import PipelineConfig
from repro.seqio.tables import read_table, write_table
from repro.util.logging import get_logger

_LOG = get_logger("core.checkpoint")
_SCHEMA = "metaprep/checkpoint"


def save_block_spill(path: str | os.PathLike, block, length: int | None = None) -> None:
    """Spill a :class:`~repro.runtime.buffers.TupleBlock` to disk.

    Thin alias for :func:`repro.runtime.spill.write_spill`, which owns
    the block-spill wire format (the out-of-core pipeline and this
    checkpoint path share it byte for byte).
    """
    from repro.runtime.spill import write_spill

    write_spill(path, block, length)


def load_block_spill(path: str | os.PathLike, pool):
    """Load a spilled TupleBlock into a fresh block from ``pool``.

    Thin alias for :func:`repro.runtime.spill.read_spill`; returns the
    filled block (capacity == spilled length).
    """
    from repro.runtime.spill import read_spill

    return read_spill(path, pool)


def payload_fingerprint(payload: dict) -> str:
    """Stable 32-hex-digit digest of a JSON-serializable payload.

    The common fingerprint primitive: checkpoints key resumability on it
    and the artifact store (:mod:`repro.service.store`) keys cached
    IndexCreate/partition products on it.  Stability rests on
    ``json.dumps(sort_keys=True)`` canonicalization.
    """
    blob = json.dumps(payload, sort_keys=True).encode()
    return hashlib.blake2b(blob, digest_size=16).hexdigest()


#: ``PipelineConfig`` fields that provably cannot change the partition
#: result, and are therefore deliberately absent from
#: :func:`config_payload`.  Every config field must appear either here or
#: as a payload key — ``metaprep check`` (rule MP104) enforces the split,
#: and MP101 flags partition-affecting code that reads a field listed
#: here.  Rationale per field:
#:
#: * ``executor`` / ``max_workers`` — both engines are bit-identical by
#:   the differential contract of :mod:`repro.runtime.executor`;
#: * ``write_outputs`` — toggles emission of the partitioned FASTQ files,
#:   not the labels the artifact store caches;
#: * ``machine`` — only feeds the timing projection;
#: * ``verify_static_counts`` — a pure assertion;
#: * ``radix_skip_constant`` — a sort-internal shortcut that leaves the
#:   sorted order unchanged;
#: * ``n_passes`` / ``memory_budget_per_task`` / ``n_chunks`` — the
#:   pass/chunk decomposition; the merge step makes labels independent of
#:   how work was split (verified by the pass-count invariance tests);
#: * ``dataplane`` — selects the TupleBlock backing (heap ndarrays vs
#:   shared-memory segments); both backings carry identical bytes through
#:   identical stage code, enforced by the dataplane property tests.
#: * ``telemetry`` / ``telemetry_dir`` — observability only: spans and
#:   counters record what the run did, never feed back into it (and the
#:   telemetry package is wall-clock-free by the MP2xx determinism lint).
#: * ``spill`` / ``spill_dir`` — out-of-core mode moves tuple bytes to
#:   disk between stage barriers but carries identical bytes through
#:   identical stage code; spill and in-memory runs are bit-identical by
#:   the differential contract of ``tests/integration/test_out_of_core``.
#: * ``worker_addresses`` — the distributed engine's host registry:
#:   placement of jobs and exchange blocks across workers, never their
#:   content; all engines are bit-identical by the differential contract
#:   of ``tests/integration/test_distributed_equivalence``.
PARTITION_IRRELEVANT_FIELDS = frozenset(
    {
        "executor",
        "max_workers",
        "worker_addresses",
        "write_outputs",
        "machine",
        "verify_static_counts",
        "radix_skip_constant",
        "n_passes",
        "memory_budget_per_task",
        "n_chunks",
        "dataplane",
        "telemetry",
        "telemetry_dir",
        "spill",
        "spill_dir",
    }
)


def config_payload(config: PipelineConfig) -> dict:
    """The configuration fields that determine a run's output partition.

    Excludes the :data:`PARTITION_IRRELEVANT_FIELDS` — knobs that only
    change *how* the answer is computed (executor, worker count, output
    writing) — results are bit-identical across those by the executor
    determinism contract.  The returned dict must stay a literal so
    ``metaprep check`` can verify fingerprint coverage statically.
    """
    return {
        "k": config.k,
        "m": config.m,
        "n_tasks": config.n_tasks,
        "n_threads": config.n_threads,
        "kmer_filter": (config.kmer_filter.min_freq, config.kmer_filter.max_freq),
        "localcc_opt": config.localcc_opt,
        "sampling_seed": config.sampling_seed,
    }


def config_fingerprint(
    config: PipelineConfig, n_reads: int, total_tuples: int
) -> str:
    """Hash of everything a resumed run must match exactly."""
    payload = dict(
        config_payload(config), n_reads=n_reads, total_tuples=total_tuples
    )
    return payload_fingerprint(payload)


class CheckpointMismatch(RuntimeError):
    """A checkpoint exists but belongs to a different run configuration."""


@dataclass
class Checkpoint:
    """State after completing ``passes_done`` passes."""

    fingerprint: str
    n_passes_total: int
    passes_done: int
    parents: List[np.ndarray]

    @property
    def complete(self) -> bool:
        return self.passes_done >= self.n_passes_total


class CheckpointStore:
    """Single-file checkpoint persistence under a directory."""

    FILENAME = "metaprep_checkpoint.bin"

    def __init__(self, directory: str | os.PathLike) -> None:
        self.directory = Path(directory)
        self.path = self.directory / self.FILENAME

    def exists(self) -> bool:
        return self.path.exists()

    def save(self, checkpoint: Checkpoint) -> None:
        arrays = {
            f"parent_{p}": parent.astype(np.int64)
            for p, parent in enumerate(checkpoint.parents)
        }
        meta = {
            "fingerprint": checkpoint.fingerprint,
            "n_passes_total": checkpoint.n_passes_total,
            "passes_done": checkpoint.passes_done,
            "n_tasks": len(checkpoint.parents),
        }
        tmp = self.path.with_suffix(".tmp")
        write_table(tmp, _SCHEMA, meta, arrays)
        os.replace(tmp, self.path)  # atomic publish
        _LOG.info(
            "checkpoint saved: pass %d/%d -> %s",
            checkpoint.passes_done,
            checkpoint.n_passes_total,
            self.path,
        )

    def load(self, expect_fingerprint: str) -> Checkpoint:
        meta, arrays = read_table(self.path, expect_schema=_SCHEMA)
        if meta["fingerprint"] != expect_fingerprint:
            raise CheckpointMismatch(
                f"{self.path}: checkpoint fingerprint {meta['fingerprint']} "
                f"does not match this run ({expect_fingerprint}); delete the "
                "checkpoint or rerun with the original configuration"
            )
        parents = [
            arrays[f"parent_{p}"] for p in range(int(meta["n_tasks"]))
        ]
        return Checkpoint(
            fingerprint=meta["fingerprint"],
            n_passes_total=int(meta["n_passes_total"]),
            passes_done=int(meta["passes_done"]),
            parents=parents,
        )

    def clear(self) -> None:
        if self.path.exists():
            self.path.unlink()


def prune_checkpoints(root: str | os.PathLike, keep_latest: int = 0) -> List[Path]:
    """Delete stale checkpoints under ``root``, keeping the newest N.

    ``root`` is a directory whose immediate children are per-run
    checkpoint directories (the layout the job service uses:
    ``<spool>/checkpoints/<job_id>/metaprep_checkpoint.bin``).  A
    checkpoint file directly under ``root`` counts too.  Checkpoints are
    ranked by mtime; all but the ``keep_latest`` newest are removed, and
    a per-run directory emptied by the removal is deleted as well.

    Returns the removed checkpoint paths (newest-last).  Call sites that
    finish a job successfully should invoke this so completed runs do not
    accumulate checkpoint files forever.
    """
    if keep_latest < 0:
        raise ValueError(f"keep_latest must be >= 0, got {keep_latest}")
    root = Path(root)
    if not root.is_dir():
        return []
    found = [
        p
        for p in (
            list(root.glob(CheckpointStore.FILENAME))
            + list(root.glob(f"*/{CheckpointStore.FILENAME}"))
        )
        if p.is_file()
    ]
    found.sort(key=lambda p: (p.stat().st_mtime, str(p)))
    doomed = found[: max(0, len(found) - keep_latest)]
    for path in doomed:
        path.unlink()
        parent = path.parent
        if parent != root and not any(parent.iterdir()):
            parent.rmdir()
    if doomed:
        _LOG.info(
            "pruned %d stale checkpoint(s) under %s (kept %d)",
            len(doomed),
            root,
            keep_latest,
        )
    return doomed
