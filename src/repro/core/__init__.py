"""The METAPREP pipeline: configuration, driver, partition output, reports."""

from repro.core.checkpoint import CheckpointStore, prune_checkpoints
from repro.core.config import PipelineConfig
from repro.core.pipeline import MetaPrep, PipelineResult
from repro.core.partition import PartitionResult, write_partitions
from repro.core.report import (
    format_breakdown,
    format_job_metrics,
    format_job_table,
    format_partition_summary,
)

__all__ = [
    "CheckpointStore",
    "prune_checkpoints",
    "PipelineConfig",
    "MetaPrep",
    "PipelineResult",
    "PartitionResult",
    "write_partitions",
    "format_breakdown",
    "format_job_metrics",
    "format_job_table",
    "format_partition_summary",
]
