"""Pipeline configuration.

Defaults follow the paper's experimental setup where practical (k = 27,
merge/communication schedules fixed by P) and scale down where the paper's
constants target 200-Gbp inputs (m defaults to 8 rather than 10 so the
FASTQPart histograms stay proportionate on laptop-scale synthetic data; any
``m <= 16`` is supported and the paper's ``m = 10`` is a one-liner).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.kmers.codec import MAX_K_TWO_LIMB, KmerCodec
from repro.kmers.filter import FrequencyFilter
from repro.runtime.buffers import DATAPLANE_NAMES
from repro.runtime.executor import EXECUTOR_NAMES
from repro.runtime.spill import SPILL_NAMES
from repro.util.validation import check_in_range, check_positive


@dataclass
class PipelineConfig:
    """All knobs of a METAPREP run."""

    #: k-mer length; 27 in most paper experiments, up to 63 supported
    #: (two-limb k-mers, 20-byte tuples — paper section 4.4).
    k: int = 27
    #: m-mer prefix length for merHist / FASTQPart binning (paper: 10).
    m: int = 8
    #: MPI task count P (1 task per node in the paper's runs).
    n_tasks: int = 1
    #: OpenMP thread count T per task (24 on Edison).
    n_threads: int = 4
    #: number of I/O passes S; ``None`` derives the fewest passes that fit
    #: ``memory_budget_per_task`` (section 3.7).
    n_passes: int | None = 1
    #: per-task memory budget in bytes, used only when ``n_passes is None``.
    memory_budget_per_task: int | None = None
    #: number of logical FASTQ chunks C; ``None`` -> 4 chunks per thread.
    n_chunks: int | None = None
    #: k-mer frequency filter gating read-graph edges (section 4.4).
    kmer_filter: FrequencyFilter = field(default_factory=FrequencyFilter)
    #: seed for sampled splitter selection in LocalSort's partition step
    #: (:func:`repro.sort.sampling.sampled_boundaries`).  Part of the
    #: partition fingerprint: different seeds sample different splitters
    #: and may produce different (all valid) bucket boundaries.
    sampling_seed: int = 0
    #: enumerate component ids instead of read ids on passes >= 2
    #: (LocalCC-Opt, section 3.5.1).
    localcc_opt: bool = True
    #: machine model used for timing projection.
    machine: str = "edison"
    #: write the partitioned FASTQ output files (CC-I/O step).  Disable in
    #: unit tests that only need the partition labels.
    write_outputs: bool = True
    #: radix-sort optimization: skip passes whose digit is constant.  Does
    #: not affect the timing model (which uses the paper's nominal pass
    #: count) — only real wall time.
    radix_skip_constant: bool = True
    #: sanity-check the driver-side aggregate of the static offset math
    #: against actual counts (cheap; keep on).  Independent of this flag,
    #: every KmerGen worker verifies its own chunk's counts before
    #: writing — the dataplane's write offsets assume them, so that check
    #: is structural, not optional.
    verify_static_counts: bool = True
    #: execution backend for per-chunk KmerGen and per-owner-task
    #: LocalSort+LocalCC: ``"serial"`` (inline, the reference engine) or
    #: ``"process"`` (a real multiprocessing pool).  Both engines are
    #: bit-identical; see :mod:`repro.runtime.executor`.
    executor: str = "serial"
    #: worker-process count for the ``"process"`` engine (``None`` ->
    #: the CPUs available to this process per the scheduling affinity
    #: mask; see :func:`repro.runtime.executor.available_cpu_count`).
    #: Ignored by the serial engine.
    max_workers: int | None = None
    #: ``host:port`` registry of ``metaprep worker`` daemons for the
    #: ``"distributed"`` engine (one entry per worker; jobs and owner
    #: blocks are placed by task rank modulo this list).  Required
    #: non-empty by that engine, ignored by the in-host engines.
    worker_addresses: tuple[str, ...] = ()
    #: tuple-buffer backing for the stage boundaries
    #: (:mod:`repro.runtime.buffers`): ``"auto"`` picks plain heap
    #: ndarrays under the serial engine and shared-memory segments under
    #: the process engine; ``"shared"`` forces shared memory everywhere
    #: (the differential tests probe the backing this way); ``"heap"``
    #: forces heap arrays and is invalid with the process engine, whose
    #: workers could not see them.
    dataplane: str = "auto"
    #: collect real-run telemetry (:mod:`repro.telemetry`): per-worker
    #: spans for every stage, hot-path counters, pool gauges.  Purely
    #: observational — never part of the partition result.
    telemetry: bool = False
    #: persist the run's telemetry artifacts (``telemetry.json``, the
    #: Perfetto ``trace.json``, metrics snapshot, Prometheus textfile)
    #: under this directory.  Setting it implies ``telemetry``; with
    #: ``telemetry=True`` and no directory the merged record is returned
    #: on the :class:`~repro.core.pipeline.PipelineResult` only and the
    #: spool lives in a private temp directory.
    telemetry_dir: str | None = None
    #: out-of-core execution (:mod:`repro.runtime.spill`): ``"never"``
    #: keeps every pass's tuples in resident blocks (the historical
    #: behavior); ``"always"`` routes every pass through per-owner spill
    #: files on disk; ``"auto"`` spills exactly the passes whose
    #: in-memory residency would exceed ``memory_budget_per_task`` (and
    #: never spills when no budget is set) — the planner decision rule
    #: in :func:`repro.index.passplan.spill_schedule`.  Spilling changes
    #: where tuple bytes live, never what they are: spill runs are
    #: bit-identical to in-memory runs by the differential contract of
    #: ``tests/integration/test_out_of_core.py``.
    spill: str = "auto"
    #: directory under which the run's private spill directory is
    #: created (``None`` -> the system temp dir).  Point it at fast
    #: local scratch for real out-of-core runs.
    spill_dir: str | None = None

    def __post_init__(self) -> None:
        check_in_range("k", self.k, 2, MAX_K_TWO_LIMB)
        check_in_range("m", self.m, 1, min(self.k - 1, 16))
        check_positive("n_tasks", self.n_tasks)
        check_positive("n_threads", self.n_threads)
        if self.n_passes is not None:
            check_positive("n_passes", self.n_passes)
        elif self.memory_budget_per_task is None:
            raise ValueError(
                "set n_passes or memory_budget_per_task (n_passes=None "
                "means 'derive from the budget')"
            )
        # the budget steers the pass planner *and* the spill schedule;
        # a zero/negative budget used to slip through here whenever
        # n_passes was set and only blow up (obscurely) downstream
        if self.memory_budget_per_task is not None:
            check_positive(
                "memory_budget_per_task", self.memory_budget_per_task
            )
        if self.spill not in SPILL_NAMES:
            raise ValueError(
                f"spill must be one of {SPILL_NAMES}, got {self.spill!r}"
            )
        if self.executor not in EXECUTOR_NAMES:
            raise ValueError(
                f"executor must be one of {EXECUTOR_NAMES}, "
                f"got {self.executor!r}"
            )
        if self.max_workers is not None:
            check_positive("max_workers", self.max_workers)
        self.worker_addresses = tuple(self.worker_addresses or ())
        if self.executor == "distributed":
            if not self.worker_addresses:
                raise ValueError(
                    "executor='distributed' needs worker_addresses "
                    "(host:port of running `metaprep worker` daemons)"
                )
            if self.dataplane != "auto":
                raise ValueError(
                    "the distributed engine selects its own block plane "
                    "(socket transport); leave dataplane='auto'"
                )
        if self.dataplane not in DATAPLANE_NAMES:
            raise ValueError(
                f"dataplane must be one of {DATAPLANE_NAMES}, "
                f"got {self.dataplane!r}"
            )
        if self.dataplane == "heap" and self.executor == "process":
            raise ValueError(
                "dataplane='heap' cannot carry tuples across the process "
                "engine's pool boundary; use 'auto' or 'shared'"
            )
        if self.n_chunks is not None:
            if self.n_chunks < self.n_tasks * self.n_threads:
                raise ValueError(
                    f"n_chunks ({self.n_chunks}) must be >= n_tasks * "
                    f"n_threads ({self.n_tasks * self.n_threads})"
                )

    @property
    def telemetry_enabled(self) -> bool:
        """Telemetry is on when requested explicitly or implied by a
        persistence directory."""
        return bool(self.telemetry or self.telemetry_dir is not None)

    @property
    def codec(self) -> KmerCodec:
        return KmerCodec(self.k)

    @property
    def tuple_bytes(self) -> int:
        return self.codec.tuple_bytes

    @property
    def total_slots(self) -> int:
        return self.n_tasks * self.n_threads

    def resolved_chunks(self) -> int:
        return self.n_chunks if self.n_chunks is not None else 4 * self.total_slots
