"""Plain-text report formatting for CLI output and benchmark harnesses.

The formatters emit the same row/column structure as the paper's tables so
EXPERIMENTS.md comparisons are one-to-one.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.cc.components import ComponentSummary
from repro.runtime.work import StepNames
from repro.util.sizes import human_bytes, human_count
from repro.util.timers import TimeBreakdown


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for idx, row in enumerate(cells):
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)).rstrip())
        if idx == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


def format_breakdown(
    breakdown: TimeBreakdown, title: str = "step times"
) -> str:
    """Render a per-step time breakdown in the paper's step order."""
    rows: List[List[object]] = []
    for step in StepNames.ORDER:
        if step in breakdown.seconds:
            rows.append([step, f"{breakdown.seconds[step]:.3f}"])
    for step, sec in breakdown.seconds.items():
        if step not in StepNames.ORDER:
            rows.append([step, f"{sec:.3f}"])
    rows.append(["Total", f"{breakdown.total:.3f}"])
    return f"{title}\n" + format_table(["step", "seconds"], rows)


def format_partition_summary(summary: ComponentSummary) -> str:
    """Render a partition summary as a small text table."""
    rows = [
        ["reads", human_count(summary.n_reads)],
        ["components", human_count(summary.n_components)],
        [
            "largest component",
            f"{summary.largest_component_size} "
            f"({summary.largest_component_percent:.1f}% of reads)",
        ],
        ["singleton components", human_count(summary.singleton_components)],
    ]
    return format_table(["metric", "value"], rows)


def format_memory(label_to_bytes: Dict[str, int]) -> str:
    rows = [[k, human_bytes(v)] for k, v in label_to_bytes.items()]
    rows.append(["total", human_bytes(sum(label_to_bytes.values()))])
    return format_table(["array", "memory"], rows)


def format_gap_report(report) -> str:
    """Render a measured-vs-projected gap table
    (:class:`repro.telemetry.compare.GapReport`).

    One row per step: measured seconds, projected seconds, their ratio,
    and a ``DRIFT`` marker when the ratio escapes the report's band.
    """
    lo, hi = report.band
    rows: List[List[object]] = []
    for row in report.rows:
        ratio = f"{row.ratio:.2f}" if row.ratio is not None else "-"
        rows.append(
            [
                row.step,
                f"{row.measured_seconds:.3f}",
                f"{row.projected_seconds:.3f}",
                ratio,
                "DRIFT" if row.drifted else "",
            ]
        )
    total_ratio = (
        f"{report.total_ratio:.2f}" if report.total_ratio is not None else "-"
    )
    rows.append(
        [
            "Total",
            f"{report.measured_total:.3f}",
            f"{report.projected_total:.3f}",
            total_ratio,
            "",
        ]
    )
    title = f"measured vs projected (drift band {lo:g}-{hi:g}x)"
    return f"{title}\n" + format_table(
        ["step", "measured_s", "projected_s", "ratio", "flag"], rows
    )


def _short(value: object, width: int = 40) -> str:
    text = str(value)
    return text if len(text) <= width else text[: width - 1] + "…"


def format_job_table(statuses: Sequence[Dict]) -> str:
    """Render ``metaprep status`` rows: one line per service job.

    ``statuses`` are job status documents as produced by
    :meth:`repro.service.jobs.JobRecord.status_dict`.
    """
    rows: List[List[object]] = []
    for s in statuses:
        started, finished = s.get("started_at"), s.get("finished_at")
        wait = ""
        if started and s.get("submitted_at"):
            wait = f"{max(0.0, started - s['submitted_at']):.2f}"
        run = ""
        if started and finished:
            run = f"{max(0.0, finished - started):.2f}"
        cache = (s.get("metrics") or {}).get("partition_cache", "")
        rows.append(
            [
                s.get("job_id", "?"),
                s.get("state", "?"),
                s.get("attempt", 0),
                wait,
                run,
                cache,
                _short(s.get("error") or ""),
            ]
        )
    return format_table(
        ["job", "state", "attempt", "wait_s", "run_s", "cache", "error"], rows
    )


def format_job_metrics(status: Dict) -> str:
    """Render one job's structured metrics (queue wait, cache hit/miss,
    per-step measured times) as nested key/value rows."""
    metrics = dict(status.get("metrics") or {})
    breakdown = metrics.pop("measured_seconds", None)
    rows: List[List[object]] = [["state", status.get("state", "?")]]
    if status.get("started_at") and status.get("submitted_at"):
        rows.append(
            ["queue wait (s)",
             f"{max(0.0, status['started_at'] - status['submitted_at']):.3f}"]
        )
    for key in sorted(metrics):
        rows.append([key, _short(metrics[key], 60)])
    out = format_table(["metric", "value"], rows)
    if breakdown:
        out += "\n\n" + format_breakdown(
            TimeBreakdown(dict(breakdown)), "measured step times"
        )
    return out
