"""The METAPREP driver: IndexCreate -> S x (KmerGen -> Comm -> LocalSort ->
LocalCC) -> MergeCC -> partitioned output.

The run is organized *exactly* as the paper's distributed execution — P
tasks x T threads, chunk assignment and k-mer ranges from the index tables,
the P-stage all-to-all, per-task forests merged over a binary tree — but
executes in one process.  Results are therefore bit-identical to a real
parallel run with the same decomposition (no scheduling nondeterminism
exists: union-by-index makes the forest order-sensitive, so we fix the
paper's deterministic orders: threads in rank order, sources in rank
order).

Two kinds of timing come out of a run:

* ``result.measured`` — real Python wall time per step (what the local
  benchmarks report), and
* ``result.projected`` — the calibrated machine-model projection from the
  measured work volumes (what reproduces the paper's figures; see
  :mod:`repro.runtime.timing`).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import List, Sequence

import numpy as np

from repro.cc.dsf import DisjointSetForest
from repro.cc.localcc import (
    LocalCCStats,
    local_connected_components,
    map_ids_to_components,
)
from repro.cc.mergecc import MergeCCStats, merge_component_arrays, tree_merge_schedule
from repro.core.config import PipelineConfig
from repro.core.partition import (
    PartitionResult,
    partition_from_parent,
    write_partitions,
)
from repro.index.create import IndexCreateResult, index_create
from repro.index.fastqpart import load_chunk_reads
from repro.index.offsets import chunk_assignment, send_counts_matrix
from repro.index.passplan import PassPlan, passes_for_memory_budget, plan_passes
from repro.kmers.engine import KmerTuples, enumerate_canonical_kmers
from repro.runtime.comm import AllToAllStats, custom_all_to_all
from repro.runtime.machines import get_machine
from repro.runtime.timing import ProjectedTimes, TimingModel
from repro.runtime.work import RunWork, StepNames
from repro.sort.radix import RadixSortStats, radix_passes_for, radix_sort_tuples
from repro.sort.partition import range_partition
from repro.util.logging import get_logger
from repro.util.timers import StepTimer, TimeBreakdown

_LOG = get_logger("core.pipeline")


class StaticCountMismatch(AssertionError):
    """The FASTQPart-precomputed counts disagreed with actual KmerGen
    output — indicates index/table corruption or a k/m mismatch."""


@dataclass
class PipelineResult:
    """Everything a run produced."""

    config: PipelineConfig
    n_reads: int
    partition: PartitionResult
    work: RunWork
    projected: ProjectedTimes
    measured: TimeBreakdown
    plan: PassPlan
    index: IndexCreateResult
    merge_stats: MergeCCStats
    sort_stats: RadixSortStats
    cc_stats: LocalCCStats
    comm_stats: List[AllToAllStats] = field(default_factory=list)

    @property
    def n_passes(self) -> int:
        return self.plan.n_passes

    @property
    def total_tuples(self) -> int:
        return self.work.total_tuples

    def projected_total(self) -> float:
        return self.projected.total_seconds

    def memory_per_task_bytes(self) -> int:
        """Section 3.7 memory estimate on this run's measured volumes."""
        table = self.index.fastqpart
        chunk_bytes = (
            int(max(table.size1 + table.size2)) if table.n_chunks else 0
        )
        table_bytes = table.nbytes + self.index.merhist.nbytes
        model = TimingModel(get_machine(self.config.machine))
        return model.memory_per_task(self.work, chunk_bytes, table_bytes)


class MetaPrep:
    """End-to-end METAPREP runner.  See :class:`PipelineConfig`."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()

    # ------------------------------------------------------------------
    def run(
        self,
        units: Sequence,
        output_dir: str | os.PathLike | None = None,
        index: IndexCreateResult | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
    ) -> PipelineResult:
        """Partition the reads of ``units`` (paths or (R1, R2) pairs).

        ``index`` may carry a prebuilt :class:`IndexCreateResult` (the
        tables are reusable across runs and machines — that is their
        point); otherwise IndexCreate runs first.

        ``checkpoint_dir`` enables per-pass checkpointing: an interrupted
        multipass run resumes after its last completed pass (see
        :mod:`repro.core.checkpoint`).  A resumed run's measured times and
        work volumes cover only the passes it actually executed.  The
        checkpoint is cleared on successful completion.
        """
        cfg = self.config
        if index is None:
            index = index_create(units, cfg.k, cfg.m, cfg.resolved_chunks())
        merhist, table = index.merhist, index.fastqpart
        if merhist.k != cfg.k or merhist.m != cfg.m:
            raise ValueError(
                f"index built for k={merhist.k}, m={merhist.m}; "
                f"config wants k={cfg.k}, m={cfg.m}"
            )
        n_reads = table.total_reads
        p_tasks, t_threads = cfg.n_tasks, cfg.n_threads

        if cfg.n_passes is not None:
            n_passes = cfg.n_passes
        else:
            n_passes = passes_for_memory_budget(
                merhist,
                p_tasks,
                cfg.tuple_bytes,
                cfg.memory_budget_per_task,
                reserved_bytes_per_task=table.nbytes + merhist.nbytes + 8 * n_reads,
            )
        plan = plan_passes(merhist, n_passes, p_tasks, t_threads)
        assignment = chunk_assignment(table.n_chunks, p_tasks, t_threads)

        work = RunWork(
            n_tasks=p_tasks,
            n_threads=t_threads,
            n_passes=n_passes,
            n_reads=n_reads,
            k=cfg.k,
            tuple_bytes=cfg.tuple_bytes,
        )
        if table.n_chunks:
            work.fastq_chunk_bytes = int(max(table.size1 + table.size2))
        work.table_bytes = table.nbytes + merhist.nbytes
        timer = StepTimer()
        forests = [DisjointSetForest(n_reads) for _ in range(p_tasks)]
        sort_stats = RadixSortStats()
        cc_stats = LocalCCStats()
        comm_stats: List[AllToAllStats] = []

        store = None
        start_pass = 0
        fingerprint = ""
        if checkpoint_dir is not None:
            from repro.core.checkpoint import (
                Checkpoint,
                CheckpointMismatch,
                CheckpointStore,
                config_fingerprint,
            )

            store = CheckpointStore(checkpoint_dir)
            fingerprint = config_fingerprint(
                cfg, n_reads, merhist.total_tuples
            )
            if store.exists():
                ckpt = store.load(fingerprint)
                if ckpt.n_passes_total != n_passes:
                    raise CheckpointMismatch(
                        f"checkpoint was taken at {ckpt.n_passes_total} "
                        f"passes; this run plans {n_passes}"
                    )
                forests = [
                    DisjointSetForest.from_parent_array(p)
                    for p in ckpt.parents
                ]
                start_pass = ckpt.passes_done
                _LOG.info(
                    "resuming from checkpoint: %d/%d passes done",
                    start_pass,
                    n_passes,
                )

        for spec in plan.passes:
            if spec.index < start_pass:
                continue
            self._run_pass(
                spec,
                table,
                assignment,
                forests,
                work,
                timer,
                sort_stats,
                cc_stats,
                comm_stats,
            )
            if store is not None:
                from repro.core.checkpoint import Checkpoint

                store.save(
                    Checkpoint(
                        fingerprint=fingerprint,
                        n_passes_total=n_passes,
                        passes_done=spec.index + 1,
                        parents=[f.parent for f in forests],
                    )
                )

        # ---- MergeCC --------------------------------------------------
        with timer.step(StepNames.MERGECC):
            global_parent, merge_stats = merge_component_arrays(
                [f.parent for f in forests]
            )
        work.merge_rounds = tree_merge_schedule(p_tasks)
        work.merge_bytes_per_send = 4 * n_reads
        work.merge_entries_by_task = np.asarray(
            [merge_stats.merges_by_task.get(p, 0) * n_reads for p in range(p_tasks)],
            dtype=np.int64,
        )
        work.broadcast_bytes = 4 * n_reads if p_tasks > 1 else 0

        # ---- partition + CC-I/O ----------------------------------------
        partition = partition_from_parent(global_parent)
        if cfg.write_outputs and output_dir is not None:
            with timer.step(StepNames.CC_IO):
                write_partitions(
                    partition, table, assignment, p_tasks, t_threads, output_dir
                )
            work.ccio_bytes = partition.bytes_written.copy()
        else:
            # estimate output volume (output FASTQ ~ input FASTQ bytes)
            est = np.zeros((p_tasks, t_threads), dtype=np.int64)
            for c in range(table.n_chunks):
                pp, tt = divmod(int(assignment[c]), t_threads)
                est[pp, tt] += table.chunk_bytes(c)
            work.ccio_bytes = est

        if store is not None:
            store.clear()
        projected = TimingModel(get_machine(cfg.machine)).project(work)
        _LOG.info(
            "run complete: %d reads, %d tuples, %d components (LC %.1f%%), "
            "projected %s %.2fs",
            n_reads,
            work.total_tuples,
            partition.summary.n_components,
            partition.summary.largest_component_percent,
            cfg.machine,
            projected.total_seconds,
        )
        return PipelineResult(
            config=cfg,
            n_reads=n_reads,
            partition=partition,
            work=work,
            projected=projected,
            measured=timer.breakdown,
            plan=plan,
            index=index,
            merge_stats=merge_stats,
            sort_stats=sort_stats,
            cc_stats=cc_stats,
            comm_stats=comm_stats,
        )

    # ------------------------------------------------------------------
    def _run_pass(
        self,
        spec,
        table,
        assignment: np.ndarray,
        forests: List[DisjointSetForest],
        work: RunWork,
        timer: StepTimer,
        sort_stats: RadixSortStats,
        cc_stats: LocalCCStats,
        comm_stats: List[AllToAllStats],
    ) -> None:
        cfg = self.config
        p_tasks, t_threads = cfg.n_tasks, cfg.n_threads
        is_first_pass = spec.index == 0
        use_opt = cfg.localcc_opt and not is_first_pass

        expected = None
        if cfg.verify_static_counts:
            expected = send_counts_matrix(
                table,
                assignment,
                spec.task_edges,
                p_tasks,
                t_threads,
                spec.bin_lo,
                spec.bin_hi,
            )

        # ---- KmerGen (+ I/O) -------------------------------------------
        # send_blocks[p][d] accumulates per-thread tuple slices in thread
        # order: the deterministic buffer layout of section 3.2.2.
        send_parts: List[List[List[KmerTuples]]] = [
            [[] for _ in range(p_tasks)] for _ in range(p_tasks)
        ]
        actual_counts = np.zeros((p_tasks, t_threads, p_tasks), dtype=np.int64)
        for c in range(table.n_chunks):
            slot = int(assignment[c])
            p, t = divmod(slot, t_threads)
            t_io0 = time.perf_counter()
            batch = load_chunk_reads(table, c, keep_metadata=False)
            timer.record(StepNames.KMERGEN_IO, time.perf_counter() - t_io0)
            work.kmergen_io_bytes[p, t] += table.chunk_bytes(c)
            work.fastq_parse_bytes[p, t] += table.chunk_bytes(c)

            t_gen0 = time.perf_counter()
            tuples = enumerate_canonical_kmers(batch, cfg.k)
            work.kmergen_positions_scanned[p, t] += len(tuples)
            bins = tuples.kmers.mmer_prefix(cfg.m).astype(np.int64)
            in_pass = (bins >= spec.bin_lo) & (bins < spec.bin_hi)
            kept = tuples.take(np.flatnonzero(in_pass))
            if use_opt and len(kept):
                # LocalCC-Opt: enumerate (k-mer, component id) tuples.
                kept = KmerTuples(
                    kept.kmers,
                    map_ids_to_components(kept.read_ids, forests[p]),
                )
            work.kmergen_tuples[p, t] += len(kept)
            kept_bins = bins[in_pass]
            dest = (
                np.searchsorted(spec.task_edges, kept_bins, side="right") - 1
            )
            dest = np.clip(dest, 0, p_tasks - 1)
            for d in range(p_tasks):
                sel = np.flatnonzero(dest == d)
                part = kept.take(sel) if len(sel) else KmerTuples.empty(cfg.k)
                send_parts[p][d].append(part)
                actual_counts[p, t, d] += len(part)
            timer.record(StepNames.KMERGEN, time.perf_counter() - t_gen0)

        if expected is not None and not np.array_equal(actual_counts, expected):
            bad = np.argwhere(actual_counts != expected)[0]
            p, t, d = (int(x) for x in bad)
            raise StaticCountMismatch(
                f"pass {spec.index}: task {p} thread {t} -> task {d}: "
                f"produced {actual_counts[p, t, d]} tuples, index predicted "
                f"{expected[p, t, d]}"
            )

        def _concat(parts: List[KmerTuples]) -> KmerTuples:
            nonempty = [x for x in parts if len(x)]
            return (
                KmerTuples.concatenate(nonempty)
                if nonempty
                else KmerTuples.empty(cfg.k)
            )

        # ---- KmerGen-Comm ----------------------------------------------
        with timer.step(StepNames.KMERGEN_COMM):
            send_blocks = [
                [_concat(send_parts[p][d]) for d in range(p_tasks)]
                for p in range(p_tasks)
            ]
            recv_blocks, stats = custom_all_to_all(
                send_blocks, nbytes_of=lambda tp: tp.nbytes
            )
        comm_stats.append(stats)
        work.comm_bytes_matrix += stats.bytes_matrix
        work.comm_stage_max_bytes.append(list(stats.max_message_bytes_per_stage))

        # ---- LocalSort + LocalCC per owner task -------------------------
        nominal_passes = radix_passes_for(cfg.k)
        for d in range(p_tasks):
            received = _concat(list(recv_blocks[d]))
            t_sort0 = time.perf_counter()
            partitions, counts = range_partition(
                received,
                cfg.m,
                spec.thread_edges[d],
                span=(int(spec.task_edges[d]), int(spec.task_edges[d + 1])),
            )
            # partition scatter work: each thread handles ~1/T of the stream
            share = int(np.ceil(len(received) / t_threads))
            work.partition_tuples[d, :] += share
            sorted_parts = []
            for t, part in enumerate(partitions):
                sorted_part, rstats = radix_sort_tuples(
                    part, skip_constant=cfg.radix_skip_constant
                )
                sort_stats.merge(rstats)
                # timing model uses the paper's fixed pass count
                work.sort_tuple_passes[d, t] += len(part) * nominal_passes
                sorted_parts.append(sorted_part)
            timer.record(StepNames.LOCALSORT, time.perf_counter() - t_sort0)

            t_cc0 = time.perf_counter()
            for t, part in enumerate(sorted_parts):
                stats_cc = local_connected_components(
                    part, forests[d], cfg.kmer_filter
                )
                cc_stats.merge(stats_cc)
                if is_first_pass:
                    work.cc_edges_first_pass[d, t] += stats_cc.n_edges
                else:
                    work.cc_edges_later_passes[d, t] += stats_cc.n_edges
            timer.record(StepNames.LOCALCC, time.perf_counter() - t_cc0)
