"""The METAPREP driver: IndexCreate -> S x (KmerGen -> Comm -> LocalSort ->
LocalCC) -> MergeCC -> partitioned output.

The run is organized *exactly* as the paper's distributed execution — P
tasks x T threads, chunk assignment and k-mer ranges from the index tables,
the P-stage all-to-all, per-task forests merged over a binary tree.  The
units of work (per-chunk KmerGen, per-owner-task LocalSort+LocalCC) are
dispatched through a pluggable :mod:`repro.runtime.executor` backend:

* ``executor="serial"`` runs them inline (the reference engine);
* ``executor="process"`` runs them on a real multiprocessing pool.

Results are bit-identical across engines — and to a real parallel run with
the same decomposition — because no scheduling nondeterminism exists:
union-by-index makes the forest order-sensitive, so we fix the paper's
deterministic orders (threads in rank order, sources in rank order) in the
job lists and result-merging loops, never in worker scheduling.

Two kinds of timing come out of a run:

* ``result.measured`` — real Python time per step.  Under the serial
  engine this is wall time (what the local benchmarks report); under the
  process engine it aggregates *work* seconds across workers and can
  exceed wall-clock.
* ``result.projected`` — the calibrated machine-model projection from the
  measured work volumes (what reproduces the paper's figures; see
  :mod:`repro.runtime.timing`).
"""

from __future__ import annotations

import os
import resource
import time
from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.cc.dsf import DisjointSetForest
from repro.cc.localcc import (
    LocalCCStats,
    fold_block_partitions,
    map_ids_to_components,
)
from repro.cc.mergecc import MergeCCStats, merge_component_arrays, tree_merge_schedule
from repro.core.config import PipelineConfig
from repro.core.partition import (
    PartitionResult,
    partition_from_parent,
    write_partitions,
)
from repro.index.create import IndexCreateResult, index_create
from repro.index.fastqpart import FastqPartTable, load_chunk_reads
from repro.index.offsets import (
    chunk_assignment,
    chunk_send_counts,
    recv_write_offsets,
    send_counts_matrix,
)
from repro.index.passplan import (
    PassPlan,
    passes_for_memory_budget,
    plan_passes,
    spill_schedule,
)
from repro.kmers.engine import enumerate_canonical_kmers
from repro.kmers.filter import FrequencyFilter
from repro import telemetry
from repro.telemetry.collect import TelemetryCollector, RunTelemetry
from repro.telemetry.runtime import TelemetrySettings
from repro.runtime.buffers import BlockHandle
from repro.runtime.comm import AllToAllStats, block_exchange_stats
from repro.runtime.transport import (
    BlockTransport,
    create_block_transport,
    resolve_block,
    write_block_region,
)
from repro.runtime.spill import (
    SpillManager,
    SpillTarget,
    resident_spill,
    rewrite_spill_ids,
    transient_tuples,
    write_spill_region,
)
from repro.runtime.executor import (
    ExecutionBackend,
    create_engine,
    worker_shared,
)
from repro.runtime.machines import get_machine
from repro.runtime.timing import ProjectedTimes, TimingModel
from repro.runtime.work import RunWork, StepNames
from repro.sort.radix import RadixSortStats, radix_passes_for, radix_sort_block
from repro.sort.partition import range_partition_block
from repro.util.logging import get_logger
from repro.util.timers import StepTimer, TimeBreakdown

_LOG = get_logger("core.pipeline")


class StaticCountMismatch(AssertionError):
    """The FASTQPart-precomputed counts disagreed with actual KmerGen
    output — indicates index/table corruption or a k/m mismatch."""


def _peak_chunk_bytes(table: FastqPartTable) -> int:
    """Largest combined (R1 + R2) chunk payload; 0 for a chunkless table."""
    if table.n_chunks == 0:
        return 0
    return int(np.max(table.size1 + table.size2))


def _estimate_ccio_bytes(
    table: FastqPartTable,
    assignment: np.ndarray,
    n_tasks: int,
    n_threads: int,
) -> np.ndarray:
    """Estimated CC-I/O volume when outputs are not written (output FASTQ
    ~ input FASTQ bytes).  All-zero for a zero-chunk table."""
    est = np.zeros((n_tasks, n_threads), dtype=np.int64)
    for c in range(table.n_chunks):
        p, t = divmod(int(assignment[c]), n_threads)
        est[p, t] += table.chunk_bytes(c)
    return est


# ----------------------------------------------------------------------
# executor job payloads and worker functions
#
# Everything below the pool boundary is a module-level function over
# picklable payloads so the process engine can ship it to workers; the
# serial engine calls the very same functions inline, which is what makes
# the two engines bit-identical by construction.
#
# Tuples never appear in the payloads.  Each pass preallocates one
# destination TupleBlock per owner task, sized exactly by the index
# tables (:func:`repro.index.offsets.recv_write_offsets`); KmerGen jobs
# carry block *handles* plus their chunk's write offsets and write kept
# tuples straight into the owners' blocks, and owner jobs sort/fold the
# very same backing in place.  Under the process engine the handles are
# shared-memory descriptors — a few hundred bytes per job regardless of
# tuple volume — which is the zero-copy dataplane the paper's custom
# all-to-all corresponds to.
# ----------------------------------------------------------------------


@dataclass
class _WorkerContext:
    """Per-run state installed on every worker once (not per job)."""

    table: FastqPartTable
    k: int
    m: int
    n_tasks: int
    n_threads: int
    kmer_filter: FrequencyFilter
    radix_skip_constant: bool
    #: spool settings when the run collects telemetry; workers activate
    #: the thread-local emitter from this on first job
    telemetry: TelemetrySettings | None = None


@dataclass
class _ChunkJob:
    """One KmerGen unit: enumerate one FASTQ chunk for one pass."""

    chunk: int
    #: owner slot (task rank) this chunk is assigned to — span attribution
    task: int
    #: which of the S passes this job belongs to
    pass_index: int
    bin_lo: int
    bin_hi: int
    task_edges: np.ndarray
    #: table-predicted tuples this chunk sends each destination: (P,)
    expected_counts: np.ndarray
    #: this chunk's write offset in each destination block: (P,)
    write_offsets: np.ndarray
    #: destination block handles, owner-task order (in-memory passes)
    blocks: List[BlockHandle] | None = None
    #: destination spill files, owner-task order (out-of-core passes);
    #: exactly one of ``blocks`` / ``spill_targets`` is set
    spill_targets: List[SpillTarget] | None = None


@dataclass
class _ChunkResult:
    chunk: int
    #: tuples actually written per destination (== expected, verified)
    counts: np.ndarray
    #: k-mer positions scanned (pre-range-filter), for work accounting
    n_positions: int
    times: TimeBreakdown


def _kmergen_chunk_task(job: _ChunkJob) -> _ChunkResult:
    """Enumerate one chunk's in-pass k-mers into the destination blocks.

    Pure with respect to driver state: reads the shared context, touches
    no forests (the LocalCC-Opt id->component mapping happens on the
    driver, per sender region, exactly as a sequential scan would).  The
    kept tuples are written directly into each owner task's block at
    this chunk's precomputed offsets — the all-to-all "send" is the
    write itself; only the tiny count/stat result crosses back.
    """
    ctx: _WorkerContext = worker_shared()
    tele = ctx.telemetry is not None
    if tele:
        telemetry.activate(ctx.telemetry)
    times = TimeBreakdown()
    t0 = time.perf_counter_ns()
    batch = load_chunk_reads(ctx.table, job.chunk, keep_metadata=False)
    t1 = time.perf_counter_ns()
    times.add(StepNames.KMERGEN_IO, (t1 - t0) / 1e9)
    if tele:
        telemetry.record_span(
            StepNames.KMERGEN_IO, t0, t1, task=job.task, aux=job.chunk
        )

    t0 = time.perf_counter_ns()
    tuples = enumerate_canonical_kmers(batch, ctx.k)
    bins = tuples.kmers.mmer_prefix(ctx.m).astype(np.int64)
    in_pass = (bins >= job.bin_lo) & (bins < job.bin_hi)
    kept = tuples.take(np.flatnonzero(in_pass))
    kept_bins = bins[in_pass]
    dest = np.searchsorted(job.task_edges, kept_bins, side="right") - 1
    dest = np.clip(dest, 0, ctx.n_tasks - 1)
    parts, counts = kept.split_by_destination(dest, ctx.n_tasks)
    t1 = time.perf_counter_ns()
    times.add(StepNames.KMERGEN, (t1 - t0) / 1e9)
    if tele:
        telemetry.record_span(
            StepNames.KMERGEN, t0, t1, task=job.task, aux=job.chunk
        )
        for d in range(ctx.n_tasks):
            if counts[d]:
                telemetry.add_counter(
                    "kmergen.tuples_routed",
                    int(counts[d]),
                    task=job.task,
                    aux=d,
                )

    # Mandatory, not gated by verify_static_counts: the write offsets
    # assume the table-predicted counts, so a mismatch would scribble
    # over a neighboring chunk's region.  Check before touching blocks.
    if not np.array_equal(counts, job.expected_counts):
        d = int(np.flatnonzero(counts != job.expected_counts)[0])
        raise StaticCountMismatch(
            f"chunk {job.chunk} -> task {d}: produced {counts[d]} tuples, "
            f"index predicted {job.expected_counts[d]}"
        )

    t0 = time.perf_counter_ns()
    if job.spill_targets is not None:
        # out-of-core pass: the same statically-offset writes, landing in
        # the owners' preallocated spill files instead of resident blocks
        with transient_tuples(kept.nbytes, task=job.task):
            for d, part in enumerate(parts):
                if len(part):
                    write_spill_region(
                        job.spill_targets[d], int(job.write_offsets[d]), part
                    )
    else:
        # the write IS the all-to-all: heap/shm handles land in the
        # owner's resident block, socket handles in the owning worker's
        # store (off-diagonal regions cross the wire — net.bytes_sent)
        for d, part in enumerate(parts):
            if len(part):
                write_block_region(
                    job.blocks[d],
                    int(job.write_offsets[d]),
                    part,
                    sender=job.task,
                )
    t1 = time.perf_counter_ns()
    times.add(StepNames.KMERGEN_COMM, (t1 - t0) / 1e9)
    if tele:
        telemetry.record_span(
            StepNames.KMERGEN_COMM, t0, t1, task=job.task, aux=job.chunk
        )
        telemetry.set_gauge(
            "proc.peak_rss_kb",
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            task=job.task,
        )
    return _ChunkResult(
        chunk=job.chunk,
        counts=counts,
        n_positions=len(tuples),
        times=times,
    )


@dataclass
class _OwnerJob:
    """One owner-task unit: LocalSort + LocalCC for task ``task``'s range."""

    task: int
    #: which of the S passes this job belongs to
    pass_index: int
    #: live tuples in the block (== block capacity for this pass)
    n_received: int
    #: the task's forest state; mutated in place by the serial engine,
    #: on a pickled copy (returned in the result) by the process engine
    parent: np.ndarray
    thread_edges: np.ndarray
    span: Tuple[int, int]
    #: the task's received-tuple block (sources in rank order — the
    #: deterministic receive-side layout of the zero-copy exchange);
    #: in-memory passes only
    block: BlockHandle | None = None
    #: the task's published spill file (out-of-core passes); the job
    #: re-attaches it as its one resident block and consumes it
    spill_target: SpillTarget | None = None


@dataclass
class _OwnerResult:
    task: int
    parent: np.ndarray
    n_received: int
    #: per-thread partition sizes, threads in rank order
    part_lengths: np.ndarray
    #: per-thread LocalCC edge counts, threads in rank order
    edges_by_thread: np.ndarray
    sort_stats: RadixSortStats
    cc_stats: LocalCCStats
    times: TimeBreakdown


def _owner_sort_cc_task(job: _OwnerJob) -> _OwnerResult:
    """Range-partition, sort, and fold one owner task's received block.

    Every step operates in place over the block's backing: the stable
    partition permutation, the per-thread radix sorts, and the LocalCC
    folds all consume zero-copy views.  Threads run in rank order, so
    the union sequence — and with it the resulting parent array — is
    identical on every engine.
    """
    ctx: _WorkerContext = worker_shared()
    tele = ctx.telemetry is not None
    if tele:
        telemetry.activate(ctx.telemetry)
    times = TimeBreakdown()
    forest = DisjointSetForest.wrap(job.parent)

    if job.spill_target is not None:
        # lazy re-attachment: this job's spill file becomes its one
        # resident block, and is consumed (deleted) once folded
        attach = resident_spill(
            job.spill_target, task=job.task, consume=True
        )
    else:
        # resolves zero-copy on every plane: heap blocks directly, shm
        # descriptors via segment attach, socket refs against the local
        # worker's own store (owner jobs run on the hosting worker)
        attach = resolve_block(job.block)
    with attach as block:
        t0 = time.perf_counter_ns()
        counts = range_partition_block(
            block, job.n_received, ctx.m, job.thread_edges, span=job.span
        )
        sort_stats = RadixSortStats()
        start = 0
        for count in counts:
            end = start + int(count)
            sort_stats.merge(
                radix_sort_block(
                    block, start, end, skip_constant=ctx.radix_skip_constant
                )
            )
            start = end
        t1 = time.perf_counter_ns()
        times.add(StepNames.LOCALSORT, (t1 - t0) / 1e9)
        if tele:
            telemetry.record_span(
                StepNames.LOCALSORT, t0, t1, task=job.task, aux=job.pass_index
            )

        t0 = time.perf_counter_ns()
        cc_stats, edges_by_thread = fold_block_partitions(
            block, counts, forest, ctx.kmer_filter
        )
        t1 = time.perf_counter_ns()
        times.add(StepNames.LOCALCC, (t1 - t0) / 1e9)
        if tele:
            telemetry.record_span(
                StepNames.LOCALCC, t0, t1, task=job.task, aux=job.pass_index
            )
    if tele:
        telemetry.set_gauge(
            "proc.peak_rss_kb",
            resource.getrusage(resource.RUSAGE_SELF).ru_maxrss,
            task=job.task,
        )
    return _OwnerResult(
        task=job.task,
        parent=forest.parent,
        n_received=job.n_received,
        part_lengths=np.asarray(counts, dtype=np.int64),
        edges_by_thread=edges_by_thread,
        sort_stats=sort_stats,
        cc_stats=cc_stats,
        times=times,
    )


@dataclass
class PipelineResult:
    """Everything a run produced."""

    config: PipelineConfig
    n_reads: int
    partition: PartitionResult
    work: RunWork
    projected: ProjectedTimes
    measured: TimeBreakdown
    plan: PassPlan
    index: IndexCreateResult
    merge_stats: MergeCCStats
    sort_stats: RadixSortStats
    cc_stats: LocalCCStats
    comm_stats: List[AllToAllStats] = field(default_factory=list)
    #: merged real-run telemetry; None unless the run enabled it
    telemetry: RunTelemetry | None = None
    #: pass indices that ran out-of-core (the spill schedule's True
    #: entries); empty for a fully in-memory run
    spilled_passes: List[int] = field(default_factory=list)

    @property
    def n_passes(self) -> int:
        return self.plan.n_passes

    @property
    def total_tuples(self) -> int:
        return self.work.total_tuples

    def projected_total(self) -> float:
        return self.projected.total_seconds

    def memory_per_task_bytes(self) -> int:
        """Section 3.7 memory estimate on this run's measured volumes.

        Well-defined for degenerate runs too: a zero-chunk table
        contributes no chunk payload (the index tables still count).
        """
        table = self.index.fastqpart
        chunk_bytes = _peak_chunk_bytes(table)
        table_bytes = table.nbytes + self.index.merhist.nbytes
        model = TimingModel(get_machine(self.config.machine))
        return model.memory_per_task(self.work, chunk_bytes, table_bytes)


class MetaPrep:
    """End-to-end METAPREP runner.  See :class:`PipelineConfig`."""

    def __init__(self, config: PipelineConfig | None = None) -> None:
        self.config = config or PipelineConfig()

    # ------------------------------------------------------------------
    def run(
        self,
        units: Sequence,
        output_dir: str | os.PathLike | None = None,
        index: IndexCreateResult | None = None,
        checkpoint_dir: str | os.PathLike | None = None,
        artifact_store=None,
        events=None,
    ) -> PipelineResult:
        """Partition the reads of ``units`` (paths or (R1, R2) pairs).

        ``index`` may carry a prebuilt :class:`IndexCreateResult` (the
        tables are reusable across runs and machines — that is their
        point); otherwise IndexCreate runs first.

        ``checkpoint_dir`` enables per-pass checkpointing: an interrupted
        multipass run resumes after its last completed pass (see
        :mod:`repro.core.checkpoint`).  A resumed run's measured times and
        work volumes cover only the passes it actually executed.  The
        checkpoint is cleared on successful completion.  Checkpoints are
        executor-agnostic: a run interrupted under one engine may resume
        under the other.

        ``artifact_store`` injects a
        :class:`repro.service.store.ArtifactStore`: when ``index`` is not
        supplied, the IndexCreate product is fetched from (or computed
        into) the store's content-addressed cache instead of being rebuilt
        unconditionally.

        ``events`` injects a job-event sink: a callable receiving one
        dict per lifecycle event (``index_ready``, ``pass_start``,
        ``pass_complete``, ``run_complete``).  The sink may raise to
        abort the run between passes — the job service uses exactly this
        for cooperative cancellation and timeouts; any checkpoint already
        written stays on disk for the next attempt.

        With ``config.telemetry`` (or a ``config.telemetry_dir``) the run
        additionally records per-worker spans and hot-path counters
        (:mod:`repro.telemetry`); the merged record lands on
        ``result.telemetry`` and, when a directory is set, is exported as
        Perfetto trace / metrics snapshot / Prometheus textfile.
        """
        cfg = self.config
        collector = None
        if cfg.telemetry_enabled:
            collector = TelemetryCollector(cfg.telemetry_dir)
            telemetry.activate(collector.settings)
        try:
            return self._run(
                units,
                output_dir,
                index,
                checkpoint_dir,
                artifact_store,
                events,
                collector,
            )
        finally:
            if collector is not None:
                telemetry.deactivate()
                collector.close()

    def _run(
        self,
        units: Sequence,
        output_dir,
        index,
        checkpoint_dir,
        artifact_store,
        events,
        collector: TelemetryCollector | None,
    ) -> PipelineResult:
        cfg = self.config

        def _emit(type_: str, **payload) -> None:
            if events is not None:
                events(dict(payload, type=type_))

        index_cache_hit = None
        if index is None:
            if artifact_store is not None:
                index, index_cache_hit = artifact_store.index_for(units, cfg)
            else:
                index = index_create(units, cfg.k, cfg.m, cfg.resolved_chunks())
        merhist, table = index.merhist, index.fastqpart
        _emit(
            "index_ready",
            cache_hit=index_cache_hit,
            n_chunks=table.n_chunks,
            n_reads=table.total_reads,
        )
        if merhist.k != cfg.k or merhist.m != cfg.m:
            raise ValueError(
                f"index built for k={merhist.k}, m={merhist.m}; "
                f"config wants k={cfg.k}, m={cfg.m}"
            )
        n_reads = table.total_reads
        p_tasks, t_threads = cfg.n_tasks, cfg.n_threads

        if cfg.n_passes is not None:
            n_passes = cfg.n_passes
        else:
            n_passes = passes_for_memory_budget(
                merhist,
                p_tasks,
                cfg.tuple_bytes,
                cfg.memory_budget_per_task,
                reserved_bytes_per_task=table.nbytes + merhist.nbytes + 8 * n_reads,
            )
        plan = plan_passes(merhist, n_passes, p_tasks, t_threads)
        assignment = chunk_assignment(table.n_chunks, p_tasks, t_threads)
        spill_flags = spill_schedule(
            plan, cfg.tuple_bytes, cfg.memory_budget_per_task, cfg.spill
        )
        if any(spill_flags):
            _LOG.info(
                "out-of-core: spilling pass(es) %s (mode=%s)",
                [s for s, f in enumerate(spill_flags) if f],
                cfg.spill,
            )

        work = RunWork(
            n_tasks=p_tasks,
            n_threads=t_threads,
            n_passes=n_passes,
            n_reads=n_reads,
            k=cfg.k,
            tuple_bytes=cfg.tuple_bytes,
        )
        work.fastq_chunk_bytes = _peak_chunk_bytes(table)
        work.table_bytes = table.nbytes + merhist.nbytes
        timer = StepTimer()
        forests = [DisjointSetForest(n_reads) for _ in range(p_tasks)]
        sort_stats = RadixSortStats()
        cc_stats = LocalCCStats()
        comm_stats: List[AllToAllStats] = []

        store = None
        start_pass = 0
        fingerprint = ""
        if checkpoint_dir is not None:
            from repro.core.checkpoint import (
                Checkpoint,
                CheckpointMismatch,
                CheckpointStore,
                config_fingerprint,
            )

            store = CheckpointStore(checkpoint_dir)
            fingerprint = config_fingerprint(
                cfg, n_reads, merhist.total_tuples
            )
            if store.exists():
                ckpt = store.load(fingerprint)
                if ckpt.n_passes_total != n_passes:
                    raise CheckpointMismatch(
                        f"checkpoint was taken at {ckpt.n_passes_total} "
                        f"passes; this run plans {n_passes}"
                    )
                forests = [
                    DisjointSetForest.from_parent_array(p)
                    for p in ckpt.parents
                ]
                start_pass = ckpt.passes_done
                _LOG.info(
                    "resuming from checkpoint: %d/%d passes done",
                    start_pass,
                    n_passes,
                )

        executor = create_engine(
            cfg.executor, cfg.max_workers, workers=cfg.worker_addresses
        )
        executor.set_shared(
            _WorkerContext(
                table=table,
                k=cfg.k,
                m=cfg.m,
                n_tasks=p_tasks,
                n_threads=t_threads,
                kmer_filter=cfg.kmer_filter,
                radix_skip_constant=cfg.radix_skip_constant,
                telemetry=(
                    collector.settings if collector is not None else None
                ),
            )
        )
        plane = create_block_transport(cfg.dataplane, executor)
        spill_mgr = (
            SpillManager(cfg.spill_dir) if any(spill_flags) else None
        )
        try:
            for spec in plan.passes:
                if spec.index < start_pass:
                    continue
                _emit(
                    "pass_start", pass_index=spec.index, n_passes=n_passes
                )
                self._run_pass(
                    spec,
                    table,
                    assignment,
                    forests,
                    work,
                    timer,
                    sort_stats,
                    cc_stats,
                    comm_stats,
                    executor,
                    plane,
                    collector,
                    spill_mgr=(
                        spill_mgr if spill_flags[spec.index] else None
                    ),
                )
                if store is not None:
                    from repro.core.checkpoint import Checkpoint

                    store.save(
                        Checkpoint(
                            fingerprint=fingerprint,
                            n_passes_total=n_passes,
                            passes_done=spec.index + 1,
                            parents=[f.parent for f in forests],
                        )
                    )
                _emit(
                    "pass_complete", pass_index=spec.index, n_passes=n_passes
                )
        finally:
            # executor first (workers drop their block attachments when
            # they exit), then the plane releases everything it backs —
            # pooled segments are unlinked (the /dev/shm leak guarantee),
            # remote worker stores are swept best-effort — and the spill
            # dir goes with everything still in it, so an aborted run
            # leaves zero orphan segments, sockets, or spill files.
            executor.close()
            plane.close()
            if spill_mgr is not None:
                spill_mgr.close()

        # ---- MergeCC --------------------------------------------------
        t0_ns = time.perf_counter_ns()
        with timer.step(StepNames.MERGECC):
            global_parent, merge_stats = merge_component_arrays(
                [f.parent for f in forests]
            )
        if telemetry.enabled():
            # the tree merge is a collective: every task participates over
            # the same interval, so each task row carries the span
            t1_ns = time.perf_counter_ns()
            for p in range(p_tasks):
                telemetry.record_span(StepNames.MERGECC, t0_ns, t1_ns, task=p)
        work.merge_rounds = tree_merge_schedule(p_tasks)
        work.merge_bytes_per_send = 4 * n_reads
        work.merge_entries_by_task = np.asarray(
            [merge_stats.merges_by_task.get(p, 0) * n_reads for p in range(p_tasks)],
            dtype=np.int64,
        )
        work.broadcast_bytes = 4 * n_reads if p_tasks > 1 else 0

        # ---- partition + CC-I/O ----------------------------------------
        partition = partition_from_parent(global_parent)
        if cfg.write_outputs and output_dir is not None:
            t0_ns = time.perf_counter_ns()
            with timer.step(StepNames.CC_IO):
                write_partitions(
                    partition, table, assignment, p_tasks, t_threads, output_dir
                )
            if telemetry.enabled():
                telemetry.record_span(
                    StepNames.CC_IO, t0_ns, time.perf_counter_ns()
                )
            work.ccio_bytes = partition.bytes_written.copy()
        else:
            work.ccio_bytes = _estimate_ccio_bytes(
                table, assignment, p_tasks, t_threads
            )

        if store is not None:
            store.clear()
        _emit(
            "run_complete",
            n_components=partition.summary.n_components,
            n_reads=n_reads,
        )
        projected = TimingModel(get_machine(cfg.machine)).project(work)
        run_telemetry = None
        if collector is not None:
            run_telemetry = collector.finalize(
                n_tasks=p_tasks, projected=projected
            )
            if cfg.telemetry_dir is not None:
                from repro.telemetry.exporters import export_run_artifacts

                artifacts = export_run_artifacts(
                    run_telemetry, cfg.telemetry_dir
                )
                _LOG.info(
                    "telemetry artifacts: %s",
                    ", ".join(str(p) for p in artifacts.values()),
                )
        _LOG.info(
            "run complete: %d reads, %d tuples, %d components (LC %.1f%%), "
            "projected %s %.2fs",
            n_reads,
            work.total_tuples,
            partition.summary.n_components,
            partition.summary.largest_component_percent,
            cfg.machine,
            projected.total_seconds,
        )
        return PipelineResult(
            config=cfg,
            n_reads=n_reads,
            partition=partition,
            work=work,
            projected=projected,
            measured=timer.breakdown,
            plan=plan,
            index=index,
            merge_stats=merge_stats,
            sort_stats=sort_stats,
            cc_stats=cc_stats,
            comm_stats=comm_stats,
            telemetry=run_telemetry,
            spilled_passes=[s for s, f in enumerate(spill_flags) if f],
        )

    # ------------------------------------------------------------------
    def _run_pass(
        self,
        spec,
        table,
        assignment: np.ndarray,
        forests: List[DisjointSetForest],
        work: RunWork,
        timer: StepTimer,
        sort_stats: RadixSortStats,
        cc_stats: LocalCCStats,
        comm_stats: List[AllToAllStats],
        executor: ExecutionBackend,
        plane: BlockTransport,
        collector: TelemetryCollector | None = None,
        spill_mgr: SpillManager | None = None,
    ) -> None:
        cfg = self.config
        p_tasks, t_threads = cfg.n_tasks, cfg.n_threads
        is_first_pass = spec.index == 0
        use_opt = cfg.localcc_opt and not is_first_pass
        spilling = spill_mgr is not None

        expected = None
        if cfg.verify_static_counts:
            expected = send_counts_matrix(
                table,
                assignment,
                spec.task_edges,
                p_tasks,
                t_threads,
                spec.bin_lo,
                spec.bin_hi,
            )

        # ---- static dataplane layout -----------------------------------
        # The index tables fix, before any k-mer is enumerated, exactly
        # how many tuples each chunk contributes to each owner task and
        # where in the owner's block they land (section 3.2.2/3.3).  One
        # destination block per owner, sized to the pass; chunk writers
        # never contend and never handshake.
        per_chunk = chunk_send_counts(
            table, spec.task_edges, p_tasks, spec.bin_lo, spec.bin_hi
        )
        offsets, sender_splits, totals = recv_write_offsets(
            per_chunk, assignment, p_tasks, t_threads
        )
        if spilling:
            # out-of-core pass: no destination blocks exist anywhere —
            # the owners' tuples accumulate in preallocated spill files
            # whose byte layout every writer derives from (k, totals[d])
            handles: List[BlockHandle] = []
            spill_targets = spill_mgr.create_pass_targets(
                spec.index, cfg.k, [int(t) for t in totals]
            )
        else:
            # one published block per owner task, placed by the plane
            # (resident pool block in-host, hosting worker's store under
            # the socket plane — owner d's block lives where owner d's
            # jobs run)
            handles = [
                plane.publish(cfg.k, int(totals[d]), owner=d)
                for d in range(p_tasks)
            ]
            spill_targets = None

        try:
            # ---- KmerGen (+ I/O) ---------------------------------------
            # One job per chunk, dispatched through the executor; results
            # come back in chunk order regardless of which worker ran
            # them.  Payloads carry block handles, never tuples.
            chunk_results = executor.map(
                _kmergen_chunk_task,
                [
                    _ChunkJob(
                        chunk=c,
                        task=int(assignment[c]) // t_threads,
                        pass_index=spec.index,
                        bin_lo=spec.bin_lo,
                        bin_hi=spec.bin_hi,
                        task_edges=spec.task_edges,
                        expected_counts=per_chunk[c],
                        write_offsets=offsets[c],
                        blocks=None if spilling else handles,
                        spill_targets=spill_targets,
                    )
                    for c in range(table.n_chunks)
                ],
            )
            if collector is not None:
                collector.merge()  # KmerGen barrier: all chunk spools final

            actual_counts = np.zeros(
                (p_tasks, t_threads, p_tasks), dtype=np.int64
            )
            for res in chunk_results:
                c = res.chunk
                p, t = divmod(int(assignment[c]), t_threads)
                timer.merge(res.times)
                work.kmergen_io_bytes[p, t] += table.chunk_bytes(c)
                work.fastq_parse_bytes[p, t] += table.chunk_bytes(c)
                work.kmergen_positions_scanned[p, t] += res.n_positions
                work.kmergen_tuples[p, t] += int(res.counts.sum())
                actual_counts[p, t, :] += res.counts

            if expected is not None and not np.array_equal(
                actual_counts, expected
            ):
                bad = np.argwhere(actual_counts != expected)[0]
                p, t, d = (int(x) for x in bad)
                raise StaticCountMismatch(
                    f"pass {spec.index}: task {p} thread {t} -> task {d}: "
                    f"produced {actual_counts[p, t, d]} tuples, index "
                    f"predicted {expected[p, t, d]}"
                )

            if use_opt:
                # LocalCC-Opt: rewrite read ids to component roots in
                # place, one sender region at a time with that sender's
                # forest — forest state never crosses the executor
                # boundary, and the mapping equals the sequential
                # chunk-by-chunk scan (find_many is pure, elementwise).
                t_gen0 = time.perf_counter_ns()
                for d in range(p_tasks):
                    t_d0 = time.perf_counter_ns()
                    for p in range(p_tasks):
                        lo_i = int(sender_splits[p, d])
                        hi_i = int(sender_splits[p + 1, d])
                        if hi_i <= lo_i:
                            continue
                        if spilling:
                            # same elementwise mapping, applied to the
                            # ids column region of the spill file — only
                            # that region's 4 bytes/tuple are resident
                            rewrite_spill_ids(
                                spill_targets[d],
                                lo_i,
                                hi_i,
                                lambda ids, p=p: map_ids_to_components(
                                    ids, forests[p]
                                ),
                            )
                        else:
                            ids = plane.read_ids(handles[d], lo_i, hi_i)
                            plane.write_ids(
                                handles[d],
                                lo_i,
                                hi_i,
                                map_ids_to_components(ids, forests[p]),
                            )
                    if telemetry.enabled():
                        telemetry.record_span(
                            StepNames.KMERGEN,
                            t_d0,
                            time.perf_counter_ns(),
                            task=d,
                            aux=spec.index,
                        )
                timer.record(
                    StepNames.KMERGEN,
                    (time.perf_counter_ns() - t_gen0) / 1e9,
                )

            # ---- KmerGen-Comm ------------------------------------------
            # The tuples already sit in their owners' blocks (the chunk
            # writers' offset writes *are* the exchange); what remains of
            # Comm is the byte accounting, reproduced exactly from the
            # static counts.
            with timer.step(StepNames.KMERGEN_COMM):
                by_task = sender_splits[1:] - sender_splits[:-1]
                stats = block_exchange_stats(by_task, cfg.tuple_bytes)
            comm_stats.append(stats)
            work.comm_bytes_matrix += stats.bytes_matrix
            work.comm_stage_max_bytes.append(
                list(stats.max_message_bytes_per_stage)
            )

            if spilling:
                # stage barrier: fsync + rename every owner's file from
                # its in-flight name; consumers only ever see complete,
                # durable spill files
                spill_targets = spill_mgr.publish(spill_targets)

            # ---- LocalSort + LocalCC per owner task ---------------------
            # One job per destination task d; the serial engine mutates
            # forests[d] in place, the process engine round-trips a
            # pickled copy — either way res.parent is the post-pass
            # forest state.  In-memory passes keep tuples in the blocks
            # throughout; spill passes re-attach one owner file each.
            owner_results = executor.map(
                _owner_sort_cc_task,
                [
                    _OwnerJob(
                        task=d,
                        pass_index=spec.index,
                        n_received=int(totals[d]),
                        parent=forests[d].parent,
                        thread_edges=spec.thread_edges[d],
                        span=(
                            int(spec.task_edges[d]),
                            int(spec.task_edges[d + 1]),
                        ),
                        block=None if spilling else handles[d],
                        spill_target=(
                            spill_targets[d] if spilling else None
                        ),
                    )
                    for d in range(p_tasks)
                ],
            )
            if collector is not None:
                collector.merge()  # LocalSort+LocalCC barrier
            nominal_passes = radix_passes_for(cfg.k)
            for res in owner_results:
                d = res.task
                forests[d] = DisjointSetForest.wrap(res.parent)
                timer.merge(res.times)
                # partition scatter work: each thread handles ~1/T of the
                # stream
                work.partition_tuples[d, :] += int(
                    np.ceil(res.n_received / t_threads)
                )
                # timing model uses the paper's fixed pass count
                work.sort_tuple_passes[d, :] += res.part_lengths * nominal_passes
                if is_first_pass:
                    work.cc_edges_first_pass[d, :] += res.edges_by_thread
                else:
                    work.cc_edges_later_passes[d, :] += res.edges_by_thread
                sort_stats.merge(res.sort_stats)
                cc_stats.merge(res.cc_stats)
        finally:
            for handle in handles:
                plane.release(handle)
            if spilling:
                # owner jobs consume their files on success; this covers
                # every failure path so no pass leaves files behind
                spill_mgr.sweep_pass(spec.index)
