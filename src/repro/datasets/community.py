"""Community composition: species, abundances, genome synthesis."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.datasets.genomes import Genome, SegmentLibrary, make_genome_set
from repro.util.rng import rng_for
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SpeciesSpec:
    """Per-species knobs (usually produced by :class:`CommunitySpec`)."""

    name: str
    genome_length: int
    abundance: float


@dataclass
class CommunitySpec:
    """Parameters of a synthetic community."""

    n_species: int
    genome_length: int
    #: sigma of the log-normal abundance distribution (0 = even community,
    #: like a mock community; ~1 = skewed, like soil).
    abundance_sigma: float = 0.8
    length_jitter: float = 0.2
    # shared-segment library
    n_conserved: int = 2
    conserved_length: int = 120
    conserved_probability: float = 1.0
    n_repeats: int = 2
    repeat_length: int = 45
    repeat_copies: int = 3
    #: probability a given genome carries a given repeat segment at all
    repeat_probability: float = 1.0

    def __post_init__(self) -> None:
        check_positive("n_species", self.n_species)
        check_positive("genome_length", self.genome_length)


@dataclass
class Community:
    """Realized community: genomes plus normalized abundances."""

    genomes: List[Genome]
    abundances: np.ndarray
    library: SegmentLibrary = field(default_factory=SegmentLibrary)

    @property
    def n_species(self) -> int:
        return len(self.genomes)

    @property
    def total_genome_length(self) -> int:
        return sum(len(g) for g in self.genomes)

    def expected_coverage(self, total_sequenced_bases: int) -> np.ndarray:
        """Per-species expected depth of coverage for a sequencing budget.

        Species ``i`` receives ``abundances[i]`` of the reads; coverage is
        that share of bases divided by its genome length.  This is the
        quantity the paper's filter window (10 <= KF < 30) must bracket.
        """
        share = self.abundances * total_sequenced_bases
        lengths = np.array([len(g) for g in self.genomes], dtype=np.float64)
        return share / lengths


def build_community(spec: CommunitySpec, seed: int) -> Community:
    """Synthesize a deterministic community from a spec and seed."""
    lib_rng = rng_for(seed, "library")
    library = SegmentLibrary.generate(
        lib_rng,
        spec.n_conserved,
        spec.conserved_length,
        spec.n_repeats,
        spec.repeat_length,
    )
    genomes = make_genome_set(
        seed,
        spec.n_species,
        spec.genome_length,
        length_jitter=spec.length_jitter,
        library=library,
        conserved_probability=spec.conserved_probability,
        repeat_copies=spec.repeat_copies,
        repeat_probability=spec.repeat_probability,
    )
    ab_rng = rng_for(seed, "abundance")
    if spec.abundance_sigma > 0:
        raw = ab_rng.lognormal(mean=0.0, sigma=spec.abundance_sigma, size=spec.n_species)
    else:
        raw = np.ones(spec.n_species)
    abundances = raw / raw.sum()
    return Community(genomes=genomes, abundances=abundances, library=library)
