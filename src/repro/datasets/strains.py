"""Strain simulation: closely related genome variants.

Paper section 2, challenge (i): "Closely related strains from the same
species might be present in the community sample, and these are difficult
to distinguish from repeats in the genomes of individual organisms."

This module derives strain variants from a base genome (SNPs at a given
divergence rate plus optional small indels) and provides the analysis the
challenge implies: strains of one species share most of their k-mers, so
read-graph partitioning necessarily co-partitions them (quantified by
:func:`strain_kmer_similarity`), and assemblers see their differences as
bubbles (which the cleaning pass will collapse toward the dominant
strain — the strain-aware-assembly problem in miniature).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.datasets.genomes import Genome
from repro.kmers.counter import count_canonical_kmers
from repro.seqio.records import ReadBatch
from repro.util.rng import rng_for
from repro.util.validation import check_in_range


@dataclass(frozen=True)
class StrainSpec:
    """Divergence knobs for one derived strain."""

    snp_rate: float = 0.01
    indel_rate: float = 0.0005
    max_indel: int = 4

    def __post_init__(self) -> None:
        check_in_range("snp_rate", self.snp_rate, 0.0, 0.3)
        check_in_range("indel_rate", self.indel_rate, 0.0, 0.1)
        check_in_range("max_indel", self.max_indel, 1, 50)


def derive_strain(
    base: Genome, spec: StrainSpec, seed: int, name: str | None = None
) -> Genome:
    """A strain variant of ``base``: SNPs + small indels, deterministic."""
    rng = rng_for(seed, "strain", base.name)
    codes = base.codes.astype(np.int64)

    # SNPs: substitute with a different base
    snps = rng.random(len(codes)) < spec.snp_rate
    if snps.any():
        shift = rng.integers(1, 4, size=int(snps.sum()))
        codes[snps] = (codes[snps] + shift) % 4

    # indels: splice segments in/out
    if spec.indel_rate > 0:
        out: List[np.ndarray] = []
        pos = 0
        n_events = rng.poisson(spec.indel_rate * len(codes))
        sites = np.sort(rng.integers(0, len(codes), size=n_events))
        for site in sites.tolist():
            if site <= pos:
                continue
            out.append(codes[pos:site])
            size = int(rng.integers(1, spec.max_indel + 1))
            if rng.random() < 0.5:  # insertion
                out.append(rng.integers(0, 4, size=size))
                pos = site
            else:  # deletion
                pos = min(site + size, len(codes))
        out.append(codes[pos:])
        codes = np.concatenate(out)

    return Genome(
        name=name or f"{base.name}_strain{seed}",
        codes=codes.astype(np.uint8),
        planted_segments=list(base.planted_segments),
    )


def make_strain_family(
    base: Genome, n_strains: int, spec: StrainSpec, seed: int = 0
) -> List[Genome]:
    """``n_strains`` independent variants of ``base`` (plus the base)."""
    return [base] + [
        derive_strain(base, spec, seed=seed * 1000 + i) for i in range(n_strains)
    ]


def strain_kmer_similarity(a: Genome, b: Genome, k: int = 27) -> float:
    """Jaccard similarity of two genomes' canonical k-mer sets.

    The quantity behind challenge (i): at 1% SNP divergence and k=27,
    strains still share the majority of their k-mers (each SNP kills only
    ~k k-mers), so read-graph partitioning cannot separate them — tested,
    and the reason the paper's partitions are per-species, not per-strain.
    """
    sa = count_canonical_kmers(
        ReadBatch.from_sequences([a.sequence]), k
    ).kmers.lo
    sb = count_canonical_kmers(
        ReadBatch.from_sequences([b.sequence]), k
    ).kmers.lo
    if len(sa) == 0 and len(sb) == 0:
        return 1.0
    inter = np.intersect1d(sa, sb, assume_unique=True)
    union = len(sa) + len(sb) - len(inter)
    return len(inter) / union if union else 1.0


def expected_shared_kmer_fraction(snp_rate: float, k: int) -> float:
    """Analytic expectation: a k-mer survives iff none of its k positions
    mutated: ``(1 - snp_rate)^k``."""
    check_in_range("snp_rate", snp_rate, 0.0, 1.0)
    return float((1.0 - snp_rate) ** k)
