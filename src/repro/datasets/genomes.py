"""Genome synthesis: random backbones with planted shared/repeat segments."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from repro.seqio.alphabet import decode_sequence
from repro.util.rng import rng_for
from repro.util.validation import check_positive


def random_sequence(rng: np.random.Generator, length: int) -> np.ndarray:
    """Uniform random 2-bit code array of ``length`` bases."""
    check_positive("length", length)
    return rng.integers(0, 4, size=length, dtype=np.int64).astype(np.uint8)


@dataclass
class SegmentLibrary:
    """Shared sequence material planted into genomes.

    ``conserved`` segments model cross-species homology (16S-like): one
    copy per genome that carries them — they stitch species together into
    the giant component.  ``repeats`` model intra-genome repeats: several
    copies per genome — they create high-frequency k-mers.
    """

    conserved: List[np.ndarray] = field(default_factory=list)
    repeats: List[np.ndarray] = field(default_factory=list)

    @classmethod
    def generate(
        cls,
        rng: np.random.Generator,
        n_conserved: int,
        conserved_length: int,
        n_repeats: int,
        repeat_length: int,
    ) -> "SegmentLibrary":
        return cls(
            conserved=[
                random_sequence(rng, conserved_length) for _ in range(n_conserved)
            ],
            repeats=[random_sequence(rng, repeat_length) for _ in range(n_repeats)],
        )


@dataclass
class Genome:
    """One species' genome: 2-bit codes plus provenance annotations."""

    name: str
    codes: np.ndarray
    planted_segments: List[tuple] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.codes)

    @property
    def sequence(self) -> str:
        return decode_sequence(self.codes)

    def gc_content(self) -> float:
        c_or_g = (self.codes == 1) | (self.codes == 2)
        return float(c_or_g.mean()) if len(self.codes) else 0.0


def synthesize_genome(
    name: str,
    length: int,
    rng: np.random.Generator,
    library: SegmentLibrary | None = None,
    conserved_probability: float = 1.0,
    repeat_copies: int = 0,
    repeat_probability: float = 1.0,
) -> Genome:
    """Build a genome: random backbone + planted library segments.

    Each conserved segment is planted once with probability
    ``conserved_probability``; each repeat segment is carried with
    probability ``repeat_probability`` and, when carried, planted
    ``repeat_copies`` times.  Plant positions are uniform and may overlap
    previously planted material (overwrites), as in real tandem-repeat
    mosaic structure.
    """
    codes = random_sequence(rng, length)
    planted: List[tuple] = []
    if library is not None:
        for si, seg in enumerate(library.conserved):
            if len(seg) >= length:
                continue
            if rng.random() <= conserved_probability:
                pos = int(rng.integers(0, length - len(seg)))
                codes[pos : pos + len(seg)] = seg
                planted.append(("conserved", si, pos))
        for si, seg in enumerate(library.repeats):
            if len(seg) >= length:
                continue
            if rng.random() > repeat_probability:
                continue
            for _ in range(repeat_copies):
                pos = int(rng.integers(0, length - len(seg)))
                codes[pos : pos + len(seg)] = seg
                planted.append(("repeat", si, pos))
    return Genome(name=name, codes=codes, planted_segments=planted)


def make_genome_set(
    base_seed: int,
    n_species: int,
    genome_length: int,
    length_jitter: float = 0.2,
    library: SegmentLibrary | None = None,
    conserved_probability: float = 1.0,
    repeat_copies: int = 0,
    repeat_probability: float = 1.0,
) -> List[Genome]:
    """A community's genomes with jittered lengths, deterministic by seed."""
    genomes = []
    for i in range(n_species):
        rng = rng_for(base_seed, "genome", i)
        jitter = 1.0 + length_jitter * (rng.random() * 2 - 1)
        length = max(int(genome_length * jitter), 64)
        genomes.append(
            synthesize_genome(
                f"species_{i}",
                length,
                rng,
                library=library,
                conserved_probability=conserved_probability,
                repeat_copies=repeat_copies,
                repeat_probability=repeat_probability,
            )
        )
    return genomes
