"""Synthetic metagenome datasets.

The paper evaluates on four public datasets (Table 2: HG human gut, LL
Lake Lanier, MM mock microbial community, IS Iowa continuous-corn soil,
2.3-223 Gbp).  Those inputs are multi-gigabase sequencing archives we
cannot ship or download, so this package generates scaled-down synthetic
*analogues* with the structural properties the evaluation actually
exercises:

* multiple species genomes with log-normal abundance (uneven coverage),
* conserved segments shared across species — these are what produce the
  paper's giant read-graph component, and what the k-mer frequency filter
  cuts (Table 7),
* repeat segments duplicated within genomes — the high-frequency k-mers,
* paired-end reads with substitution errors and occasional N's — the
  low-frequency noise k-mers,
* dataset size ratios following Table 2.

Generation is deterministic given (dataset id, seed, scale).
"""

from repro.datasets.genomes import Genome, synthesize_genome, SegmentLibrary
from repro.datasets.community import CommunitySpec, SpeciesSpec, build_community
from repro.datasets.reads import ReadSimulator, SimulatedPair
from repro.datasets.registry import (
    DATASETS,
    DatasetSpec,
    BuiltDataset,
    build_dataset,
)
from repro.datasets.strains import (
    StrainSpec,
    derive_strain,
    make_strain_family,
    strain_kmer_similarity,
)

__all__ = [
    "Genome",
    "synthesize_genome",
    "SegmentLibrary",
    "CommunitySpec",
    "SpeciesSpec",
    "build_community",
    "ReadSimulator",
    "SimulatedPair",
    "DATASETS",
    "DatasetSpec",
    "BuiltDataset",
    "build_dataset",
    "StrainSpec",
    "derive_strain",
    "make_strain_family",
    "strain_kmer_similarity",
]
