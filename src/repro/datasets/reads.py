"""Paired-end read simulation.

Fragments are drawn from a community genome (species by abundance,
position uniform, strand uniform); R1 is the fragment's 5' end, R2 the
reverse complement of its 3' end — the standard Illumina layout.
Substitution errors and occasional N's are applied per base.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from repro.datasets.community import Community
from repro.seqio.alphabet import CODE_INVALID, decode_sequence
from repro.seqio.records import FastqRecord
from repro.util.rng import rng_for
from repro.util.validation import check_in_range, check_positive


@dataclass(frozen=True)
class SimulatedPair:
    """One read pair plus its provenance (for tests)."""

    r1: FastqRecord
    r2: FastqRecord
    species: int
    position: int
    forward: bool


@dataclass
class ReadSimulator:
    """Deterministic paired-end simulator over a community."""

    community: Community
    read_length: int = 100
    insert_mean: float = 280.0
    insert_sd: float = 25.0
    error_rate: float = 0.005
    n_rate: float = 0.0015
    seed: int = 0

    def __post_init__(self) -> None:
        check_positive("read_length", self.read_length)
        check_in_range("error_rate", self.error_rate, 0.0, 0.5)
        check_in_range("n_rate", self.n_rate, 0.0, 0.5)
        if self.insert_mean < self.read_length:
            raise ValueError(
                f"insert_mean ({self.insert_mean}) must be >= read_length "
                f"({self.read_length})"
            )

    # ------------------------------------------------------------------
    def _mutate(self, codes: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        out = codes.copy()
        if self.error_rate > 0:
            errs = rng.random(len(out)) < self.error_rate
            if errs.any():
                # substitute with a *different* base: add 1..3 mod 4
                shift = rng.integers(1, 4, size=int(errs.sum()))
                out[errs] = (out[errs].astype(np.int64) + shift) % 4
        if self.n_rate > 0:
            ns = rng.random(len(out)) < self.n_rate
            out[ns] = CODE_INVALID
        return out

    def simulate_pair(self, pair_index: int) -> SimulatedPair:
        """Generate pair ``pair_index`` (independent of the others)."""
        rng = rng_for(self.seed, "pair", pair_index)
        comm = self.community
        species = int(rng.choice(comm.n_species, p=comm.abundances))
        genome = comm.genomes[species].codes
        insert = int(
            np.clip(
                rng.normal(self.insert_mean, self.insert_sd),
                self.read_length,
                len(genome),
            )
        )
        max_pos = len(genome) - insert
        pos = int(rng.integers(0, max_pos + 1)) if max_pos > 0 else 0
        fragment = genome[pos : pos + insert]
        forward = bool(rng.random() < 0.5)
        if not forward:
            fragment = (3 - np.minimum(fragment, 3))[::-1].astype(np.uint8)

        raw1 = fragment[: self.read_length]
        tail = fragment[-self.read_length :]
        raw2 = (3 - np.minimum(tail, 3))[::-1].astype(np.uint8)
        seq1 = decode_sequence(self._mutate(raw1, rng))
        seq2 = decode_sequence(self._mutate(raw2, rng))
        qual = "I" * self.read_length
        name = f"pair{pair_index}/sp{species}/pos{pos}"
        return SimulatedPair(
            r1=FastqRecord(name + "/1", seq1, qual),
            r2=FastqRecord(name + "/2", seq2, qual),
            species=species,
            position=pos,
            forward=forward,
        )

    def pairs(self, n_pairs: int) -> Iterator[SimulatedPair]:
        for i in range(n_pairs):
            yield self.simulate_pair(i)

    def simulate(self, n_pairs: int) -> Tuple[List[FastqRecord], List[FastqRecord]]:
        """All R1 records and all R2 records, index-aligned."""
        r1s: List[FastqRecord] = []
        r2s: List[FastqRecord] = []
        for pair in self.pairs(n_pairs):
            r1s.append(pair.r1)
            r2s.append(pair.r2)
        return r1s, r2s
