"""Dataset registry: scaled analogues of the paper's Table 2.

| ID | Paper dataset              | Reads (paper) | Gbp   | Analogue structure        |
|----|----------------------------|---------------|-------|---------------------------|
| HG | Human gut (SRR341725)      | 12.7 M        | 2.29  | few species, moderate cov |
| LL | Lake Lanier (SRR947737)    | 21.3 M        | 4.26  | many species, low cov     |
| MM | Mock microbial (SRX200676) | 54.8 M        | 11.07 | staggered mock, high cov  |
| IS | Iowa corn soil (JGI 402461)| 1132.8 M      | 223.26| very diverse, huge        |

Sizes here are scaled down ~5000x (pure-Python substrate); the *ratios*
between datasets follow Table 2 sub-linearly (IS is capped — a 90x HG
analogue would add nothing but wall time).  Coverage / diversity /
repeat-structure per dataset are tuned to reproduce the paper's
partitioning behaviour (giant components of Table 7, filter response), not
its absolute base counts.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Dict, List, Tuple

from repro.datasets.community import Community, CommunitySpec, build_community
from repro.datasets.reads import ReadSimulator
from repro.index.fastqpart import FastqUnit
from repro.seqio.fastq import write_fastq
from repro.util.logging import get_logger
from repro.util.rng import derive_seed

_LOG = get_logger("datasets.registry")


@dataclass(frozen=True)
class DatasetSpec:
    """Recipe for one synthetic dataset."""

    name: str
    description: str
    community: CommunitySpec
    n_pairs: int
    read_length: int = 100
    insert_mean: float = 280.0
    insert_sd: float = 25.0
    error_rate: float = 0.005
    n_rate: float = 0.0015

    @property
    def total_bases(self) -> int:
        return 2 * self.n_pairs * self.read_length

    def scaled(self, scale: float) -> "DatasetSpec":
        """Scale the sequencing depth (pair count) by ``scale``.

        Genome sizes are kept fixed so coverage scales with depth — the
        same knob a deeper sequencing run would turn.
        """
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        return replace(self, n_pairs=max(int(self.n_pairs * scale), 1))


DATASETS: Dict[str, DatasetSpec] = {
    "HG": DatasetSpec(
        name="HG",
        description="Human gut analogue: moderate diversity, ~18x coverage",
        # coverage spans ~8-45x across species (mean ~24x, sigma 0.9), so
        # the paper's KF < 30 filter prunes the abundant species' genuine
        # k-mers while sparing the rare ones — the Table 7 response.
        community=CommunitySpec(
            n_species=7,
            genome_length=3000,
            abundance_sigma=0.9,
            n_conserved=2,
            conserved_length=120,
            conserved_probability=0.9,
            n_repeats=2,
            repeat_length=45,
            repeat_copies=3,
        ),
        n_pairs=2500,
    ),
    "LL": DatasetSpec(
        name="LL",
        description="Lake Lanier analogue: high diversity, low skewed coverage",
        # many species; under half carry the conserved segments and the
        # skewed abundances leave several species at marginal coverage, so
        # the unfiltered giant component stays well below MM's (paper
        # Table 7: LL 76.3% vs MM 99.5%).
        community=CommunitySpec(
            n_species=16,
            genome_length=5000,
            abundance_sigma=1.2,
            n_conserved=2,
            conserved_length=120,
            conserved_probability=0.4,
            n_repeats=2,
            repeat_length=45,
            repeat_copies=2,
            repeat_probability=0.35,
        ),
        n_pairs=4200,
    ),
    "MM": DatasetSpec(
        name="MM",
        description="Mock community analogue: staggered abundances, high coverage",
        community=CommunitySpec(
            n_species=10,
            genome_length=4000,
            abundance_sigma=1.3,
            n_conserved=3,
            conserved_length=140,
            conserved_probability=1.0,
            n_repeats=3,
            repeat_length=45,
            repeat_copies=4,
        ),
        n_pairs=10500,
    ),
    "IS": DatasetSpec(
        name="IS",
        description="Iowa corn soil analogue: very high diversity (size-capped)",
        # Repeat-light profile: IS is exercised by the scaling experiments
        # (Fig. 7, Tables 2/5), not the partition-quality ones.  At this
        # reproduction scale a k-mer repeated across all 60 genomes would
        # alone exceed a thread's tuple share under a 1536-way
        # decomposition — a pure scale artifact (on the real 223 Gbp
        # dataset a thread share is ~1e8 tuples, dwarfing any k-mer's
        # frequency) — so the community carries few shared segments.
        community=CommunitySpec(
            n_species=60,
            genome_length=3000,
            abundance_sigma=1.2,
            n_conserved=2,
            conserved_length=120,
            conserved_probability=0.1,
            n_repeats=0,
            repeat_length=45,
            repeat_copies=0,
        ),
        n_pairs=25000,
    ),
}


@dataclass
class BuiltDataset:
    """A materialized dataset: FASTQ files on disk plus ground truth."""

    spec: DatasetSpec
    seed: int
    r1_path: str
    r2_path: str
    community: Community
    simulator: ReadSimulator
    species_of_pair: List[int] = field(default_factory=list)

    @property
    def name(self) -> str:
        return self.spec.name

    @property
    def n_pairs(self) -> int:
        return self.spec.n_pairs

    @property
    def n_reads(self) -> int:
        """Read-pair count == global read id count (both mates share an id)."""
        return self.spec.n_pairs

    @property
    def total_bases(self) -> int:
        return self.spec.total_bases

    @property
    def units(self) -> List[FastqUnit]:
        return [FastqUnit(self.r1_path, self.r2_path)]

    @property
    def fastq_files(self) -> List[Tuple[str, str]]:
        return [(self.r1_path, self.r2_path)]

    @property
    def file_bytes(self) -> int:
        return os.path.getsize(self.r1_path) + os.path.getsize(self.r2_path)


def build_dataset(
    name: str,
    workdir: str | os.PathLike,
    seed: int = 0,
    scale: float = 1.0,
    force: bool = False,
) -> BuiltDataset:
    """Materialize a registry dataset under ``workdir`` (cached on disk).

    ``scale`` multiplies the pair count (depth).  The FASTQ files are
    reused if already present for the same (name, seed, scale).
    """
    if name not in DATASETS:
        raise KeyError(f"unknown dataset {name!r}; available: {sorted(DATASETS)}")
    spec = DATASETS[name].scaled(scale)
    workdir = Path(workdir)
    workdir.mkdir(parents=True, exist_ok=True)
    tag = f"{name}_s{seed}_x{scale:g}".replace(".", "p")
    r1_path = workdir / f"{tag}_R1.fastq"
    r2_path = workdir / f"{tag}_R2.fastq"

    comm_seed = derive_seed(seed, "community", name)
    community = build_community(spec.community, comm_seed)
    simulator = ReadSimulator(
        community=community,
        read_length=spec.read_length,
        insert_mean=spec.insert_mean,
        insert_sd=spec.insert_sd,
        error_rate=spec.error_rate,
        n_rate=spec.n_rate,
        seed=derive_seed(seed, "reads", name),
    )

    species_of_pair: List[int] = []
    if force or not (r1_path.exists() and r2_path.exists()):
        r1s, r2s = [], []
        for pair in simulator.pairs(spec.n_pairs):
            r1s.append(pair.r1)
            r2s.append(pair.r2)
            species_of_pair.append(pair.species)
        write_fastq(r1_path, r1s)
        write_fastq(r2_path, r2s)
        _LOG.info(
            "built dataset %s: %d pairs (%d bp) -> %s",
            name,
            spec.n_pairs,
            spec.total_bases,
            workdir,
        )
    else:
        species_of_pair = [
            simulator.simulate_pair(i).species for i in range(spec.n_pairs)
        ]

    return BuiltDataset(
        spec=spec,
        seed=seed,
        r1_path=str(r1_path),
        r2_path=str(r2_path),
        community=community,
        simulator=simulator,
        species_of_pair=species_of_pair,
    )
