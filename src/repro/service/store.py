"""Content-addressed artifact store for reusable pipeline products.

IndexCreate output is exactly the kind of artifact the extreme-scale
assembly literature treats as a cacheable preprocessing product: it is
expensive, immutable, and a pure function of (dataset bytes, k, m,
chunking).  Finished partitions are the same one level up — a pure
function of (dataset bytes, partition-relevant configuration).  The
store keys both on fingerprints built from the same
:func:`repro.core.checkpoint.payload_fingerprint` machinery the
checkpoint subsystem uses, so repeated submissions of the same
dataset/config hit the cache instead of recomputing.

Store layout (one directory per key)::

    <root>/<key>/manifest.json      # kind, meta, file names+sizes, created
    <root>/<key>/<payload files>    # e.g. merhist.bin, fastqpart.bin
    <root>/<key>/.last_access       # LRU clock (text float), touched on get

Entries are published atomically: payloads are staged in a scratch
directory under ``<root>/.tmp`` and ``os.replace``d into place, so a
concurrent reader never observes a half-written entry and a crashed
writer leaves only garbage in ``.tmp`` (cleaned opportunistically).

Eviction is LRU under an optional byte budget: whenever a put pushes the
total payload size past ``size_budget_bytes``, least-recently-accessed
entries are deleted until the store fits.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Sequence, Tuple

import numpy as np

from repro import telemetry
from repro.core.checkpoint import config_payload, payload_fingerprint
from repro.core.config import PipelineConfig
from repro.index.create import IndexCreateResult
from repro.index.fastqpart import FastqPartTable
from repro.index.merhist import MerHist
from repro.seqio.tables import read_table, write_table
from repro.util.logging import get_logger

_LOG = get_logger("service.store")

_MANIFEST = "manifest.json"
_ATIME = ".last_access"
PARTITION_SCHEMA = "metaprep/partition-artifact"

#: artifact kinds the typed helpers produce
KIND_INDEX = "index"
KIND_PARTITION = "partition"
KIND_BLOCK = "tupleblock"


class ArtifactStoreError(RuntimeError):
    """A store entry is missing, corrupt, or of the wrong kind."""


# ----------------------------------------------------------------------
# fingerprints
# ----------------------------------------------------------------------


def _unit_files(units: Sequence) -> List[str]:
    """Flatten unit specs (paths, (R1, R2) pairs, or ``FastqUnit``) to an
    ordered file list."""
    from repro.index.fastqpart import FastqUnit

    files: List[str] = []
    for spec in units:
        if isinstance(spec, (tuple, list)) and len(spec) == 1:
            spec = spec[0]
        files.extend(FastqUnit.wrap(spec).files)
    return files


def dataset_fingerprint(units: Sequence) -> str:
    """Digest of the dataset *content*: every input file's bytes, in unit
    order.  Renaming or moving files does not change the fingerprint;
    editing one read does."""
    h = hashlib.blake2b(digest_size=16)
    for path in _unit_files(units):
        h.update(b"\x00file\x00")
        with open(path, "rb") as fh:
            for block in iter(lambda: fh.read(1 << 20), b""):
                h.update(block)
    return h.hexdigest()


def index_key(units: Sequence, config: PipelineConfig) -> str:
    """Cache key of the IndexCreate product for this dataset/config."""
    return payload_fingerprint(
        {
            "kind": KIND_INDEX,
            "dataset": dataset_fingerprint(units),
            "k": config.k,
            "m": config.m,
            "n_chunks": config.resolved_chunks(),
        }
    )


def partition_key(units: Sequence, config: PipelineConfig) -> str:
    """Cache key of the finished partition for this dataset/config.

    Includes every configuration field that determines the output labels
    (via :func:`repro.core.checkpoint.config_payload`) plus the pass/chunk
    decomposition; excludes executor/worker knobs, which are bit-identical
    by the executor determinism contract.
    """
    return payload_fingerprint(
        {
            "kind": KIND_PARTITION,
            "dataset": dataset_fingerprint(units),
            "n_passes": config.n_passes,
            "memory_budget_per_task": config.memory_budget_per_task,
            "n_chunks": config.resolved_chunks(),
            **config_payload(config),
        }
    )


# ----------------------------------------------------------------------
# store
# ----------------------------------------------------------------------


@dataclass
class StoreStats:
    """In-memory cache counters (per store instance, not persisted)."""

    hits: int = 0
    misses: int = 0
    puts: int = 0
    evictions: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "puts": self.puts,
            "evictions": self.evictions,
        }


@dataclass
class ArtifactEntry:
    """A resolved store entry: manifest fields plus payload paths."""

    key: str
    kind: str
    path: Path
    meta: Dict = field(default_factory=dict)
    files: Dict[str, Path] = field(default_factory=dict)
    size_bytes: int = 0
    created: float = 0.0

    def file(self, name: str) -> Path:
        try:
            return self.files[name]
        except KeyError:
            raise ArtifactStoreError(
                f"artifact {self.key} has no payload file {name!r} "
                f"(has {sorted(self.files)})"
            ) from None


class ArtifactStore:
    """Content-addressed, atomically-published, LRU-evicted artifact store."""

    def __init__(
        self,
        root: str | os.PathLike,
        size_budget_bytes: int | None = None,
        clock=time.time,
    ) -> None:
        if size_budget_bytes is not None and size_budget_bytes < 0:
            raise ValueError(
                f"size_budget_bytes must be >= 0, got {size_budget_bytes}"
            )
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.size_budget_bytes = size_budget_bytes
        self.stats = StoreStats()
        self._clock = clock
        self._scratch = self.root / ".tmp"

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def _entry_dir(self, key: str) -> Path:
        if not key or "/" in key or key.startswith("."):
            raise ValueError(f"invalid artifact key {key!r}")
        return self.root / key

    def has(self, key: str) -> bool:
        """Entry presence without touching counters or the LRU clock."""
        return (self._entry_dir(key) / _MANIFEST).is_file()

    def keys(self) -> List[str]:
        return sorted(
            p.name
            for p in self.root.iterdir()
            if p.is_dir() and not p.name.startswith(".") and (p / _MANIFEST).is_file()
        )

    def _read_entry(self, key: str) -> ArtifactEntry:
        path = self._entry_dir(key)
        try:
            manifest = json.loads((path / _MANIFEST).read_text())
        except FileNotFoundError:
            raise ArtifactStoreError(f"no artifact for key {key}") from None
        except (OSError, json.JSONDecodeError) as exc:
            raise ArtifactStoreError(f"corrupt manifest for {key}: {exc}") from exc
        return ArtifactEntry(
            key=key,
            kind=manifest["kind"],
            path=path,
            meta=manifest.get("meta", {}),
            files={name: path / name for name in manifest.get("files", {})},
            size_bytes=int(manifest.get("size_bytes", 0)),
            created=float(manifest.get("created", 0.0)),
        )

    def get(self, key: str) -> ArtifactEntry | None:
        """Look up ``key``; counts a hit/miss and refreshes the LRU clock."""
        if not self.has(key):
            self.stats.misses += 1
            telemetry.add_counter("store.misses")
            return None
        entry = self._read_entry(key)
        self._touch(key)
        self.stats.hits += 1
        telemetry.add_counter("store.hits")
        return entry

    def _touch(self, key: str) -> None:
        try:
            (self._entry_dir(key) / _ATIME).write_text(repr(float(self._clock())))
        except OSError:  # pragma: no cover - entry evicted concurrently
            pass

    def _last_access(self, key: str) -> float:
        try:
            return float((self._entry_dir(key) / _ATIME).read_text())
        except (OSError, ValueError):
            return 0.0

    def put(
        self,
        key: str,
        kind: str,
        writers: Dict[str, Callable[[Path], object]],
        meta: Dict | None = None,
    ) -> ArtifactEntry:
        """Publish an entry atomically.

        ``writers`` maps payload file name -> ``callable(path)`` that
        materializes the file.  Everything is staged under
        ``<root>/.tmp`` and renamed into place in one ``os.replace``; a
        concurrent put of the same key is resolved by whoever renames
        first (the loser's staging dir is discarded — content-addressing
        makes both copies identical anyway).
        """
        dest = self._entry_dir(key)
        self._scratch.mkdir(exist_ok=True)
        stage = self._scratch / f"{key}.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        stage.mkdir()
        try:
            sizes: Dict[str, int] = {}
            for name, writer in writers.items():
                writer(stage / name)
                sizes[name] = (stage / name).stat().st_size
            manifest = {
                "kind": kind,
                "key": key,
                "meta": meta or {},
                "files": sizes,
                "size_bytes": sum(sizes.values()),
                "created": float(self._clock()),
            }
            (stage / _MANIFEST).write_text(json.dumps(manifest, sort_keys=True))
            (stage / _ATIME).write_text(repr(float(self._clock())))
            try:
                os.replace(stage, dest)
            except OSError:
                if not self.has(key):  # a real failure, not a lost race
                    raise
                shutil.rmtree(stage, ignore_errors=True)
        except BaseException:
            shutil.rmtree(stage, ignore_errors=True)
            raise
        self.stats.puts += 1
        _LOG.info("stored %s artifact %s (%d bytes)", kind, key,
                  sum(sizes.values()))
        if self.size_budget_bytes is not None:
            self.evict(self.size_budget_bytes)
        return self._read_entry(key)

    def delete(self, key: str) -> bool:
        path = self._entry_dir(key)
        if not path.exists():
            return False
        shutil.rmtree(path)
        return True

    def total_bytes(self) -> int:
        return sum(self._read_entry(k).size_bytes for k in self.keys())

    def evict(self, budget_bytes: int | None = None) -> List[str]:
        """Delete least-recently-accessed entries until the store fits
        ``budget_bytes`` (default: the configured budget).  Returns the
        evicted keys, oldest first."""
        budget = (
            budget_bytes if budget_bytes is not None else self.size_budget_bytes
        )
        if budget is None:
            return []
        entries = [
            (self._last_access(k), self._read_entry(k)) for k in self.keys()
        ]
        entries.sort(key=lambda pair: (pair[0], pair[1].key))
        total = sum(e.size_bytes for _, e in entries)
        evicted: List[str] = []
        for _, entry in entries:
            if total <= budget:
                break
            shutil.rmtree(entry.path, ignore_errors=True)
            total -= entry.size_bytes
            evicted.append(entry.key)
            self.stats.evictions += 1
        if evicted:
            _LOG.info("evicted %d artifact(s): %s", len(evicted), evicted)
        self._clean_scratch()
        return evicted

    def _clean_scratch(self) -> None:
        if self._scratch.is_dir():
            for leftover in self._scratch.iterdir():
                shutil.rmtree(leftover, ignore_errors=True)

    # ------------------------------------------------------------------
    # typed helpers: IndexCreate artifacts
    # ------------------------------------------------------------------
    def put_index(self, key: str, index: IndexCreateResult) -> ArtifactEntry:
        """Cache both IndexCreate tables under ``key``."""
        return self.put(
            key,
            KIND_INDEX,
            {
                "merhist.bin": lambda p: index.merhist.save(p),
                "fastqpart.bin": lambda p: index.fastqpart.save(p),
            },
            meta={
                "k": index.merhist.k,
                "m": index.merhist.m,
                "n_chunks": index.fastqpart.n_chunks,
                "total_reads": index.fastqpart.total_reads,
                "fastqpart_seconds": index.fastqpart_seconds,
                "merhist_seconds": index.merhist_seconds,
            },
        )

    def load_index(self, entry: ArtifactEntry) -> IndexCreateResult:
        if entry.kind != KIND_INDEX:
            raise ArtifactStoreError(
                f"artifact {entry.key} is a {entry.kind!r}, expected index"
            )
        return IndexCreateResult(
            merhist=MerHist.load(entry.file("merhist.bin")),
            fastqpart=FastqPartTable.load(entry.file("fastqpart.bin")),
            fastqpart_seconds=float(entry.meta.get("fastqpart_seconds", 0.0)),
            merhist_seconds=float(entry.meta.get("merhist_seconds", 0.0)),
            merhist_path=str(entry.file("merhist.bin")),
            fastqpart_path=str(entry.file("fastqpart.bin")),
        )

    def index_for(
        self, units: Sequence, config: PipelineConfig
    ) -> Tuple[IndexCreateResult, bool]:
        """Cached IndexCreate product, computing and caching on miss.

        Returns ``(index, cache_hit)``.  This is the pipeline's injection
        point: :meth:`repro.core.pipeline.MetaPrep.run` calls it instead
        of :func:`repro.index.create.index_create` when a store is given.
        """
        key = index_key(units, config)
        entry = self.get(key)
        if entry is not None:
            return self.load_index(entry), True
        from repro.index.create import index_create

        index = index_create(units, config.k, config.m, config.resolved_chunks())
        self.put_index(key, index)
        return index, False

    # ------------------------------------------------------------------
    # typed helpers: partition artifacts
    # ------------------------------------------------------------------
    def put_partition(
        self, key: str, labels: np.ndarray, summary_meta: Dict
    ) -> ArtifactEntry:
        """Cache a finished partition: the global label array + summary."""

        def _write(path: Path) -> None:
            write_table(
                path,
                PARTITION_SCHEMA,
                {"n_reads": int(len(labels))},
                {"labels": np.asarray(labels, dtype=np.int64)},
            )

        return self.put(
            key, KIND_PARTITION, {"partition.bin": _write}, meta=summary_meta
        )

    def load_partition(self, entry: ArtifactEntry) -> np.ndarray:
        if entry.kind != KIND_PARTITION:
            raise ArtifactStoreError(
                f"artifact {entry.key} is a {entry.kind!r}, expected partition"
            )
        _, arrays = read_table(
            entry.file("partition.bin"), expect_schema=PARTITION_SCHEMA
        )
        return arrays["labels"]

    # ------------------------------------------------------------------
    # typed helpers: TupleBlock spill artifacts
    # ------------------------------------------------------------------
    def put_block(self, key: str, block, length: int | None = None) -> ArtifactEntry:
        """Cache a :class:`~repro.runtime.buffers.TupleBlock` spill.

        The payload is the dataplane's on-disk spill format (descriptor
        metadata + raw column bytes, see
        :func:`repro.core.checkpoint.save_block_spill`), so a spilled
        exchange buffer is publishable through the same atomic,
        LRU-evicted store as every other artifact.
        """
        from repro.core.checkpoint import save_block_spill

        n = block.capacity if length is None else length
        return self.put(
            key,
            KIND_BLOCK,
            {"block.bin": lambda p: save_block_spill(p, block, n)},
            meta={"k": block.k, "length": n, "two_limb": block.two_limb},
        )

    def load_block(self, entry: ArtifactEntry, pool):
        """Restore a cached TupleBlock spill into a block from ``pool``
        (either backing; only the bytes are contractual)."""
        if entry.kind != KIND_BLOCK:
            raise ArtifactStoreError(
                f"artifact {entry.key} is a {entry.kind!r}, expected tupleblock"
            )
        from repro.core.checkpoint import load_block_spill

        return load_block_spill(entry.file("block.bin"), pool)
