"""Client side of the filesystem-spool service protocol.

A client never touches queue state directly: submissions are dropped
into ``<spool>/submit/`` with an atomic rename (the daemon consumes
them), cancellation is a flag file in ``<spool>/cancel/``, and status is
read back from the daemon's result documents — falling back to a
read-only replay of the event log for jobs still in flight.  Client and
daemon therefore need nothing in common but a shared directory, which
is what lets ``metaprep submit`` work against a daemon in another
process, container, or node sharing a filesystem.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.seqio.tables import read_table
from repro.service.daemon import CANCEL_DIR, RESULTS_DIR, SUBMIT_DIR
from repro.service.jobs import JobState, JobStateError, PartitionJob
from repro.service.queue import EventLog, replay_records
from repro.util.logging import get_logger

_LOG = get_logger("service.client")


def poll_schedule(
    initial: float = 0.01, factor: float = 2.0, cap: float = 0.5
):
    """Deterministic jitterless backoff schedule for status polling.

    Yields ``initial, initial*factor, ...`` capped at ``cap`` forever.
    Shared by :meth:`ServiceClient.wait` and the HTTP-mode
    :class:`repro.gateway.client.GatewayClient` so both clients poll a
    fresh job eagerly and a long-running one gently.
    """
    delay = initial
    while True:
        yield delay
        delay = min(delay * factor, cap)


class ServiceClient:
    """Submit/status/result/cancel against one spool directory."""

    def __init__(self, spool_dir: str | os.PathLike) -> None:
        self.spool_dir = Path(spool_dir)
        for sub in (SUBMIT_DIR, CANCEL_DIR, RESULTS_DIR):
            (self.spool_dir / sub).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    def submit(
        self,
        units: Sequence,
        config: Dict | None = None,
        max_retries: int = 2,
        timeout_seconds: float | None = None,
    ) -> str:
        """Queue a partition job; returns its job id immediately.

        The drop file is named ``<submitted_at>-<job_id>.json`` so the
        daemon's sorted ingest preserves submission order.
        """
        job = PartitionJob(
            units=list(units),
            config=dict(config or {}),
            max_retries=max_retries,
            timeout_seconds=timeout_seconds,
        )
        return self.submit_job(job)

    def submit_job(self, job: PartitionJob) -> str:
        """Drop an already-built job spec into the spool (the gateway's
        submission path, which needs the job object for fingerprinting
        before the drop)."""
        submit_dir = self.spool_dir / SUBMIT_DIR
        final = submit_dir / f"{job.submitted_at:017.6f}-{job.job_id}.json"
        tmp = submit_dir / f".{uuid.uuid4().hex}.part"
        tmp.write_text(json.dumps(job.to_dict(), sort_keys=True))
        os.replace(tmp, final)  # atomic: the daemon never sees a torn file
        _LOG.info("submitted job %s", job.job_id)
        return job.job_id

    # ------------------------------------------------------------------
    def status(self, job_id: str) -> Dict:
        """Current status document of one job."""
        result_path = self.spool_dir / RESULTS_DIR / f"{job_id}.json"
        if result_path.exists():
            return json.loads(result_path.read_text())
        records = replay_records(EventLog(self.spool_dir / "events.jsonl"))
        if job_id in records:
            return records[job_id].status_dict()
        # submitted but not yet ingested by the daemon?
        for path in (self.spool_dir / SUBMIT_DIR).glob(f"*-{job_id}.json"):
            spec = json.loads(path.read_text())
            return {
                "job_id": job_id,
                "state": JobState.QUEUED,
                "attempt": 0,
                "error": None,
                "result": {},
                "metrics": {},
                "submitted_at": spec.get("submitted_at"),
                "started_at": None,
                "finished_at": None,
            }
        raise JobStateError(f"unknown job {job_id}")

    def list_jobs(self) -> List[Dict]:
        """Status documents of every job the spool knows, oldest first.

        Includes submissions still sitting in ``submit/`` that no daemon
        has ingested yet (reported as ``queued``, attempt 0).
        """
        records = replay_records(EventLog(self.spool_dir / "events.jsonl"))
        statuses = [r.status_dict() for r in records.values()]
        for path in sorted((self.spool_dir / SUBMIT_DIR).glob("*.json")):
            spec = json.loads(path.read_text())
            if spec.get("job_id") in records:
                continue
            statuses.append(
                {
                    "job_id": spec.get("job_id", "?"),
                    "state": JobState.QUEUED,
                    "attempt": 0,
                    "error": None,
                    "result": {},
                    "metrics": {},
                    "submitted_at": spec.get("submitted_at"),
                    "started_at": None,
                    "finished_at": None,
                }
            )
        return statuses

    # ------------------------------------------------------------------
    def result(self, job_id: str) -> Tuple[np.ndarray, Dict]:
        """The finished partition: (global label array, result info).

        Raises :class:`JobStateError` unless the job has succeeded.
        """
        status = self.status(job_id)
        if status["state"] != JobState.SUCCEEDED:
            raise JobStateError(
                f"job {job_id} is {status['state']}"
                + (f": {status['error']}" if status.get("error") else "")
            )
        info = status["result"]
        path = info.get("artifact_path")
        if not path or not os.path.exists(path):
            raise JobStateError(
                f"job {job_id} succeeded but its partition artifact is gone "
                f"({path}); it may have been evicted from the store"
            )
        _, arrays = read_table(path, expect_schema="metaprep/partition-artifact")
        return arrays["labels"], info

    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> None:
        """Request cancellation (effective at the job's next pass
        boundary if it is already running)."""
        (self.spool_dir / CANCEL_DIR / job_id).touch()

    # ------------------------------------------------------------------
    def wait(
        self, job_id: str, timeout: float = 60.0, poll_cap: float = 0.5
    ) -> Dict:
        """Block until the job reaches a terminal state; returns it.

        Polls on the deterministic exponential schedule of
        :func:`poll_schedule` (10 ms doubling to ``poll_cap``) instead
        of a fixed interval: a short job is observed within
        milliseconds, a long one costs a couple of status reads per
        second instead of twenty.
        """
        deadline = time.monotonic() + timeout
        schedule = poll_schedule(cap=poll_cap)
        while True:
            status = self.status(job_id)
            if status["state"] in JobState.TERMINAL:
                return status
            now = time.monotonic()
            if now > deadline:
                raise TimeoutError(
                    f"job {job_id} still {status['state']} after {timeout}s"
                )
            time.sleep(min(next(schedule), max(deadline - now, 0.0)))
