"""The partition job service: a long-running layer above the pipeline.

The paper's METAPREP is a batch program — one dataset in, one partition
out.  This package turns it into a service: many users submit
:class:`~repro.service.jobs.PartitionJob` requests, a daemon executes
them on the PR-1 executor layer, and a content-addressed artifact store
deduplicates the expensive immutable products (IndexCreate tables,
finished partitions) across submissions.

Modules
-------

* :mod:`repro.service.store` — content-addressed artifact store with
  atomic publication and LRU/size-budget eviction.
* :mod:`repro.service.jobs` — job specs, the job state machine, and the
  JSONL event records that persist it.
* :mod:`repro.service.queue` — the durable job queue (event-sourced) and
  the concurrent scheduler with retry/backoff.
* :mod:`repro.service.daemon` — ``metaprep serve``: spool ingestion,
  job execution with caching/checkpointing, result publication.
* :mod:`repro.service.client` — the filesystem-spool client behind the
  ``submit``/``status``/``result``/``cancel`` CLI verbs.

The transport is a filesystem spool directory (atomic renames, JSONL
event log) rather than a network socket, so the whole service is
dependency-free and the daemon can be killed and restarted at any point
without losing queue state.
"""

from repro.service.client import ServiceClient
from repro.service.daemon import ServeDaemon
from repro.service.jobs import JobState, PartitionJob
from repro.service.queue import JobQueue, Scheduler
from repro.service.store import ArtifactStore

__all__ = [
    "ArtifactStore",
    "JobQueue",
    "JobState",
    "PartitionJob",
    "Scheduler",
    "ServeDaemon",
    "ServiceClient",
]
