"""Job specs, the job state machine, and its persisted event records.

A :class:`PartitionJob` is the unit of service work: "partition this
dataset under this configuration".  Its lifecycle is a small, strictly
validated state machine::

    queued --> running --> succeeded
      |  ^        |   \\--> failed
      |  \\--------/        (running -> queued is the retry/recovery arc)
      \\--> cancelled <-----/

Every transition — plus non-transition progress marks like
``pass_complete`` or ``cache_hit`` — is one :class:`JobEvent`, appended
to a JSONL log by :class:`repro.service.queue.EventLog`.  The log is the
single source of truth: replaying it reconstructs the whole queue after
a daemon crash or restart, which is what makes the daemon kill-safe.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.core.config import PipelineConfig
from repro.kmers.filter import FrequencyFilter


class JobStateError(RuntimeError):
    """An illegal state transition was attempted (or replayed)."""


class JobCancelled(RuntimeError):
    """Raised inside a running job when its cancel flag is observed."""


class JobTimeout(RuntimeError):
    """Raised inside a running job when its deadline has passed."""


class JobState:
    """String states of the job machine (JSON/JSONL-friendly)."""

    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    ALL = (QUEUED, RUNNING, SUCCEEDED, FAILED, CANCELLED)
    TERMINAL = (SUCCEEDED, FAILED, CANCELLED)

    #: legal transitions; running -> queued is the retry/recovery arc
    TRANSITIONS = {
        QUEUED: (RUNNING, CANCELLED),
        RUNNING: (SUCCEEDED, FAILED, CANCELLED, QUEUED),
        SUCCEEDED: (),
        FAILED: (),
        CANCELLED: (),
    }

    @classmethod
    def check(cls, old: str, new: str) -> None:
        if new not in cls.TRANSITIONS.get(old, ()):
            raise JobStateError(f"illegal job transition {old} -> {new}")


def new_job_id() -> str:
    """Opaque, collision-resistant job identifier (``j-<12 hex>``)."""
    return f"j-{uuid.uuid4().hex[:12]}"


def _normalize_units(units: Sequence) -> List[List[str]]:
    """Canonical JSON shape: a list of 1-element (single-end) or
    2-element (paired) absolute-path lists.  Accepts everything the
    pipeline accepts: paths, (R1, R2) pairs, or ``FastqUnit`` objects."""
    from repro.index.fastqpart import FastqUnit

    out: List[List[str]] = []
    for spec in units:
        if isinstance(spec, (tuple, list)) and len(spec) == 1:
            spec = spec[0]  # a JSON round-tripped single-end unit
        unit = FastqUnit.wrap(spec)
        out.append([os.path.abspath(f) for f in unit.files])
    if not out:
        raise ValueError("a job needs at least one input unit")
    return out


@dataclass
class PartitionJob:
    """One partition request: dataset units + pipeline configuration.

    ``config`` holds :class:`~repro.core.config.PipelineConfig` keyword
    overrides in JSON form; ``kmer_filter`` is spelled as the CLI's
    filter string (``"none"``, ``"<30"``, ``"10:30"``).
    """

    units: List[List[str]]
    config: Dict = field(default_factory=dict)
    job_id: str = field(default_factory=new_job_id)
    submitted_at: float = field(default_factory=time.time)
    max_retries: int = 2
    timeout_seconds: float | None = None

    def __post_init__(self) -> None:
        self.units = _normalize_units(self.units)
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.timeout_seconds is not None and self.timeout_seconds < 0:
            raise ValueError(
                f"timeout_seconds must be >= 0, got {self.timeout_seconds}"
            )
        self.pipeline_config()  # validate eagerly, at submission time

    # ------------------------------------------------------------------
    def pipeline_units(self) -> List:
        """Units in the shape :meth:`MetaPrep.run` accepts."""
        return [u[0] if len(u) == 1 else tuple(u) for u in self.units]

    def pipeline_config(self, **overrides) -> PipelineConfig:
        """Materialize the job's :class:`PipelineConfig`."""
        kw = dict(self.config, **overrides)
        filt = kw.pop("kmer_filter", None)
        if isinstance(filt, str):
            filt = FrequencyFilter.parse(filt)
        if filt is not None:
            kw["kmer_filter"] = filt
        return PipelineConfig(**kw)

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict:
        return {
            "job_id": self.job_id,
            "units": self.units,
            "config": self.config,
            "submitted_at": self.submitted_at,
            "max_retries": self.max_retries,
            "timeout_seconds": self.timeout_seconds,
        }

    @classmethod
    def from_dict(cls, payload: Dict) -> "PartitionJob":
        return cls(
            units=payload["units"],
            config=dict(payload.get("config", {})),
            job_id=payload["job_id"],
            submitted_at=float(payload.get("submitted_at", 0.0)),
            max_retries=int(payload.get("max_retries", 2)),
            timeout_seconds=payload.get("timeout_seconds"),
        )


@dataclass
class JobEvent:
    """One line of the JSONL event log.

    ``state`` is set on transition events and ``None`` on progress marks
    (``pass_complete``, ``cache_hit``, ...).  ``payload`` carries
    event-specific details — the full job spec on ``submitted``, the
    error string on failures, metrics on completion.
    """

    job_id: str
    type: str
    state: str | None = None
    time: float = field(default_factory=time.time)
    attempt: int = 0
    payload: Dict = field(default_factory=dict)

    def to_json(self) -> str:
        return json.dumps(
            {
                "job_id": self.job_id,
                "type": self.type,
                "state": self.state,
                "time": self.time,
                "attempt": self.attempt,
                "payload": self.payload,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, line: str) -> "JobEvent":
        raw = json.loads(line)
        return cls(
            job_id=raw["job_id"],
            type=raw["type"],
            state=raw.get("state"),
            time=float(raw.get("time", 0.0)),
            attempt=int(raw.get("attempt", 0)),
            payload=dict(raw.get("payload", {})),
        )


@dataclass
class JobRecord:
    """Mutable queue-side view of one job, rebuilt from events on replay."""

    job: PartitionJob
    state: str = JobState.QUEUED
    attempt: int = 0
    error: str | None = None
    result: Dict = field(default_factory=dict)
    metrics: Dict = field(default_factory=dict)
    not_before: float = 0.0  # earliest start time (retry backoff), monotonic
    started_at: float | None = None
    finished_at: float | None = None

    @property
    def job_id(self) -> str:
        return self.job.job_id

    @property
    def terminal(self) -> bool:
        return self.state in JobState.TERMINAL

    def transition(self, new_state: str) -> None:
        JobState.check(self.state, new_state)
        self.state = new_state

    def apply_event(self, event: JobEvent) -> None:
        """Fold one logged event into this record (replay path)."""
        if event.state is not None and event.state != self.state:
            self.transition(event.state)
        self.attempt = max(self.attempt, event.attempt)
        if event.state == JobState.RUNNING:
            self.started_at = event.time
        if event.state in JobState.TERMINAL:
            self.finished_at = event.time
            self.error = event.payload.get("error", self.error)
            self.result = dict(event.payload.get("result", self.result))
            self.metrics = dict(event.payload.get("metrics", self.metrics))

    def status_dict(self) -> Dict:
        """JSON-shaped summary for result files and ``metaprep status``."""
        return {
            "job_id": self.job_id,
            "state": self.state,
            "attempt": self.attempt,
            "error": self.error,
            "result": self.result,
            "metrics": self.metrics,
            "submitted_at": self.job.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
        }
